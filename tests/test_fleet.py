"""Fleet controller unit tests: membership, liveness deadlines, eviction,
lease reassignment and at-most-once acceptance — all driven through a fake
transport and a fake clock, so every race is a deterministic sequence of
messages and deadline checks rather than a sleep."""

from collections import defaultdict

import pytest

from repro import obs
from repro.errors import DeviceFailureError, SpecificationError
from repro.fleet import (
    ChunkJob,
    FleetConfig,
    FleetController,
    Message,
    Transport,
    WorkerSpec,
)
from repro.robust.supervisor import payload_crc
from repro.serve.engine import RangeSource, StreamConfig


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


class FakeTransport(Transport):
    """Records everything; delivers whatever messages the test scripts."""

    def __init__(self) -> None:
        self.launched: list[int] = []
        self.sent: dict[int, list] = defaultdict(list)
        self.killed: list[int] = []
        self.alive_map: dict[int, bool] = {}
        self.queue: list[Message] = []
        self.closed = False

    def launch(self, worker_id: int) -> None:
        self.launched.append(worker_id)
        self.alive_map[worker_id] = True

    def send_job(self, worker_id: int, job) -> None:
        self.sent[worker_id].append(job)

    def poll(self, timeout: float) -> list[Message]:
        msgs, self.queue = self.queue, []
        return msgs

    def alive(self, worker_id: int) -> bool:
        return self.alive_map.get(worker_id, False)

    def kill(self, worker_id: int) -> None:
        self.killed.append(worker_id)
        self.alive_map[worker_id] = False

    def close(self) -> None:
        self.closed = True


STREAM = StreamConfig(algorithm="xorwow", seed=11, lanes=64)
SOURCE = RangeSource(STREAM, max_streams=4)


def stream_bytes(offset: int, n: int) -> bytes:
    return SOURCE.read_range(offset, n)


def make_fleet(**overrides):
    defaults = dict(
        workers=2,
        min_workers=1,
        max_workers=4,
        heartbeat_interval=1.0,
        heartbeat_timeout=5.0,
        chunk_bytes=256,
        scale_down_idle_s=30.0,
    )
    defaults.update(overrides)
    clock = FakeClock()
    transport = FakeTransport()
    ctrl = FleetController(
        STREAM, FleetConfig(**defaults), transport=transport, clock=clock
    )
    ctrl.start(supervise=False)
    return ctrl, transport, clock


def register_all(ctrl, transport, clock):
    for wid in list(transport.launched):
        ctrl.handle_message(Message("register", wid), clock.now)


def result_msg(job: ChunkJob, worker_id: int, payload: bytes | None = None) -> Message:
    data = stream_bytes(job.offset, job.length) if payload is None else payload
    return Message("result", worker_id, job_id=job.job_id, payload=data, crc=payload_crc(data))


class TestConfigValidation:
    def test_defaults_valid(self):
        FleetConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(workers=0),
            dict(min_workers=0),
            dict(min_workers=5, max_workers=4),
            dict(workers=9, max_workers=8),
            dict(heartbeat_interval=0.0),
            dict(heartbeat_timeout=0.5, heartbeat_interval=1.0),
            dict(chunk_bytes=0),
            dict(max_inflight_per_worker=0),
            dict(max_strikes=0),
            dict(max_evictions=-1),
            dict(scale_up_backlog=0),
            dict(scale_down_idle_s=0.0),
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(SpecificationError):
            FleetConfig(**kw)

    def test_chunk_job_validation(self):
        with pytest.raises(SpecificationError):
            ChunkJob(0, -1, 10)
        with pytest.raises(SpecificationError):
            ChunkJob(0, 0, 0)

    def test_message_kind_validation(self):
        with pytest.raises(SpecificationError):
            Message("gossip", 0)

    def test_worker_spec_validation(self):
        with pytest.raises(SpecificationError):
            WorkerSpec(heartbeat_interval=0.0)
        with pytest.raises(SpecificationError):
            WorkerSpec(max_streams=0)


class TestMembership:
    def test_start_launches_target(self):
        ctrl, transport, clock = make_fleet(workers=3, max_workers=4)
        assert transport.launched == [0, 1, 2]
        assert all(m.state == "launching" for m in ctrl.members.values())
        register_all(ctrl, transport, clock)
        assert all(m.state == "live" for m in ctrl.members.values())
        ctrl.close()
        assert transport.closed

    def test_unknown_worker_messages_ignored(self):
        ctrl, transport, clock = make_fleet()
        ctrl.handle_message(Message("register", 99), clock.now)
        ctrl.handle_message(Message("heartbeat", 99), clock.now)
        assert 99 not in ctrl.members
        ctrl.close()


class TestLivenessDeadlines:
    def test_register_but_never_heartbeat_evicted(self):
        """A member that registers and then goes silent is evicted at the
        deadline — registration is a sign of life, not a lifetime pass."""
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        clock.advance(5.0)  # exactly the timeout: strictly-greater survives
        ctrl.check_liveness(clock.now)
        assert ctrl.members[0].state == "live"
        clock.advance(0.001)
        ctrl.check_liveness(clock.now)
        assert ctrl.members[0].state == "evicted"
        assert ctrl.members[0].evicted_reason == "heartbeat"
        assert 0 in transport.killed
        ctrl.close()

    def test_never_registers_evicted_from_launch_time(self):
        ctrl, transport, clock = make_fleet()
        clock.advance(5.001)
        ctrl.check_liveness(clock.now)
        assert all(m.state == "evicted" for m in list(ctrl.members.values())[:2])
        ctrl.close()

    def test_heartbeat_exactly_at_deadline_survives(self):
        """The racing heartbeat: processed before the deadline check with
        the same `now`, so landing exactly at the deadline keeps the
        member alive for a further full timeout."""
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        clock.advance(5.0)
        ctrl.handle_message(Message("heartbeat", 0), clock.now)
        ctrl.check_liveness(clock.now)
        assert ctrl.members[0].state == "live"
        assert ctrl.members[0].heartbeats == 1
        # the other member got no heartbeat: next tick evicts only it
        clock.advance(0.5)
        ctrl.check_liveness(clock.now)
        assert ctrl.members[0].state == "live"
        assert ctrl.members[1].state == "evicted"
        ctrl.close()

    def test_dead_carrier_evicted_as_crash(self):
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        transport.alive_map[1] = False
        ctrl.check_liveness(clock.now)
        assert ctrl.members[1].state == "evicted"
        assert ctrl.members[1].evicted_reason == "crash"
        ctrl.close()


class TestLeaseReassignment:
    def test_eviction_requeues_inflight_to_peer(self):
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        jobs = ctrl.submit_range(0, 256)
        (job,) = jobs
        owner = next(
            wid for wid, sent in transport.sent.items() if job in sent
        )
        peer = 1 - owner
        clock.advance(6.0)  # owner never heartbeats again
        ctrl.handle_message(Message("heartbeat", peer), clock.now)
        ctrl.check_liveness(clock.now)
        ctrl.reconcile(clock.now)
        assert ctrl.members[owner].state == "evicted"
        assert ctrl.reassignments == 1
        assert job in transport.sent[peer]  # the lease moved, not a new lease
        ctrl.handle_message(result_msg(job, peer), clock.now)
        assert ctrl.try_collect(jobs) == stream_bytes(0, 256)
        ctrl.close()

    def test_job_ids_never_reissued(self):
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        first = ctrl.submit_range(0, 1024)
        second = ctrl.submit_range(1024, 1024)
        ids = [j.job_id for j in first + second]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)
        assert ctrl.leases.high_water == 2048  # every dispatched byte leased
        ctrl.close()


class TestAtMostOnceAcceptance:
    def test_late_result_from_evicted_worker_is_stale(self):
        """Eviction racing a completing job, eviction first: the old
        owner's result must not land — the lease was reassigned."""
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        (job,) = ctrl.submit_range(0, 256)
        owner = next(wid for wid, sent in transport.sent.items() if job in sent)
        peer = 1 - owner
        clock.advance(6.0)
        ctrl.handle_message(Message("heartbeat", peer), clock.now)
        ctrl.check_liveness(clock.now)
        ctrl.reconcile(clock.now)  # job now assigned to peer
        # the evicted owner finished anyway and its result arrives late
        ctrl.handle_message(result_msg(job, owner), clock.now)
        assert ctrl.stale_results == 1
        assert ctrl.try_collect([job]) is None  # not accepted from the ghost
        ctrl.handle_message(result_msg(job, peer), clock.now)
        assert ctrl.try_collect([job]) == stream_bytes(0, 256)
        assert ctrl.jobs_completed == 1
        ctrl.close()

    def test_duplicate_result_after_acceptance_is_stale(self):
        """Eviction racing a completing job, result first: acceptance
        wins, the duplicate (and the eviction) change nothing."""
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        (job,) = ctrl.submit_range(0, 256)
        owner = next(wid for wid, sent in transport.sent.items() if job in sent)
        ctrl.handle_message(result_msg(job, owner), clock.now)
        assert ctrl.jobs_completed == 1
        ctrl.handle_message(result_msg(job, owner), clock.now)  # duplicate
        assert ctrl.stale_results == 1
        assert ctrl.jobs_completed == 1
        # evicting the owner afterwards must not resurrect the job
        clock.advance(6.0)
        ctrl.check_liveness(clock.now)
        assert ctrl.members[owner].state == "evicted"
        assert ctrl.reassignments == 0
        assert ctrl.try_collect([job]) == stream_bytes(0, 256)
        ctrl.close()


class TestReceiptsAndScreening:
    def test_crc_strikes_then_corrupt_eviction(self):
        ctrl, transport, clock = make_fleet(max_strikes=2)
        register_all(ctrl, transport, clock)
        (job,) = ctrl.submit_range(0, 256)
        owner = next(wid for wid, sent in transport.sent.items() if job in sent)
        good = stream_bytes(0, 256)
        bad = Message(
            "result", owner, job_id=job.job_id,
            payload=good[:-1] + bytes([good[-1] ^ 1]), crc=payload_crc(good),
        )
        ctrl.handle_message(bad, clock.now)
        assert ctrl.members[owner].strikes == 1
        assert ctrl.members[owner].state == "live"  # one flip is retryable
        ctrl.reconcile(clock.now)  # requeued job goes back out
        owner2 = next(
            wid for wid, sent in transport.sent.items()
            if sent and sent[-1] == job and ctrl.members[wid].state == "live"
        )
        ctrl.handle_message(
            Message("result", owner2, job_id=job.job_id,
                    payload=bad.payload, crc=bad.crc),
            clock.now,
        )
        struck = ctrl.members[owner2]
        assert struck.state == "evicted" or struck.strikes >= 1
        ctrl.close()

    def test_stuck_output_health_eviction(self):
        """A wedged worker (constant bytes, *valid* CRC) is caught by its
        per-worker RCT screen and evicted immediately."""
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        (job,) = ctrl.submit_range(0, 256)
        owner = next(wid for wid, sent in transport.sent.items() if job in sent)
        wedged = b"\x00" * 256
        ctrl.handle_message(
            Message("result", owner, job_id=job.job_id,
                    payload=wedged, crc=payload_crc(wedged)),
            clock.now,
        )
        assert ctrl.members[owner].state == "evicted"
        assert ctrl.members[owner].evicted_reason == "health"
        assert ctrl.try_collect([job]) is None  # suspect bytes not served
        ctrl.reconcile(clock.now)
        peer = next(
            wid for wid, m in ctrl.members.items()
            if m.state == "live" and job.job_id in m.inflight
        )
        ctrl.handle_message(result_msg(job, peer), clock.now)
        assert ctrl.try_collect([job]) == stream_bytes(0, 256)
        ctrl.close()

    def test_short_payload_is_a_strike(self):
        ctrl, transport, clock = make_fleet(max_strikes=1)
        register_all(ctrl, transport, clock)
        (job,) = ctrl.submit_range(0, 256)
        owner = next(wid for wid, sent in transport.sent.items() if job in sent)
        ctrl.handle_message(
            Message("result", owner, job_id=job.job_id, payload=b"xy", crc=payload_crc(b"xy")),
            clock.now,
        )
        assert ctrl.members[owner].state == "evicted"
        assert ctrl.members[owner].evicted_reason == "corrupt"
        ctrl.close()


class TestElasticity:
    def test_scale_up_on_backlog(self):
        ctrl, transport, clock = make_fleet(workers=2, max_workers=4, scale_up_backlog=2)
        register_all(ctrl, transport, clock)
        # 2 live x inflight cap 2 = 4 dispatched; the rest is backlog
        ctrl.submit_range(0, 256 * 16)
        ctrl.reconcile(clock.now)
        assert ctrl.target == 3
        assert len(transport.launched) == 3
        assert ctrl.scale_ups == 1
        ctrl.close()

    def test_scale_down_after_sustained_idle(self):
        ctrl, transport, clock = make_fleet(workers=2, scale_down_idle_s=10.0)
        register_all(ctrl, transport, clock)
        for _ in range(12):
            clock.advance(1.0)
            for wid, m in ctrl.members.items():
                if m.state in ("live", "draining"):
                    ctrl.handle_message(Message("heartbeat", wid), clock.now)
            ctrl.check_liveness(clock.now)
            ctrl.reconcile(clock.now)
        assert ctrl.target == 1
        assert ctrl.scale_downs == 1
        draining = [m for m in ctrl.members.values() if m.state == "draining"]
        assert len(draining) == 1
        assert transport.sent[draining[0].worker_id][-1] is None  # stop sentinel
        ctrl.handle_message(Message("bye", draining[0].worker_id), clock.now)
        assert draining[0].state == "drained"
        ctrl.close()

    def test_replacement_launch_after_eviction(self):
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        clock.advance(6.0)
        ctrl.handle_message(Message("heartbeat", 0), clock.now)
        ctrl.check_liveness(clock.now)
        ctrl.reconcile(clock.now)
        assert len(transport.launched) == 3  # worker 2 replaces worker 1
        assert ctrl.members[2].state == "launching"
        ctrl.close()

    def test_eviction_budget_stops_relaunch(self):
        ctrl, transport, clock = make_fleet(workers=2, min_workers=1, max_evictions=1)
        register_all(ctrl, transport, clock)
        clock.advance(6.0)  # both silent: 2 evictions > budget of 1
        ctrl.check_liveness(clock.now)
        ctrl.reconcile(clock.now)
        assert ctrl.evictions == 2
        assert len(transport.launched) == 2  # no replacements
        ctrl.close()


class TestDegradedMode:
    def test_inline_degrade_serves_bit_identical(self):
        ctrl, transport, clock = make_fleet(workers=2, max_evictions=0)
        register_all(ctrl, transport, clock)
        jobs = ctrl.submit_range(0, 1024)
        clock.advance(6.0)  # everyone dies, budget already spent
        ctrl.check_liveness(clock.now)
        data = ctrl.read_range(1024, 512, timeout=5.0)
        assert data == stream_bytes(1024, 512)
        assert ctrl.degraded_chunks > 0
        # the originally submitted jobs also finish inline on collection
        out = ctrl.read_range(2048, 256, timeout=5.0)
        assert out == stream_bytes(2048, 256)
        ctrl.close()

    def test_degrade_disabled_raises(self):
        ctrl, transport, clock = make_fleet(workers=2, max_evictions=0, degrade_inline=False)
        register_all(ctrl, transport, clock)
        clock.advance(6.0)
        ctrl.check_liveness(clock.now)
        with pytest.raises(DeviceFailureError):
            ctrl.read_range(0, 256, timeout=5.0)
        ctrl.close()

    def test_ghost_result_after_requeue_is_stale(self):
        """Once an eviction pushed the job back to pending, the dead
        owner's late result must be dropped — the lease will be served
        by whoever picks it up next, exactly once."""
        ctrl, transport, clock = make_fleet(workers=2, max_evictions=0)
        register_all(ctrl, transport, clock)
        (job,) = ctrl.submit_range(0, 256)
        owner = next(wid for wid, sent in transport.sent.items() if job in sent)
        clock.advance(6.0)
        ctrl.check_liveness(clock.now)  # owner evicted; job back in pending
        assert ctrl.members[owner].state == "evicted"
        ctrl.handle_message(result_msg(job, owner), clock.now)
        assert ctrl.stale_results == 1
        assert ctrl.try_collect([job]) is None
        ctrl.close()


class TestObservability:
    def test_counters_and_gauges_published(self):
        obs.enable_metrics()
        try:
            obs.registry().clear()
            ctrl, transport, clock = make_fleet()
            register_all(ctrl, transport, clock)
            job_a, job_b = ctrl.submit_range(0, 512)  # one job per member
            owner = next(wid for wid, sent in transport.sent.items() if job_a in sent)
            ctrl.handle_message(Message("heartbeat", owner), clock.now)
            ctrl.handle_message(result_msg(job_a, owner), clock.now)
            clock.advance(6.0)
            ctrl.handle_message(Message("heartbeat", owner), clock.now)
            # evicts the silent peer, reassigning its inflight job
            ctrl.check_liveness(clock.now)
            snap = obs.registry().snapshot()
            names = {m["name"] for m in snap["metrics"]}
            assert "repro_fleet_workers" in names
            assert "repro_fleet_evictions_total" in names
            assert "repro_fleet_heartbeats_total" in names
            assert "repro_fleet_jobs_total" in names
            assert "repro_fleet_lease_reassignments_total" in names
            evictions = [
                m for m in snap["metrics"]
                if m["name"] == "repro_fleet_evictions_total"
            ]
            assert sum(m["value"] for m in evictions) == ctrl.evictions == 1
            assert all(m["labels"].get("reason") for m in evictions)
            ctrl.close()
        finally:
            obs.disable_metrics()

    def test_status_snapshot_shape(self):
        ctrl, transport, clock = make_fleet()
        register_all(ctrl, transport, clock)
        status = ctrl.status()
        assert status["target"] == 2
        assert {w["state"] for w in status["workers"]} == {"live"}
        assert status["counters"]["evictions"] == 0
        assert status["leases"]["high_water_bytes"] == 0
        ctrl.close()
