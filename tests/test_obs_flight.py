"""Flight recorder: ring semantics, triggered dumps, env/config wiring."""

import json
import os

import pytest

from repro import obs
from repro.obs import flight
from repro.obs.tracing import span


@pytest.fixture
def rec(tmp_path):
    r = flight.enable(str(tmp_path), capacity=8, role="test")
    yield r
    flight.disable()


def test_disabled_path_is_inert(tmp_path, monkeypatch):
    monkeypatch.delenv(flight.FLIGHT_DIR_ENV, raising=False)
    flight.disable()
    flight.record("noise", detail="x")
    assert flight.dump("never") is None
    assert not flight.enabled()
    assert list(tmp_path.iterdir()) == []


def test_env_var_installs_recorder(tmp_path, monkeypatch):
    monkeypatch.setenv(flight.FLIGHT_DIR_ENV, str(tmp_path))
    flight.disable()  # reset any prior state...
    flight._env_checked = False  # ...and force a fresh env check
    try:
        flight.record("boot", worker=1)
        assert flight.enabled()
        path = flight.dump("env-test")
        assert path is not None and os.path.dirname(path) == str(tmp_path)
        payload = json.loads(open(path).read())
        assert payload["entries"][-1]["kind"] == "boot"
    finally:
        flight.disable()


def test_ring_is_bounded_and_chronological(rec, tmp_path):
    for i in range(20):
        flight.record("tick", i=i)
    path = flight.dump("overflow")
    payload = json.loads(open(path).read())
    entries = payload["entries"]
    assert len(entries) == 8  # capacity, oldest evicted
    assert [e["i"] for e in entries] == list(range(12, 20))
    assert all(
        a["t"] <= b["t"] for a, b in zip(entries, entries[1:])
    )  # chronological


def test_dump_payload_shape_and_sequencing(rec, tmp_path):
    flight.record("health-failure", test="rct", position=5)
    p1 = flight.dump("health")
    p2 = flight.dump("health")
    assert p1 != p2  # per-process sequence number, never clobbered
    payload = json.loads(open(p1).read())
    assert payload["schema"] == flight.FLIGHT_SCHEMA_VERSION
    assert payload["reason"] == "health"
    assert payload["pid"] == os.getpid()
    assert payload["role"] == "test"
    assert payload["metrics"] is None  # metrics were not enabled
    assert payload["entries"][0]["kind"] == "health-failure"


def test_dump_reason_is_sanitised_for_filenames(rec):
    path = flight.dump("weird/../reason !")
    assert path is not None
    assert "/.." not in os.path.basename(path)
    assert os.path.exists(path)


def test_unwritable_directory_never_raises(tmp_path):
    flight.enable(str(tmp_path / "file-not-dir" / "nested"), role="t")
    try:
        # make the parent a *file* so makedirs fails
        (tmp_path / "file-not-dir").write_text("occupied")
        flight.record("ev")
        assert flight.dump("doomed") is None  # swallowed, not raised
    finally:
        flight.disable()


def test_tracer_spans_feed_the_ring(rec):
    tracer = obs.enable_tracing()
    try:
        with span("refill", algo="trivium"):
            pass
    finally:
        obs.disable_tracing()
    path = flight.dump("spans")
    payload = json.loads(open(path).read())
    span_entries = [e for e in payload["entries"] if e["kind"] == "span"]
    assert len(span_entries) == 1
    entry = span_entries[0]
    assert entry["name"] == "refill" and entry["args"] == {"algo": "trivium"}
    assert entry["trace_id"] is not None and entry["span_id"] is not None


def test_dump_includes_metrics_snapshot_when_enabled(rec):
    with obs.scoped():
        obs.inc("repro_test_counter", 3)
        flight.dump("with-metrics")
        # the dump counter lands after the first snapshot: check the second
        path = flight.dump("with-metrics")
        payload = json.loads(open(path).read())
    names = {m["name"] for m in payload["metrics"]["metrics"]}
    assert "repro_test_counter" in names
    assert "repro_flight_dumps_total" in names


def test_health_failure_triggers_flight_dump(rec, tmp_path):
    from repro.robust.health import HealthMonitoredBSRNG, HealthTestError

    import numpy as np

    rng = HealthMonitoredBSRNG("xorwow", lanes=64, startup_test=False)
    # stuck-at-zero source, stubbed on the screen's actual draw path
    rng.inner.random_uint8 = lambda n: np.zeros(n, dtype=np.uint8)
    with pytest.raises(HealthTestError):
        rng.random_bytes(4096)
    dumps = [p for p in os.listdir(tmp_path) if "health" in p]
    assert dumps, "health failure must leave a flight dump"
    payload = json.loads(open(os.path.join(tmp_path, dumps[0])).read())
    kinds = {e["kind"] for e in payload["entries"]}
    assert "health-failure" in kinds
