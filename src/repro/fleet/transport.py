"""The fleet's message plane: registration, heartbeats, jobs, results.

The controller and its workers speak a small, explicit protocol — four
message kinds flowing worker → controller (``register``, ``heartbeat``,
``result``, ``bye``) and one controller → worker payload (a
:class:`ChunkJob`, or ``None`` as the graceful-stop sentinel).  The
:class:`Transport` interface carries exactly that protocol and nothing
else, so the controller never reaches around it: a worker is *only* a
stream of messages plus a liveness bit.  That is what makes the
interface socket-ready — a TCP transport for remote hosts implements the
same six methods and the controller is unchanged.  The implementation
shipped here, :class:`LocalProcessTransport`, runs each worker as a
local ``multiprocessing`` process (the same "a device is a worker
process" stance as :mod:`repro.gpu.multigpu`).

Message payloads are plain picklable values (``bytes`` payloads, int
CRCs, plain-dict metric snapshots), so the local transport works under
``spawn`` as well as ``fork`` and a remote transport can serialise them
without caring what they mean.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.ring import RingSlotRef
from repro.errors import SpecificationError
from repro.serve.engine import StreamConfig

__all__ = [
    "ChunkJob",
    "Message",
    "WorkerSpec",
    "Transport",
    "LocalProcessTransport",
]

#: Worker → controller message kinds.
MESSAGE_KINDS = ("register", "heartbeat", "result", "bye")


@dataclass(frozen=True)
class ChunkJob:
    """One counter-space chunk lease a worker generates.

    ``job_id`` is the lease id from the controller's
    :class:`~repro.serve.leases.LeaseManager` — never reissued, so
    result acceptance can be keyed on it exactly once.
    """

    job_id: int
    offset: int
    length: int
    #: Optional ``(trace_id, span_id)`` wire pair — the controller's
    #: trace context at submission, so worker spans join its trace.
    trace: tuple | None = None
    #: Shared-memory ring slot leased to this job for its result (see
    #: :mod:`repro.core.ring`); ``None`` = ship the payload as message
    #: bytes.  The controller owns the slot ↔ job mapping.
    ring_slot: int | None = None

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise SpecificationError("need offset >= 0 and length > 0")


@dataclass(frozen=True)
class Message:
    """One worker → controller protocol message."""

    kind: str  # one of MESSAGE_KINDS
    worker_id: int
    job_id: int = -1  # result messages: the ChunkJob.job_id
    payload: bytes = b""  # result messages: the generated chunk
    crc: int | None = None  # result messages: worker-side payload CRC
    metrics: dict | None = None  # result messages: worker registry snapshot
    spans: dict | None = None  # result messages: worker tracer snapshot
    detail: str = ""  # free-form (bye reason, error text)
    #: Result parked in a shared-memory ring slot instead of ``payload``
    #: (``payload`` is then empty; the controller materialises the ref
    #: before its length/CRC/screen checks).
    ref: RingSlotRef | None = None

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_KINDS:
            raise SpecificationError(f"message kind must be one of {MESSAGE_KINDS}")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to run, picklable (spawn-safe).

    The fault plan travels as JSON here (same convention as the pool
    workers) so a spawn-context worker with no inherited memory still
    injects identically; ``None`` falls back to ``REPRO_FAULT_PLAN``.
    """

    stream: StreamConfig = field(default_factory=StreamConfig)
    heartbeat_interval: float = 1.0
    verify_crc: bool = True
    plan_json: str | None = None
    max_streams: int = 8  # RangeSource front cache per worker
    #: Shared-memory result ring ``(name, slot_bytes, slots)`` to attach,
    #: or ``None`` to ship payloads as message bytes (remote transports).
    ring: tuple | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise SpecificationError("heartbeat_interval must be positive")
        if self.max_streams <= 0:
            raise SpecificationError("max_streams must be positive")


class Transport(ABC):
    """The controller's only view of its workers.

    Implementations own the worker lifecycle (process, container, remote
    host) and move :class:`Message` / :class:`ChunkJob` values; the
    controller supplies policy (membership, liveness, eviction).  All
    methods must be thread-safe — the controller pumps from whichever
    thread reaches it first (request threads and the supervision thread).
    """

    @abstractmethod
    def launch(self, worker_id: int) -> None:
        """Start a new worker; it must send a ``register`` message."""

    @abstractmethod
    def send_job(self, worker_id: int, job: ChunkJob | None) -> None:
        """Dispatch one job (``None`` = graceful-stop sentinel)."""

    @abstractmethod
    def poll(self, timeout: float) -> list[Message]:
        """Collect pending worker messages, waiting up to *timeout* s."""

    @abstractmethod
    def alive(self, worker_id: int) -> bool:
        """Whether the worker's carrier (process, connection) still exists."""

    @abstractmethod
    def kill(self, worker_id: int) -> None:
        """Hard-stop one worker (eviction; no graceful drain)."""

    @abstractmethod
    def close(self) -> None:
        """Tear down every worker and release transport resources."""


class LocalProcessTransport(Transport):
    """Local ``multiprocessing`` workers — the in-box transport.

    One process per worker, one shared inbound queue (workers →
    controller) and one outbound queue per worker (controller → worker).
    ``fork`` is preferred where available for the same reason the batch
    layers prefer it (a fixed ~second of import cost per spawn would
    swamp small jobs and slow eviction replacement); pass
    ``mp_context="spawn"`` to exercise the no-shared-memory path.
    """

    def __init__(self, spec: WorkerSpec, mp_context: str | None = None) -> None:
        self.spec = spec
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(mp_context)
        self.mp_context = mp_context
        self._inbox: mp.Queue = self._ctx.Queue()
        self._procs: dict[int, mp.Process] = {}
        self._outboxes: dict[int, mp.Queue] = {}

    def launch(self, worker_id: int) -> None:
        from repro.fleet.worker import fleet_worker_main

        if worker_id in self._procs:
            raise SpecificationError(f"worker {worker_id} already launched")
        outbox: mp.Queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=fleet_worker_main,
            args=(worker_id, self.spec, outbox, self._inbox),
            daemon=True,
            name=f"fleet-worker-{worker_id}",
        )
        proc.start()
        self._procs[worker_id] = proc
        self._outboxes[worker_id] = outbox

    def send_job(self, worker_id: int, job: ChunkJob | None) -> None:
        outbox = self._outboxes.get(worker_id)
        if outbox is None:
            raise SpecificationError(f"unknown worker {worker_id}")
        outbox.put(job)

    def poll(self, timeout: float) -> list[Message]:
        msgs: list[Message] = []
        try:
            msgs.append(self._inbox.get(timeout=max(timeout, 0.0)))
        except queue_mod.Empty:
            return msgs
        while True:  # drain whatever else already arrived, without waiting
            try:
                msgs.append(self._inbox.get_nowait())
            except queue_mod.Empty:
                return msgs

    def alive(self, worker_id: int) -> bool:
        proc = self._procs.get(worker_id)
        return proc is not None and proc.is_alive()

    def kill(self, worker_id: int) -> None:
        proc = self._procs.get(worker_id)
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # SIGTERM masked or wedged: escalate
                proc.kill()
                proc.join(timeout=5.0)
        outbox = self._outboxes.get(worker_id)
        if outbox is not None:
            # a killed worker never drains its outbox; without this the
            # parent blocks at exit joining the queue's feeder thread
            outbox.cancel_join_thread()
            outbox.close()

    def close(self) -> None:
        for worker_id in list(self._procs):
            self.kill(worker_id)
        self._procs.clear()
        self._outboxes.clear()
        # release the queue feeder threads; pending messages are moot
        self._inbox.cancel_join_thread()
        self._inbox.close()
