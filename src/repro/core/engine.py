"""The virtual SIMD engine shared by all bitsliced kernels.

This is the software stand-in for the paper's CUDA execution environment.
A :class:`BitslicedEngine` fixes the lane geometry (how many parallel
cipher instances run at once and in how many words they are packed),
hosts the gate layer with its instruction accounting, and implements the
staged-output discipline of §4.5: keystream planes are accumulated in a
small in-core staging buffer ("shared memory") and flushed to the output
array ("global memory") in large contiguous chunks ("coalesced writes").
"""

from __future__ import annotations

import numpy as np

from repro.core.bitslice import (
    SUPPORTED_DTYPES,
    broadcast_bit,
    lane_mask,
    n_words_for_lanes,
    word_width,
)
from repro.core.gates import GateCounter, GateOps
from repro.errors import BitsliceLayoutError

__all__ = ["BitslicedEngine", "GateCounter"]


class BitslicedEngine:
    """Lane geometry + gate layer + staged output buffers.

    Parameters
    ----------
    n_lanes:
        Number of parallel cipher instances.  Analogous to
        ``threads × 32`` in the CUDA implementation.
    dtype:
        Word type of the virtual datapath (default ``uint64``).  The
        paper's GPU datapath is 32-bit; 64-bit words simply mean each
        NumPy "instruction" carries twice as many lanes.
    stage_words:
        Capacity of the staging buffer in plane rows before a flush to
        the destination array — the "suitable size to occupy shared
        memory" the paper tunes experimentally (§4.5).
    count_gates:
        When False the gate counter is still present but kernels are free
        to skip labelling; counting is cheap either way.
    fused:
        When True, cipher banks route ``next_planes`` through the fused
        K-clock kernels of :mod:`repro.codegen.fused` (compiled circuit +
        renaming schedule, no per-gate temporaries) instead of per-gate
        NumPy dispatch.  Streams are bit-identical either way; the
        default stays False so direct-engine callers keep exact per-call
        gate attribution.
    clocks_per_call:
        Clock batch size K of one fused kernel call (ignored unless
        ``fused``).  Larger K amortizes dispatch overhead against
        compiled-source size; 32 is the measured sweet spot.
    """

    def __init__(
        self,
        n_lanes: int = 4096,
        dtype=np.uint64,
        *,
        stage_rows: int = 256,
        seed_counter: GateCounter | None = None,
        fused: bool = False,
        clocks_per_call: int = 32,
    ) -> None:
        if np.dtype(dtype).type not in SUPPORTED_DTYPES:
            raise BitsliceLayoutError(f"unsupported engine dtype {np.dtype(dtype)}")
        if n_lanes <= 0:
            raise BitsliceLayoutError("n_lanes must be positive")
        if stage_rows <= 0:
            raise BitsliceLayoutError("stage_rows must be positive")
        if clocks_per_call <= 0:
            raise BitsliceLayoutError("clocks_per_call must be positive")
        self.dtype = np.dtype(dtype)
        self.width = word_width(dtype)
        self.n_lanes = int(n_lanes)
        self.n_words = n_words_for_lanes(self.n_lanes, dtype)
        self.stage_rows = int(stage_rows)
        self.fused = bool(fused)
        self.clocks_per_call = int(clocks_per_call)
        self.counter = seed_counter if seed_counter is not None else GateCounter()
        self.gates = GateOps(self.counter)

    # -- plane constructors -------------------------------------------------
    def zeros(self, n_rows: int | None = None) -> np.ndarray:
        """Fresh all-zero plane(s)."""
        if n_rows is None:
            return np.zeros(self.n_words, dtype=self.dtype)
        return np.zeros((n_rows, self.n_words), dtype=self.dtype)

    def ones(self, n_rows: int | None = None) -> np.ndarray:
        """Fresh all-one plane(s)."""
        fill = np.iinfo(self.dtype).max
        if n_rows is None:
            return np.full(self.n_words, fill, dtype=self.dtype)
        return np.full((n_rows, self.n_words), fill, dtype=self.dtype)

    def const(self, bit: int) -> np.ndarray:
        """Broadcast a constant bit to every lane."""
        return broadcast_bit(bit, self.n_words, self.dtype)

    def active_mask(self) -> np.ndarray:
        """Ones in real lanes, zeros in the padding tail of the last word."""
        return lane_mask(self.n_lanes, self.n_words, self.dtype)

    # -- staged output --------------------------------------------------------
    def make_stage(self) -> "_StageBuffer":
        """Create a staging buffer bound to this engine's geometry."""
        return _StageBuffer(self.stage_rows, self.n_words, self.dtype)

    # -- bookkeeping ----------------------------------------------------------
    def reset_gate_counts(self) -> None:
        """Zero the engine's instruction counters."""
        self.counter.reset()

    def gate_report(self) -> dict:
        """Gate totals plus per-lane-bit normalisation helpers."""
        snap = self.counter.snapshot()
        snap["n_lanes"] = self.n_lanes
        snap["word_width"] = self.width
        return snap

    def publish_gate_metrics(self, **labels) -> None:
        """Fold the gate tallies into the metrics registry as gauges.

        Gauges rather than counters because :class:`GateCounter` is
        itself cumulative — republishing must overwrite, not re-add.
        Extra *labels* (typically ``algorithm=...``) distinguish engines.
        """
        from repro import obs

        if not obs.metrics_enabled():
            return
        snap = self.counter.snapshot()
        for kind in ("xor", "and", "or", "not", "shift", "total"):
            obs.set_gauge("repro_engine_gates", snap[kind], kind=kind, **labels)
        obs.set_gauge("repro_engine_lanes", self.n_lanes, **labels)
        obs.set_gauge("repro_engine_word_width", self.width, **labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BitslicedEngine(n_lanes={self.n_lanes}, dtype={self.dtype.name}, "
            f"n_words={self.n_words}, stage_rows={self.stage_rows}, "
            f"fused={self.fused}, clocks_per_call={self.clocks_per_call})"
        )


class _StageBuffer:
    """Fixed-capacity row buffer with bulk flush (shared-memory analogue).

    Rows are keystream planes; ``push`` copies one row in (register →
    shared memory in the paper), and when the buffer fills it is flushed
    wholesale into the destination (shared → global, one coalesced burst).
    """

    def __init__(self, capacity_rows: int, n_words: int, dtype) -> None:
        self._buf = np.empty((capacity_rows, n_words), dtype=dtype)
        self._fill = 0
        self.flushes = 0

    @property
    def capacity(self) -> int:
        """Row capacity of the staging buffer."""
        return self._buf.shape[0]

    @property
    def fill(self) -> int:
        """Rows currently staged (not yet flushed)."""
        return self._fill

    def push(self, row: np.ndarray, dest: np.ndarray, dest_row: int) -> int:
        """Stage *row*; flush to ``dest`` when full.

        ``dest_row`` is the row index in ``dest`` where the *next* flush
        would land.  Returns the new ``dest_row`` after any flush.
        """
        self._buf[self._fill] = row
        self._fill += 1
        if self._fill == self._buf.shape[0]:
            dest[dest_row : dest_row + self._fill] = self._buf
            dest_row += self._fill
            self._fill = 0
            self.flushes += 1
        return dest_row

    def drain(self, dest: np.ndarray, dest_row: int) -> int:
        """Flush any residual rows (end of kernel)."""
        if self._fill:
            dest[dest_row : dest_row + self._fill] = self._buf[: self._fill]
            dest_row += self._fill
            self._fill = 0
            self.flushes += 1
        return dest_row
