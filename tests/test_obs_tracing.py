"""Span tracing: nesting, timing, and the Chrome-trace exporter."""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.tracing import Tracer, span


@pytest.fixture
def tracer():
    t = obs.enable_tracing()
    yield t
    obs.disable_tracing()


def test_span_is_shared_noop_while_disabled():
    assert obs.active_tracer() is None
    assert span("a") is span("b", k=1)  # one shared object, no allocation
    with span("a"):
        pass  # and it is a working context manager


def test_span_records_name_args_and_timing(tracer):
    with span("refill", algo="grain"):
        time.sleep(0.002)
    (rec,) = tracer.records
    assert rec.name == "refill"
    assert rec.args == {"algo": "grain"}
    assert rec.dur_us >= 2000
    assert rec.cpu_us >= 0
    assert rec.ts_us >= 0


def test_span_nesting_depth(tracer):
    with span("outer"):
        with span("inner"):
            pass
    by_name = {r.name: r for r in tracer.records}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    # inner completes first, and sits inside outer's window
    inner, outer = by_name["inner"], by_name["outer"]
    assert outer.ts_us <= inner.ts_us
    assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1.0


def test_depth_is_per_thread(tracer):
    seen = []

    def worker():
        with span("t"):
            seen.append(tracer._tls.depth)

    with span("main"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    # the worker thread starts at depth 0 regardless of main's nesting
    assert seen == [1]
    depths = {r.name: r.depth for r in tracer.records}
    assert depths["t"] == 0 and depths["main"] == 0


def test_span_survives_exceptions(tracer):
    with pytest.raises(ValueError):
        with span("boom"):
            raise ValueError("x")
    (rec,) = tracer.records
    assert rec.name == "boom"
    # depth bookkeeping unwound correctly
    with span("after"):
        pass
    assert tracer.records[-1].depth == 0


def test_chrome_trace_structure(tracer):
    with span("gen", algorithm="mickey2"):
        with span("refill"):
            pass
    trace = tracer.to_chrome_trace()
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert len(events) == 2
    for ev in events:
        assert ev["ph"] == "X" and ev["cat"] == "repro"
        assert isinstance(ev["ts"], float) and isinstance(ev["dur"], float)
        assert "cpu_us" in ev["args"] and "depth" in ev["args"]
    gen = next(e for e in events if e["name"] == "gen")
    assert gen["args"]["algorithm"] == "mickey2"


def test_trace_write_is_loadable(tracer, tmp_path):
    with span("a"):
        pass
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"][0]["name"] == "a"


def test_clear_resets_records_and_epoch(tracer):
    with span("a"):
        pass
    tracer.clear()
    assert tracer.records == []
    with span("b"):
        pass
    assert tracer.records[0].ts_us < 1e6  # fresh epoch


def test_enable_tracing_accepts_existing_tracer():
    mine = Tracer()
    try:
        assert obs.enable_tracing(mine) is mine
        assert obs.active_tracer() is mine
    finally:
        obs.disable_tracing()
    assert obs.active_tracer() is None


# -- distributed identity: context, parent links, concurrency, merge -------------


def test_nested_spans_share_trace_and_link_parents(tracer):
    with span("outer") as outer:
        outer_ctx = outer.context
        with span("inner"):
            pass
    by_name = {r.name: r for r in tracer.records}
    inner, outer_rec = by_name["inner"], by_name["outer"]
    assert outer_rec.trace_id == inner.trace_id == outer_ctx.trace_id
    assert outer_rec.parent_id is None  # root minted the trace
    assert inner.parent_id == outer_rec.span_id
    assert inner.span_id != outer_rec.span_id


def test_span_ids_unique_under_concurrent_threads(tracer):
    n_threads, per_thread = 8, 50
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait()
        with span("thread-root"):
            for i in range(per_thread):
                with span("work", i=i):
                    pass

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = tracer.records
    assert len(records) == n_threads * (per_thread + 1)
    span_ids = [r.span_id for r in records]
    assert len(set(span_ids)) == len(span_ids)  # no collisions
    # each thread's root minted one trace; its work spans all inherit it
    assert len({r.trace_id for r in records}) == n_threads
    roots = {r.span_id: r for r in records if r.name == "thread-root"}
    for rec in records:
        if rec.name == "work":
            assert rec.parent_id in roots
            assert rec.trace_id == roots[rec.parent_id].trace_id


def test_activated_context_adopts_incoming_trace(tracer):
    from repro.obs.context import TraceContext, activate

    incoming = TraceContext.mint()
    with activate(incoming):
        with span("handled"):
            pass
    (rec,) = tracer.records
    assert rec.trace_id == incoming.trace_id
    assert rec.parent_id == incoming.span_id  # linked to the caller's span


def test_merge_rebases_timestamps_and_keeps_ids(tracer):
    child = Tracer()
    child._epoch_unix = tracer._epoch_unix + 1.5  # child started 1.5s later
    child.set_process_name("pretend-worker", pid=99999)
    rec = child.records  # touch the lock path
    child.add(
        __import__("repro.obs.tracing", fromlist=["SpanRecord"]).SpanRecord(
            name="child-span",
            ts_us=100.0,
            dur_us=50.0,
            cpu_us=10.0,
            pid=99999,
            tid=1,
            depth=0,
            args={"k": "v"},
            trace_id="ab" * 16,
            span_id="cd" * 8,
            parent_id="ef" * 8,
        )
    )
    merged = tracer.merge(child.snapshot(), extra_args={"worker": 3})
    assert merged == 1
    (got,) = tracer.records
    assert got.ts_us == pytest.approx(100.0 + 1.5e6)
    assert got.trace_id == "ab" * 16 and got.parent_id == "ef" * 8
    assert got.args == {"k": "v", "worker": 3}
    trace = tracer.to_chrome_trace()
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert {"pid": 99999, "name": "pretend-worker"} == {
        "pid": meta[0]["pid"],
        "name": meta[0]["args"]["name"],
    }


def test_merge_rejects_unknown_snapshot_version(tracer):
    with pytest.raises(ValueError):
        tracer.merge({"version": 999, "epoch_unix": 0.0, "spans": []})
    assert tracer.merge(None) == 0  # absent snapshots are a quiet no-op


def test_span_collector_off_mode_is_inert():
    from repro.obs.tracing import SpanCollector

    with SpanCollector(None, "job") as col:
        with span("inside"):  # tracing is off: shared no-op
            pass
    assert col.snapshot is None
    assert obs.active_tracer() is None


def test_span_collector_ship_mode_snapshots_under_wire_context():
    from repro.obs.context import TraceContext
    from repro.obs.tracing import SpanCollector

    ctx = TraceContext.mint()
    assert obs.active_tracer() is None
    with SpanCollector(ctx.to_wire(), "job", process_name="w-0", part=1) as col:
        with span("refill"):
            pass
    assert obs.active_tracer() is None  # local tracer uninstalled on exit
    snap = col.snapshot
    assert snap is not None and [s["name"] for s in snap["spans"]] == ["refill", "job"]
    by_name = {s["name"]: s for s in snap["spans"]}
    assert by_name["job"]["trace_id"] == ctx.trace_id
    assert by_name["job"]["parent_id"] == ctx.span_id
    assert by_name["refill"]["parent_id"] == by_name["job"]["span_id"]
    assert snap["process_names"] == {str(by_name["job"]["pid"]): "w-0"}


def test_span_collector_inline_mode_records_into_active_tracer(tracer):
    from repro.obs.context import TraceContext
    from repro.obs.tracing import SpanCollector

    ctx = TraceContext.mint()
    with SpanCollector(ctx.to_wire(), "job") as col:
        with span("refill"):
            pass
    assert col.snapshot is None  # spans are already home
    names = [r.name for r in tracer.records]
    assert names == ["refill", "job"]
    assert tracer.records[1].trace_id == ctx.trace_id


def test_headers_round_trip_and_reject_malformed():
    from repro.obs.context import TraceContext

    ctx = TraceContext.mint()
    back = TraceContext.from_headers(ctx.to_headers())
    assert back is not None and back.trace_id == ctx.trace_id
    assert back.span_id == ctx.span_id
    # case-insensitive lookup
    lowered = {k.lower(): v for k, v in ctx.to_headers().items()}
    assert TraceContext.from_headers(lowered).trace_id == ctx.trace_id
    assert TraceContext.from_headers({}) is None
    assert TraceContext.from_headers({"X-Repro-Trace-Id": "nope"}) is None
    # malformed parent degrades to a fresh span id, not a rejection
    got = TraceContext.from_headers(
        {"X-Repro-Trace-Id": "ab" * 16, "X-Repro-Parent-Span": "zz"}
    )
    assert got is not None and got.trace_id == "ab" * 16
