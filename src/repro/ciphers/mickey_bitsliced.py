"""Bitsliced MICKEY 2.0 (paper §4.4, Fig. 9).

Instead of two 100-bit registers, the state is 200 *planes*: ``R[i]`` and
``S[i]`` each hold bit ``i`` of every lane's register, packed into machine
words.  One clock of the whole bank is a handful of full-width vector
gates:

* the register shifts are plane renumbering (vectorized row moves),
* the spec's "if control_bit / if feedback" branches become branch-free
  AND/XOR masks, because every lane may take a different branch — the
  irregular clocking that makes MICKEY "not so straightforward" to
  parallelise is exactly what bitslicing absorbs for free,
* COMP0/COMP1/FB0/FB1 are constant per plane row, so they compile to
  constant all-ones/all-zero word columns.

Cross-validated lane-by-lane against :class:`repro.ciphers.mickey.Mickey2`.
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.ciphers._mickey_tables import COMP0_BITS, COMP1_BITS, FB0_BITS, FB1_BITS, R_TAPS_BITS
from repro.ciphers.mickey import KEY_BITS, MAX_IV_BITS, STATE_BITS
from repro.core.bitslice import bitslice, unbitslice
from repro.core.engine import BitslicedEngine
from repro.core.seeding import derive_lane_material
from repro.errors import KeyScheduleError

__all__ = ["BitslicedMickey2"]


def _const_column(bits: np.ndarray, n_words: int, dtype) -> np.ndarray:
    """Expand a constant bit sequence to (n_bits, n_words) full/zero words."""
    fill = np.asarray(np.iinfo(dtype).max, dtype=dtype)
    col = np.zeros((bits.size, n_words), dtype=dtype)
    col[bits.astype(bool)] = fill
    return col


class BitslicedMickey2:
    """A bank of ``engine.n_lanes`` independent MICKEY 2.0 generators.

    Parameters
    ----------
    engine:
        The virtual SIMD engine fixing lane count and word dtype.  Default:
        a fresh 4096-lane ``uint64`` engine.
    """

    name = "mickey2"
    key_bits = KEY_BITS
    iv_bits = MAX_IV_BITS
    state_bits = 2 * STATE_BITS

    def __init__(self, engine: BitslicedEngine | None = None) -> None:
        self.engine = engine if engine is not None else BitslicedEngine()
        nw, dt = self.engine.n_words, self.engine.dtype
        self.R = np.zeros((STATE_BITS, nw), dtype=dt)
        self.S = np.zeros((STATE_BITS, nw), dtype=dt)
        self._rn = np.empty_like(self.R)
        self._sn = np.empty_like(self.S)
        self._mid = np.empty((STATE_BITS - 2, nw), dtype=dt)
        self._mid2 = np.empty_like(self._mid)
        self._sel = np.empty((STATE_BITS, nw), dtype=dt)
        self._rtap_idx = np.flatnonzero(R_TAPS_BITS)
        self._comp0 = _const_column(COMP0_BITS[1:99], nw, dt)
        self._comp1 = _const_column(COMP1_BITS[1:99], nw, dt)
        self._fb0 = _const_column(FB0_BITS, nw, dt)
        self._fb1 = _const_column(FB1_BITS, nw, dt)
        self._zero = self.engine.zeros()
        self._loaded = False
        # Gate cost of one bank clock, per lane (counted once; the spec's
        # conditionals are unconditional masked ops here).  Used both for
        # the accounting below and by the GPU roofline model.
        self._gates_per_clock = {
            "xor": (
                2          # control bits
                + 2        # feedback bits (r, s)
                + STATE_BITS      # R control mix
                + int(self._rtap_idx.size)  # R tap injection
                + 2 * (STATE_BITS - 2)      # S comp0/comp1 "xors" (const)
                + (STATE_BITS - 2)          # s_hat accumulate
                + STATE_BITS                # S feedback injection
                + 1        # output bit
            ),
            "and_": (STATE_BITS + (STATE_BITS - 2) + 2 * STATE_BITS + STATE_BITS),
            "or_": STATE_BITS,
            "not_": 1,
        }

    # -- loading ---------------------------------------------------------------
    def load(self, keys, ivs=None) -> None:
        """Load per-lane key/IV bit matrices and run the spec's init.

        ``keys`` must be ``(n_lanes, 80)``; ``ivs`` may be ``None`` (no IV)
        or ``(n_lanes, v)`` with ``v <= 80``.  All lanes are clocked in
        lockstep — the input *bit* differs per lane via its plane.
        """
        keys = as_bit_array(keys)
        n_lanes = self.engine.n_lanes
        if keys.shape != (n_lanes, KEY_BITS):
            raise KeyScheduleError(f"keys must be ({n_lanes}, {KEY_BITS}), got {keys.shape}")
        if ivs is not None:
            ivs = as_bit_array(ivs)
            if ivs.ndim != 2 or ivs.shape[0] != n_lanes or ivs.shape[1] > MAX_IV_BITS:
                raise KeyScheduleError(
                    f"ivs must be ({n_lanes}, <= {MAX_IV_BITS}), got {getattr(ivs, 'shape', None)}"
                )
        self.R[:] = 0
        self.S[:] = 0
        dt = self.engine.dtype
        if ivs is not None and ivs.shape[1]:
            iv_planes = bitslice(ivs, dtype=dt)
            for i in range(iv_planes.shape[0]):
                self._clock_kg(iv_planes[i], mixing=True)
        key_planes = bitslice(keys, dtype=dt)
        for i in range(KEY_BITS):
            self._clock_kg(key_planes[i], mixing=True)
        for _ in range(STATE_BITS):
            self._clock_kg(self._zero, mixing=True)
        self._loaded = True

    def seed(self, seed: int, *, shared_key: bool = True, lane_offset: int = 0) -> "BitslicedMickey2":
        """Derive per-lane key/IV material from one integer seed.

        Follows the paper's usage: one key shared by all lanes and a
        distinct expanded IV per lane (MICKEY permits 2^40 IVs per key;
        our lane counts are far below that bound).
        """
        keys, ivs = derive_lane_material(
            seed,
            self.engine.n_lanes,
            key_bits=KEY_BITS,
            iv_bits=MAX_IV_BITS,
            shared_key=shared_key,
            lane_offset=lane_offset,
        )
        self.load(keys, ivs)
        return self

    # -- one bank clock ----------------------------------------------------------
    def _clock_kg(self, input_plane: np.ndarray, *, mixing: bool) -> None:
        R, S = self.R, self.S
        ctrl_r = S[34] ^ R[67]
        ctrl_s = S[67] ^ R[33]
        input_r = input_plane ^ S[50] if mixing else input_plane
        fb_r = R[99] ^ input_r
        fb_s = S[99] ^ input_plane

        # R' = shift(R) ^ (ctrl_r & R) ^ (RTAPS & fb_r)
        rn = self._rn
        rn[0] = 0
        rn[1:] = R[:-1]
        np.bitwise_xor(rn, R & ctrl_r, out=rn)
        rn[self._rtap_idx] ^= fb_r

        # S^ then S' = S^ ^ (feedback & (ctrl ? FB1 : FB0))
        sn = self._sn
        mid, mid2 = self._mid, self._mid2
        np.bitwise_xor(S[1:99], self._comp0, out=mid)
        np.bitwise_xor(S[2:100], self._comp1, out=mid2)
        np.bitwise_and(mid, mid2, out=mid)
        np.bitwise_xor(S[0:98], mid, out=sn[1:99])
        sn[0] = 0
        sn[99] = S[98]
        sel = self._sel
        np.bitwise_and(self._fb0, ~ctrl_s, out=sel)
        np.bitwise_or(sel, self._fb1 & ctrl_s, out=sel)
        np.bitwise_and(sel, fb_s, out=sel)
        np.bitwise_xor(sn, sel, out=sn)

        # commit (buffer swap: the old state arrays become next scratch)
        self.R, self._rn = rn, R
        self.S, self._sn = sn, S
        for kind, n in self._gates_per_clock.items():
            self.engine.counter.add(kind, n)

    # -- keystream -----------------------------------------------------------------
    def _require_loaded(self) -> None:
        if not self._loaded:
            raise KeyScheduleError("cipher bank must be loaded/seeded before generating")

    def output_plane(self) -> np.ndarray:
        """Current keystream plane z = r0 ^ s0 (does not clock)."""
        self._require_loaded()
        return self.R[0] ^ self.S[0]

    def next_planes(
        self, n_rows: int, *, out: np.ndarray | None = None, epilogue=None
    ) -> np.ndarray:
        """Emit ``(n_rows, n_words)`` keystream planes (row = one clock).

        Output rows pass through the engine's staging buffer, mirroring
        the shared-memory write path of §4.5.  An explicit *out* (any
        writable ``(>= n_rows, n_words)`` array or view — the threaded
        lane-bank passes column slices of a shared buffer) is filled in
        place and returned instead of a fresh allocation.  *epilogue*
        (the single-touch hook) sees every emitted row exactly once, in
        stream order.
        """
        self._require_loaded()
        if out is None:
            out = np.empty((n_rows, self.engine.n_words), dtype=self.engine.dtype)
        if getattr(self.engine, "fused", False):
            from repro.codegen.fused import fused_generate

            fused_generate(self, "mickey2", n_rows, out, epilogue=epilogue)
            for kind, n in self._gates_per_clock.items():
                self.engine.counter.add(kind, n * n_rows)
            return out
        stage = self.engine.make_stage()
        row = 0
        for _ in range(n_rows):
            z = self.R[0] ^ self.S[0]
            self._clock_kg(self._zero, mixing=False)
            row = stage.push(z, out, row)
        stage.drain(out, row)
        if epilogue is not None:
            epilogue(out[:n_rows])
        return out

    def keystream_bits(self, n_bits: int) -> np.ndarray:
        """Per-lane keystream: ``(n_lanes, n_bits)`` bit matrix."""
        planes = self.next_planes(n_bits)
        return unbitslice(planes, self.engine.n_lanes)

    def gates_per_output_bit(self) -> float:
        """Logic gates per keystream bit per lane (feeds the GPU model)."""
        g = self._gates_per_clock
        return float(g["xor"] + g["and_"] + g["or_"] + g["not_"])
