"""Fused K-clock kernels: compiled cipher circuits + renaming schedules.

The virtual SIMD engine's unfused path pays one NumPy dispatch — and one
temporary allocation — per gate per clock, plus a Python-level register
shift (``s[1:] = s[:-1]``) that copies the whole state every clock.  On
the GPU the paper avoids exactly this by fusing the gate network into a
single kernel launch; here the analogue is *source emission*: for each
cipher we generate a Python function that steps **K clocks per call**
with

* the register-renaming schedule compiled in — LFSR shifts become
  constant-index reads into a sliding window (stream ciphers) or a
  compile-time ping-pong buffer swap (MICKEY), so the per-clock state
  copy disappears entirely and is replaced by one window rebase per K
  clocks,
* every gate writing into a preallocated scratch register through the
  ufunc ``out=`` parameter (no per-gate temporaries), and
* keystream planes written straight into the caller's output rows (the
  coalesced-store ideal of §4.5 — no staging buffer round trip).

Kernels are compiled once and kept in a process-global
:class:`KernelCache` keyed by ``(cipher, word-dtype, clocks-per-call)``
plus a version stamp; bumping :data:`KERNEL_CACHE_VERSION` (or a
cipher's entry in :data:`CIRCUIT_VERSIONS`) orphans stale entries, and
per-bank execution contexts check kernel identity so they rebuild after
an invalidation.  The compiled function is pure; all mutable scratch
lives in a per-bank context (:meth:`FusedKernel.make_context`), so two
banks sharing a cached kernel can never alias each other's buffers.

The conformance contract — fused streams are bit-identical to the
unfused and reference paths — is enforced by
``tests/test_fused_conformance.py`` and ``repro selftest --fused``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import SpecificationError

__all__ = [
    "KERNEL_CACHE_VERSION",
    "CIRCUIT_VERSIONS",
    "FusedKernel",
    "KernelCache",
    "KERNEL_CACHE",
    "get_kernel",
    "fused_generate",
]

#: Bump to orphan every cached kernel (e.g. when the emitters change).
KERNEL_CACHE_VERSION = 1

#: Per-cipher circuit versions; bump one to invalidate only its kernels.
CIRCUIT_VERSIONS = {"mickey2": 3, "grain": 1, "trivium": 2, "aes128ctr": 1}

#: Default clock batch per fused call (CLI/BSRNG override per instance).
DEFAULT_CLOCKS_PER_CALL = 32


@dataclass(frozen=True)
class FusedKernel:
    """A compiled fused kernel plus its per-bank context factory.

    ``fn(bank, out, base, ctx)`` advances *bank* by ``clocks`` clocks,
    writing ``clocks * rows_per_clock`` keystream plane rows into
    ``out[base:...]``.  ``ctx`` must come from :meth:`make_context` on
    the same bank (geometry-matched scratch, constant planes, and — for
    AES — key-derived round-key flip indices).
    """

    cipher: str
    clocks: int
    dtype: np.dtype
    rows_per_clock: int
    source: str
    fn: Callable = field(repr=False)
    _context_builder: Callable = field(repr=False)

    def make_context(self, bank) -> dict:
        """Allocate the per-bank scratch/constant bundle for this kernel."""
        return self._context_builder(bank)


class KernelCache:
    """Process-global cache of compiled fused kernels.

    Keyed by ``(cipher, dtype, clocks, version)``; thread-safe (the
    double-buffered refill pipeline compiles from a worker thread).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kernels: dict[tuple, FusedKernel] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, cipher: str, dtype, clocks: int) -> tuple:
        version = (KERNEL_CACHE_VERSION, CIRCUIT_VERSIONS[cipher])
        return (cipher, np.dtype(dtype).name, int(clocks), version)

    def get(self, cipher: str, dtype, clocks: int) -> FusedKernel:
        """Fetch (or compile and cache) the kernel for one configuration."""
        if cipher not in CIRCUIT_VERSIONS:
            raise SpecificationError(f"no fused kernel emitter for {cipher!r}")
        if clocks <= 0:
            raise SpecificationError("clocks per call must be positive")
        key = self._key(cipher, dtype, clocks)
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self.hits += 1
                obs.inc("repro_kernel_cache_hits_total", 1, cipher=cipher)
                return kernel
            self.misses += 1
        # Compile outside the lock (emission is slow for large K); a rare
        # duplicate compile just overwrites with an identical kernel.
        kernel = _BUILDERS[cipher](int(clocks), np.dtype(dtype))
        with self._lock:
            self._kernels[key] = kernel
        obs.inc("repro_kernel_cache_misses_total", 1, cipher=cipher)
        obs.set_gauge("repro_kernel_cache_size", len(self._kernels))
        return kernel

    def invalidate(self, cipher: str | None = None) -> int:
        """Drop cached kernels (all, or one cipher's); returns the count."""
        with self._lock:
            if cipher is None:
                n = len(self._kernels)
                self._kernels.clear()
            else:
                stale = [k for k in self._kernels if k[0] == cipher]
                n = len(stale)
                for k in stale:
                    del self._kernels[k]
        return n

    def stats(self) -> dict:
        """Hit/miss/size counters (for tests and ``repro stats``)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._kernels)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)


#: The process-global kernel cache all banks share.
KERNEL_CACHE = KernelCache()


def get_kernel(cipher: str, dtype, clocks: int) -> FusedKernel:
    """Shorthand for ``KERNEL_CACHE.get(...)``."""
    return KERNEL_CACHE.get(cipher, dtype, clocks)


def _context_for(bank, kernel: FusedKernel) -> dict:
    """The bank's context for *kernel*, rebuilt if the kernel changed.

    Contexts are stored on the bank keyed by clock count and stamped
    with the kernel object they were built for, so a cache invalidation
    (new kernel object) transparently rebuilds the scratch bundle.
    """
    contexts = getattr(bank, "_fused_ctx", None)
    if contexts is None:
        contexts = bank._fused_ctx = {}
    entry = contexts.get(kernel.clocks)
    if entry is None or entry[0] is not kernel:
        ctx = kernel.make_context(bank)
        contexts[kernel.clocks] = (kernel, ctx)
        return ctx
    return entry[1]


def fused_generate(
    bank, cipher: str, n_clocks: int, out: np.ndarray, base: int = 0, epilogue=None
) -> None:
    """Advance *bank* by ``n_clocks`` clocks through fused kernels.

    Splits the request into full ``engine.clocks_per_call`` batches plus
    one tail kernel, so any row count is served without overshooting the
    cipher state.  Writes ``n_clocks * rows_per_clock`` rows into *out*
    starting at row *base*.

    *epilogue*, when given, is called after every kernel call with the
    just-written row block (a contiguous 2D view of *out*) — the
    single-touch hook: CRC receipts and bit censuses fold in while the
    block is still cache-hot instead of re-reading it cold later
    (:class:`repro.core.touch.StreamTouch`).  Blocks arrive in stream
    order, so chunked accounting equals whole-stream accounting.
    """
    engine = bank.engine
    K = max(1, int(getattr(engine, "clocks_per_call", DEFAULT_CLOCKS_PER_CALL)))
    done = 0
    calls = 0
    rows_per_clock = 1
    while done < n_clocks:
        k = min(K, n_clocks - done)
        kernel = get_kernel(cipher, engine.dtype, k)
        rows_per_clock = kernel.rows_per_clock
        ctx = _context_for(bank, kernel)
        kernel.fn(bank, out, base + done * rows_per_clock, ctx)
        if epilogue is not None:
            epilogue(out[base + done * rows_per_clock : base + (done + k) * rows_per_clock])
        done += k
        calls += 1
    if obs.metrics_enabled():
        obs.inc("repro_fused_kernel_calls_total", calls, algorithm=cipher)
        obs.inc("repro_fused_clocks_total", n_clocks, algorithm=cipher)
        obs.observe(
            "repro_fused_clocks_per_call", n_clocks / max(calls, 1), algorithm=cipher
        )


def _compile(source: str, func_name: str, namespace: dict | None = None) -> Callable:
    ns: dict = {"np": np}
    if namespace:
        ns.update(namespace)
    exec(source, ns)  # noqa: S102 - our own generated source
    return ns[func_name]


# ---------------------------------------------------------------------------
# Trivium: three shift registers -> forward history arrays with
# block-batched feedback.  In oldest-bit-first order the deepest read
# offset across all three registers is 45 (register C's s243 tap) and
# the shallowest register is B (84 cells, deepest offset 15), so up to
# ``min(93-27, 84-15, 111-45) = 64`` consecutive clocks of feedback bits
# depend only on already-materialized history rows — one (64, nw) slice
# op replaces 64 single-row ops.  The output filter never feeds back, so
# z for all K clocks is computed in bulk at the end, straight into the
# caller's output rows (same trick as the Grain kernel below).
# ---------------------------------------------------------------------------
_TRIVIUM_BLOCK = 64


def _build_trivium(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers.trivium import (
        STATE_BITS,
        _B_HEAD,
        _C_HEAD,
        _T1_AND,
        _T1_FWD,
        _T1_TAPS,
        _T2_AND,
        _T2_FWD,
        _T2_TAPS,
        _T3_AND,
        _T3_FWD,
        _T3_TAPS,
    )

    LA, LB, LC = _B_HEAD, _C_HEAD - _B_HEAD, STATE_BITS - _C_HEAD
    lens = {"fa": LA, "fb": LB, "fc": LC}

    def hist(g: int) -> tuple[str, int]:
        """Map a global newest-first state index to (array, oldest-first offset)."""
        if g < _B_HEAD:
            return "fa", LA - 1 - g
        if g < _C_HEAD:
            return "fb", LB - 1 - (g - _B_HEAD)
        return "fc", LC - 1 - (g - _C_HEAD)

    L = [
        "def _fused_trivium(bank, out, base, c):",
        f'    """Generated fused Trivium kernel: {K} clocks per call (block-batched)."""',
        "    s = bank.s",
        "    fa = c['fa']; fb = c['fb']; fc = c['fc']; W = c['w']",
        # history load: oldest bit first, so taps become forward slices
        f"    fa[0:{LA}] = s[{LA - 1}::-1]",
        f"    fb[0:{LB}] = s[{_C_HEAD - 1}:{_B_HEAD - 1}:-1]",
        f"    fc[0:{LC}] = s[{STATE_BITS - 1}:{_C_HEAD - 1}:-1]",
    ]

    def emit_feedback(t0: int, B: int, taps, ands, fwd, dst: str) -> None:
        def sl(g: int) -> str:
            arr, j = hist(g)
            return f"{arr}[{t0 + j}:{t0 + j + B}]"

        head = lens[dst]
        L.append(f"    Wv = W[0:{B}]")
        L.append(f"    np.bitwise_and({sl(ands[0])}, {sl(ands[1])}, out=Wv)")
        L.append(f"    np.bitwise_xor(Wv, {sl(taps[0])}, out=Wv)")
        L.append(f"    np.bitwise_xor(Wv, {sl(taps[1])}, out=Wv)")
        L.append(f"    np.bitwise_xor(Wv, {sl(fwd)}, out={dst}[{t0 + head}:{t0 + head + B}])")

    t0 = 0
    while t0 < K:
        B = min(_TRIVIUM_BLOCK, K - t0)
        emit_feedback(t0, B, _T1_TAPS, _T1_AND, _T1_FWD, "fb")  # t1 -> register B
        emit_feedback(t0, B, _T2_TAPS, _T2_AND, _T2_FWD, "fc")  # t2 -> register C
        emit_feedback(t0, B, _T3_TAPS, _T3_AND, _T3_FWD, "fa")  # t3 -> register A
        t0 += B
    # bulk keystream: z_t for every clock at once, into the output rows
    L.append(f"    Z = out[base:base + {K}]")
    zt = [hist(g) for g in (*_T1_TAPS, *_T2_TAPS, *_T3_TAPS)]
    (a0, j0), (a1, j1) = zt[0], zt[1]
    L.append(f"    np.bitwise_xor({a0}[{j0}:{j0 + K}], {a1}[{j1}:{j1 + K}], out=Z)")
    for arr, j in zt[2:]:
        L.append(f"    np.bitwise_xor(Z, {arr}[{j}:{j + K}], out=Z)")
    # history writeback: newest bit first again
    L.append(f"    s[0:{_B_HEAD}] = fa[{K + LA - 1}:{K - 1}:-1]")
    L.append(f"    s[{_B_HEAD}:{_C_HEAD}] = fb[{K + LB - 1}:{K - 1}:-1]")
    L.append(f"    s[{_C_HEAD}:{STATE_BITS}] = fc[{K + LC - 1}:{K - 1}:-1]")
    source = "\n".join(L) + "\n"

    def make_context(bank) -> dict:
        nw, dt = bank.engine.n_words, bank.engine.dtype
        return {
            "fa": np.empty((K + LA, nw), dt),
            "fb": np.empty((K + LB, nw), dt),
            "fc": np.empty((K + LC, nw), dt),
            "w": np.empty((min(_TRIVIUM_BLOCK, K), nw), dt),
        }

    return FusedKernel(
        "trivium", K, np.dtype(dtype), 1, source, _compile(source, "_fused_trivium"), make_context
    )


# ---------------------------------------------------------------------------
# Grain v1: LFSR + NFSR -> forward sliding windows with block-batched
# feedback.  The deepest state tap is index 63, so feedback bits for up
# to 16 consecutive clocks depend only on already-materialized window
# rows — one (16, nw) slice op replaces 16 single-row ops.  The filter
# output never feeds back in keystream mode, so z for all K clocks is
# computed in bulk at the end, straight into the caller's output rows.
# ---------------------------------------------------------------------------
_GRAIN_BLOCK = 16  # 80 - max feedback tap (63) = 17; 16 keeps margin


def _build_grain(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers.grain import LFSR_TAPS, OUTPUT_TAPS, STATE_BITS

    L = [
        "def _fused_grain(bank, out, base, c):",
        f'    """Generated fused Grain v1 kernel: {K} clocks per call."""',
        "    s = bank.s; b = bank.b",
        "    es = c['es']; eb = c['eb']",
        "    P16 = c['p16']; T52_ = c['t52']; T28_ = c['t28']; T60_ = c['t60']",
        "    X = c['x']; Y = c['y']",
        f"    es[0:{STATE_BITS}] = s",
        f"    eb[0:{STATE_BITS}] = b",
    ]
    for tb in range(0, K, _GRAIN_BLOCK):
        B = min(_GRAIN_BLOCK, K - tb)

        def S(i: int) -> str:
            return f"es[{tb + i}:{tb + i + B}]"

        def Bb(i: int) -> str:
            return f"eb[{tb + i}:{tb + i + B}]"

        L.append(f"    F = es[{tb + STATE_BITS}:{tb + STATE_BITS + B}]")
        L.append(f"    G = eb[{tb + STATE_BITS}:{tb + STATE_BITS + B}]")
        L.append(f"    P = P16[0:{B}]; T52 = T52_[0:{B}]; T28 = T28_[0:{B}]; T60 = T60_[0:{B}]")
        # LFSR feedback block: fs = xor of the six taps
        L.append(f"    np.bitwise_xor({S(LFSR_TAPS[0])}, {S(LFSR_TAPS[1])}, out=F)")
        for tap in LFSR_TAPS[2:]:
            L.append(f"    np.bitwise_xor(F, {S(tap)}, out=F)")
        # NFSR feedback block: fb = s0 ^ g(b); shared monomials first
        L.append(f"    np.bitwise_and({Bb(60)}, {Bb(52)}, out=T52)")
        L.append(f"    np.bitwise_and({Bb(33)}, {Bb(28)}, out=T28)")
        L.append(f"    np.bitwise_and({Bb(63)}, {Bb(60)}, out=T60)")
        L.append(f"    np.bitwise_xor({S(0)}, {Bb(62)}, out=G)")
        for tap in (60, 52, 45, 37, 33, 28, 21, 14, 9, 0):
            L.append(f"    np.bitwise_xor(G, {Bb(tap)}, out=G)")
        L.append("    np.bitwise_xor(G, T60, out=G)")
        products = (
            (Bb(37), Bb(33)),
            (Bb(15), Bb(9)),
            ("T52", Bb(45)),
            ("T28", Bb(21)),
            (Bb(63), Bb(45), Bb(28), Bb(9)),
            ("T52", Bb(37), Bb(33)),
            ("T60", Bb(21), Bb(15)),
            ("T52", "T60", Bb(45), Bb(37)),
            ("T28", Bb(21), Bb(15), Bb(9)),
            (Bb(52), Bb(45), Bb(37), "T28", Bb(21)),
        )
        for terms in products:
            L.append(f"    np.bitwise_and({terms[0]}, {terms[1]}, out=P)")
            for extra in terms[2:]:
                L.append(f"    np.bitwise_and(P, {extra}, out=P)")
            L.append("    np.bitwise_xor(G, P, out=G)")
    # Bulk filter: z_t for every clock at once, written into the output
    L.append(f"    Z = out[base:base + {K}]")
    x0, x1, x2, x3, x4 = (
        f"es[3:{3 + K}]",
        f"es[25:{25 + K}]",
        f"es[46:{46 + K}]",
        f"es[64:{64 + K}]",
        f"eb[63:{63 + K}]",
    )
    L.append(f"    np.bitwise_and({x0}, {x2}, out=X)")  # shared x0&x2
    L.append(f"    np.bitwise_xor({x1}, {x4}, out=Z)")
    for pair in ((x0, x3), (x2, x3), (x3, x4), ("X", x1), ("X", x3), ("X", x4)):
        L.append(f"    np.bitwise_and({pair[0]}, {pair[1]}, out=Y)")
        L.append("    np.bitwise_xor(Z, Y, out=Z)")
    for triple in ((x1, x2, x4), (x2, x3, x4)):
        L.append(f"    np.bitwise_and({triple[0]}, {triple[1]}, out=Y)")
        L.append(f"    np.bitwise_and(Y, {triple[2]}, out=Y)")
        L.append("    np.bitwise_xor(Z, Y, out=Z)")
    for k in OUTPUT_TAPS:
        L.append(f"    np.bitwise_xor(Z, eb[{k}:{k + K}], out=Z)")
    # window rebase
    L.append(f"    s[:] = es[{K}:{K + STATE_BITS}]")
    L.append(f"    b[:] = eb[{K}:{K + STATE_BITS}]")
    source = "\n".join(L) + "\n"

    def make_context(bank) -> dict:
        nw, dt = bank.engine.n_words, bank.engine.dtype
        blk = min(_GRAIN_BLOCK, K)
        return {
            "es": np.empty((K + STATE_BITS, nw), dt),
            "eb": np.empty((K + STATE_BITS, nw), dt),
            "p16": np.empty((blk, nw), dt),
            "t52": np.empty((blk, nw), dt),
            "t28": np.empty((blk, nw), dt),
            "t60": np.empty((blk, nw), dt),
            "x": np.empty((K, nw), dt),
            "y": np.empty((K, nw), dt),
        }

    return FusedKernel(
        "grain", K, np.dtype(dtype), 1, source, _compile(source, "_fused_grain"), make_context
    )


# ---------------------------------------------------------------------------
# MICKEY 2.0: irregular clocking -> compile-time ping-pong buffer swap.
# ---------------------------------------------------------------------------
def _build_mickey2(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers._mickey_tables import (
        COMP0_BITS,
        COMP1_BITS,
        FB0_BITS,
        FB1_BITS,
        R_TAPS_BITS,
    )
    from repro.ciphers.mickey import STATE_BITS

    fb0 = FB0_BITS.astype(bool)
    fb1 = FB1_BITS.astype(bool)
    # The kernel runs with S stored in a *complemented domain*: S' = S ^ C0,
    # where C0 is COMP0 extended with zero rows at 0 and 99.  In that domain
    # the spec's "S[i] ^ COMP0[i]" operand of the nonlinear AND is a plain
    # view of S' — one full-width pass and a 196 KB constant plane vanish
    # from every clock, and the working set drops under L2.  The price is
    # constant bookkeeping, all folded at build time:
    #   * the AND's other operand becomes S'[i+1] ^ D with
    #     D[i] = C0[i+1] ^ COMP1[i] (one constant replacing comp1),
    #   * control taps S[34]/S[67] and the shifted S'[98] pick up a
    #     compile-time complement when their C0 bit is set,
    #   * the per-row feedback select "fb & (ctrl ? FB1 : FB0)" lands via a
    #     single table gather: every row takes one of eight values
    #     {0, 1, s99, ~s99, w, ~w, w0, ~w0} (w = cs & s99, w0 = ~cs & s99),
    #     complemented per-row by C0[r] ^ C0[r-1] (the Sn' definition plus
    #     the S' shift term the chain adds).  np.take(V, _FAM, mode='clip')
    #     writes all 100 rows of Sn in one pass — mode='clip' skips the
    #     bounds-checked buffered path (indices are all in range).
    c0ext = COMP0_BITS.astype(bool).copy()
    c0ext[0] = False
    c0ext[STATE_BITS - 1] = False
    split = np.zeros(STATE_BITS, bool)
    split[1:99] = c0ext[1:99] ^ c0ext[0:98]
    fam = np.zeros(STATE_BITS, np.intp)
    for mask, base_idx in (
        (~fb0 & ~fb1, 0),
        (fb0 & fb1, 2),
        (fb1 & ~fb0, 4),
        (fb0 & ~fb1, 6),
    ):
        idx = np.flatnonzero(mask)
        fam[idx] = base_idx + split[idx]
    d_bits = c0ext[2:100] ^ COMP1_BITS[1:99].astype(bool)
    flip_cr = bool(c0ext[34])
    flip_cs = bool(c0ext[67])
    flip_s98 = bool(c0ext[98])
    ns = {
        "_RT": np.flatnonzero(R_TAPS_BITS),
        "_FAM": fam,
    }
    SB_ = STATE_BITS  # 100
    L = [
        "def _fused_mickey2(bank, out, base, c):",
        f'    """Generated fused MICKEY 2.0 keystream kernel: {K} clocks per call."""',
        "    R0 = bank.R; S0 = bank.S",
        "    RB = c['RB']; SB = c['SB']",
        "    M = c['M']; D = c['D']; C0 = c['C0col']; V = c['V']",
        "    cr = c['cr']; cs = c['cs']; ones = c['ones']",
        # ~18 ufunc calls per clock: pre-bound locals, positional out and
        # hoisted slice views shave per-call dispatch overhead, which is
        # measurable at this density.
        "    XOR = np.bitwise_xor; AND = np.bitwise_and; NOT = np.bitwise_not",
        "    V2 = V[2]; V3 = V[3]; V4 = V[4]; V5 = V[5]; V6 = V[6]; V7 = V[7]",
        "    XOR(S0, C0, S0)",
    ]
    # hoisted views for both ping-pong parities (a: R0/S0 live, b: swapped)
    for p, (R, S, Rn, Sn) in (("a", ("R0", "S0", "RB", "SB")), ("b", ("RB", "SB", "R0", "S0"))):
        L += [
            f"    R{p}1 = {R}[1:{SB_}]; R{p}099 = {R}[0:{SB_ - 1}]; Rn{p}1 = {Rn}[1:{SB_}]",
            f"    S{p}1 = {S}[1:99]; S{p}2 = {S}[2:{SB_}]; S{p}098 = {S}[0:98]; Sn{p}1 = {Sn}[1:99]",
        ]
    for t in range(K):
        # keystream clocking: input plane is zero, so fb_r = R[99],
        # fb_s = S[99] — the mixing=False specialization baked in.
        p = "a" if t % 2 == 0 else "b"
        R, S = ("R0", "S0") if t % 2 == 0 else ("RB", "SB")
        Rn, Sn = ("RB", "SB") if t % 2 == 0 else ("R0", "S0")
        L += [
            f"    XOR({R}[0], {S}[0], out[base + {t}])",
            f"    XOR({S}[34], {R}[67], cr)",
        ]
        if flip_cr:  # pragma: no cover - depends on the COMP0 table
            L.append("    NOT(cr, cr)")
        L.append(f"    XOR({S}[67], {R}[33], cs)")
        if flip_cs:
            L.append("    NOT(cs, cs)")
        L += [
            # Rn[i] = R[i-1] ^ (R[i] & cr): the register shift folds into
            # the control mix; chaining in place through Rn keeps the
            # working set at four state planes + one temp (fits L2) where
            # a dedicated 100-row temp used to spill it.
            f"    AND(R{p}1, cr, Rn{p}1)",
            f"    XOR(Rn{p}1, R{p}099, Rn{p}1)",
            f"    AND({R}[0], cr, {Rn}[0])",
            f"    {Rn}[_RT] ^= {R}[99]",
            # feedback value table, then the one-pass gather into Sn
            f"    np.copyto(V2, {S}[99])",
            f"    NOT({S}[99], V3)",
            f"    AND(cs, {S}[99], V4)",
            "    NOT(V4, V5)",
            f"    XOR({S}[99], V4, V6)",
            "    XOR(V3, V4, V7)",
            f"    np.take(V, _FAM, 0, {Sn}, mode='clip')",
            # Sn'[i] ^= S'[i-1] ^ (S'[i] & (S'[i+1] ^ D)); comp0 is absorbed
            # by the domain, comp1 by D.  Row 0 keeps only its feedback term
            # and row 99 picks up the shifted S[98].
            f"    XOR(S{p}2, D, M)",
            f"    AND(S{p}1, M, M)",
            f"    XOR(Sn{p}1, M, Sn{p}1)",
            f"    XOR(Sn{p}1, S{p}098, Sn{p}1)",
            f"    XOR({Sn}[99], {S}[98], {Sn}[99])",
        ]
        if flip_s98:
            L.append(f"    XOR({Sn}[99], ones, {Sn}[99])")
    if K % 2 == 1:
        # odd clock count: the final state landed in the scratch pair
        L.append("    R0[...] = RB")
        L.append("    S0[...] = SB")
    # leave the complemented domain before returning control
    L.append("    XOR(S0, C0, S0)")
    source = "\n".join(L) + "\n"

    def make_context(bank) -> dict:
        from repro.ciphers.mickey_bitsliced import _const_column

        nw, dt = bank.engine.n_words, bank.engine.dtype
        fill = np.iinfo(dt).max
        V = np.zeros((8, nw), dt)
        V[1] = fill
        return {
            "RB": np.empty((SB_, nw), dt),
            "SB": np.empty((SB_, nw), dt),
            "M": np.empty((SB_ - 2, nw), dt),
            "D": _const_column(d_bits, nw, dt),
            "C0col": np.where(c0ext, fill, 0).astype(dt).reshape(SB_, 1),
            "V": V,
            "ones": np.full(nw, fill, dt),
            "cr": np.empty(nw, dt),
            "cs": np.empty(nw, dt),
        }

    return FusedKernel(
        "mickey2", K, np.dtype(dtype), 1, source, _compile(source, "_fused_mickey2", ns), make_context
    )


# ---------------------------------------------------------------------------
# AES-128-CTR: in-place S-box circuit + view-based round pipeline.
# ---------------------------------------------------------------------------
_AES_SBOX_INPLACE: tuple | None = None


def _aes_sbox_inplace() -> tuple:
    global _AES_SBOX_INPLACE
    if _AES_SBOX_INPLACE is None:
        from repro.ciphers.aes_bitsliced import sbox_circuit
        from repro.codegen.emit import compile_inplace

        _AES_SBOX_INPLACE = compile_inplace(sbox_circuit(), func_name="_sbox_inplace")
    return _AES_SBOX_INPLACE


def _build_aes(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers.aes_bitsliced import _SHIFT_ROWS_PERM

    sbox_fn, n_regs = _aes_sbox_inplace()
    perm = _SHIFT_ROWS_PERM

    def make_context(bank) -> dict:
        nw, dt = bank.engine.n_words, bank.engine.dtype
        st_a = np.empty((16, 8, nw), dt)
        st_b = np.empty((16, 8, nw), dt)
        return {
            "st": (st_a, st_b),
            "views": (
                [st_a[:, i, :] for i in range(8)],
                [st_b[:, i, :] for i in range(8)],
            ),
            "regs": [np.empty((16, nw), dt) for _ in range(n_regs)],
            "ones": np.full((16, nw), np.iinfo(dt).max, dt),
            "zeros": np.zeros((16, nw), dt),
            "ones_row": np.full(nw, np.iinfo(dt).max, dt),
            "t": np.empty((4, 8, nw), dt),
            "u": np.empty((4, 8, nw), dt),
            "v": np.empty((4, 8, nw), dt),
            # round-key bit flips as flat plane indices (key-dependent:
            # the AES bank clears _fused_ctx on load() to rebuild these)
            "ark_idx": [np.flatnonzero(m.reshape(128)) for m in bank._rk_masks],
        }

    def fn(bank, out, base, c):
        from repro.core.bitslice import bitslice_bytes

        st_a, st_b = c["st"]
        views_a, views_b = c["views"]
        regs, ones, zeros = c["regs"], c["ones"], c["zeros"]
        ones_row = c["ones_row"]
        t, u, v = c["t"], c["u"], c["v"]
        ark = c["ark_idx"]
        for k in range(K):
            blocks = bank._counter_block_bytes(bank._blocks_done)
            bank._blocks_done += 1
            np.copyto(st_a.reshape(128, -1), bitslice_bytes(blocks, dtype=st_a.dtype))
            cur, oth = st_a, st_b
            vcur, voth = views_a, views_b
            cur.reshape(128, -1)[ark[0]] ^= ones_row
            for rnd in range(1, 10):
                sbox_fn(*vcur, voth, regs, ones, zeros)  # SubBytes: cur -> oth
                np.take(oth.reshape(16, -1), perm, axis=0, out=cur.reshape(16, -1))
                # MixColumns: cur -> oth, fully in place
                cols = cur.reshape(4, 4, 8, -1)
                dcols = oth.reshape(4, 4, 8, -1)
                np.bitwise_xor(cols[:, 0], cols[:, 1], out=t)
                np.bitwise_xor(t, cols[:, 2], out=t)
                np.bitwise_xor(t, cols[:, 3], out=t)
                for r in range(4):
                    np.bitwise_xor(cols[:, r], cols[:, (r + 1) % 4], out=u)
                    # xtime(u) -> v (GF(2^8) doubling at bit level)
                    np.copyto(v[:, 0], u[:, 7])
                    np.bitwise_xor(u[:, 0], u[:, 7], out=v[:, 1])
                    np.copyto(v[:, 2], u[:, 1])
                    np.bitwise_xor(u[:, 2], u[:, 7], out=v[:, 3])
                    np.bitwise_xor(u[:, 3], u[:, 7], out=v[:, 4])
                    np.copyto(v[:, 5], u[:, 4])
                    np.copyto(v[:, 6], u[:, 5])
                    np.copyto(v[:, 7], u[:, 6])
                    np.bitwise_xor(cols[:, r], t, out=dcols[:, r])
                    np.bitwise_xor(dcols[:, r], v, out=dcols[:, r])
                oth.reshape(128, -1)[ark[rnd]] ^= ones_row
                cur, oth = oth, cur
                vcur, voth = voth, vcur
            sbox_fn(*vcur, voth, regs, ones, zeros)
            np.take(oth.reshape(16, -1), perm, axis=0, out=cur.reshape(16, -1))
            flat = cur.reshape(128, -1)
            flat[ark[10]] ^= ones_row
            out[base + 128 * k : base + 128 * (k + 1)] = flat

    source = (
        f"# aes128ctr fused kernel: {K} clocks/call, closure over the in-place\n"
        f"# S-box circuit ({n_regs} registers); rounds ping-pong two (16, 8, nw)\n"
        "# plane stacks with view-based SubBytes/ShiftRows/MixColumns/ARK.\n"
    )
    return FusedKernel("aes128ctr", K, np.dtype(dtype), 128, source, fn, make_context)


_BUILDERS = {
    "trivium": _build_trivium,
    "grain": _build_grain,
    "mickey2": _build_mickey2,
    "aes128ctr": _build_aes,
}
