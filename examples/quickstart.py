#!/usr/bin/env python
"""Quickstart: the BSRNG generator API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BSRNG, available_algorithms


def main() -> None:
    print("Available generators")
    print("-" * 60)
    for name, desc in available_algorithms().items():
        print(f"  {name:<18} {desc}")
    print()

    # The paper's best performer: bitsliced MICKEY 2.0.  `lanes` is the
    # number of independent cipher instances advanced per vector op —
    # the software analogue of threads x 32 on the GPU.
    rng = BSRNG("mickey2", seed=2020, lanes=1024)
    print(f"generator: {rng!r}")
    print(f"gate cost: {rng.gates_per_output_bit():.1f} logic ops per output bit/lane")
    print()

    print("64-bit words :", rng.random_uint64(4))
    print("32-bit words :", rng.random_uint32(4))
    print("bytes        :", rng.random_bytes(8).hex())
    print("bits         :", rng.random_bits(16))
    print("floats [0,1) :", np.round(rng.random(4), 6))
    print("dice rolls   :", rng.integers(1, 7, size=10))
    print("normals      :", np.round(rng.normal(4), 4))
    print()

    # Determinism: the same seed reproduces the same stream (the paper's
    # two-way-communication use case), and draws are stream-consistent —
    # chunked and one-shot reads agree.
    a = BSRNG("mickey2", seed=7).random_bytes(16)
    b_rng = BSRNG("mickey2", seed=7)
    b = b_rng.random_bytes(6) + b_rng.random_bytes(10)
    assert a == b
    print("determinism check: two chunked draws == one-shot draw  [OK]")

    # Counter-based kernels seek in O(1) — the multi-device mechanism.
    ctr = BSRNG("aes128ctr", seed=7)
    ref = BSRNG("aes128ctr", seed=7).random_bytes(300_000)
    ctr.skip_bytes(262_144)
    assert ctr.random_bytes(16) == ref[262_144 : 262_144 + 16]
    print("O(1) counter seek check                               [OK]")


if __name__ == "__main__":
    main()
