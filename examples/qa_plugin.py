"""A third-party QA plugin, the zero-packaging way.

Drop this file (or your own copy) somewhere on ``PYTHONPATH`` and tell
the QA framework to load it:

.. code-block:: console

   $ export PYTHONPATH=examples
   $ export REPRO_QA_PLUGINS=qa_plugin
   $ repro qa list                       # ByteHistogram appears
   $ repro qa stream -a trivium -n 4194304

A module contributes plugins by exposing either ``register(registry)``
(full control: ``replace=True`` overrides, parameterised variants) or a
plain ``QA_PLUGINS`` iterable.  This example shows the ``register`` hook
because it is the one you will outgrow the other for.

Installed distributions can skip the environment variable entirely by
advertising the same hook as a ``repro.qa_plugins`` entry point:

.. code-block:: toml

   [project.entry-points."repro.qa_plugins"]
   byte_histogram = "qa_plugin"
"""

from __future__ import annotations

import numpy as np

from repro.nist._utils import check_bits, igamc
from repro.nist.result import TestResult
from repro.qa import QAPlugin


def byte_histogram_test(bits, bins: int = 256) -> TestResult:
    """χ² of the byte-value histogram against the uniform null.

    Coarser than the SP 800-22 frequency family but sensitive to
    byte-granular skew (a masked lane, a truncated range) in one look.
    """
    # 5 expected counts per bin keeps the chi-square approximation honest
    arr = check_bits(bits, 5 * bins * 8, "byte_histogram")
    data = np.packbits(arr[: (arr.size // 8) * 8].astype(np.uint8), bitorder="little")
    counts = np.bincount(data, minlength=bins)
    expected = data.size / bins
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    p = igamc((bins - 1) / 2.0, chi2 / 2.0)
    return TestResult("byte_histogram", [p], {"chi2": chi2, "n_bytes": int(data.size)})


def register(registry) -> None:
    """The discovery hook (``REPRO_QA_PLUGINS`` / entry points)."""
    registry.register(
        QAPlugin(
            name="ByteHistogram",
            fn=byte_histogram_test,
            family="example",
            min_bits=5 * 256 * 8,
            alpha=1e-6,
            # a clean chi-square null is uniform under H0, so the battery
            # may aggregate it; it is cheap enough to stream as well
            battery=True,
            streaming=True,
            cost=0.5,
            source="example",
            description="chi-square of the byte-value histogram",
        )
    )
