"""Health tests (SP 800-90B RCT/APT + FIPS startup gate): cutoff
derivation, streaming state across buffers, and the monitored wrapper's
raise/degrade semantics."""

import numpy as np
import pytest

from repro.core.generator import BSRNG
from repro.errors import HealthTestError, SpecificationError
from repro.robust.faults import StuckBSRNG
from repro.robust.health import (
    APT_WINDOW,
    AdaptiveProportionTest,
    HealthMonitoredBSRNG,
    RepetitionCountTest,
    apt_cutoff,
    rct_cutoff,
    startup_self_test,
)


class TestCutoffs:
    def test_rct_90b_worked_value(self):
        # SP 800-90B: C = 1 + ceil(-log2(alpha)/H); alpha=2^-30, H=8 -> 5
        assert rct_cutoff(2.0**-30, 8.0) == 5

    def test_rct_binary_source(self):
        # H=1 bit/sample: the full 30-sample run bound
        assert rct_cutoff(2.0**-30, 1.0) == 31

    def test_rct_tighter_alpha_raises_cutoff(self):
        assert rct_cutoff(2.0**-40, 8.0) >= rct_cutoff(2.0**-20, 8.0)

    def test_apt_monotone_in_alpha(self):
        assert apt_cutoff(2.0**-40) >= apt_cutoff(2.0**-10)

    def test_apt_sane_range(self):
        # full-entropy bytes over 512 samples: expect ~2 recurrences, so the
        # cutoff sits well above the mean and well below the window
        c = apt_cutoff(2.0**-30, 8.0, 512)
        assert 5 < c < 64

    def test_apt_tail_never_reached(self):
        # impossibly small alpha: the test can never fire
        assert apt_cutoff(1e-300, 8.0, 16) == 17

    def test_invalid_parameters(self):
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(SpecificationError):
                rct_cutoff(alpha=bad)
        with pytest.raises(SpecificationError):
            rct_cutoff(entropy_per_sample=0.0)
        with pytest.raises(SpecificationError):
            apt_cutoff(window=1)


class TestRepetitionCount:
    def test_constant_buffer_detected_at_cutoff(self):
        rct = RepetitionCountTest()
        at = rct.update(np.full(64, 0xAA, dtype=np.uint8))
        assert at == rct.cutoff - 1  # fails the moment the run reaches C

    def test_run_spanning_buffers(self):
        rct = RepetitionCountTest()
        cut = rct.cutoff
        # cut-1 repeats at the end of buffer one: no failure yet
        buf1 = np.concatenate([np.arange(10, dtype=np.uint8), np.full(cut - 1, 7, np.uint8)])
        assert rct.update(buf1) is None
        # one more sample of the same value completes the run
        assert rct.update(np.array([7], dtype=np.uint8)) == 0

    def test_healthy_stream_passes(self):
        rct = RepetitionCountTest()
        data = np.frombuffer(BSRNG("xorwow", seed=3, lanes=64).random_bytes(1 << 16), np.uint8)
        assert rct.update(data) is None

    def test_interrupted_run_resets(self):
        rct = RepetitionCountTest()
        cut = rct.cutoff
        pattern = np.tile(
            np.concatenate([np.full(cut - 1, 5, np.uint8), np.array([9], np.uint8)]), 20
        )
        assert rct.update(pattern) is None

    def test_reset_clears_carry(self):
        rct = RepetitionCountTest()
        rct.update(np.full(rct.cutoff - 1, 3, np.uint8))
        rct.reset()
        assert rct.update(np.full(rct.cutoff - 1, 3, np.uint8)) is None


class TestAdaptiveProportion:
    def test_constant_window_detected(self):
        apt = AdaptiveProportionTest()
        assert apt.update(np.full(APT_WINDOW, 0x55, dtype=np.uint8)) is not None

    def test_detection_spans_buffers(self):
        apt = AdaptiveProportionTest()
        # feed the biased stream 17 bytes at a time: state must carry
        biased = np.zeros(APT_WINDOW, dtype=np.uint8)
        hit = None
        for start in range(0, APT_WINDOW, 17):
            hit = apt.update(biased[start : start + 17])
            if hit is not None:
                break
        assert hit is not None

    def test_healthy_stream_passes(self):
        apt = AdaptiveProportionTest()
        data = np.frombuffer(BSRNG("xorwow", seed=9, lanes=64).random_bytes(1 << 16), np.uint8)
        assert apt.update(data) is None

    def test_window_rollover(self):
        apt = AdaptiveProportionTest()
        # constant value only *between* windows: each window sees a clean ref
        data = np.arange(4 * APT_WINDOW, dtype=np.int64) % 251
        assert apt.update(data.astype(np.uint8)) is None


class TestStartupSelfTest:
    def test_healthy_generator_passes(self):
        report = startup_self_test(BSRNG("xorwow", seed=2, lanes=64))
        assert report.passed

    def test_stuck_generator_rejected(self):
        with pytest.raises(HealthTestError):
            startup_self_test(StuckBSRNG("xorwow", seed=2, lanes=64, stuck_byte=0))


class TestHealthMonitoredBSRNG:
    def test_transparent_for_healthy_stream(self):
        # without the startup gate, the monitored stream IS the plain stream
        mon = HealthMonitoredBSRNG(BSRNG("xorwow", seed=4, lanes=64), startup_test=False)
        plain = BSRNG("xorwow", seed=4, lanes=64)
        assert mon.random_bytes(4096) == plain.random_bytes(4096)
        assert mon.log.bytes_screened == 4096 and not mon.log.events

    def test_startup_consumes_block(self):
        # the power-up gate consumes 20,000 bits before the first emission
        mon = HealthMonitoredBSRNG("xorwow", seed=4, lanes=64)
        plain = BSRNG("xorwow", seed=4, lanes=64)
        plain.skip_bytes(2500)
        assert mon.random_bytes(512) == plain.random_bytes(512)
        assert mon.startup_report is not None and mon.startup_report.passed

    def test_stuck_raises_within_one_buffer(self):
        stuck = StuckBSRNG("xorwow", seed=1, lanes=64, stuck_byte=0xAA, stuck_after=100)
        mon = HealthMonitoredBSRNG(stuck, startup_test=False)
        with pytest.raises(HealthTestError, match="rct"):
            mon.random_bytes(256)
        assert mon.log.events and mon.log.events[0].test == "rct"

    def test_degrade_reseeds_and_recovers(self):
        stuck = StuckBSRNG("xorwow", seed=1, lanes=64, stuck_byte=0xAA)
        mon = HealthMonitoredBSRNG(stuck, startup_test=False, on_failure="degrade")
        data = mon.random_bytes(2048)
        assert len(data) == 2048
        assert mon.log.reseeds == 1
        assert [e.action for e in mon.log.events] == ["reseed"]

    def test_degrade_gives_up_after_max_reseeds(self):
        stuck = StuckBSRNG(
            "xorwow", seed=1, lanes=64, stuck_byte=0xAA, recover_on_reseed=False
        )
        mon = HealthMonitoredBSRNG(
            stuck, startup_test=False, on_failure="degrade", max_reseeds=2
        )
        with pytest.raises(HealthTestError, match="reseed"):
            mon.random_bytes(256)
        assert mon.log.reseeds == 2

    def test_draw_api_shapes(self):
        mon = HealthMonitoredBSRNG("xorwow", seed=5, lanes=64, startup_test=False)
        assert mon.random_uint64(4).shape == (4,)
        assert mon.random_uint32(3).dtype == np.uint32
        assert mon.random_bits(17).size == 17
        assert ((0.0 <= mon.random(8)) & (mon.random(8) < 1.0)).all()
        assert mon.random_bytes(0) == b""

    def test_invalid_on_failure(self):
        with pytest.raises(SpecificationError):
            HealthMonitoredBSRNG("xorwow", lanes=64, on_failure="retry", startup_test=False)

    def test_reseed_walks_deterministic_sequence(self):
        a = BSRNG("xorwow", seed=10, lanes=64)
        b = BSRNG("xorwow", seed=10, lanes=64)
        a.reseed()
        b.reseed()
        assert a.seed == b.seed != 10
        assert a.random_bytes(64) == b.random_bytes(64)
        a.reseed()
        assert a.seed != b.seed  # reseed count separates the streams
