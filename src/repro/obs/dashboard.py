"""``repro top`` — a live ANSI dashboard over ``/metrics`` + ``/v1/status``.

No curses dependency (the container bakes in the scientific stack only):
the screen is redrawn with plain ANSI clear/home escapes, which works in
any terminal and degrades to sequential frames when piped.  Each frame
polls the daemon's Prometheus exposition and status document, diffs
against the previous sample, and renders:

* service header — uptime, health verdict, drain state, fleet target;
* rates — requests/s and bytes/s from counter deltas between frames;
* request latency — p50/p99 estimated from the cumulative log2-bucket
  ``repro_serve_request_seconds`` histogram (quantiles interpolated
  within the bucket, the standard Prometheus ``histogram_quantile``
  approach);
* lease ledger — active / released / orphaned counts and high water;
* chunk dispatch counters — ok / retries / degraded / rejects;
* per-worker fleet table — state, silence, jobs, inflight, per-worker
  byte rates (from the ``worker``-labelled counters the controller
  merges on every accepted result) and eviction reasons.

Everything below :func:`run_top` is pure (text in, text out) so tests
drive the renderer without a terminal or a live daemon.
"""

from __future__ import annotations

import json
import re
import time
import urllib.request

__all__ = [
    "parse_prometheus",
    "counter_total",
    "gauge_value",
    "histogram_quantiles",
    "render",
    "run_top",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_prometheus(text: str) -> list[tuple[str, dict, float]]:
    """Parse a text exposition into ``(name, labels, value)`` samples."""
    samples: list[tuple[str, dict, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        labels = dict(_LABEL_RE.findall(m.group("labels") or ""))
        try:
            value = float(m.group("value"))
        except ValueError:
            continue
        samples.append((m.group("name"), labels, value))
    return samples


def _matches(labels: dict, match: dict) -> bool:
    return all(labels.get(k) == v for k, v in match.items())


def counter_total(samples, name: str, **match) -> float:
    """Sum of every sample of *name* whose labels include *match*."""
    return sum(v for n, labels, v in samples if n == name and _matches(labels, match))


def gauge_value(samples, name: str, default: float = 0.0, **match) -> float:
    """First sample of *name* matching *match* (gauges have one value)."""
    for n, labels, v in samples:
        if n == name and _matches(labels, match):
            return v
    return default


def histogram_quantiles(samples, name: str, quantiles=(0.5, 0.99)) -> dict[float, float]:
    """Estimate quantiles from cumulative ``<name>_bucket`` samples.

    Buckets across all label sets are aggregated (the service-wide
    latency view), then each quantile is linearly interpolated inside
    the first bucket whose cumulative count reaches its rank — the same
    estimate PromQL's ``histogram_quantile`` computes.

    Degenerate histograms answer honestly instead of reporting a
    confident ``0.0``: NaN and unparsable bucket samples are dropped, a
    quantile whose rank lands in the ``+Inf`` bucket is clamped to the
    largest finite edge, and when *no* finite bucket exists (all mass is
    open-ended) the quantile is omitted — the renderer shows ``n/a``.
    Interpolation is clamped inside the bucket, so merge artifacts in a
    non-monotone cumulative series cannot extrapolate past an edge.
    """
    by_le: dict[float, float] = {}
    for n, labels, v in samples:
        if n != f"{name}_bucket" or v != v:  # NaN never counts
            continue
        le = labels.get("le", "")
        try:
            bound = float("inf") if le == "+Inf" else float(le)
        except ValueError:
            continue
        if bound != bound:  # le="NaN" is not a bucket edge
            continue
        by_le[bound] = by_le.get(bound, 0.0) + v
    if not by_le:
        return {}
    bounds = sorted(by_le)
    total = by_le[bounds[-1]]
    if total <= 0:
        return {}
    has_finite = bounds[0] != float("inf")
    out: dict[float, float] = {}
    for q in quantiles:
        rank = q * total
        prev_bound, prev_count = 0.0, 0.0
        for bound in bounds:
            count = by_le[bound]
            if count >= rank:
                if bound == float("inf"):
                    if not has_finite:
                        break  # unresolvable: every observation is open-ended
                    out[q] = prev_bound  # clamp to the last finite edge
                elif count == prev_count:
                    out[q] = bound
                else:
                    frac = (rank - prev_count) / (count - prev_count)
                    frac = min(max(frac, 0.0), 1.0)
                    out[q] = prev_bound + frac * (bound - prev_bound)
                break
            prev_bound, prev_count = bound, count
    return out


def _rate(curr_samples, prev_samples, dt: float, name: str, **match) -> float | None:
    if prev_samples is None or dt <= 0:
        return None
    delta = counter_total(curr_samples, name, **match) - counter_total(
        prev_samples, name, **match
    )
    return max(delta, 0.0) / dt


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:,.1f} {unit}"
        n /= 1024
    return f"{n:,.1f} TiB"  # pragma: no cover - loop always returns


def render(
    status: dict,
    samples,
    prev_samples=None,
    dt: float = 0.0,
) -> str:
    """One dashboard frame (pure: status JSON + metric samples -> text)."""
    server = status.get("server", {})
    engine = status.get("engine", {})
    leases = status.get("leases", {})
    health = engine.get("health", {})
    stream = engine.get("stream", {})
    fleet = engine.get("fleet")
    lines: list[str] = []
    verdict = "HEALTHY" if health.get("healthy", True) else "UNHEALTHY"
    if server.get("draining"):
        verdict += " (draining)"
    lines.append(
        f"repro top — {stream.get('algorithm', '?')} seed={stream.get('seed', '?')} "
        f"lanes={stream.get('lanes', '?')} | up {server.get('uptime_s', 0.0):,.1f}s "
        f"| {verdict}"
    )
    req_rate = _rate(samples, prev_samples, dt, "repro_serve_requests_total")
    byte_rate = _rate(samples, prev_samples, dt, "repro_serve_bytes_total")
    lines.append(
        f"requests {server.get('requests_total', 0):,} "
        f"({'—' if req_rate is None else f'{req_rate:,.1f}/s'}) | "
        f"served {_fmt_bytes(server.get('bytes_served', 0))} "
        f"({'—' if byte_rate is None else _fmt_bytes(byte_rate) + '/s'}) | "
        f"streams {server.get('active_streams', 0)}"
    )
    if any(n == "repro_serve_request_seconds_bucket" for n, _, _ in samples):
        q = histogram_quantiles(samples, "repro_serve_request_seconds")

        def _fmt_q(quantile: float) -> str:
            # an unresolvable quantile (empty or all-open-ended histogram)
            # must read as unknown, not as a flattering "0.00 ms"
            value = q.get(quantile)
            return "n/a" if value is None else f"{value * 1e3:,.2f} ms"

        lines.append(f"request latency  p50 {_fmt_q(0.5)}   p99 {_fmt_q(0.99)}")
    lines.append(
        f"leases  active {leases.get('active', 0)}  released {leases.get('released', 0)}  "
        f"orphaned {leases.get('orphaned', 0)}  "
        f"high-water {_fmt_bytes(leases.get('high_water_bytes', 0))}"
    )
    chunks = engine.get("chunks", {})
    lines.append(
        f"chunks  ok {chunks.get('chunks_ok', 0):,}  retries {chunks.get('retries', 0)}  "
        f"degraded {chunks.get('degraded', 0)}  crc-rejects {chunks.get('crc_rejects', 0)}  "
        f"screen-rejects {chunks.get('screen_rejects', 0)}"
    )
    if fleet:
        counters = fleet.get("counters", {})
        lines.append(
            f"fleet  target {fleet.get('target', 0)}  "
            f"evictions {counters.get('evictions', 0)}  "
            f"reassigned {counters.get('reassignments', 0)}  "
            f"stale {counters.get('stale_results', 0)}  "
            f"pending {fleet.get('pending_jobs', 0)}  "
            f"inflight {fleet.get('inflight_jobs', 0)}"
        )
        lines.append(
            f"{'id':>4} {'state':<10} {'silent':>8} {'jobs':>7} {'infl':>5} "
            f"{'rate':>12}  reason"
        )
        for worker in fleet.get("workers", []):
            wid = worker.get("worker_id", -1)
            rate = _rate(
                samples,
                prev_samples,
                dt,
                "repro_fleet_worker_bytes_total",
                worker=str(wid),
            )
            lines.append(
                f"{wid:>4} {worker.get('state', '?'):<10} "
                f"{worker.get('silent_s', 0.0):>7.1f}s "
                f"{worker.get('jobs_done', 0):>7,} {worker.get('inflight', 0):>5} "
                f"{'—' if rate is None else _fmt_bytes(rate) + '/s':>12}  "
                f"{worker.get('evicted_reason', '') or '-'}"
            )
    return "\n".join(lines)


def _fetch(host: str, port: int, path: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=timeout
    ) as resp:
        return resp.read()


def run_top(
    host: str = "127.0.0.1",
    port: int = 8797,
    interval: float = 1.0,
    iterations: int | None = None,
    clear: bool = True,
    out=None,
) -> int:
    """Poll the daemon and redraw until interrupted (or *iterations*).

    Returns 0 on a clean exit (including Ctrl-C), 1 when the daemon
    could never be reached.
    """
    import sys

    out = out or sys.stdout
    prev_samples = None
    prev_t = None
    seen_ok = False
    frame = 0
    while iterations is None or frame < iterations:
        frame += 1
        try:
            status = json.loads(_fetch(host, port, "/v1/status"))
            samples = parse_prometheus(_fetch(host, port, "/metrics").decode())
        except KeyboardInterrupt:
            return 0
        except OSError as exc:
            if not seen_ok:
                print(f"repro top: cannot reach {host}:{port}: {exc}", file=out)
                return 1
            print(f"repro top: poll failed ({exc}); daemon gone?", file=out)
            return 0
        now = time.monotonic()
        dt = 0.0 if prev_t is None else now - prev_t
        text = render(status, samples, prev_samples, dt)
        if clear:
            out.write("\x1b[2J\x1b[H")
        out.write(text + "\n")
        out.flush()
        seen_ok = True
        prev_samples, prev_t = samples, now
        if iterations is not None and frame >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
    return 0
