"""Deterministic fault injection for the multi-device pipeline.

Real scale-out fails in boring, hard-to-reproduce ways: a device crashes
mid-kernel, a transfer stalls, DMA flips bytes, a bank wedges at a
constant.  This module makes every one of those failures *scriptable and
seeded* so tests and benchmarks can exercise each recovery path of the
supervisor and the health tests without flakiness.

A :class:`FaultPlan` is a list of :class:`Fault` entries keyed by
``(partition, attempt)``:

* ``crash``   — the worker raises before generating (a dead device).
* ``delay``   — the worker sleeps ``delay`` seconds first (a hung
  device; trips the supervisor's per-partition timeout).
* ``corrupt`` — ``corrupt_bytes`` bytes of the returned payload are
  XOR-flipped at seeded positions *after* the worker computed its CRC
  (a corrupted transfer; trips CRC verification).
* ``stuck``   — the payload is replaced by a constant byte (a wedged
  bank; trips the Repetition Count Test when screened).

Two *fleet-level* kinds model failure modes that only exist once workers
are long-lived members with heartbeats (:mod:`repro.fleet`) rather than
one-shot pool jobs.  Unlike the kinds above, they are **persistent**:
they fire from their ``attempt`` (the worker's job index) *onward*,
because a silent or bleeding worker stays that way until evicted:

* ``hb_silence``  — the worker stops sending heartbeats (but keeps
  working); the controller must evict on the liveness deadline and
  reassign the lease, dropping any late result.
* ``slow_bleed``  — every payload from this job on has
  ``corrupt_bytes`` seeded bytes flipped after the CRC is computed (a
  slowly failing transfer/DMA path; accumulates receipt strikes until
  the worker is evicted).
* ``bias``        — persistent like the fleet kinds, but applied
  **before** the CRC is computed: every payload from the scheduled
  partition onward is AND-masked with ``bias_mask`` (default
  ``0xFE`` — the low bit of every byte forced to zero).  This models a
  *defective generator*, not a damaged transfer: the bytes verify
  clean, retries reproduce them, and only statistical QA (the
  ``repro serve --qa`` sidecar, or the RCT/APT screen for gross masks)
  can catch them.

Plans are consulted inside the worker entry points
(:mod:`repro.gpu.multigpu`, :mod:`repro.fleet.worker`), activated either
by constructor argument or by the ``REPRO_FAULT_PLAN`` environment
variable (a JSON plan), so a spawn-context worker with no shared memory
still injects identically.  Because a pool-level entry fires only on its
exact attempt number, every pool plan is finite: retried partitions
eventually run clean and regenerate byte-identical output.  Fleet plans
terminate differently — the fleet evicts the faulty member and
reassigns its work to a clean peer.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.generator import BSRNG
from repro.errors import SpecificationError

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "StuckBSRNG",
    "FAULT_PLAN_ENV",
]

#: Environment variable carrying a JSON fault plan into worker processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_KINDS = ("crash", "delay", "corrupt", "stuck", "hb_silence", "slow_bleed", "bias")


class InjectedCrash(RuntimeError):
    """The scripted worker crash (distinguishable from real bugs)."""


@dataclass(frozen=True)
class Fault:
    """One scripted failure, keyed by ``(partition, attempt)``."""

    kind: str
    partition: int
    attempt: int = 0
    delay: float = 0.0
    corrupt_bytes: int = 1
    stuck_byte: int = 0
    bias_mask: int = 0xFE

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SpecificationError(f"fault kind must be one of {_KINDS}")
        if self.partition < 0 or self.attempt < 0:
            raise SpecificationError("partition and attempt must be non-negative")
        if self.kind == "delay" and self.delay <= 0:
            raise SpecificationError("delay faults need delay > 0")
        if self.kind in ("corrupt", "slow_bleed") and self.corrupt_bytes <= 0:
            raise SpecificationError("corrupt/slow_bleed faults need corrupt_bytes > 0")
        if not 0 <= self.stuck_byte <= 255:
            raise SpecificationError("stuck_byte must be a byte value")
        if not 0 <= self.bias_mask <= 255:
            raise SpecificationError("bias_mask must be a byte value")
        if self.kind == "bias" and self.bias_mask == 0xFF:
            raise SpecificationError("a bias fault with mask 0xFF changes nothing")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, finite schedule of faults."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def matching(self, partition: int, attempt: int) -> list[Fault]:
        """Faults scheduled for this exact partition attempt."""
        return [f for f in self.faults if f.partition == partition and f.attempt == attempt]

    # -- fleet-level (persistent) faults ------------------------------------------
    def silences(self, worker: int, job_index: int) -> bool:
        """Whether *worker* has gone heartbeat-silent by its *job_index*.

        ``hb_silence`` is persistent: it fires from its scheduled job
        index onward (a silent worker stays silent until evicted).
        """
        return any(
            f.kind == "hb_silence" and f.partition == worker and job_index >= f.attempt
            for f in self.faults
        )

    def bleed(self, worker: int, job_index: int, payload: bytes) -> bytes:
        """Apply any active ``slow_bleed`` fault to one payload.

        Persistent like :meth:`silences`: every payload from the
        scheduled job index on has ``corrupt_bytes`` seeded byte flips.
        Call *after* the CRC is computed, so the bleed models a damaged
        transfer and trips the receiving side's receipt verification.
        """
        for f in self.faults:
            if (
                f.kind == "slow_bleed"
                and f.partition == worker
                and job_index >= f.attempt
                and payload
            ):
                rng = np.random.default_rng([self.seed, worker, job_index])
                data = np.frombuffer(payload, dtype=np.uint8).copy()
                k = min(f.corrupt_bytes, data.size)
                pos = rng.choice(data.size, size=k, replace=False)
                data[pos] ^= rng.integers(1, 256, size=k, dtype=np.uint8)
                payload = data.tobytes()
        return payload

    def apply_bias(self, partition: int, payload: bytes) -> bytes:
        """Apply any active ``bias`` fault to one payload.

        Persistent from the scheduled attempt onward for its partition
        and for every later partition (a degrading generator does not
        heal between chunks).  Call *before* the CRC is computed: the
        bias models the generator itself emitting skewed bytes, so the
        receipt must verify clean and retries must reproduce the skew.
        """
        for f in self.faults:
            if f.kind == "bias" and partition >= f.partition and payload:
                data = np.frombuffer(payload, dtype=np.uint8) & np.uint8(f.bias_mask)
                payload = data.tobytes()
        return payload

    # -- injection hooks (called from worker entry points) -----------------------
    def pre_generate(self, partition: int, attempt: int) -> None:
        """Apply crash/delay faults before the partition generates."""
        for f in self.matching(partition, attempt):
            if f.kind == "crash":
                raise InjectedCrash(
                    f"injected crash: partition {partition}, attempt {attempt}"
                )
            if f.kind == "delay":
                time.sleep(f.delay)

    def post_generate(self, partition: int, attempt: int, payload: bytes) -> bytes:
        """Apply stuck/corrupt faults to the generated payload.

        Runs *after* the worker computed its payload CRC, so corruption
        models a damaged transfer and is visible to the supervisor's
        verification hook.
        """
        for f in self.matching(partition, attempt):
            if f.kind == "stuck":
                payload = bytes([f.stuck_byte]) * len(payload)
            elif f.kind == "corrupt" and payload:
                rng = np.random.default_rng([self.seed, partition, attempt])
                data = np.frombuffer(payload, dtype=np.uint8).copy()
                k = min(f.corrupt_bytes, data.size)
                pos = rng.choice(data.size, size=k, replace=False)
                # XOR with a non-zero mask so every hit really changes a byte
                data[pos] ^= rng.integers(1, 256, size=k, dtype=np.uint8)
                payload = data.tobytes()
        return payload

    # -- serialisation (constructor flag or env var, spawn-safe) -----------------
    def to_json(self) -> str:
        """JSON encoding (the ``REPRO_FAULT_PLAN`` format)."""
        return json.dumps({"seed": self.seed, "faults": [asdict(f) for f in self.faults]})

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse :meth:`to_json` output."""
        obj = json.loads(text)
        return cls(
            faults=tuple(Fault(**f) for f in obj.get("faults", ())),
            seed=int(obj.get("seed", 0)),
        )

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan in ``REPRO_FAULT_PLAN``, or ``None`` when unset."""
        text = os.environ.get(FAULT_PLAN_ENV)
        return cls.from_json(text) if text else None


class StuckBSRNG(BSRNG):
    """A :class:`BSRNG` that wedges at a constant byte — the classic
    hardware failure the Repetition Count Test exists to catch.

    Emits ``stuck_after`` honest bytes, then the constant ``stuck_byte``
    forever.  ``reseed`` clears the wedge when ``recover_on_reseed`` is
    set, which lets tests exercise the health monitor's degrade path end
    to end.
    """

    def __init__(
        self,
        algorithm: str = "mickey2",
        seed: int = 0,
        lanes: int = 256,
        stuck_byte: int = 0,
        stuck_after: int = 0,
        recover_on_reseed: bool = True,
    ) -> None:
        super().__init__(algorithm, seed=seed, lanes=lanes)
        self.stuck_byte = stuck_byte
        self.stuck_after = stuck_after
        self.recover_on_reseed = recover_on_reseed
        self._emitted = 0
        self._wedged = True

    def _take_bytes(self, n: int) -> np.ndarray:
        honest = super()._take_bytes(n)
        if not self._wedged:
            return honest
        start = self._emitted
        self._emitted += n
        out = np.full(n, self.stuck_byte, dtype=np.uint8)
        good = max(0, min(n, self.stuck_after - start))
        out[:good] = honest[:good]
        return out

    def reseed(self, seed: int | None = None) -> None:
        super().reseed(seed)
        if self.recover_on_reseed:
            self._wedged = False
