#!/usr/bin/env python
"""Validate Prometheus text exposition format (CLI wrapper).

Usage: ``python tools/lint_prometheus.py [FILE]`` (stdin when no file).

The checker itself lives in :mod:`repro.obs.promlint` so tests and the
serve layer can call it as a function; this script only adds file/stdin
handling and an exit status.  When the package is not installed (a bare
checkout), the ``src`` tree next to this script is put on ``sys.path``.

Exits 0 on success; exits 1 with one message per problem otherwise.
"""

from __future__ import annotations

import pathlib
import sys

try:
    from repro.obs.promlint import count_samples, lint
except ImportError:  # bare checkout: resolve against the sibling src tree
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.promlint import count_samples, lint


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        with open(argv[1]) as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    problems = lint(text)
    for p in problems:
        print(f"lint_prometheus: {p}", file=sys.stderr)
    if problems:
        print(f"lint_prometheus: FAILED ({len(problems)} problems)", file=sys.stderr)
        return 1
    print(f"lint_prometheus: OK ({count_samples(text)} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
