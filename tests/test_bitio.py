"""Unit tests for repro.bitio: packing, hex, integers, streams."""

import io

import numpy as np
import pytest

from repro.bitio import (
    BitWriter,
    bits_from_bytes,
    bits_from_hex,
    bits_from_int,
    bits_to_bytes,
    bits_to_hex,
    bits_to_int,
    bits_to_uint32,
    bits_to_uint64,
    parity,
    uint32_to_bits,
    uint64_to_bits,
    write_nist_ascii,
    write_nist_binary,
)
from repro.bitio.bits import as_bit_array
from repro.errors import BitsliceLayoutError


class TestBitByteConversions:
    def test_roundtrip_bytes(self):
        data = bytes(range(256))
        assert bits_to_bytes(bits_from_bytes(data)) == data

    def test_little_bit_order(self):
        bits = bits_from_bytes(b"\x01")
        assert bits[0] == 1 and bits[1:].sum() == 0

    def test_msb_of_byte_is_bit_seven(self):
        bits = bits_from_bytes(b"\x80")
        assert bits[7] == 1 and bits[:7].sum() == 0

    def test_truncation(self):
        assert bits_from_bytes(b"\xff\xff", n_bits=3).tolist() == [1, 1, 1]

    def test_truncation_beyond_length_raises(self):
        with pytest.raises(BitsliceLayoutError):
            bits_from_bytes(b"\x00", n_bits=9)

    def test_empty(self):
        assert bits_from_bytes(b"").size == 0
        assert bits_to_bytes([]) == b""


class TestHex:
    def test_msb_first(self):
        assert bits_from_hex("80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_roundtrip(self):
        h = "deadbeef0123"
        assert bits_to_hex(bits_from_hex(h)) == h

    def test_spaces_ignored(self):
        assert np.array_equal(bits_from_hex("de ad"), bits_from_hex("dead"))

    def test_n_bits(self):
        assert bits_from_hex("f0", n_bits=4).tolist() == [1, 1, 1, 1]


class TestIntConversions:
    @pytest.mark.parametrize("value,n", [(0, 1), (1, 1), (5, 3), (255, 8), (2**40 - 1, 40)])
    def test_roundtrip(self, value, n):
        assert bits_to_int(bits_from_int(value, n)) == value

    def test_lsb_first(self):
        assert bits_from_int(1, 4).tolist() == [1, 0, 0, 0]

    def test_overflow_rejected(self):
        with pytest.raises(BitsliceLayoutError):
            bits_from_int(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(BitsliceLayoutError):
            bits_from_int(-1, 4)


class TestWordConversions:
    def test_uint32_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=96, dtype=np.uint8)
        assert np.array_equal(uint32_to_bits(bits_to_uint32(bits), 96), bits)

    def test_uint64_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=192, dtype=np.uint8)
        assert np.array_equal(uint64_to_bits(bits_to_uint64(bits), 192), bits)

    def test_padding(self):
        words = bits_to_uint32([1])
        assert words.size == 1 and words[0] == 1

    def test_word_zero_is_lowest_bits(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[33] = 1
        w = bits_to_uint32(bits)
        assert w[0] == 0 and w[1] == 2


class TestParity:
    def test_empty(self):
        assert parity([]) == 0

    @pytest.mark.parametrize("bits,expected", [([1], 1), ([1, 1], 0), ([1, 0, 1, 1], 1)])
    def test_values(self, bits, expected):
        assert parity(bits) == expected


class TestValidation:
    def test_non_binary_rejected(self):
        with pytest.raises(BitsliceLayoutError):
            as_bit_array([0, 1, 2])

    def test_bool_accepted(self):
        out = as_bit_array(np.array([True, False]))
        assert out.dtype == np.uint8 and out.tolist() == [1, 0]


class TestStreams:
    def test_bitwriter_accumulates(self):
        w = BitWriter()
        w.write([1, 0, 1])
        w.write([1, 1])
        assert len(w) == 5
        assert w.getvalue().tolist() == [1, 0, 1, 1, 1]

    def test_bitwriter_clear(self):
        w = BitWriter()
        w.write([1])
        w.clear()
        assert len(w) == 0 and w.getvalue().size == 0

    def test_nist_ascii(self, tmp_path):
        path = tmp_path / "bits.txt"
        n = write_nist_ascii([1, 0, 1, 1], path)
        assert n == 4
        assert path.read_text() == "1011"

    def test_nist_ascii_to_buffer(self):
        buf = io.StringIO()
        write_nist_ascii([0, 1], buf)
        assert buf.getvalue() == "01"

    def test_nist_binary(self, tmp_path):
        path = tmp_path / "bits.bin"
        n = write_nist_binary([1] + [0] * 7, path)
        assert n == 1
        assert path.read_bytes() == b"\x01"
