"""Fused K-clock kernels: compiled cipher circuits + renaming schedules.

The virtual SIMD engine's unfused path pays one NumPy dispatch — and one
temporary allocation — per gate per clock, plus a Python-level register
shift (``s[1:] = s[:-1]``) that copies the whole state every clock.  On
the GPU the paper avoids exactly this by fusing the gate network into a
single kernel launch; here the analogue is *source emission*: for each
cipher we generate a Python function that steps **K clocks per call**
with

* the register-renaming schedule compiled in — LFSR shifts become
  constant-index reads into a sliding window (stream ciphers) or a
  compile-time ping-pong buffer swap (MICKEY), so the per-clock state
  copy disappears entirely and is replaced by one window rebase per K
  clocks,
* every gate writing into a preallocated scratch register through the
  ufunc ``out=`` parameter (no per-gate temporaries), and
* keystream planes written straight into the caller's output rows (the
  coalesced-store ideal of §4.5 — no staging buffer round trip).

Kernels are compiled once and kept in a process-global
:class:`KernelCache` keyed by ``(cipher, word-dtype, clocks-per-call)``
plus a version stamp; bumping :data:`KERNEL_CACHE_VERSION` (or a
cipher's entry in :data:`CIRCUIT_VERSIONS`) orphans stale entries, and
per-bank execution contexts check kernel identity so they rebuild after
an invalidation.  The compiled function is pure; all mutable scratch
lives in a per-bank context (:meth:`FusedKernel.make_context`), so two
banks sharing a cached kernel can never alias each other's buffers.

The conformance contract — fused streams are bit-identical to the
unfused and reference paths — is enforced by
``tests/test_fused_conformance.py`` and ``repro selftest --fused``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import SpecificationError

__all__ = [
    "KERNEL_CACHE_VERSION",
    "CIRCUIT_VERSIONS",
    "FusedKernel",
    "KernelCache",
    "KERNEL_CACHE",
    "get_kernel",
    "fused_generate",
]

#: Bump to orphan every cached kernel (e.g. when the emitters change).
KERNEL_CACHE_VERSION = 1

#: Per-cipher circuit versions; bump one to invalidate only its kernels.
CIRCUIT_VERSIONS = {"mickey2": 1, "grain": 1, "trivium": 1, "aes128ctr": 1}

#: Default clock batch per fused call (CLI/BSRNG override per instance).
DEFAULT_CLOCKS_PER_CALL = 32


@dataclass(frozen=True)
class FusedKernel:
    """A compiled fused kernel plus its per-bank context factory.

    ``fn(bank, out, base, ctx)`` advances *bank* by ``clocks`` clocks,
    writing ``clocks * rows_per_clock`` keystream plane rows into
    ``out[base:...]``.  ``ctx`` must come from :meth:`make_context` on
    the same bank (geometry-matched scratch, constant planes, and — for
    AES — key-derived round-key flip indices).
    """

    cipher: str
    clocks: int
    dtype: np.dtype
    rows_per_clock: int
    source: str
    fn: Callable = field(repr=False)
    _context_builder: Callable = field(repr=False)

    def make_context(self, bank) -> dict:
        """Allocate the per-bank scratch/constant bundle for this kernel."""
        return self._context_builder(bank)


class KernelCache:
    """Process-global cache of compiled fused kernels.

    Keyed by ``(cipher, dtype, clocks, version)``; thread-safe (the
    double-buffered refill pipeline compiles from a worker thread).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kernels: dict[tuple, FusedKernel] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, cipher: str, dtype, clocks: int) -> tuple:
        version = (KERNEL_CACHE_VERSION, CIRCUIT_VERSIONS[cipher])
        return (cipher, np.dtype(dtype).name, int(clocks), version)

    def get(self, cipher: str, dtype, clocks: int) -> FusedKernel:
        """Fetch (or compile and cache) the kernel for one configuration."""
        if cipher not in CIRCUIT_VERSIONS:
            raise SpecificationError(f"no fused kernel emitter for {cipher!r}")
        if clocks <= 0:
            raise SpecificationError("clocks per call must be positive")
        key = self._key(cipher, dtype, clocks)
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self.hits += 1
                obs.inc("repro_kernel_cache_hits_total", 1, cipher=cipher)
                return kernel
            self.misses += 1
        # Compile outside the lock (emission is slow for large K); a rare
        # duplicate compile just overwrites with an identical kernel.
        kernel = _BUILDERS[cipher](int(clocks), np.dtype(dtype))
        with self._lock:
            self._kernels[key] = kernel
        obs.inc("repro_kernel_cache_misses_total", 1, cipher=cipher)
        obs.set_gauge("repro_kernel_cache_size", len(self._kernels))
        return kernel

    def invalidate(self, cipher: str | None = None) -> int:
        """Drop cached kernels (all, or one cipher's); returns the count."""
        with self._lock:
            if cipher is None:
                n = len(self._kernels)
                self._kernels.clear()
            else:
                stale = [k for k in self._kernels if k[0] == cipher]
                n = len(stale)
                for k in stale:
                    del self._kernels[k]
        return n

    def stats(self) -> dict:
        """Hit/miss/size counters (for tests and ``repro stats``)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._kernels)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)


#: The process-global kernel cache all banks share.
KERNEL_CACHE = KernelCache()


def get_kernel(cipher: str, dtype, clocks: int) -> FusedKernel:
    """Shorthand for ``KERNEL_CACHE.get(...)``."""
    return KERNEL_CACHE.get(cipher, dtype, clocks)


def _context_for(bank, kernel: FusedKernel) -> dict:
    """The bank's context for *kernel*, rebuilt if the kernel changed.

    Contexts are stored on the bank keyed by clock count and stamped
    with the kernel object they were built for, so a cache invalidation
    (new kernel object) transparently rebuilds the scratch bundle.
    """
    contexts = getattr(bank, "_fused_ctx", None)
    if contexts is None:
        contexts = bank._fused_ctx = {}
    entry = contexts.get(kernel.clocks)
    if entry is None or entry[0] is not kernel:
        ctx = kernel.make_context(bank)
        contexts[kernel.clocks] = (kernel, ctx)
        return ctx
    return entry[1]


def fused_generate(bank, cipher: str, n_clocks: int, out: np.ndarray, base: int = 0) -> None:
    """Advance *bank* by ``n_clocks`` clocks through fused kernels.

    Splits the request into full ``engine.clocks_per_call`` batches plus
    one tail kernel, so any row count is served without overshooting the
    cipher state.  Writes ``n_clocks * rows_per_clock`` rows into *out*
    starting at row *base*.
    """
    engine = bank.engine
    K = max(1, int(getattr(engine, "clocks_per_call", DEFAULT_CLOCKS_PER_CALL)))
    done = 0
    calls = 0
    rows_per_clock = 1
    while done < n_clocks:
        k = min(K, n_clocks - done)
        kernel = get_kernel(cipher, engine.dtype, k)
        rows_per_clock = kernel.rows_per_clock
        ctx = _context_for(bank, kernel)
        kernel.fn(bank, out, base + done * rows_per_clock, ctx)
        done += k
        calls += 1
    if obs.metrics_enabled():
        obs.inc("repro_fused_kernel_calls_total", calls, algorithm=cipher)
        obs.inc("repro_fused_clocks_total", n_clocks, algorithm=cipher)
        obs.observe(
            "repro_fused_clocks_per_call", n_clocks / max(calls, 1), algorithm=cipher
        )


def _compile(source: str, func_name: str, namespace: dict | None = None) -> Callable:
    ns: dict = {"np": np}
    if namespace:
        ns.update(namespace)
    exec(source, ns)  # noqa: S102 - our own generated source
    return ns[func_name]


# ---------------------------------------------------------------------------
# Trivium: three shift registers -> three sliding windows.
# ---------------------------------------------------------------------------
def _build_trivium(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers.trivium import (
        STATE_BITS,
        _B_HEAD,
        _C_HEAD,
        _T1_AND,
        _T1_FWD,
        _T1_TAPS,
        _T2_AND,
        _T2_FWD,
        _T2_TAPS,
        _T3_AND,
        _T3_FWD,
        _T3_TAPS,
    )

    LA, LB, LC = _B_HEAD, _C_HEAD - _B_HEAD, STATE_BITS - _C_HEAD
    L = [
        f"def _fused_trivium(bank, out, base, c):",
        f'    """Generated fused Trivium kernel: {K} clocks per call."""',
        "    s = bank.s",
        "    ea = c['ea']; eb = c['eb']; ec = c['ec']",
        "    w0 = c['w0']; w1 = c['w1']; w2 = c['w2']; w3 = c['w3']",
        # window load: logical s[i] at clock t lives at E*[K - t + local(i)]
        f"    ea[{K}:] = s[0:{_B_HEAD}]",
        f"    eb[{K}:] = s[{_B_HEAD}:{_C_HEAD}]",
        f"    ec[{K}:] = s[{_C_HEAD}:{STATE_BITS}]",
    ]

    def emit_clock(t: int) -> None:
        o = K - t

        def ref(g: int) -> str:
            if g < _B_HEAD:
                return f"ea[{o + g}]"
            if g < _C_HEAD:
                return f"eb[{o + g - _B_HEAD}]"
            return f"ec[{o + g - _C_HEAD}]"

        L.append(f"    np.bitwise_xor({ref(_T1_TAPS[0])}, {ref(_T1_TAPS[1])}, out=w1)")
        L.append(f"    np.bitwise_xor({ref(_T2_TAPS[0])}, {ref(_T2_TAPS[1])}, out=w2)")
        L.append(f"    np.bitwise_xor({ref(_T3_TAPS[0])}, {ref(_T3_TAPS[1])}, out=w3)")
        L.append("    np.bitwise_xor(w1, w2, out=w0)")
        L.append(f"    np.bitwise_xor(w0, w3, out=out[base + {t}])")
        L.append(f"    np.bitwise_and({ref(_T1_AND[0])}, {ref(_T1_AND[1])}, out=w0)")
        L.append("    np.bitwise_xor(w1, w0, out=w1)")
        L.append(f"    np.bitwise_xor(w1, {ref(_T1_FWD)}, out=eb[{o - 1}])")
        L.append(f"    np.bitwise_and({ref(_T2_AND[0])}, {ref(_T2_AND[1])}, out=w0)")
        L.append("    np.bitwise_xor(w2, w0, out=w2)")
        L.append(f"    np.bitwise_xor(w2, {ref(_T2_FWD)}, out=ec[{o - 1}])")
        L.append(f"    np.bitwise_and({ref(_T3_AND[0])}, {ref(_T3_AND[1])}, out=w0)")
        L.append("    np.bitwise_xor(w3, w0, out=w3)")
        L.append(f"    np.bitwise_xor(w3, {ref(_T3_FWD)}, out=ea[{o - 1}])")

    for t in range(K):
        emit_clock(t)
    # window rebase: one copy per K clocks instead of one per clock
    L.append(f"    s[0:{_B_HEAD}] = ea[0:{LA}]")
    L.append(f"    s[{_B_HEAD}:{_C_HEAD}] = eb[0:{LB}]")
    L.append(f"    s[{_C_HEAD}:{STATE_BITS}] = ec[0:{LC}]")
    source = "\n".join(L) + "\n"

    def make_context(bank) -> dict:
        nw, dt = bank.engine.n_words, bank.engine.dtype
        return {
            "ea": np.empty((K + LA, nw), dt),
            "eb": np.empty((K + LB, nw), dt),
            "ec": np.empty((K + LC, nw), dt),
            "w0": np.empty(nw, dt),
            "w1": np.empty(nw, dt),
            "w2": np.empty(nw, dt),
            "w3": np.empty(nw, dt),
        }

    return FusedKernel(
        "trivium", K, np.dtype(dtype), 1, source, _compile(source, "_fused_trivium"), make_context
    )


# ---------------------------------------------------------------------------
# Grain v1: LFSR + NFSR -> forward sliding windows with block-batched
# feedback.  The deepest state tap is index 63, so feedback bits for up
# to 16 consecutive clocks depend only on already-materialized window
# rows — one (16, nw) slice op replaces 16 single-row ops.  The filter
# output never feeds back in keystream mode, so z for all K clocks is
# computed in bulk at the end, straight into the caller's output rows.
# ---------------------------------------------------------------------------
_GRAIN_BLOCK = 16  # 80 - max feedback tap (63) = 17; 16 keeps margin


def _build_grain(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers.grain import LFSR_TAPS, OUTPUT_TAPS, STATE_BITS

    L = [
        "def _fused_grain(bank, out, base, c):",
        f'    """Generated fused Grain v1 kernel: {K} clocks per call."""',
        "    s = bank.s; b = bank.b",
        "    es = c['es']; eb = c['eb']",
        "    P16 = c['p16']; T52_ = c['t52']; T28_ = c['t28']; T60_ = c['t60']",
        "    X = c['x']; Y = c['y']",
        f"    es[0:{STATE_BITS}] = s",
        f"    eb[0:{STATE_BITS}] = b",
    ]
    for tb in range(0, K, _GRAIN_BLOCK):
        B = min(_GRAIN_BLOCK, K - tb)

        def S(i: int) -> str:
            return f"es[{tb + i}:{tb + i + B}]"

        def Bb(i: int) -> str:
            return f"eb[{tb + i}:{tb + i + B}]"

        L.append(f"    F = es[{tb + STATE_BITS}:{tb + STATE_BITS + B}]")
        L.append(f"    G = eb[{tb + STATE_BITS}:{tb + STATE_BITS + B}]")
        L.append(f"    P = P16[0:{B}]; T52 = T52_[0:{B}]; T28 = T28_[0:{B}]; T60 = T60_[0:{B}]")
        # LFSR feedback block: fs = xor of the six taps
        L.append(f"    np.bitwise_xor({S(LFSR_TAPS[0])}, {S(LFSR_TAPS[1])}, out=F)")
        for tap in LFSR_TAPS[2:]:
            L.append(f"    np.bitwise_xor(F, {S(tap)}, out=F)")
        # NFSR feedback block: fb = s0 ^ g(b); shared monomials first
        L.append(f"    np.bitwise_and({Bb(60)}, {Bb(52)}, out=T52)")
        L.append(f"    np.bitwise_and({Bb(33)}, {Bb(28)}, out=T28)")
        L.append(f"    np.bitwise_and({Bb(63)}, {Bb(60)}, out=T60)")
        L.append(f"    np.bitwise_xor({S(0)}, {Bb(62)}, out=G)")
        for tap in (60, 52, 45, 37, 33, 28, 21, 14, 9, 0):
            L.append(f"    np.bitwise_xor(G, {Bb(tap)}, out=G)")
        L.append("    np.bitwise_xor(G, T60, out=G)")
        products = (
            (Bb(37), Bb(33)),
            (Bb(15), Bb(9)),
            ("T52", Bb(45)),
            ("T28", Bb(21)),
            (Bb(63), Bb(45), Bb(28), Bb(9)),
            ("T52", Bb(37), Bb(33)),
            ("T60", Bb(21), Bb(15)),
            ("T52", "T60", Bb(45), Bb(37)),
            ("T28", Bb(21), Bb(15), Bb(9)),
            (Bb(52), Bb(45), Bb(37), "T28", Bb(21)),
        )
        for terms in products:
            L.append(f"    np.bitwise_and({terms[0]}, {terms[1]}, out=P)")
            for extra in terms[2:]:
                L.append(f"    np.bitwise_and(P, {extra}, out=P)")
            L.append("    np.bitwise_xor(G, P, out=G)")
    # Bulk filter: z_t for every clock at once, written into the output
    L.append(f"    Z = out[base:base + {K}]")
    x0, x1, x2, x3, x4 = (
        f"es[3:{3 + K}]",
        f"es[25:{25 + K}]",
        f"es[46:{46 + K}]",
        f"es[64:{64 + K}]",
        f"eb[63:{63 + K}]",
    )
    L.append(f"    np.bitwise_and({x0}, {x2}, out=X)")  # shared x0&x2
    L.append(f"    np.bitwise_xor({x1}, {x4}, out=Z)")
    for pair in ((x0, x3), (x2, x3), (x3, x4), ("X", x1), ("X", x3), ("X", x4)):
        L.append(f"    np.bitwise_and({pair[0]}, {pair[1]}, out=Y)")
        L.append("    np.bitwise_xor(Z, Y, out=Z)")
    for triple in ((x1, x2, x4), (x2, x3, x4)):
        L.append(f"    np.bitwise_and({triple[0]}, {triple[1]}, out=Y)")
        L.append(f"    np.bitwise_and(Y, {triple[2]}, out=Y)")
        L.append("    np.bitwise_xor(Z, Y, out=Z)")
    for k in OUTPUT_TAPS:
        L.append(f"    np.bitwise_xor(Z, eb[{k}:{k + K}], out=Z)")
    # window rebase
    L.append(f"    s[:] = es[{K}:{K + STATE_BITS}]")
    L.append(f"    b[:] = eb[{K}:{K + STATE_BITS}]")
    source = "\n".join(L) + "\n"

    def make_context(bank) -> dict:
        nw, dt = bank.engine.n_words, bank.engine.dtype
        blk = min(_GRAIN_BLOCK, K)
        return {
            "es": np.empty((K + STATE_BITS, nw), dt),
            "eb": np.empty((K + STATE_BITS, nw), dt),
            "p16": np.empty((blk, nw), dt),
            "t52": np.empty((blk, nw), dt),
            "t28": np.empty((blk, nw), dt),
            "t60": np.empty((blk, nw), dt),
            "x": np.empty((K, nw), dt),
            "y": np.empty((K, nw), dt),
        }

    return FusedKernel(
        "grain", K, np.dtype(dtype), 1, source, _compile(source, "_fused_grain"), make_context
    )


# ---------------------------------------------------------------------------
# MICKEY 2.0: irregular clocking -> compile-time ping-pong buffer swap.
# ---------------------------------------------------------------------------
def _build_mickey2(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers._mickey_tables import (
        COMP0_BITS,
        COMP1_BITS,
        FB0_BITS,
        FB1_BITS,
        R_TAPS_BITS,
    )
    from repro.ciphers.mickey import STATE_BITS

    fb0 = FB0_BITS.astype(bool)
    fb1 = FB1_BITS.astype(bool)
    # The spec's "feedback & (ctrl ? FB1 : FB0)" per-row select collapses
    # into three constant index sets: rows in both masks always take the
    # feedback, FB1-only rows take it when ctrl_s is set, FB0-only when
    # clear.  The fancy-index RMW replaces two (100, nw) mask products.
    ns = {
        "_RT": np.flatnonzero(R_TAPS_BITS),
        "_IB": np.flatnonzero(fb0 & fb1),
        "_I1": np.flatnonzero(fb1 & ~fb0),
        "_I0": np.flatnonzero(fb0 & ~fb1),
    }
    SB_ = STATE_BITS  # 100
    L = [
        "def _fused_mickey2(bank, out, base, c):",
        f'    """Generated fused MICKEY 2.0 keystream kernel: {K} clocks per call."""',
        "    R0 = bank.R; S0 = bank.S",
        "    RB = c['RB']; SB = c['SB']",
        "    T = c['T']; M = c['M']; M2 = c['M2']",
        "    cr = c['cr']; cs = c['cs']; w = c['w']",
        "    comp0 = c['comp0']; comp1 = c['comp1']",
    ]
    for t in range(K):
        # keystream clocking: input plane is zero, so fb_r = R[99],
        # fb_s = S[99] — the mixing=False specialization baked in.
        R, S = ("R0", "S0") if t % 2 == 0 else ("RB", "SB")
        Rn, Sn = ("RB", "SB") if t % 2 == 0 else ("R0", "S0")
        L += [
            f"    np.bitwise_xor({R}[0], {S}[0], out=out[base + {t}])",
            f"    np.bitwise_xor({S}[34], {R}[67], out=cr)",
            f"    np.bitwise_xor({S}[67], {R}[33], out=cs)",
            # Rn[i] = R[i-1] ^ (R[i] & cr): the register shift folds into
            # the control mix, so no standalone 100-row copy per clock.
            f"    np.bitwise_and({R}, cr, out=T)",
            f"    np.bitwise_xor(T[1:{SB_}], {R}[0:{SB_ - 1}], out={Rn}[1:{SB_}])",
            f"    {Rn}[0] = T[0]",
            f"    {Rn}[_RT] ^= {R}[99]",
            f"    np.bitwise_xor({S}[1:99], comp0, out=M)",
            f"    np.bitwise_xor({S}[2:{SB_}], comp1, out=M2)",
            "    np.bitwise_and(M, M2, out=M)",
            f"    np.bitwise_xor({S}[0:98], M, out={Sn}[1:99])",
            f"    {Sn}[0] = 0",
            f"    {Sn}[99] = {S}[98]",
        ]
        if ns["_IB"].size:
            L.append(f"    {Sn}[_IB] ^= {S}[99]")
        if ns["_I1"].size:
            L.append(f"    np.bitwise_and(cs, {S}[99], out=w)")
            L.append(f"    {Sn}[_I1] ^= w")
        if ns["_I0"].size:
            L.append("    np.bitwise_not(cs, out=cs)")
            L.append(f"    np.bitwise_and(cs, {S}[99], out=w)")
            L.append(f"    {Sn}[_I0] ^= w")
    if K % 2 == 1:
        # odd clock count: the final state landed in the scratch pair
        L.append("    R0[...] = RB")
        L.append("    S0[...] = SB")
    source = "\n".join(L) + "\n"

    def make_context(bank) -> dict:
        from repro.ciphers.mickey_bitsliced import _const_column

        nw, dt = bank.engine.n_words, bank.engine.dtype
        return {
            "RB": np.empty((SB_, nw), dt),
            "SB": np.empty((SB_, nw), dt),
            "T": np.empty((SB_, nw), dt),
            "M": np.empty((SB_ - 2, nw), dt),
            "M2": np.empty((SB_ - 2, nw), dt),
            "cr": np.empty(nw, dt),
            "cs": np.empty(nw, dt),
            "w": np.empty(nw, dt),
            "comp0": _const_column(COMP0_BITS[1:99], nw, dt),
            "comp1": _const_column(COMP1_BITS[1:99], nw, dt),
        }

    return FusedKernel(
        "mickey2", K, np.dtype(dtype), 1, source, _compile(source, "_fused_mickey2", ns), make_context
    )


# ---------------------------------------------------------------------------
# AES-128-CTR: in-place S-box circuit + view-based round pipeline.
# ---------------------------------------------------------------------------
_AES_SBOX_INPLACE: tuple | None = None


def _aes_sbox_inplace() -> tuple:
    global _AES_SBOX_INPLACE
    if _AES_SBOX_INPLACE is None:
        from repro.ciphers.aes_bitsliced import sbox_circuit
        from repro.codegen.emit import compile_inplace

        _AES_SBOX_INPLACE = compile_inplace(sbox_circuit(), func_name="_sbox_inplace")
    return _AES_SBOX_INPLACE


def _build_aes(K: int, dtype: np.dtype) -> FusedKernel:
    from repro.ciphers.aes_bitsliced import _SHIFT_ROWS_PERM

    sbox_fn, n_regs = _aes_sbox_inplace()
    perm = _SHIFT_ROWS_PERM

    def make_context(bank) -> dict:
        nw, dt = bank.engine.n_words, bank.engine.dtype
        st_a = np.empty((16, 8, nw), dt)
        st_b = np.empty((16, 8, nw), dt)
        return {
            "st": (st_a, st_b),
            "views": (
                [st_a[:, i, :] for i in range(8)],
                [st_b[:, i, :] for i in range(8)],
            ),
            "regs": [np.empty((16, nw), dt) for _ in range(n_regs)],
            "ones": np.full((16, nw), np.iinfo(dt).max, dt),
            "zeros": np.zeros((16, nw), dt),
            "ones_row": np.full(nw, np.iinfo(dt).max, dt),
            "t": np.empty((4, 8, nw), dt),
            "u": np.empty((4, 8, nw), dt),
            "v": np.empty((4, 8, nw), dt),
            # round-key bit flips as flat plane indices (key-dependent:
            # the AES bank clears _fused_ctx on load() to rebuild these)
            "ark_idx": [np.flatnonzero(m.reshape(128)) for m in bank._rk_masks],
        }

    def fn(bank, out, base, c):
        from repro.core.bitslice import bitslice_bytes

        st_a, st_b = c["st"]
        views_a, views_b = c["views"]
        regs, ones, zeros = c["regs"], c["ones"], c["zeros"]
        ones_row = c["ones_row"]
        t, u, v = c["t"], c["u"], c["v"]
        ark = c["ark_idx"]
        for k in range(K):
            blocks = bank._counter_block_bytes(bank._blocks_done)
            bank._blocks_done += 1
            np.copyto(st_a.reshape(128, -1), bitslice_bytes(blocks, dtype=st_a.dtype))
            cur, oth = st_a, st_b
            vcur, voth = views_a, views_b
            cur.reshape(128, -1)[ark[0]] ^= ones_row
            for rnd in range(1, 10):
                sbox_fn(*vcur, voth, regs, ones, zeros)  # SubBytes: cur -> oth
                np.take(oth.reshape(16, -1), perm, axis=0, out=cur.reshape(16, -1))
                # MixColumns: cur -> oth, fully in place
                cols = cur.reshape(4, 4, 8, -1)
                dcols = oth.reshape(4, 4, 8, -1)
                np.bitwise_xor(cols[:, 0], cols[:, 1], out=t)
                np.bitwise_xor(t, cols[:, 2], out=t)
                np.bitwise_xor(t, cols[:, 3], out=t)
                for r in range(4):
                    np.bitwise_xor(cols[:, r], cols[:, (r + 1) % 4], out=u)
                    # xtime(u) -> v (GF(2^8) doubling at bit level)
                    np.copyto(v[:, 0], u[:, 7])
                    np.bitwise_xor(u[:, 0], u[:, 7], out=v[:, 1])
                    np.copyto(v[:, 2], u[:, 1])
                    np.bitwise_xor(u[:, 2], u[:, 7], out=v[:, 3])
                    np.bitwise_xor(u[:, 3], u[:, 7], out=v[:, 4])
                    np.copyto(v[:, 5], u[:, 4])
                    np.copyto(v[:, 6], u[:, 5])
                    np.copyto(v[:, 7], u[:, 6])
                    np.bitwise_xor(cols[:, r], t, out=dcols[:, r])
                    np.bitwise_xor(dcols[:, r], v, out=dcols[:, r])
                oth.reshape(128, -1)[ark[rnd]] ^= ones_row
                cur, oth = oth, cur
                vcur, voth = voth, vcur
            sbox_fn(*vcur, voth, regs, ones, zeros)
            np.take(oth.reshape(16, -1), perm, axis=0, out=cur.reshape(16, -1))
            flat = cur.reshape(128, -1)
            flat[ark[10]] ^= ones_row
            out[base + 128 * k : base + 128 * (k + 1)] = flat

    source = (
        f"# aes128ctr fused kernel: {K} clocks/call, closure over the in-place\n"
        f"# S-box circuit ({n_regs} registers); rounds ping-pong two (16, 8, nw)\n"
        "# plane stacks with view-based SubBytes/ShiftRows/MixColumns/ARK.\n"
    )
    return FusedKernel("aes128ctr", K, np.dtype(dtype), 128, source, fn, make_context)


_BUILDERS = {
    "trivium": _build_trivium,
    "grain": _build_grain,
    "mickey2": _build_mickey2,
    "aes128ctr": _build_aes,
}
