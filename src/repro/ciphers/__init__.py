"""Cipher implementations used as CSPRNG cores.

Each algorithm ships in two forms:

* a **reference** implementation — bit-serial, row-major, written straight
  from the published specification; the correctness oracle, and
* a **bitsliced** implementation — column-major over the virtual SIMD
  engine, the paper's contribution; cross-validated lane-by-lane against
  the reference.

Algorithms: MICKEY 2.0 (eSTREAM profile 2), Grain v1 (eSTREAM profile 2),
Trivium (eSTREAM profile 2; an extension beyond the paper's three) and
AES-128 in CTR mode (FIPS-197 + SP 800-38A).
"""

from repro.ciphers.aes import AES128, aes128_ctr_keystream
from repro.ciphers.aes_bitsliced import BitslicedAESCTR
from repro.ciphers.grain import GrainV1
from repro.ciphers.grain_bitsliced import BitslicedGrain
from repro.ciphers.mickey import Mickey2
from repro.ciphers.mickey_bitsliced import BitslicedMickey2
from repro.ciphers.mickey_generated import GeneratedMickey2
from repro.ciphers.trivium import Trivium
from repro.ciphers.trivium_bitsliced import BitslicedTrivium

__all__ = [
    "Mickey2",
    "BitslicedMickey2",
    "GeneratedMickey2",
    "GrainV1",
    "BitslicedGrain",
    "Trivium",
    "BitslicedTrivium",
    "AES128",
    "aes128_ctr_keystream",
    "BitslicedAESCTR",
]
