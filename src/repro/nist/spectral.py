"""SP 800-22 test 6: Discrete Fourier Transform (Spectral)."""

from __future__ import annotations

import math

import numpy as np

from repro.nist._utils import check_bits, erfc, plus_minus_one
from repro.nist.result import TestResult

__all__ = ["dft_test"]


def dft_test(bits) -> TestResult:
    """Detects periodic features: too many peaks above the 95% threshold.

    ``T = √(n ln(1/0.05))``; under randomness 95% of the first ``n/2``
    DFT magnitudes fall below T.
    """
    arr = check_bits(bits, 1000, "dft")
    n = arr.size
    x = plus_minus_one(arr)
    mags = np.abs(np.fft.rfft(x))[: n // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * n)
    n0 = 0.95 * n / 2.0
    n1 = int(np.count_nonzero(mags < threshold))
    d = (n1 - n0) / math.sqrt(n * 0.95 * 0.05 / 4.0)
    p = float(erfc(abs(d) / math.sqrt(2.0)))
    return TestResult("FFT", [p], {"N1": n1, "N0": n0, "d": d, "threshold": threshold})
