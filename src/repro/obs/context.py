"""Trace-context propagation across threads, tasks, and processes.

A :class:`TraceContext` is the pair ``(trace_id, span_id)`` — *which*
request this work belongs to and *which* span is its parent.  The serve
daemon mints one per HTTP request (or adopts the caller's from
``X-Repro-Trace-Id`` / ``X-Repro-Parent-Span`` headers), and the context
then travels two ways:

* **within a process** via a :class:`contextvars.ContextVar`, which is
  what makes it safe under asyncio — each task sees the context that was
  current when it was created, and interleaved requests cannot clobber
  each other the way a ``threading.local`` would;
* **across processes and executor threads** explicitly, as a plain
  ``(trace_id, span_id)`` wire tuple riding in worker job tuples and
  fleet :class:`~repro.fleet.transport.ChunkJob` fields.  ``contextvars``
  do *not* cross ``run_in_executor`` or ``multiprocessing`` boundaries,
  so every hop that leaves the event loop re-activates the context from
  the wire form on the far side.

Identifier scheme: trace ids are 32 hex chars from ``os.urandom`` (one
per root span — cheap enough); span ids are 16 hex chars built from the
pid and a process-local counter, so they are unique across the fleet
without any randomness on the per-span hot path.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "TRACE_ID_HEADER",
    "PARENT_SPAN_HEADER",
    "new_span_id",
    "current",
    "current_wire",
    "activate",
]

#: Request/response header carrying the 32-hex trace id.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
#: Request header naming the caller's span (the server span's parent).
PARENT_SPAN_HEADER = "X-Repro-Parent-Span"

_counter = itertools.count(1)


def new_span_id() -> str:
    """A 16-hex span id unique across processes (pid + local counter)."""
    return f"{os.getpid() & 0xFFFFFFFF:08x}{next(_counter) & 0xFFFFFFFF:08x}"


def _is_hex(value: str, length: int) -> bool:
    if len(value) != length:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class TraceContext:
    """One point on a trace: the trace it belongs to and the current span."""

    trace_id: str
    span_id: str

    @staticmethod
    def mint() -> "TraceContext":
        """A fresh root context (new trace id, new span id)."""
        return TraceContext(os.urandom(16).hex(), new_span_id())

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — the context a child span runs under."""
        return TraceContext(self.trace_id, new_span_id())

    # -- wire form (job tuples, ChunkJob.trace) -----------------------------------
    def to_wire(self) -> tuple[str, str]:
        """Picklable ``(trace_id, span_id)`` pair for cross-process hops."""
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_wire(wire) -> "TraceContext | None":
        """Rebuild from :meth:`to_wire` output; ``None`` passes through."""
        if wire is None:
            return None
        trace_id, span_id = wire
        return TraceContext(str(trace_id), str(span_id))

    # -- HTTP header form ----------------------------------------------------------
    def to_headers(self) -> dict[str, str]:
        """Outgoing propagation headers for an HTTP hop."""
        return {TRACE_ID_HEADER: self.trace_id, PARENT_SPAN_HEADER: self.span_id}

    @staticmethod
    def from_headers(headers) -> "TraceContext | None":
        """Parse propagation headers (case-insensitive mapping).

        Returns ``None`` when the trace-id header is absent or malformed
        — a bad caller must never break request handling.  A missing or
        malformed parent span degrades to a fresh span id (the trace is
        still joined, just without the cross-service parent link).
        """
        trace_id = headers.get(TRACE_ID_HEADER.lower()) or headers.get(TRACE_ID_HEADER)
        if not trace_id or not _is_hex(trace_id, 32):
            return None
        parent = headers.get(PARENT_SPAN_HEADER.lower()) or headers.get(
            PARENT_SPAN_HEADER
        )
        if not parent or not _is_hex(parent, 16):
            parent = new_span_id()
        return TraceContext(trace_id, parent)


_current: ContextVar[TraceContext | None] = ContextVar("repro_trace", default=None)


def current() -> TraceContext | None:
    """The trace context of the running task/thread, or ``None``."""
    return _current.get()


def current_wire() -> tuple[str, str] | None:
    """Wire form of :func:`current` — what job builders stamp on tuples."""
    ctx = _current.get()
    return None if ctx is None else ctx.to_wire()


@contextmanager
def activate(ctx: TraceContext | None):
    """Make *ctx* current for the duration of the block."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


# internal: token-based set/reset used by the live span context manager,
# where a generator-based contextmanager per span would be pure overhead
def _set(ctx: TraceContext | None):
    return _current.set(ctx)


def _reset(token) -> None:
    _current.reset(token)
