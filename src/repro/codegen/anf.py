"""Truth-table → circuit synthesis via algebraic normal form.

Any n-input boolean function has a unique ANF (Zhegalkin polynomial)

.. math:: f(x) = \\bigoplus_{m \\subseteq \\{0..n-1\\}} a_m \\prod_{i \\in m} x_i

whose coefficients fall out of the binary Möbius transform of the truth
table.  Synthesizing a *shared-monomial* circuit for several outputs at
once (all eight AES S-box output bits, say) lets every product term be
computed exactly once, with each monomial built from a smaller one by a
single AND — a dynamic program over subset masks.

This is the general-purpose engine behind the bitsliced AES S-box and a
faithful stand-in for the paper's "automation technique to generate such
a bit-level description".
"""

from __future__ import annotations

import numpy as np

from repro.codegen.circuit import Circuit, CircuitBuilder, Node
from repro.errors import SpecificationError

__all__ = ["anf_from_truth_table", "circuit_from_truth_tables", "sbox_truth_tables"]


def anf_from_truth_table(table) -> np.ndarray:
    """Möbius transform: truth table (length ``2^n``) → ANF coefficients.

    ``result[m] == 1`` iff monomial ``m`` (a bitmask of participating
    inputs; ``m == 0`` is the constant term) appears in the ANF.  Input
    index convention: table position ``p`` assigns ``x_i = (p >> i) & 1``.
    """
    coeffs = np.array(table, dtype=np.uint8).copy()
    n_points = coeffs.size
    if n_points == 0 or n_points & (n_points - 1):
        raise SpecificationError("truth table length must be a power of two")
    if coeffs.max(initial=0) > 1:
        raise SpecificationError("truth table must contain only 0/1")
    n = n_points.bit_length() - 1
    # In-place butterfly: a[m] ^= a[m ^ bit] for every m with the bit set.
    view = coeffs
    for i in range(n):
        step = 1 << i
        shaped = view.reshape(-1, 2 * step)
        shaped[:, step:] ^= shaped[:, :step]
    return coeffs


def _monomial_plan(masks: set[int]) -> list[tuple[int, int, int]]:
    """Dependency-ordered AND plan for a set of monomial masks.

    Returns ``[(mask, sub_mask, input_index), ...]`` where ``mask`` is
    produced by ANDing the value of ``sub_mask`` with input
    ``input_index``; single-variable and empty masks need no entry.
    Intermediate masks are inserted as needed (this is where cross-output
    sharing happens).
    """
    todo = sorted(m for m in masks if m and m & (m - 1))  # popcount >= 2
    have = set(m for m in masks if not (m and m & (m - 1))) | {0}
    plan: list[tuple[int, int, int]] = []

    def ensure(mask: int) -> None:
        if mask in have:
            return
        low = mask & -mask
        rest = mask ^ low
        ensure(rest)
        plan.append((mask, rest, low.bit_length() - 1))
        have.add(mask)

    for m in todo:
        ensure(m)
    return plan


def circuit_from_truth_tables(tables, input_names=None, output_names=None) -> Circuit:
    """Synthesize one shared circuit computing several truth tables.

    Parameters
    ----------
    tables:
        Sequence of truth tables, each of length ``2^n`` for the same
        ``n`` (e.g. the 8 output-bit tables of an 8-bit S-box).
    input_names / output_names:
        Optional naming; defaults to ``x0..`` and ``y0..``.
    """
    tables = [np.asarray(t, dtype=np.uint8) for t in tables]
    if not tables:
        raise SpecificationError("need at least one truth table")
    n_points = tables[0].size
    if any(t.size != n_points for t in tables):
        raise SpecificationError("all truth tables must have the same length")
    n = n_points.bit_length() - 1
    input_names = list(input_names) if input_names is not None else [f"x{i}" for i in range(n)]
    output_names = list(output_names) if output_names is not None else [f"y{j}" for j in range(len(tables))]
    if len(input_names) != n or len(output_names) != len(tables):
        raise SpecificationError("name counts do not match table dimensions")

    anfs = [anf_from_truth_table(t) for t in tables]
    per_output_masks = [set(int(m) for m in np.flatnonzero(a)) for a in anfs]
    all_masks = set().union(*per_output_masks) if per_output_masks else set()

    b = CircuitBuilder()
    xs = b.inputs(input_names)
    value: dict[int, Node] = {0: b.one}
    for i in range(n):
        value[1 << i] = xs[i]
    for mask, rest, idx in _monomial_plan(all_masks):
        value[mask] = b.and_(value[rest], xs[idx])
    for name, masks in zip(output_names, per_output_masks):
        b.output(name, b.xor_many(value[m] for m in sorted(masks)))
    return b.build()


def sbox_truth_tables(sbox) -> list[np.ndarray]:
    """Split a byte-substitution table into 8 per-output-bit truth tables.

    Bit convention matches :func:`anf_from_truth_table`: table position
    ``p`` is the input byte with bit ``i`` at weight ``2^i``.
    """
    sbox = np.asarray(sbox, dtype=np.uint8)
    if sbox.size != 256:
        raise SpecificationError("expected a 256-entry byte table")
    return [((sbox >> i) & 1).astype(np.uint8) for i in range(8)]
