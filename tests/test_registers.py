"""RotatingRegisterFile tests — shift-by-renaming semantics (paper §4.3)."""

import numpy as np
import pytest

from repro.core.registers import RotatingRegisterFile
from repro.errors import BitsliceLayoutError


def make_file(size=5, n_words=3, dtype=np.uint64):
    f = RotatingRegisterFile(size, n_words, dtype)
    planes = np.arange(size * n_words, dtype=dtype).reshape(size, n_words)
    f.load(planes)
    return f, planes


class TestBasics:
    def test_logical_indexing_after_load(self):
        f, planes = make_file()
        for i in range(5):
            assert np.array_equal(f[i], planes[i])

    def test_negative_indexing(self):
        f, planes = make_file()
        assert np.array_equal(f[-1], planes[-1])
        assert np.array_equal(f[-5], planes[0])

    def test_out_of_range(self):
        f, _ = make_file()
        with pytest.raises(BitsliceLayoutError):
            f[5]
        with pytest.raises(BitsliceLayoutError):
            f[-6]

    def test_len(self):
        f, _ = make_file()
        assert len(f) == 5

    def test_setitem(self):
        f, _ = make_file()
        f[2] = np.full(3, 99, dtype=np.uint64)
        assert np.all(f[2] == 99)

    def test_constructor_validation(self):
        with pytest.raises(BitsliceLayoutError):
            RotatingRegisterFile(0, 3)
        with pytest.raises(BitsliceLayoutError):
            RotatingRegisterFile(3, 0)

    def test_load_shape_validation(self):
        f, _ = make_file()
        with pytest.raises(BitsliceLayoutError):
            f.load(np.zeros((4, 3), np.uint64))


class TestShiftSemantics:
    def test_shift_matches_naive_roll(self):
        """Renaming must be observationally identical to physically moving
        every row — the paper's claimed equivalence."""
        f, planes = make_file()
        naive = planes.copy()
        rng = np.random.default_rng(0)
        for step in range(12):
            new = rng.integers(0, 100, size=3).astype(np.uint64)
            retired = f.shift_in(new)
            assert np.array_equal(retired, naive[0])
            naive = np.vstack([naive[1:], new[None, :]])
            for i in range(5):
                assert np.array_equal(f[i], naive[i]), (step, i)

    def test_snapshot_logical_order(self):
        f, planes = make_file()
        f.shift_in(np.full(3, 7, np.uint64))
        f.shift_in(np.full(3, 8, np.uint64))
        snap = f.snapshot()
        assert np.array_equal(snap[:3], planes[2:])
        assert np.all(snap[3] == 7) and np.all(snap[4] == 8)

    def test_shift_counter(self):
        f, _ = make_file()
        for _ in range(7):
            f.shift_in(np.zeros(3, np.uint64))
        assert f.shifts == 7

    def test_retired_plane_is_a_copy(self):
        f, _ = make_file()
        retired = f.shift_in(np.full(3, 50, np.uint64))
        retired[:] = 123  # mutating the copy must not corrupt the file
        assert not np.any(f.snapshot() == 123)

    def test_gather(self):
        f, planes = make_file()
        f.shift_in(np.full(3, 9, np.uint64))
        got = f.gather([0, 2, -1])
        assert np.array_equal(got[0], planes[1])
        assert np.array_equal(got[1], planes[3])
        assert np.all(got[2] == 9)

    def test_full_rotation_returns_home(self):
        f, _ = make_file()
        marker = [np.full(3, 100 + i, np.uint64) for i in range(5)]
        for m in marker:
            f.shift_in(m)
        for i, m in enumerate(marker):
            assert np.array_equal(f[i], m)

    def test_wraparound_many_cycles(self):
        f, _ = make_file(size=3, n_words=1)
        expect = [np.array([0]), np.array([1]), np.array([2])]
        f.load(np.array([[0], [1], [2]], dtype=np.uint64))
        for k in range(100):
            f.shift_in(np.array([k + 3], dtype=np.uint64))
        assert int(f[0][0]) == 100
        assert int(f[2][0]) == 102
