"""End-to-end telemetry: instrumented pipeline, worker merge, CLI, overhead."""

import json
import logging
import time

import pytest

from repro import obs
from repro.cli import main
from repro.core.generator import BSRNG
from repro.gpu.multigpu import GenerationReport, MultiDeviceGenerator
from repro.obs.promlint import lint
from repro.obs.tracing import span
from repro.robust.faults import Fault, FaultPlan
from repro.robust.health import HealthMonitoredBSRNG

def metric_value(snap: dict, name: str, **labels) -> float | None:
    for m in snap["metrics"]:
        if m["name"] == name and all(
            m["labels"].get(k) == str(v) for k, v in labels.items()
        ):
            return m.get("value", m.get("count"))
    return None


# -- generator instrumentation ---------------------------------------------------


def test_generator_counts_refills_and_bytes():
    with obs.scoped() as reg:
        rng = BSRNG("xorwow", seed=1, lanes=256)
        out = rng.random_bytes(1 << 14)
        rng.publish_metrics()
        snap = reg.snapshot()
    assert len(out) == 1 << 14
    assert metric_value(snap, "repro_generator_refills_total", algorithm="xorwow") >= 1
    assert (
        metric_value(snap, "repro_generator_emitted_bytes_total", algorithm="xorwow")
        == 1 << 14
    )
    assert metric_value(snap, "repro_generator_lanes", algorithm="xorwow") == 256


def test_bitsliced_engine_gate_metrics():
    with obs.scoped() as reg:
        rng = BSRNG("grain", seed=1, lanes=64)
        rng.random_bytes(64)
        rng.publish_metrics()
        snap = reg.snapshot()
    total = metric_value(snap, "repro_engine_gates", algorithm="grain", kind="total")
    xor = metric_value(snap, "repro_engine_gates", algorithm="grain", kind="xor")
    assert total and total > 0
    assert xor and xor <= total
    assert metric_value(snap, "repro_generator_gates_per_bit", algorithm="grain") > 0


def test_disabled_generation_records_nothing():
    with obs.scoped(enabled=False) as reg:
        BSRNG("xorwow", seed=1, lanes=64).random_bytes(4096)
        assert len(reg) == 0


# -- supervisor + worker merge ---------------------------------------------------


def test_multidevice_metrics_show_injected_retry():
    plan = FaultPlan(faults=(Fault(kind="crash", partition=1, attempt=0),))
    with obs.scoped() as reg:
        gen = MultiDeviceGenerator(
            "xorwow", seed=3, lanes=256, n_devices=2, block_bytes=4096, fault_plan=plan
        )
        out = gen.generate(4)
        snap = reg.snapshot()
    assert out == gen.sequential_reference(4)
    assert metric_value(snap, "repro_supervisor_retries_total") == 1
    assert metric_value(snap, "repro_supervisor_events_total", kind="error") == 1
    # worker-local metrics arrive merged with a partition label; device 1
    # seeks past device 0's range, so its skip shows up too
    for pid in (0, 1):
        assert (
            metric_value(
                snap, "repro_generator_emitted_bytes_total", algorithm="xorwow", partition=pid
            )
            == 2 * 4096
        )
    assert (
        metric_value(
            snap, "repro_generator_skipped_bytes_total", algorithm="xorwow", partition=1
        )
        == 2 * 4096
    )

    report = gen.last_report
    assert isinstance(report, GenerationReport)
    outcomes = {p.device_id: p.outcome for p in report.partitions}
    assert outcomes == {0: "ok", 1: "retried"}
    attempts = {p.device_id: p.attempts for p in report.partitions}
    assert attempts == {0: 1, 1: 2}
    assert all(p.wall_s is not None and p.wall_s >= 0 for p in report.partitions)
    assert report.wall_s > 0
    # legacy SupervisorReport surface still answers
    assert report.retried_partitions == {1}
    assert not report.degraded
    json.dumps(report.to_dict())  # serialisable


def test_multidevice_merge_under_spawn_context():
    """The acceptance posture: worker registries survive a spawn pool."""
    with obs.scoped() as reg:
        gen = MultiDeviceGenerator(
            "xorwow",
            seed=5,
            lanes=128,
            n_devices=2,
            block_bytes=2048,
            mp_context="spawn",
        )
        gen.generate(2)
        snap = reg.snapshot()
    assert set(gen.last_report.worker_metrics) == {0, 1}
    for pid in (0, 1):
        assert (
            metric_value(
                snap, "repro_generator_emitted_bytes_total", algorithm="xorwow", partition=pid
            )
            == 2048
        )
        assert metric_value(snap, "repro_device_attempts_total", device=pid) == 1


def test_report_without_metrics_enabled():
    """The structured report works even with parent telemetry off.

    Workers always account locally (they cannot see the parent's flag
    across a spawn boundary) and the snapshots ride the report; only the
    parent-side registry merge is gated on the flag.
    """
    assert not obs.metrics_enabled()
    gen = MultiDeviceGenerator("xorwow", seed=7, lanes=128, n_devices=2, block_bytes=2048)
    gen.generate(2)
    report = gen.last_report
    assert [p.outcome for p in report.partitions] == ["ok", "ok"]
    assert set(report.worker_metrics) == {0, 1}


# -- health + logging ------------------------------------------------------------


def test_health_screen_metrics():
    with obs.scoped() as reg:
        mon = HealthMonitoredBSRNG("xorwow", seed=1, lanes=64)
        mon.random_bytes(4096)
        snap = reg.snapshot()
    assert (
        metric_value(snap, "repro_health_screened_bytes_total", algorithm="xorwow")
        == 4096
    )


def test_supervisor_warns_on_failure(caplog):
    plan = FaultPlan(faults=(Fault(kind="crash", partition=0, attempt=0),))
    gen = MultiDeviceGenerator(
        "xorwow", seed=3, lanes=128, n_devices=1, block_bytes=2048, fault_plan=plan
    )
    with caplog.at_level(logging.WARNING, logger="repro.robust.supervisor"):
        gen.generate(1)
    assert any("partition 0 attempt 0" in r.message for r in caplog.records)


def test_package_root_has_null_handler():
    handlers = logging.getLogger("repro").handlers
    assert any(isinstance(h, logging.NullHandler) for h in handlers)


# -- tracing through the pipeline ------------------------------------------------


def test_generation_emits_nested_spans():
    tracer = obs.enable_tracing()
    try:
        with span("job"):
            BSRNG("xorwow", seed=1, lanes=256).random_bytes(1 << 14)
    finally:
        obs.disable_tracing()
    names = [r.name for r in tracer.records]
    assert "refill" in names and "job" in names
    refill = next(r for r in tracer.records if r.name == "refill")
    assert refill.depth == 1
    assert refill.args["algo"] == "xorwow"


# -- CLI -------------------------------------------------------------------------


def test_cli_gen_writes_metrics_and_trace(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    trace = tmp_path / "t.json"
    out = tmp_path / "out.bin"
    rc = main(
        [
            "gen",
            "-a",
            "xorwow",
            "-n",
            "8192",
            "-l",
            "64",
            "-f",
            "raw",
            "-o",
            str(out),
            "--metrics-out",
            str(metrics),
            "--trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    assert out.stat().st_size == 8192
    snap = obs.load_snapshot(str(metrics))
    assert metric_value(snap, "repro_generator_emitted_bytes_total", algorithm="xorwow")
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e["name"] == "gen" for e in events)
    capsys.readouterr()


def test_cli_gen_leaves_telemetry_disabled(tmp_path, capsys):
    out = tmp_path / "out.bin"
    main(["gen", "-a", "xorwow", "-n", "1024", "-l", "64", "-f", "raw", "-o", str(out)])
    assert not obs.metrics_enabled()
    assert obs.active_tracer() is None
    capsys.readouterr()


def test_cli_stats_renders_snapshot(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    out = tmp_path / "out.bin"
    main(
        [
            "gen", "-a", "xorwow", "-n", "4096", "-l", "64",
            "-f", "raw", "-o", str(out), "--metrics-out", str(metrics),
        ]
    )
    capsys.readouterr()

    assert main(["stats", str(metrics), "--format", "prometheus"]) == 0
    prom = capsys.readouterr().out
    assert not lint(prom), prom
    assert "repro_generator_refills_total" in prom

    assert main(["stats", str(metrics), "--format", "human"]) == 0
    assert "counters:" in capsys.readouterr().out


def test_cli_stats_self_run(capsys):
    assert main(["stats", "-a", "xorwow", "-l", "64", "-n", "4096"]) == 0
    out = capsys.readouterr().out
    assert "repro_generator" in out
    assert not obs.metrics_enabled()


# -- overhead --------------------------------------------------------------------


def test_disabled_telemetry_overhead_under_two_percent():
    """Disabled-path cost, bounded deterministically.

    Wall-clock A/B of two full runs is noise-dominated, so bound the
    overhead structurally instead: measure the per-call cost of the
    disabled helpers, count how often the hot path calls them (refill
    count from an instrumented run), and compare the product against the
    measured generation time.  The hot path makes a handful of telemetry
    calls per *refill* — never per byte — so the budget is tiny.
    """
    assert not obs.metrics_enabled()
    n_bytes = 1 << 22

    # how many refills does this workload trigger?
    with obs.scoped() as reg:
        rng = BSRNG("grain", seed=1, lanes=4096)
        rng.random_bytes(n_bytes)
        refills = reg.counter("repro_generator_refills_total", algorithm="grain").value
    assert refills >= 1

    # per-call cost of the disabled helpers
    reps = 100_000
    t0 = time.perf_counter()
    for _ in range(reps):
        obs.inc("x")
        obs.observe("y", 1)
        with span("z"):
            pass
    per_refill_cost = (time.perf_counter() - t0) / reps  # 3 calls ≈ one refill's worth

    # the real workload, telemetry fully disabled
    rng = BSRNG("grain", seed=1, lanes=4096)
    rng.random_bytes(4096)  # warm: init clocks out of the measurement
    t0 = time.perf_counter()
    rng.random_bytes(n_bytes)
    wall = time.perf_counter() - t0

    # budget: 3x headroom on calls per refill, plus the per-request calls
    overhead = per_refill_cost * (3 * refills + 100)
    assert overhead < 0.02 * wall, (
        f"disabled telemetry overhead {overhead * 1e6:.1f}us vs wall {wall * 1e6:.1f}us"
    )


def test_multidevice_span_merge_under_spawn_context():
    """Worker spans cross the spawn boundary and stitch into one trace."""
    import os

    tracer = obs.enable_tracing()
    try:
        gen = MultiDeviceGenerator(
            "xorwow",
            seed=5,
            lanes=128,
            n_devices=2,
            block_bytes=2048,
            mp_context="spawn",
        )
        gen.generate(2)
        records = tracer.records
    finally:
        obs.disable_tracing()
    attempts = [r for r in records if r.name == "device.partition"]
    worker_pids = {r.pid for r in attempts}
    assert len(worker_pids) == 2 and os.getpid() not in worker_pids
    # one trace end to end: the generate root minted it, workers adopted it
    root = next(r for r in records if r.name == "multidevice.generate")
    assert {r.trace_id for r in records} == {root.trace_id}
    # parent links resolve: worker roots hang off the generate span
    span_ids = {r.span_id for r in records}
    for rec in attempts:
        assert rec.parent_id == root.span_id
    for rec in records:
        assert rec.parent_id is None or rec.parent_id in span_ids
    # ids survived two processes without collision
    assert len(span_ids) == len(records)
