"""Unit tests for the three LFSR implementations and the tap table."""

import numpy as np
import pytest

from repro.core.engine import BitslicedEngine
from repro.core.lfsr import (
    PRIMITIVE_TAPS,
    BitslicedLFSR,
    GaloisLFSR,
    NaiveParallelLFSR,
    ReferenceLFSR,
)
from repro.errors import SpecificationError
from repro.gf2 import berlekamp_massey, poly_from_taps, poly_is_primitive


class TestTapTable:
    @pytest.mark.parametrize("n", sorted(PRIMITIVE_TAPS))
    def test_all_entries_primitive(self, n):
        assert poly_is_primitive(poly_from_taps(n, PRIMITIVE_TAPS[n]))


class TestReferenceLFSR:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 10, 12])
    def test_full_period(self, n):
        lfsr = ReferenceLFSR(n, state=1)
        assert lfsr.period() == (1 << n) - 1

    def test_linear_complexity_equals_degree(self):
        lfsr = ReferenceLFSR(13, state=0b1011)
        assert berlekamp_massey(lfsr.run(4 * 13)) == 13

    def test_zero_state_rejected(self):
        with pytest.raises(SpecificationError):
            ReferenceLFSR(4, state=0)

    def test_state_masked_to_n_bits(self):
        lfsr = ReferenceLFSR(4, state=0x13)
        assert lfsr.state == 0x3

    def test_output_is_lsb(self):
        lfsr = ReferenceLFSR(4, state=0b0001)
        assert lfsr.step() == 1

    def test_tap_validation(self):
        with pytest.raises(SpecificationError):
            ReferenceLFSR(4, taps=(1, 2))  # missing constant term
        with pytest.raises(SpecificationError):
            ReferenceLFSR(4, taps=(0, 4))  # tap >= degree
        with pytest.raises(SpecificationError):
            ReferenceLFSR(4, taps=())


class TestGaloisLFSR:
    @pytest.mark.parametrize("n", [3, 4, 5, 7, 9])
    def test_full_period(self, n):
        lfsr = GaloisLFSR(n, state=1)
        seen = set()
        for _ in range((1 << n) - 1):
            assert lfsr.state not in seen
            seen.add(lfsr.state)
            lfsr.step()
        assert lfsr.state == 1

    def test_same_sequence_family_as_fibonacci(self):
        # Both generate sequences satisfying the same recurrence: the
        # Galois output must have the same linear complexity.
        g = GaloisLFSR(8, state=0x5A)
        assert berlekamp_massey(g.run(64)) <= 8


class TestNaiveParallelLFSR:
    def test_lanes_match_reference(self):
        states = np.array([1, 5, 9, 15], dtype=np.uint64)
        bank = NaiveParallelLFSR(4, states=states)
        out = bank.run(30)
        for j, s in enumerate(states):
            ref = ReferenceLFSR(4, state=int(s))
            assert np.array_equal(out[:, j], ref.run(30)), f"lane {j}"

    def test_default_states_nonzero(self):
        bank = NaiveParallelLFSR(8, n_lanes=100)
        assert bank.n_lanes == 100

    def test_zero_state_rejected(self):
        with pytest.raises(SpecificationError):
            NaiveParallelLFSR(4, states=np.array([0], dtype=np.uint64))

    def test_too_wide_rejected(self):
        with pytest.raises(SpecificationError):
            NaiveParallelLFSR(65)

    def test_ops_accounting(self):
        bank = NaiveParallelLFSR(8)
        assert bank.ops_per_step_per_lane == 3 * len(bank.taps) + 4


class TestBitslicedLFSR:
    def test_lanes_match_reference(self, small_engine):
        n = 12
        width = small_engine.n_lanes
        rng = np.random.default_rng(1)
        states = rng.integers(1, 1 << n, size=width, dtype=np.uint64)
        bank = BitslicedLFSR(n, engine=small_engine)
        bank.seed_from_ints(states)
        out_planes = bank.run(40)
        from repro.core.bitslice import unbitslice

        # rows are clocks, so unbitslice yields (n_lanes, n_clocks)
        bits = unbitslice(out_planes, width)
        for j in range(width):
            ref = ReferenceLFSR(n, state=int(states[j]))
            assert np.array_equal(bits[j], ref.run(40)), f"lane {j}"

    def test_requires_seed(self):
        bank = BitslicedLFSR(8)
        with pytest.raises(SpecificationError):
            bank.step()

    def test_zero_state_rejected(self):
        eng = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bank = BitslicedLFSR(8, engine=eng)
        with pytest.raises(SpecificationError):
            bank.seed_from_ints(np.array([1, 2, 3, 4, 5, 6, 7, 0], dtype=np.uint64))

    def test_ops_per_step_is_tap_count(self):
        bank = BitslicedLFSR(16)
        assert bank.ops_per_step == len(PRIMITIVE_TAPS[16])

    def test_gate_count_reduction_vs_naive(self):
        """The paper's §4.3 claim: 32·k bit-ops collapse to k wide ops."""
        n = 16
        naive = NaiveParallelLFSR(n, n_lanes=64)
        eng = BitslicedEngine(n_lanes=64, dtype=np.uint64)
        sliced = BitslicedLFSR(n, engine=eng)
        per_lane_naive = naive.ops_per_step_per_lane * naive.n_lanes
        wide_sliced = sliced.ops_per_step
        assert wide_sliced * 10 < per_lane_naive

    def test_state_bits_roundtrip(self):
        eng = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bank = BitslicedLFSR(6, engine=eng)
        rng = np.random.default_rng(2)
        states = rng.integers(1, 64, size=8, dtype=np.uint64)
        bank.seed_from_ints(states)
        bits = bank.state_bits()
        vals = (bits * (1 << np.arange(6))).sum(axis=1)
        assert np.array_equal(vals, states)
