"""XORWOW (Marsaglia 2003, "Xorshift RNGs") — cuRAND's default device
generator: a 160-bit xorshift core plus a Weyl counter."""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank

__all__ = ["XorwowBank"]

_WEYL = np.uint32(362437)


class XorwowBank(StreamBank):
    """``n_streams`` XORWOW generators in lockstep."""

    word_dtype = np.uint32
    # 5 shifts + 4 xors + 2 adds + bookkeeping ≈ 12 instructions / word.
    ops_per_word = 12.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        lo = stream_seeds.astype(np.uint32)
        hi = (stream_seeds >> np.uint64(32)).astype(np.uint32)
        # Marsaglia's constants, perturbed per stream; any non-degenerate
        # state works, and the 2^32 zero state is impossible by construction
        # (x is seeded odd-or-nonzero via |1).
        self._x = (np.uint32(123456789) ^ lo) | np.uint32(1)
        self._y = np.uint32(362436069) ^ hi
        self._z = np.full_like(lo, 521288629)
        self._w = np.full_like(lo, 88675123) ^ (lo >> np.uint32(16))
        self._v = np.full_like(lo, 5783321) ^ (hi >> np.uint32(16))
        self._d = np.full_like(lo, 6615241) + lo

    def _step(self) -> np.ndarray:
        t = self._x ^ (self._x >> np.uint32(2))
        self._x = self._y
        self._y = self._z
        self._z = self._w
        self._w = self._v
        self._v = (self._v ^ (self._v << np.uint32(4))) ^ (t ^ (t << np.uint32(1)))
        self._d = self._d + _WEYL
        return self._d + self._v
