"""SP 800-22 test 10: Linear Complexity (Berlekamp–Massey per block)."""

from __future__ import annotations

import numpy as np

from repro.errors import SpecificationError
from repro.gf2 import berlekamp_massey
from repro.nist._utils import check_bits, igamc
from repro.nist.result import TestResult

__all__ = ["linear_complexity_test"]

# Category probabilities for T in {<=-2.5, ..., >2.5} (SP 800-22 §3.10).
_PI = (0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833)


def linear_complexity_test(bits, block_size: int = 500) -> TestResult:
    """Distribution of per-block linear complexity around its mean.

    NIST recommends ``500 ≤ M ≤ 5000`` and at least 200 blocks; we
    enforce the block-size range and require ≥ 20 blocks (research scale)
    — fewer blocks raise :class:`~repro.errors.InsufficientDataError`.
    """
    if not 500 <= block_size <= 5000:
        raise SpecificationError("block_size must be in [500, 5000]")
    arr = check_bits(bits, 20 * block_size, "linear_complexity")
    m = block_size
    n_blocks = arr.size // m
    ls = np.empty(n_blocks, dtype=np.float64)
    blocks = arr[: n_blocks * m].reshape(n_blocks, m)
    for i in range(n_blocks):
        ls[i] = berlekamp_massey(blocks[i])
    sign = -1.0 if m % 2 else 1.0
    mu = m / 2.0 + (9.0 + (-1.0) ** (m + 1)) / 36.0 - (m / 3.0 + 2.0 / 9.0) / 2.0**m
    t = sign * (ls - mu) + 2.0 / 9.0
    edges = np.array([-2.5, -1.5, -0.5, 0.5, 1.5, 2.5])
    cats = np.searchsorted(edges, t, side="right")
    counts = np.bincount(cats, minlength=7)
    expected = n_blocks * np.asarray(_PI)
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    p = igamc(6 / 2.0, chi2 / 2.0)
    return TestResult(
        "LinearComplexity",
        [p],
        {"chi2": chi2, "counts": counts.tolist(), "mu": mu, "n_blocks": n_blocks},
    )
