"""Thread-safety regression tests for :class:`BSRNG`.

The serve daemon multiplexes one logical stream across threads, so the
generator's draw/seek/reseed surface must be safe to hammer from many
threads at once.  Each thread atomically captures ``(tell(), read(n))``
pairs under the documented ``rng.lock`` idiom; afterwards the pairs are
reassembled by offset and must reproduce the single-threaded reference
stream bit for bit — any torn refill, lost position update, or
double-served buffer shows up as a CRC mismatch or a coverage gap.
"""

from __future__ import annotations

import random
import threading
import zlib

import pytest

from repro.core.generator import BSRNG
from repro.robust.supervisor import payload_crc

ALGO = "trivium"
LANES = 256


def hammer(rng: BSRNG, threads: int, reads_per_thread: int, chunk: int):
    """Concurrent atomic (offset, data) captures; returns the pair list."""
    captured: list[tuple[int, bytes]] = []
    sink_lock = threading.Lock()
    start = threading.Barrier(threads)

    def worker() -> None:
        local = []
        start.wait()
        for _ in range(reads_per_thread):
            # the documented compound idiom: position and bytes must be
            # captured atomically or interleaving tears the stream
            with rng.lock:
                offset = rng.tell()
                data = rng.read(chunk)
            local.append((offset, data))
        with sink_lock:
            captured.extend(local)

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    return captured


class TestThreadedReads:
    def test_hammered_stream_matches_reference_crc(self):
        threads, reads, chunk = 8, 25, 1024
        rng = BSRNG(ALGO, seed=123, lanes=LANES)
        captured = hammer(rng, threads, reads, chunk)

        total = threads * reads * chunk
        assert rng.tell() == total

        # every offset must appear exactly once and tile the stream
        offsets = sorted(off for off, _ in captured)
        assert offsets == list(range(0, total, chunk))

        stream = b"".join(data for _, data in sorted(captured))
        reference = BSRNG(ALGO, seed=123, lanes=LANES).read(total)
        assert zlib.crc32(stream) == zlib.crc32(reference)
        assert stream == reference

    def test_concurrent_skip_and_read_keep_position_consistent(self):
        rng = BSRNG(ALGO, seed=9, lanes=LANES)
        consumed = []
        lock = threading.Lock()

        def worker(do_skip: bool) -> None:
            for _ in range(20):
                with rng.lock:
                    if do_skip:
                        before = rng.tell()
                        rng.skip_bytes(96)
                        assert rng.tell() == before + 96
                        with lock:
                            consumed.append(96)
                    else:
                        before = rng.tell()
                        data = rng.read(64)
                        assert rng.tell() == before + 64
                        with lock:
                            consumed.append(len(data))

        workers = [threading.Thread(target=worker, args=(i % 2 == 0,)) for i in range(6)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert rng.tell() == sum(consumed)

    def test_reseed_resets_position_under_contention(self):
        rng = BSRNG(ALGO, seed=77, lanes=LANES)
        stop = threading.Event()
        errors: list[Exception] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    rng.read(128)
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for r in readers:
            r.start()
        for _ in range(10):
            with rng.lock:
                rng.reseed(5)
                assert rng.tell() == 0
        stop.set()
        for r in readers:
            r.join()
        assert not errors

    def test_read_is_alias_of_random_bytes(self):
        a = BSRNG(ALGO, seed=3, lanes=LANES)
        b = BSRNG(ALGO, seed=3, lanes=LANES)
        assert a.read(512) == b.random_bytes(512)


class TestPositionTracking:
    @pytest.mark.parametrize("skip", [0, 1, 17, 4096])
    def test_tell_tracks_reads_and_skips(self, skip):
        rng = BSRNG(ALGO, seed=1, lanes=LANES)
        assert rng.tell() == 0
        rng.read(100)
        assert rng.tell() == 100
        rng.skip_bytes(skip)
        assert rng.tell() == 100 + skip

    def test_skip_equals_read_and_discard(self):
        a = BSRNG(ALGO, seed=4, lanes=LANES)
        b = BSRNG(ALGO, seed=4, lanes=LANES)
        a.skip_bytes(1000)
        b.read(1000)
        assert a.read(256) == b.read(256)

    def test_payload_crc_matches_zlib_fast_path(self):
        # the serve integrity hook rides the zlib-backed CRC-32-IEEE
        # fast path; spot-check it against the documented register form
        data = BSRNG(ALGO, seed=6, lanes=LANES).read(4096)
        assert payload_crc(data) == payload_crc(bytearray(data))


class TestInterleavedOpsReplay:
    def test_interleaved_read_skip_reseed_replays_on_unprefetched_twin(self):
        """Hammer read/skip_bytes/reseed from many threads against a
        prefetch-enabled generator, logging the exact op order under
        ``rng.lock``; replaying that log on a prefetch-disabled twin must
        agree byte-for-byte and position-for-position.  Any interaction
        between an in-flight prefetched refill and a seek or reseed —
        double-served buffers, native seeks past unconsumed refills —
        shows up as a data or ``tell()`` divergence."""
        threads = 6
        rng = BSRNG(ALGO, seed=21, lanes=LANES, prefetch=True)
        ops: list[tuple[str, int, bytes | None, int]] = []
        start = threading.Barrier(threads)

        def worker(tid: int) -> None:
            dice = random.Random(tid)  # deterministic per-thread op mix
            start.wait()
            for _ in range(15):
                pick = dice.random()
                with rng.lock:  # one op + its log entry are atomic
                    if pick < 0.6:
                        n = dice.choice([64, 1024, 3000])
                        ops.append(("read", n, rng.read(n), rng.tell()))
                    elif pick < 0.9:
                        n = dice.choice([1, 512, 8192])
                        rng.skip_bytes(n)
                        ops.append(("skip", n, None, rng.tell()))
                    else:
                        s = dice.randrange(1000)
                        rng.reseed(s)
                        ops.append(("reseed", s, None, rng.tell()))

        workers = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert len(ops) == threads * 15

        twin = BSRNG(ALGO, seed=21, lanes=LANES, prefetch=False)
        replayed = hammered = b""
        for kind, arg, data, pos in ops:
            if kind == "read":
                chunk = twin.read(arg)
                replayed += chunk
                hammered += data
            elif kind == "skip":
                twin.skip_bytes(arg)
            else:
                twin.reseed(arg)
            assert twin.tell() == pos
        assert zlib.crc32(replayed) == zlib.crc32(hammered)
        assert replayed == hammered


class TestFailedRefillRecovery:
    def test_failed_prefetch_refill_raises_once_then_recovers(self):
        """A refill that fails on the prefetch worker must surface to
        exactly one draw and then clear: the poisoned future used to stay
        parked in ``_pending``, so every later draw, seek and — fatally —
        ``reseed()`` (the designated recovery action) re-raised the same
        stale exception forever."""
        rng = BSRNG(ALGO, seed=5, lanes=LANES, prefetch=True)
        ref = BSRNG(ALGO, seed=5, lanes=LANES, prefetch=False)
        chunk = rng._source.refill_bytes
        real = rng._source.next_words
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 3:  # the first *prefetched* refill
                raise RuntimeError("injected refill failure")
            return real()

        rng._source.next_words = flaky
        got = [rng.read(chunk), rng.read(chunk)]
        with pytest.raises(RuntimeError, match="injected refill failure"):
            rng.read(chunk)  # consumes the poisoned background refill
        # the failure raised before the source advanced, so the retry
        # regenerates the identical refill: the stream has no gap
        got.append(rng.read(chunk))
        got.append(rng.read(chunk))
        assert b"".join(got) == ref.read(4 * chunk)
        assert rng.tell() == 4 * chunk
        # recovery action works and yields a fresh, correct stream
        rng.reseed(5)
        assert rng.tell() == 0
        assert rng.read(chunk) == BSRNG(ALGO, seed=5, lanes=LANES).read(chunk)

    def test_failed_synchronous_refill_raises_once_then_recovers(self):
        rng = BSRNG(ALGO, seed=8, lanes=LANES, prefetch=False)
        real = rng._source.next_words
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected refill failure")
            return real()

        rng._source.next_words = flaky
        with pytest.raises(RuntimeError, match="injected refill failure"):
            rng.read(64)
        assert rng.read(64) == BSRNG(ALGO, seed=8, lanes=LANES).read(64)
