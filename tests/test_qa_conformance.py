"""Differential conformance: plugin-driven battery ≡ legacy battery.

The registry-backed :func:`repro.nist.suite.run_suite` must reproduce
the pre-plugin driver *byte for byte* — same ``per_test`` aggregates,
same ``skipped`` reasons (down to the exception message), same
``errors`` counts — across every cipher.  The legacy loop below is a
frozen verbatim copy of the pre-refactor implementation; it is the
oracle, never to be "fixed" to match new behaviour.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.core.generator import BSRNG
from repro.errors import InsufficientDataError, SpecificationError
from repro.nist.parallel import run_suite_parallel, run_suite_sequential
from repro.nist.suite import ALL_TESTS, SuiteReport, run_suite, summarize_pvalues

CIPHERS = ["mickey2", "grain", "trivium", "aes128ctr"]

# Small enough to run the full battery fast, large enough to exercise all
# three report sections: per_test (most tests), skipped (Rank needs 38912
# bits, Universal 387840, LinearComplexity 1e6), errors (the excursions
# pair drops sequences whose random walks have too few cycles).
N_SEQUENCES = 6
N_BITS = 4000


def _legacy_run_suite(sequence_source, n_sequences, tests=None) -> SuiteReport:
    """Frozen copy of the pre-plugin ``run_suite`` loop (the oracle)."""
    tests = dict(tests) if tests is not None else dict(ALL_TESTS)
    if callable(sequence_source):
        getter = sequence_source
    else:
        seqs = list(sequence_source)
        getter = lambda i: seqs[i]  # noqa: E731

    collected = {name: [] for name in tests}
    reasons = {}
    dropped = {name: 0 for name in tests}
    timed = obs.metrics_enabled()
    n_bits = 0
    for i in range(n_sequences):
        bits = np.asarray(getter(i))
        if i == 0:
            n_bits = bits.size
        elif bits.size != n_bits:
            raise SpecificationError(
                f"sequence {i} has {bits.size} bits, expected {n_bits} — "
                "a battery aggregates equal-length sequences only"
            )
        for name, fn in tests.items():
            t0 = time.perf_counter() if timed else 0.0
            try:
                result = fn(bits)
            except InsufficientDataError as exc:
                dropped[name] += 1
                reasons.setdefault(name, str(exc))
                continue
            finally:
                if timed:
                    obs.observe(
                        "repro_nist_test_seconds", time.perf_counter() - t0, test=name
                    )
            collected[name].extend(result.p_values)

    report = SuiteReport(n_sequences=n_sequences, n_bits=n_bits)
    for name in tests:
        if collected[name]:
            report.per_test[name] = summarize_pvalues(collected[name])
        else:
            report.skipped[name] = reasons.get(name, "no data")
        if dropped[name]:
            report.errors[name] = dropped[name]
    return report


def _sequences(algorithm: str, n_sequences=N_SEQUENCES, n_bits=N_BITS):
    """Deterministic per-cipher sequence set (same bits for every run)."""
    rng = BSRNG(algorithm, seed=0xC0FFEE, lanes=256)
    return [rng.random_bits(n_bits) for _ in range(n_sequences)]


def assert_reports_identical(new: SuiteReport, legacy: SuiteReport) -> None:
    """Field-by-field exact equality (no tolerance: same floats or bust)."""
    assert new.n_sequences == legacy.n_sequences
    assert new.n_bits == legacy.n_bits
    assert new.skipped == legacy.skipped  # includes exact reason strings
    assert new.errors == legacy.errors
    assert list(new.per_test) == list(legacy.per_test)  # column order too
    for name, summary in legacy.per_test.items():
        assert new.per_test[name] == summary, name


@pytest.mark.parametrize("algorithm", CIPHERS)
def test_run_suite_matches_legacy(algorithm):
    seqs = _sequences(algorithm)
    new = run_suite(lambda i: seqs[i], N_SEQUENCES)
    legacy = _legacy_run_suite(lambda i: seqs[i], N_SEQUENCES)
    assert_reports_identical(new, legacy)
    # sanity: the fixed sizes really exercise all three report sections
    assert new.per_test and new.skipped and new.errors


def test_run_suite_matches_legacy_with_explicit_tests():
    seqs = _sequences("mickey2", n_sequences=4, n_bits=2048)
    subset = {k: ALL_TESTS[k] for k in ("Frequency", "Runs", "Serial", "Rank")}
    new = run_suite(lambda i: seqs[i], 4, tests=subset)
    legacy = _legacy_run_suite(lambda i: seqs[i], 4, tests=subset)
    assert_reports_identical(new, legacy)
    assert "Rank" in new.skipped  # needs 38912 bits


def test_run_suite_matches_legacy_mixed_length_error():
    seqs = [np.zeros(128, np.uint8), np.zeros(256, np.uint8)]
    with pytest.raises(SpecificationError, match="equal-length"):
        run_suite(seqs, 2)
    with pytest.raises(SpecificationError, match="equal-length"):
        _legacy_run_suite(seqs, 2)


@pytest.mark.slow
@pytest.mark.parametrize("workers", [1, 4])
def test_run_suite_parallel_matches_legacy(workers):
    """Sharded battery ≡ legacy oracle on the same BSRNG stream, for any
    worker count (counter-space addressing makes sharding invisible)."""
    algorithm, seed, lanes = "trivium", 7, 256
    rng = BSRNG(algorithm, seed=seed, lanes=lanes)
    seqs = [rng.random_bits(N_BITS) for _ in range(N_SEQUENCES)]
    legacy = _legacy_run_suite(lambda i: seqs[i], N_SEQUENCES)
    parallel = run_suite_parallel(
        algorithm,
        seed,
        lanes,
        n_sequences=N_SEQUENCES,
        n_bits=N_BITS,
        workers=workers,
    )
    assert_reports_identical(parallel, legacy)


@pytest.mark.slow
def test_run_suite_sequential_matches_legacy():
    algorithm, seed, lanes = "grain", 11, 256
    rng = BSRNG(algorithm, seed=seed, lanes=lanes)
    seqs = [rng.random_bits(N_BITS) for _ in range(N_SEQUENCES)]
    legacy = _legacy_run_suite(lambda i: seqs[i], N_SEQUENCES)
    sequential = run_suite_sequential(
        algorithm, seed, lanes, n_sequences=N_SEQUENCES, n_bits=N_BITS
    )
    assert_reports_identical(sequential, legacy)
