#!/usr/bin/env python
"""The paper's §4.4 automation: generate bit-level kernels from Python.

Builds the one-clock MICKEY 2.0 netlist and the AES S-box circuit from
their specifications, reports gate statistics, and emits both the
vectorized NumPy kernel and the CUDA __device__ translation unit (written
next to this script).

Run:  python examples/cuda_codegen.py
"""

import pathlib

import numpy as np

from repro.ciphers.aes_bitsliced import sbox_circuit
from repro.ciphers.mickey_circuit import mickey_clock_circuit, mickey_cuda_source
from repro.codegen import CircuitBuilder, emit_cuda, emit_numpy

OUT_DIR = pathlib.Path(__file__).parent / "generated"


def report(name: str, circuit) -> None:
    c = circuit.gate_counts()
    print(
        f"  {name:<24} {c['total']:>6} gates "
        f"(xor={c['xor']}, and={c['and']}, or={c['or']}, not={c['not']}), depth {circuit.depth()}"
    )


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)

    print("generated circuits")
    print("-" * 72)
    mickey = mickey_clock_circuit()
    sbox = sbox_circuit()
    report("MICKEY 2.0 clock", mickey)
    report("AES S-box (ANF)", sbox)

    # a hand-built example: a bitsliced full adder
    b = CircuitBuilder()
    x, y, cin = b.inputs(["x", "y", "cin"])
    s1 = b.xor(x, y)
    b.output("sum", b.xor(s1, cin))
    b.output("cout", b.or_(b.and_(x, y), b.and_(cin, s1)))
    adder = b.build()
    report("full adder", adder)
    print()

    # emit CUDA translation units
    mickey_cu = OUT_DIR / "mickey2_clock.cu"
    mickey_cu.write_text(mickey_cuda_source())
    sbox_cu = OUT_DIR / "aes_sbox.cu"
    sbox_cu.write_text(emit_cuda(sbox, func_name="aes_sbox"))
    adder_cu = OUT_DIR / "full_adder.cu"
    adder_cu.write_text(emit_cuda(adder, func_name="full_adder"))
    print("CUDA kernels written:")
    for p in (mickey_cu, sbox_cu, adder_cu):
        print(f"  {p}  ({len(p.read_text().splitlines())} lines)")
    print()

    # the NumPy emitter produces the same kernel as a flat Python function
    src = emit_numpy(adder, func_name="full_adder")
    print("NumPy emission of the full adder:")
    print("\n".join("  " + line for line in src.splitlines()))

    ns = {"np": np}
    exec(src, ns)
    out = ns["full_adder"](
        x=np.array([0b1010], dtype=np.uint64),
        y=np.array([0b0110], dtype=np.uint64),
        cin=np.array([0b0001], dtype=np.uint64),
    )
    print(f"\n  full_adder(1010, 0110, 0001) -> sum={out['sum'][0]:04b}, cout={out['cout'][0]:04b}")
    assert out["sum"][0] == 0b1101 and out["cout"][0] == 0b0010


if __name__ == "__main__":
    main()
