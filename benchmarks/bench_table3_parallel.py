"""E5b — the Table-3 battery, sharded across a supervised process pool.

Times the same NIST SP 800-22 workload twice — ``run_suite_sequential``
(one process, the paper's validation path) and ``run_suite_parallel``
with 4 workers — asserts the two reports carry identical aggregates, and
emits ``BENCH_table3_parallel.json`` whose ``metrics.speedup`` map feeds
``tools/check_bench_regression.py`` against the committed baseline.

The speedup floor (≥ 2.5× at 4 workers) is asserted only when the
machine actually has ≥ 4 usable cores — on fewer cores the run still
checks conformance and emits its record, but a 1-core box cannot
measure parallelism.  REPRO_FULL=1 scales to 96 × 1 Mbit sequences.
"""

import os
import time

from _emit import emit_bench
from conftest import FULL_SCALE, emit_table

from repro.nist.parallel import run_suite_parallel, run_suite_sequential

N_SEQUENCES = 96 if FULL_SCALE else 16
N_BITS = 1_000_000 if FULL_SCALE else 100_000
WORKERS = 4
SPEEDUP_FLOOR = 2.5

WORKLOAD = dict(
    algorithm="mickey2",
    seed=0xB5B5,
    lanes=4096,
    n_sequences=N_SEQUENCES,
    n_bits=N_BITS,
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_table3_parallel_speedup():
    t0 = time.perf_counter()
    seq_report = run_suite_sequential(**WORKLOAD)
    sequential_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    par_report = run_suite_parallel(**WORKLOAD, workers=WORKERS)
    parallel_s = time.perf_counter() - t0

    # the speedup only counts if the sharded battery is the *same* battery
    assert par_report.per_test == seq_report.per_test
    assert par_report.skipped == seq_report.skipped
    assert par_report.errors == seq_report.errors

    speedup = sequential_s / parallel_s
    cores = _usable_cores()
    lines = [
        f"NIST SP 800-22 battery, {N_SEQUENCES} sequences x {N_BITS:,} bits "
        f"(bitsliced MICKEY 2.0), {cores} cores",
        "",
        f"{'path':<24}{'wall (s)':>12}",
        "-" * 36,
        f"{'sequential':<24}{sequential_s:>12.2f}",
        f"{f'parallel ({WORKERS} workers)':<24}{parallel_s:>12.2f}",
        "",
        f"speedup: {speedup:.2f}x   (aggregates identical: yes)",
        "",
        par_report.to_table(),
    ]
    emit_table("table3_parallel", lines)
    emit_bench(
        "table3_parallel",
        params={
            "n_sequences": N_SEQUENCES,
            "n_bits": N_BITS,
            "workers": WORKERS,
            "cores": cores,
            "full_scale": FULL_SCALE,
        },
        wall_s=parallel_s,
        metrics={
            "sequential_wall_s": sequential_s,
            "parallel_wall_s": parallel_s,
            "speedup": {"battery": speedup},
            "geomean_speedup": speedup,
            "shards": len(par_report.supervision.attempts),
        },
    )

    if cores >= WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel battery speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"on {cores} cores"
        )
