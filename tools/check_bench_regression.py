#!/usr/bin/env python
"""Perf-regression gate for speedup-ratio benchmarks.

Compares a freshly emitted ``BENCH_*.json`` record (the fused-kernel
speedups of ``BENCH_figure10_fused.json``, the parallel-battery speedup
of ``BENCH_table3_parallel.json``, ...) against its committed baseline
and fails when the optimised path lost ground.  Only *ratios* (the
``metrics.speedup`` map plus ``metrics.geomean_speedup``) are compared —
absolute Gbit/s or wall seconds depend on the runner hardware, but a
speedup is a property of the code, so it transfers across machines up to
noise.  The noise allowance is the ``--tolerance`` (default 15%).

Usage::

    python tools/check_bench_regression.py CURRENT BASELINE [--tolerance 0.15]

Exit status 0 = within tolerance, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_speedups(path: str) -> dict:
    """Read per-kernel + geomean speedups from a BENCH_*.json file."""
    with open(path) as fh:
        record = json.load(fh)
    if record.get("schema") != 1:
        raise ValueError(f"{path}: unsupported bench schema {record.get('schema')!r}")
    metrics = record.get("metrics", {})
    speedups = dict(metrics.get("speedup", {}))
    if not speedups:
        raise ValueError(f"{path}: no metrics.speedup map — not a speedup bench record?")
    # single-ratio benches legitimately have no geomean; when one side
    # has it and the other does not, compare() fails that *by name*
    # instead of the bare KeyError this used to die with
    if "geomean_speedup" in metrics:
        try:
            speedups["__geomean__"] = float(metrics["geomean_speedup"])
        except (TypeError, ValueError):
            raise ValueError(
                f"{path}: metrics.geomean_speedup is "
                f"{metrics['geomean_speedup']!r}, not a number"
            ) from None
    return speedups


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass).

    Asymmetric key sets fail *by name* in both directions: a metric the
    baseline expects but the run lost, and a metric the run produced but
    the baseline has never seen (an ungated number is a silent hole in
    the gate — refresh the baseline to admit it).
    """
    problems = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run (baseline {base:.2f}x)")
            continue
        floor = base * (1.0 - tolerance)
        if cur < floor:
            problems.append(
                f"{name}: speedup {cur:.2f}x < {floor:.2f}x "
                f"(baseline {base:.2f}x - {tolerance:.0%})"
            )
    for name in sorted(set(current) - set(baseline)):
        problems.append(
            f"{name}: new metric absent from baseline (current {current[name]:.2f}x) "
            f"— refresh the committed baseline to gate it"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH json emitted by this run")
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional drop per speedup ratio (default 0.15)",
    )
    args = parser.parse_args(argv)
    try:
        current = load_speedups(args.current)
        baseline = load_speedups(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{'kernel':<14}{'baseline':>10}{'current':>10}")
    for name in sorted(baseline):
        label = "geomean" if name == "__geomean__" else name
        cur = current.get(name, float("nan"))
        print(f"{label:<14}{baseline[name]:>9.2f}x{cur:>9.2f}x")
    problems = compare(current, baseline, args.tolerance)
    if problems:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"\nok: all speedups within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
