"""Fleet membership, liveness, eviction and lease reassignment.

:class:`FleetController` turns a :class:`~repro.fleet.transport.Transport`
full of anonymous workers into *supervised membership*:

* **Liveness** is deadline-based: a worker must register and then
  heartbeat within ``heartbeat_timeout`` of its last sign of life, or it
  is evicted.  Heartbeats (and registration) are the *only* liveness
  signal — results deliberately do not count, so a member that computes
  but has gone protocol-silent is still evicted and its late results
  dropped as stale.  A healthy worker is never at risk: its loop
  heartbeats between jobs on every interval.  A heartbeat arriving
  exactly at the deadline survives (the comparison is strictly ``later
  than``); messages are always processed before deadlines are checked,
  so a racing heartbeat wins.
* **Screening** composes the SP 800-90B continuous health tests of
  :mod:`repro.robust.health` (one RCT/APT pair *per worker*, so one sick
  member cannot poison a healthy peer's screen) with the CRC receipt
  verification of :mod:`repro.robust.supervisor`.  A failed screen
  evicts immediately; CRC mismatches accumulate strikes first (a single
  flipped byte on a transfer is retryable, a bleeding worker is not).
* **Lease reassignment** keeps the merged stream bit-identical to a
  single-device run.  Every chunk job is backed by a lease from an
  internal :class:`~repro.serve.leases.LeaseManager` — ids strictly
  increasing and never reissued — and is released only when its result
  is accepted, which happens *at most once* per lease: late or duplicate
  results (an evicted-but-alive worker finishing its job) are counted as
  stale and dropped.  Because BSRNG output is a pure function of the
  byte offset, a reassigned chunk regenerates bit-identically on any
  healthy peer.
* **Elasticity**: the fleet relaunches evicted members toward its target
  size, scales the target up when the job backlog outgrows the
  membership and back down after a sustained idle period, and — once the
  eviction budget is spent and no member is left — degrades to inline
  generation rather than surfacing an error to callers.

All of it is observable through :mod:`repro.obs`:
``repro_fleet_workers{state=...}``, ``repro_fleet_evictions_total{reason=...}``,
``repro_fleet_lease_reassignments_total``, ``repro_fleet_stale_results_total``,
``repro_fleet_heartbeats_total``, ``repro_fleet_scale_events_total{direction=...}``
and the ``repro_fleet_drain_seconds`` histogram.

The controller is deliberately single-brained: one lock guards all
membership state, and one *pump* at a time moves messages from the
transport into that state.  Any thread may pump (request threads while
they wait, plus the optional supervision thread), which keeps the fleet
responsive without dedicating a thread per worker.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.core.ring import SharedMemoryRing
from repro.errors import DeviceFailureError, SpecificationError
from repro.obs import context as trace_context
from repro.obs import flight
from repro.obs.tracing import span
from repro.robust.faults import FaultPlan
from repro.robust.health import AdaptiveProportionTest, RepetitionCountTest
from repro.robust.supervisor import payload_crc
from repro.serve.engine import RangeSource, StreamConfig
from repro.serve.leases import LeaseManager
from repro.fleet.transport import (
    ChunkJob,
    LocalProcessTransport,
    Message,
    Transport,
    WorkerSpec,
)

__all__ = [
    "FleetConfig",
    "FleetController",
    "FleetEvent",
    "WorkerInfo",
    "WORKER_STATES",
    "EVICTION_REASONS",
]

#: Membership states a worker moves through (forward-only).
WORKER_STATES = ("launching", "live", "draining", "drained", "evicted")

#: Why workers get evicted (the ``reason`` label on the eviction counter).
EVICTION_REASONS = ("heartbeat", "crash", "health", "corrupt")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet sizing, liveness and screening policy.

    ``workers`` is the *initial target*; elasticity moves the target
    inside ``[min_workers, max_workers]``.  ``heartbeat_timeout`` should
    comfortably exceed ``heartbeat_interval`` (3x or more) so scheduler
    jitter alone cannot evict a healthy member.
    """

    workers: int = 2
    min_workers: int = 1
    max_workers: int = 8
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 5.0
    chunk_bytes: int = 1 << 16
    max_inflight_per_worker: int = 2  # pipelining depth per member
    verify_crc: bool = True
    screen: bool = True
    #: Per-worker RCT/APT false-positive rate.  A health failure here
    #: *evicts* (it is not just latched like the engine's /healthz
    #: screen), and each worker screens many megabytes of stream, so the
    #: budget is sized for volume: 2^-30 (the SP 800-90B default) puts
    #: the RCT cutoff at a 5-byte run — about one false eviction per
    #: 4 GiB screened per worker, against ~16 MiB at the serve-side 2^-20.
    alpha: float = 2.0**-30
    max_strikes: int = 2  # CRC receipt failures before eviction
    max_evictions: int = 16  # relaunch budget; beyond it, degrade inline
    scale_up_backlog: int = 4  # pending jobs per live worker that adds one
    scale_down_idle_s: float = 30.0  # sustained idle that removes one
    degrade_inline: bool = True
    max_streams: int = 8  # worker-side RangeSource front cache
    mp_context: str | None = None
    #: Return chunk payloads through a shared-memory ring (one leased
    #: slot per dispatched job) instead of pickling them through the
    #: message plane.  Only takes effect with the default local
    #: transport; injected transports ship payload bytes.
    use_ring: bool = True

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise SpecificationError("workers must be positive")
        if not 0 < self.min_workers <= self.max_workers:
            raise SpecificationError("need 0 < min_workers <= max_workers")
        if not self.min_workers <= self.workers <= self.max_workers:
            raise SpecificationError("workers must lie in [min_workers, max_workers]")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise SpecificationError("heartbeat interval and timeout must be positive")
        if self.heartbeat_timeout < self.heartbeat_interval:
            raise SpecificationError("heartbeat_timeout must cover at least one interval")
        if self.chunk_bytes <= 0:
            raise SpecificationError("chunk_bytes must be positive")
        if self.max_inflight_per_worker <= 0:
            raise SpecificationError("max_inflight_per_worker must be positive")
        if self.max_strikes <= 0:
            raise SpecificationError("max_strikes must be positive")
        if self.max_evictions < 0:
            raise SpecificationError("max_evictions must be non-negative")
        if self.scale_up_backlog <= 0:
            raise SpecificationError("scale_up_backlog must be positive")
        if self.scale_down_idle_s <= 0:
            raise SpecificationError("scale_down_idle_s must be positive")


@dataclass
class WorkerInfo:
    """Controller-side view of one member."""

    worker_id: int
    state: str = "launching"
    launched_at: float = 0.0
    last_heartbeat: float = 0.0  # last sign of life (launch/register/heartbeat)
    heartbeats: int = 0
    jobs_done: int = 0
    strikes: int = 0
    evicted_reason: str = ""
    inflight: set[int] = field(default_factory=set)  # job ids dispatched to it

    def to_dict(self, now: float) -> dict:
        """JSON-serialisable form for ``status()`` / ``/v1/status``."""
        return {
            "worker_id": self.worker_id,
            "state": self.state,
            "age_s": round(max(now - self.launched_at, 0.0), 3),
            "silent_s": round(max(now - self.last_heartbeat, 0.0), 3),
            "heartbeats": self.heartbeats,
            "jobs_done": self.jobs_done,
            "strikes": self.strikes,
            "inflight": len(self.inflight),
            "evicted_reason": self.evicted_reason,
        }


@dataclass(frozen=True)
class FleetEvent:
    """One membership change, kept for status and post-mortems."""

    kind: str  # evict | reassign | scale_up | scale_down | stale_result | degrade
    worker_id: int
    detail: str = ""
    at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "worker_id": self.worker_id,
            "detail": self.detail,
            "at": round(self.at, 3),
        }


class FleetController:
    """Supervise a worker fleet generating one deterministic stream.

    Parameters
    ----------
    stream:
        The :class:`~repro.serve.engine.StreamConfig` every member
        serves.  Chunk payloads are pure functions of their byte offset,
        which is what makes eviction loss-free.
    fleet:
        Policy knobs (:class:`FleetConfig`).
    fault_plan:
        Optional :class:`~repro.robust.faults.FaultPlan` shipped to
        workers as JSON (chaos drills); workers also honour
        ``REPRO_FAULT_PLAN`` when this is ``None``.
    transport:
        Injectable message plane; defaults to a
        :class:`~repro.fleet.transport.LocalProcessTransport`.  Tests
        drive the controller with a fake transport and a fake clock.
    clock:
        Monotonic time source (injectable for deterministic liveness
        tests).
    """

    def __init__(
        self,
        stream: StreamConfig | None = None,
        fleet: FleetConfig | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        transport: Transport | None = None,
        clock=time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else StreamConfig()
        self.config = fleet if fleet is not None else FleetConfig()
        self.clock = clock
        self._ring: SharedMemoryRing | None = None
        if transport is None:
            if self.config.use_ring:
                # a slot is leased per *dispatched* job, so the pool only
                # needs to cover the maximum in-flight depth; overflow
                # jobs simply dispatch slotless and pickle their payload
                self._ring = SharedMemoryRing.try_create(
                    self.config.chunk_bytes,
                    self.config.max_workers * self.config.max_inflight_per_worker,
                )
            spec = WorkerSpec(
                stream=self.stream,
                heartbeat_interval=self.config.heartbeat_interval,
                verify_crc=self.config.verify_crc,
                plan_json=fault_plan.to_json() if fault_plan is not None else None,
                max_streams=self.config.max_streams,
                ring=self._ring.spec if self._ring is not None else None,
            )
            transport = LocalProcessTransport(spec, mp_context=self.config.mp_context)
        self.transport = transport

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._pump_gate = threading.Lock()  # one pumper at a time

        self.members: dict[int, WorkerInfo] = {}
        self.target = self.config.workers
        self.leases = LeaseManager()  # job-id space: never reissued
        self._pending: deque[ChunkJob] = deque()
        self._assigned: dict[int, tuple[ChunkJob, int, float]] = {}
        self._results: dict[int, bytes] = {}
        self._done: set[int] = set()  # job ids accepted (at most once each)
        self._screens: dict[int, tuple[RepetitionCountTest, AdaptiveProportionTest]] = {}
        self._inline: RangeSource | None = None  # degraded-mode generator
        # ring slot pool: a slot belongs to a job from dispatch until its
        # result is accepted or the assignment is torn down (requeue,
        # eviction, inline takeover) — and teardown only ever happens
        # after the writer is done (result received) or dead (killed)
        slots = self._ring.slots if self._ring is not None else 0
        self._free_slots: deque[int] = deque(range(slots))
        self._job_slots: dict[int, int] = {}

        self._next_worker_id = 0
        self._idle_since: float | None = None
        self.events: list[FleetEvent] = []
        self.evictions = 0
        self.reassignments = 0
        self.stale_results = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.degraded_chunks = 0
        self.jobs_completed = 0

        self._started = False
        self._closed = False
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self, supervise: bool = True) -> None:
        """Launch the initial membership (idempotent).

        With ``supervise=True`` a daemon thread pumps the transport
        continuously, so liveness is enforced even while no caller waits
        in :meth:`read_range` (the service deployment).  Without it the
        fleet is pumped only by waiting callers (tests, batch use).
        """
        with self._lock:
            if self._closed:
                raise SpecificationError("fleet controller is closed")
            if self._started:
                return
            self._started = True
            now = self.clock()
            for _ in range(self.target):
                self._launch(now)
            self._publish_membership()
        if supervise and self._supervisor is None:
            self._supervisor = threading.Thread(
                target=self._supervise_loop, name="fleet-supervisor", daemon=True
            )
            self._supervisor.start()

    def _supervise_loop(self) -> None:
        period = min(self.config.heartbeat_interval / 2.0, 0.25)
        while not self._stop.is_set():
            try:
                self.pump(period)
            except Exception:  # pragma: no cover - supervision must not die
                if self._stop.is_set() or self._closed:
                    return
                self._stop.wait(period)

    def close(self) -> None:
        """Drain nothing, stop everything: kill members, free the transport."""
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self.transport.close()
        # unlink only after every worker carrier is gone: an attacher
        # outliving the segment would fault on its next slot write
        if self._ring is not None:
            self._ring.close()

    def __enter__(self) -> "FleetController":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the pump: messages -> state, then policy --------------------------------
    def pump(self, timeout: float = 0.0) -> None:
        """Move transport messages into membership state and apply policy.

        Exactly one thread pumps at a time; others briefly wait on the
        condition instead (they will observe whatever the pump produced).
        Message handling runs before liveness checks with one coherent
        ``now``, so a heartbeat that arrives exactly at its deadline is
        credited before the deadline is evaluated.
        """
        if self._pump_gate.acquire(blocking=False):
            try:
                msgs = self.transport.poll(timeout)
                now = self.clock()
                with self._lock:
                    if self._closed:
                        return
                    for msg in msgs:
                        self._handle_message(msg, now)
                    self._check_liveness(now)
                    self._reconcile(now)
                    self._cond.notify_all()
            finally:
                self._pump_gate.release()
        else:
            with self._cond:
                self._cond.wait(timeout if timeout > 0 else 0.01)

    def handle_message(self, msg: Message, now: float | None = None) -> None:
        """Apply one message (public for transport-less tests)."""
        with self._lock:
            self._handle_message(msg, self.clock() if now is None else now)
            self._cond.notify_all()

    def check_liveness(self, now: float | None = None) -> None:
        """Evaluate heartbeat deadlines and carrier liveness (public for tests)."""
        with self._lock:
            self._check_liveness(self.clock() if now is None else now)

    def reconcile(self, now: float | None = None) -> None:
        """Relaunch toward target, autoscale, assign pending jobs (public for tests)."""
        with self._lock:
            self._reconcile(self.clock() if now is None else now)

    def _handle_message(self, msg: Message, now: float) -> None:
        member = self.members.get(msg.worker_id)
        if msg.kind == "register":
            if member is not None and member.state == "launching":
                member.state = "live"
                member.last_heartbeat = now
                self._publish_membership()
            return
        if msg.kind == "heartbeat":
            if member is not None and member.state in ("live", "draining"):
                member.last_heartbeat = now
                member.heartbeats += 1
                obs.inc("repro_fleet_heartbeats_total")
            return
        if msg.kind == "bye":
            if member is not None and member.state == "draining":
                member.state = "drained"
                self._publish_membership()
            return
        if msg.kind == "result":
            self._handle_result(msg, member, now)

    # -- results: receipts, screening, at-most-once acceptance -------------------
    def _handle_result(self, msg: Message, member: WorkerInfo | None, now: float) -> None:
        entry = self._assigned.get(msg.job_id)
        stale = (
            msg.job_id in self._done
            or entry is None
            or entry[1] != msg.worker_id
            or member is None
            or member.state not in ("live", "draining")
        )
        if stale:
            # a reassigned/duplicate/evicted-worker result: the lease was
            # (or will be) served exactly once by someone else
            self.stale_results += 1
            obs.inc("repro_fleet_stale_results_total")
            self.events.append(
                FleetEvent("stale_result", msg.worker_id, f"job {msg.job_id}", now)
            )
            return
        job, _, dispatched_at = entry
        # materialise a ring-parked payload *before* the length/CRC/
        # screen checks: a torn or stale slot write then takes exactly
        # the retry path a corrupted pickled transfer would
        payload = msg.payload
        if msg.ref is not None and self._ring is not None:
            try:
                payload = self._ring.read(msg.ref)
            except SpecificationError:
                payload = b""  # nonsense ref: fails the length check below
            if obs.metrics_enabled():
                obs.inc("repro_ring_slot_writes_total", 1)
                obs.inc("repro_ring_payload_bytes_total", len(payload))
        elif payload and obs.metrics_enabled():
            obs.inc("repro_result_pickled_payload_bytes_total", len(payload))
        if len(payload) != job.length:
            self._strike(member, job, now, f"short payload ({len(payload)}B)")
            return
        if self.config.verify_crc and msg.crc is not None:
            if payload_crc(payload) != msg.crc:
                self._strike(member, job, now, "crc mismatch")
                return
        if self.config.screen and not self._screen_ok(member.worker_id, payload):
            # suspect output: do not accept, requeue, evict the member
            self._requeue(job)
            self._evict(member, "health", now)
            return
        # accept: exactly once per lease, then the lease is done forever
        self._done.add(job.job_id)
        self._results[job.job_id] = payload
        self._assigned.pop(job.job_id, None)
        self._release_slot(job.job_id)
        member.inflight.discard(job.job_id)
        member.jobs_done += 1
        member.strikes = 0  # a clean receipt clears the slate
        self.jobs_completed += 1
        self.leases.release(job.job_id)
        obs.inc("repro_fleet_jobs_total")
        obs.inc("repro_fleet_bytes_total", job.length)
        obs.observe("repro_fleet_chunk_seconds", max(now - dispatched_at, 0.0))
        if msg.metrics and obs.metrics_enabled():
            obs.registry().merge(msg.metrics, extra_labels={"worker": str(member.worker_id)})
        if msg.spans:
            tracer = obs.active_tracer()
            if tracer is not None:
                tracer.merge(msg.spans, extra_args={"worker": member.worker_id})

    def _strike(self, member: WorkerInfo, job: ChunkJob, now: float, why: str) -> None:
        member.strikes += 1
        obs.inc("repro_fleet_receipt_failures_total")
        flight.record(
            "crc-strike",
            worker=member.worker_id,
            job=job.job_id,
            strikes=member.strikes,
            why=why,
        )
        flight.dump("crc-strike")
        self._requeue(job)
        if member.strikes >= self.config.max_strikes:
            self._evict(member, "corrupt", now)

    def _screen_ok(self, worker_id: int, payload: bytes) -> bool:
        rct, apt = self._screens.setdefault(
            worker_id,
            (
                RepetitionCountTest(self.config.alpha),
                AdaptiveProportionTest(self.config.alpha),
            ),
        )
        data = np.frombuffer(payload, dtype=np.uint8)
        return rct.update(data) is None and apt.update(data) is None

    def _requeue(self, job: ChunkJob) -> None:
        """Put a job back at the head of the queue, clearing its assignment."""
        entry = self._assigned.pop(job.job_id, None)
        if entry is not None:
            _, owner, _ = entry
            owner_info = self.members.get(owner)
            if owner_info is not None:
                owner_info.inflight.discard(job.job_id)
        self._release_slot(job.job_id)
        self._pending.appendleft(job)

    # -- liveness and eviction ----------------------------------------------------
    def _check_liveness(self, now: float) -> None:
        for member in list(self.members.values()):
            if member.state == "draining" and not self.transport.alive(member.worker_id):
                member.state = "drained"  # died while leaving; it was leaving
                self._publish_membership()
                continue
            if member.state not in ("launching", "live"):
                continue
            if not self.transport.alive(member.worker_id):
                self._evict(member, "crash", now)
                continue
            # strictly past the deadline: a heartbeat at exactly
            # last + timeout has already been credited by the pump order
            if now - member.last_heartbeat > self.config.heartbeat_timeout:
                self._evict(member, "heartbeat", now)

    def _evict(self, member: WorkerInfo, reason: str, now: float) -> None:
        if member.state == "evicted":
            return
        member.state = "evicted"
        member.evicted_reason = reason
        self.evictions += 1
        obs.inc("repro_fleet_evictions_total", reason=reason)
        self.events.append(FleetEvent("evict", member.worker_id, reason, now))
        flight.record(
            "eviction",
            worker=member.worker_id,
            reason=reason,
            jobs_done=member.jobs_done,
            inflight=sorted(member.inflight),
        )
        flight.dump("eviction")
        # reassign every inflight lease: back to the queue head so a
        # healthy peer regenerates the identical bytes
        for job_id in sorted(member.inflight):
            entry = self._assigned.pop(job_id, None)
            if entry is None:
                continue
            job, _, dispatched_at = entry
            # safe to recycle: the carrier is killed below, before any
            # reassignment can hand this slot to a new writer
            self._release_slot(job_id)
            self._pending.appendleft(job)
            self.reassignments += 1
            obs.inc("repro_fleet_lease_reassignments_total")
            obs.observe("repro_fleet_drain_seconds", max(now - dispatched_at, 0.0))
            self.events.append(
                FleetEvent("reassign", member.worker_id, f"job {job_id}", now)
            )
        member.inflight.clear()
        self._screens.pop(member.worker_id, None)
        try:
            self.transport.kill(member.worker_id)
        except Exception:  # pragma: no cover - a dead carrier is the goal
            pass
        self._publish_membership()

    # -- elasticity and dispatch ---------------------------------------------------
    def _live_members(self) -> list[WorkerInfo]:
        return [m for m in self.members.values() if m.state == "live"]

    def _present(self) -> int:
        """Members currently filling a target slot (launching or live)."""
        return sum(1 for m in self.members.values() if m.state in ("launching", "live"))

    def _reconcile(self, now: float) -> None:
        if self._closed or not self._started:
            return
        backlog = len(self._pending)
        live = self._live_members()
        busy = bool(backlog or self._assigned)
        # scale up: the backlog outgrew the membership
        if (
            backlog > self.config.scale_up_backlog * max(len(live), 1)
            and self.target < self.config.max_workers
        ):
            self.target += 1
            self.scale_ups += 1
            obs.inc("repro_fleet_scale_events_total", direction="up")
            self.events.append(FleetEvent("scale_up", -1, f"backlog {backlog}", now))
        # scale down: sustained idle
        if busy:
            self._idle_since = None
        elif self._idle_since is None:
            self._idle_since = now
        elif (
            now - self._idle_since >= self.config.scale_down_idle_s
            and self.target > self.config.min_workers
        ):
            self.target -= 1
            self.scale_downs += 1
            self._idle_since = now  # the next step waits a full idle period again
            obs.inc("repro_fleet_scale_events_total", direction="down")
            self.events.append(FleetEvent("scale_down", -1, "idle", now))
            for member in sorted(live, key=lambda m: len(m.inflight)):
                if self._present() <= self.target:
                    break
                member.state = "draining"
                try:
                    self.transport.send_job(member.worker_id, None)
                except Exception:  # pragma: no cover - carrier already gone
                    member.state = "drained"
                self._publish_membership()
                break
        # relaunch toward target, unless the eviction budget is spent
        while self._present() < self.target and self.evictions <= self.config.max_evictions:
            self._launch(now)
        self._assign(now)

    def _launch(self, now: float) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        info = WorkerInfo(worker_id, launched_at=now, last_heartbeat=now)
        self.members[worker_id] = info
        try:
            self.transport.launch(worker_id)
        except Exception as exc:
            info.state = "evicted"
            info.evicted_reason = "crash"
            self.evictions += 1
            obs.inc("repro_fleet_evictions_total", reason="crash")
            self.events.append(FleetEvent("evict", worker_id, f"launch failed: {exc}", now))
        self._publish_membership()

    def _lease_slot(self, job: ChunkJob) -> ChunkJob:
        """Attach a ring slot for the job's result (``None`` when the
        ring is off or the pool is momentarily dry — the worker then
        ships payload bytes).  Re-dispatch always re-leases, so a
        requeued job never carries a slot it no longer owns."""
        slot = self._free_slots.popleft() if self._ring is not None and self._free_slots else None
        if slot is not None:
            self._job_slots[job.job_id] = slot
        if job.ring_slot == slot:
            return job
        return replace(job, ring_slot=slot)

    def _release_slot(self, job_id: int) -> None:
        """Return a job's slot to the pool (idempotent per lease).

        Only called once the slot's writer is done (its result arrived)
        or dead (eviction kills the carrier before any reassignment), so
        a recycled slot never has two concurrent writers; a torn write
        from a kill mid-write is caught by the CRC receipt.
        """
        slot = self._job_slots.pop(job_id, None)
        if slot is not None:
            self._free_slots.append(slot)

    def _assign(self, now: float) -> None:
        while self._pending:
            candidates = [
                m
                for m in self._live_members()
                if len(m.inflight) < self.config.max_inflight_per_worker
            ]
            if not candidates:
                return
            member = min(candidates, key=lambda m: (len(m.inflight), m.worker_id))
            job = self._lease_slot(self._pending.popleft())
            try:
                self.transport.send_job(member.worker_id, job)
            except Exception:
                self._release_slot(job.job_id)
                self._pending.appendleft(job)
                self._evict(member, "crash", now)
                continue
            self._assigned[job.job_id] = (job, member.worker_id, now)
            member.inflight.add(job.job_id)

    # -- degraded mode -------------------------------------------------------------
    def _fleet_exhausted(self) -> bool:
        """No member is present and the relaunch budget is spent."""
        return self._present() == 0 and self.evictions > self.config.max_evictions

    def _inline_source(self) -> RangeSource:
        if self._inline is None:
            self._inline = RangeSource(self.stream, max_streams=2)
        return self._inline

    # -- the data path -------------------------------------------------------------
    def submit_range(self, offset: int, n: int) -> list[ChunkJob]:
        """Lease and dispatch chunk jobs covering ``[offset, offset + n)``.

        Each job is backed by a fresh lease id (never reissued), so
        acceptance bookkeeping is exact.  Returns without waiting; pair
        with :meth:`try_collect` (or use :meth:`read_range`).
        """
        if n < 0 or offset < 0:
            raise SpecificationError("need offset >= 0 and n >= 0")
        jobs: list[ChunkJob] = []
        with self._lock:
            if self._closed:
                raise SpecificationError("fleet controller is closed")
            if not self._started:
                self.start(supervise=False)
            # stamp each job with the caller's trace context so worker
            # spans come home under the same trace (None while tracing
            # is off — the wire must add nothing to the disabled path)
            wire = trace_context.current_wire() if obs.active_tracer() else None
            pos, remaining = offset, n
            while remaining:
                take = min(self.config.chunk_bytes, remaining)
                lease = self.leases.acquire(take, client=f"fleet@{pos}")
                jobs.append(ChunkJob(lease.lease_id, pos, take, trace=wire))
                pos += take
                remaining -= take
            self._pending.extend(jobs)
            self._assign(self.clock())
        return jobs

    def try_collect(self, jobs: list[ChunkJob]) -> bytes | None:
        """The merged bytes of *jobs* once every result landed, else ``None``."""
        with self._lock:
            if not all(job.job_id in self._results for job in jobs):
                return None
            return b"".join(self._results.pop(job.job_id) for job in jobs)

    def read_range(self, offset: int, n: int, timeout: float | None = None) -> bytes:
        """Generate stream bytes ``[offset, offset + n)`` through the fleet.

        Splits the range into chunk jobs (each backed by a never-reissued
        lease id), dispatches them, pumps while waiting, and joins the
        results in order.  Survives any number of evictions up to the
        budget; beyond it, finishes inline (when ``degrade_inline``) so
        the caller never sees the fleet's losses — only, perhaps, their
        latency.
        """
        if n == 0:
            return b""
        with span("fleet.read_range", offset=offset, n=n):
            return self._read_range(offset, n, timeout)

    def _read_range(self, offset: int, n: int, timeout: float | None) -> bytes:
        jobs = self.submit_range(offset, n)
        deadline = None if timeout is None else self.clock() + timeout
        period = min(self.config.heartbeat_interval / 2.0, 0.05)
        while True:
            with self._lock:
                merged = self.try_collect(jobs)
                if merged is not None:
                    return merged
                if self._fleet_exhausted():
                    missing = [
                        job
                        for job in jobs
                        if job.job_id not in self._results and job.job_id not in self._done
                    ]
                    if not self.config.degrade_inline:
                        raise DeviceFailureError(
                            f"fleet exhausted after {self.evictions} evictions "
                            f"({len(missing)} chunks unserved)"
                        )
                    for job in missing:
                        # claim each lease inline before generating, so a
                        # straggler's late result is stale, not a duplicate
                        self._pending = deque(
                            j for j in self._pending if j.job_id != job.job_id
                        )
                        self._requeue_clear(job)
                        self._done.add(job.job_id)
                        self.leases.release(job.job_id)
                    if missing:
                        self.degraded_chunks += len(missing)
                        obs.inc("repro_fleet_degraded_chunks_total", len(missing))
                        self.events.append(
                            FleetEvent(
                                "degrade", -1, f"{len(missing)} chunks inline", self.clock()
                            )
                        )
                    source = self._inline_source()
                    for job in missing:
                        data = source.read_range(job.offset, job.length)
                        with self._lock:
                            self._results[job.job_id] = data
                    continue
            if deadline is not None and self.clock() > deadline:
                raise DeviceFailureError(
                    f"fleet did not serve {n} bytes at {offset} within {timeout}s"
                )
            self.pump(period)

    def _requeue_clear(self, job: ChunkJob) -> None:
        """Drop a job's assignment without requeueing (inline takeover)."""
        entry = self._assigned.pop(job.job_id, None)
        if entry is not None:
            _, owner, _ = entry
            owner_info = self.members.get(owner)
            if owner_info is not None:
                owner_info.inflight.discard(job.job_id)
        self._release_slot(job.job_id)

    def generate(self, n: int, offset: int = 0) -> bytes:
        """Convenience: one fleet-merged range (CLI / benchmarks)."""
        return self.read_range(offset, n)

    # -- introspection -------------------------------------------------------------
    def _publish_membership(self) -> None:
        counts = {state: 0 for state in WORKER_STATES}
        for member in self.members.values():
            counts[member.state] += 1
        for state, count in counts.items():
            obs.set_gauge("repro_fleet_workers", count, state=state)
        obs.set_gauge("repro_fleet_target_workers", self.target)

    def status(self) -> dict:
        """Snapshot for ``/v1/status`` and the CLI summary."""
        with self._lock:
            now = self.clock()
            return {
                "target": self.target,
                "started": self._started,
                "closed": self._closed,
                "workers": [
                    self.members[wid].to_dict(now) for wid in sorted(self.members)
                ],
                "counters": {
                    "evictions": self.evictions,
                    "reassignments": self.reassignments,
                    "stale_results": self.stale_results,
                    "scale_ups": self.scale_ups,
                    "scale_downs": self.scale_downs,
                    "degraded_chunks": self.degraded_chunks,
                    "jobs_completed": self.jobs_completed,
                },
                "pending_jobs": len(self._pending),
                "inflight_jobs": len(self._assigned),
                "leases": {
                    key: value
                    for key, value in self.leases.stats().items()
                    if key != "active_leases"
                },
                "events": [event.to_dict() for event in self.events[-50:]],
            }
