"""E8 — §4.3: the bitsliced-LFSR claim.

The paper: generating M bits with 32 row-major parallel LFSRs costs
``32 x k`` bit-level XOR/shift/mask operations per clock; the bitsliced
layout needs only ``k`` full-width XORs and replaces the shift with
register renaming.  Verified two ways:

* **op counts** — read from the instrumented implementations, checking
  the 32x (here: lane-count x) reduction exactly;
* **wall clock** — row-major vs bitsliced at identical lane counts,
  plus the shift-by-renaming vs physical-roll design ablation (#2).
"""

import numpy as np
import pytest
from _emit import emit_bench
from conftest import FULL_SCALE, emit_table, measure_gbps

from repro.core.engine import BitslicedEngine
from repro.core.lfsr import BitslicedLFSR, NaiveParallelLFSR

N = 32  # paper-style 32-bit LFSR
LANES = 1 << 14 if FULL_SCALE else 1 << 12
STEPS = 512 if FULL_SCALE else 256


def test_op_count_claim(benchmark):
    """The k vs 32*k instruction claim, from the live implementations."""
    naive = NaiveParallelLFSR(N, n_lanes=LANES)
    bs = BitslicedLFSR(N, engine=BitslicedEngine(n_lanes=LANES))
    bs.seed_from_ints(np.arange(1, LANES + 1))
    k = len(bs.taps)

    bs.engine.reset_gate_counts()
    benchmark.pedantic(lambda: bs.run(STEPS), rounds=1, iterations=1)
    gates = bs.engine.counter.snapshot()

    naive_ops_total = naive.ops_per_step_per_lane * LANES  # per clock
    bitsliced_ops_total = gates["total"] / STEPS  # per clock

    lines = [
        f"LFSR n={N}, taps k={k}, lanes={LANES}",
        "",
        f"{'variant':<26}{'ops/clock (all lanes)':>24}",
        "-" * 50,
        f"{'row-major (naive)':<26}{naive_ops_total:>24}",
        f"{'bitsliced':<26}{bitsliced_ops_total:>24.1f}",
        "",
        f"reduction: {naive_ops_total / bitsliced_ops_total:.0f}x "
        f"(paper claims ~{LANES}*k -> k, i.e. O(lanes))",
    ]
    emit_table("ablation_lfsr_ops", lines)
    emit_bench(
        "ablation_lfsr_ops",
        params={"n": N, "taps_k": k, "lanes": LANES, "steps": STEPS},
        metrics={
            "naive_ops_per_clock": naive_ops_total,
            "bitsliced_ops_per_clock": bitsliced_ops_total,
            "reduction": naive_ops_total / bitsliced_ops_total,
        },
    )

    # Bitsliced work per clock is K+1 full-width XORs (the +1 accounts the
    # tap accumulator copy) regardless of lane count.
    assert bitsliced_ops_total <= k + 1
    # Naive work scales with lanes: the reduction is at least lanes/4.
    assert naive_ops_total / bitsliced_ops_total > LANES / 4


def test_wallclock_naive_vs_bitsliced(benchmark):
    naive = NaiveParallelLFSR(N, n_lanes=LANES)
    bs = BitslicedLFSR(N, engine=BitslicedEngine(n_lanes=LANES))
    bs.seed_from_ints(np.arange(1, LANES + 1))

    naive_gbps = measure_gbps(lambda: naive.run(STEPS), STEPS * LANES, repeat=2)
    bs_gbps = measure_gbps(lambda: bs.run(STEPS), STEPS * LANES, repeat=2)

    lines = [
        f"{'variant':<26}{'Gbit/s':>10}",
        "-" * 36,
        f"{'row-major (naive)':<26}{naive_gbps:>10.4f}",
        f"{'bitsliced':<26}{bs_gbps:>10.4f}",
        "",
        f"speedup: {bs_gbps / naive_gbps:.2f}x",
    ]
    emit_table("ablation_lfsr_wallclock", lines)
    emit_bench(
        "ablation_lfsr_wallclock",
        params={"n": N, "lanes": LANES, "steps": STEPS},
        gbps=bs_gbps,
        metrics={"naive_gbps": naive_gbps, "speedup": bs_gbps / naive_gbps},
    )
    benchmark.extra_info["speedup"] = round(bs_gbps / naive_gbps, 2)
    benchmark.pedantic(lambda: bs.run(STEPS), rounds=1, iterations=1)

    assert bs_gbps > naive_gbps


def test_renaming_vs_physical_roll(benchmark):
    """Design ablation #2: O(1) head-pointer renaming vs np.roll of the
    whole state block each clock."""
    engine = BitslicedEngine(n_lanes=LANES)
    bs = BitslicedLFSR(N, engine=engine)
    bs.seed_from_ints(np.arange(1, LANES + 1))

    def roll_variant(steps: int):
        # same gate work, but the shift physically moves all N rows
        state = bs.file.snapshot()
        taps = bs.taps
        for _ in range(steps):
            fb = state[taps[0]].copy()
            for t in taps[1:]:
                fb ^= state[t]
            state = np.roll(state, -1, axis=0)
            state[-1] = fb
        return state

    rename_gbps = measure_gbps(lambda: bs.run(STEPS), STEPS * LANES, repeat=2)
    roll_gbps = measure_gbps(lambda: roll_variant(STEPS), STEPS * LANES, repeat=2)

    lines = [
        f"{'shift strategy':<26}{'Gbit/s':>10}",
        "-" * 36,
        f"{'renaming (O(1))':<26}{rename_gbps:>10.4f}",
        f"{'physical roll (O(n))':<26}{roll_gbps:>10.4f}",
        "",
        f"renaming advantage: {rename_gbps / roll_gbps:.2f}x",
    ]
    emit_table("ablation_lfsr_renaming", lines)
    emit_bench(
        "ablation_lfsr_renaming",
        params={"n": N, "lanes": LANES, "steps": STEPS},
        gbps=rename_gbps,
        metrics={"roll_gbps": roll_gbps, "advantage": rename_gbps / roll_gbps},
    )
    benchmark.extra_info["advantage"] = round(rename_gbps / roll_gbps, 2)
    benchmark.pedantic(lambda: bs.run(64), rounds=1, iterations=1)

    assert rename_gbps > roll_gbps


def test_jump_ahead_vs_stepping(benchmark):
    """Extension ablation: O(n^3 log k) matrix jump vs k sequential
    clocks, and its lane-count independence."""
    import time

    k = 200_000
    bs = BitslicedLFSR(N, engine=BitslicedEngine(n_lanes=LANES))
    bs.seed_from_ints(np.arange(1, LANES + 1))

    t0 = time.perf_counter()
    bs.run(k)
    step_s = time.perf_counter() - t0

    bs2 = BitslicedLFSR(N, engine=BitslicedEngine(n_lanes=LANES))
    bs2.seed_from_ints(np.arange(1, LANES + 1))
    t0 = time.perf_counter()
    bs2.jump(k)
    jump_s = time.perf_counter() - t0
    assert np.array_equal(bs.state_bits(), bs2.state_bits())

    lines = [
        f"advance {LANES} lanes by k={k:,} clocks (n={N}):",
        "",
        f"{'method':<26}{'seconds':>10}",
        "-" * 36,
        f"{'sequential clocking':<26}{step_s:>10.4f}",
        f"{'matrix jump-ahead':<26}{jump_s:>10.6f}",
        "",
        f"speedup: {step_s / jump_s:.0f}x (and O(log k): doubling k adds one squaring)",
    ]
    emit_table("ablation_jump_ahead", lines)
    emit_bench(
        "ablation_jump_ahead",
        params={"n": N, "lanes": LANES, "k": k},
        wall_s=jump_s,
        metrics={"step_s": step_s, "speedup": step_s / jump_s},
    )
    benchmark.extra_info["speedup"] = round(step_s / jump_s, 1)
    benchmark.pedantic(lambda: bs2.jump(k), rounds=2, iterations=1)

    assert jump_s < step_s / 10
