"""Terminal rendering of the paper's figures.

The benchmarks regenerate Figure 10/11 as *data*; this package renders
that data the way the paper presents it — grouped bar charts — in plain
text, so ``pytest benchmarks/`` and the CLI can show the figure shape
without a plotting stack.
"""

from repro.report.charts import bar_chart, grouped_bar_chart, series_table

__all__ = ["bar_chart", "grouped_bar_chart", "series_table"]
