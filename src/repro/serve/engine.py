"""The daemon's generation core: a persistent, supervised worker pool.

:class:`ServeEngine` turns lease ranges into bytes.  It reuses the
machinery the batch layers built:

* **counter-space addressing** — every chunk is a pure function of
  ``(stream config, offset, length)`` via :meth:`BSRNG.skip_bytes`, the
  same partitioning :mod:`repro.gpu.multigpu` uses (§5.4 of the paper),
  so any worker can serve any chunk and a retried chunk is
  byte-identical;
* **supervision** — the per-chunk dispatch applies the
  :class:`~repro.robust.supervisor.SupervisorConfig` policy (timeout,
  retry with backoff, optional CRC receipt via
  :func:`~repro.robust.supervisor.payload_crc`) against a *persistent*
  ``multiprocessing.Pool`` instead of the batch supervisor's
  pool-per-round: a long-lived service cannot pay pool startup per
  request, and a worker that crashes is replaced by the pool while the
  chunk is retried elsewhere — the lease is effectively reassigned;
* **fault injection** — workers honour ``REPRO_FAULT_PLAN``
  (:class:`~repro.robust.faults.FaultPlan`) keyed by ``(chunk_id,
  attempt)``, so drills can crash a worker or wedge a payload
  deterministically;
* **health gating** — accepted chunks stream through the SP 800-90B
  Repetition Count / Adaptive Proportion tests
  (:mod:`repro.robust.health`).  A screening failure is treated like any
  other failed attempt (the chunk is regenerated), and the verdict is
  *latched*: ``/healthz`` reports unhealthy from the first failure until
  an operator intervenes.

Worker processes each own a bounded :class:`RangeSource` cache of
generator fronts per stream config (the *per-worker ownership
invariant* — see :class:`BSRNG`'s thread-safety notes), so interleaved
clients continue their own fronts instead of forcing a seek per chunk.
Counter-based kernels (AES-CTR) seek in O(1); LFSR kernels
clock-and-discard, which the chunk metrics make visible.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import multiprocessing.pool
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.generator import BSRNG
from repro.errors import DeviceFailureError, SpecificationError
from repro.obs import context as trace_context
from repro.obs import flight
from repro.obs.tracing import SpanCollector, span
from repro.robust.faults import FaultPlan
from repro.robust.health import AdaptiveProportionTest, RepetitionCountTest
from repro.robust.supervisor import SupervisorConfig, payload_crc

__all__ = ["StreamConfig", "RangeSource", "HealthState", "ServeEngine"]


@dataclass(frozen=True)
class StreamConfig:
    """The served stream's identity: one deterministic BSRNG configuration.

    Picklable (dtype carried by name), hashable (worker-side generator
    cache key), and auditable — a client holding this config and a lease
    offset can reproduce its bytes offline.
    """

    algorithm: str = "mickey2"
    seed: int = 0
    lanes: int = 4096
    dtype: str = "uint64"
    fused: bool | None = None
    clocks_per_call: int = 32

    def make_rng(self) -> BSRNG:
        """A fresh generator positioned at stream offset 0."""
        return BSRNG(
            self.algorithm,
            seed=self.seed,
            lanes=self.lanes,
            dtype=np.dtype(self.dtype).type,
            fused=self.fused,
            clocks_per_call=self.clocks_per_call,
        )

    def to_dict(self) -> dict:
        """JSON form for ``/v1/status``."""
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "lanes": self.lanes,
            "dtype": self.dtype,
            "fused": self.fused,
            "clocks_per_call": self.clocks_per_call,
        }


class RangeSource:
    """Serve absolute stream ranges from a bounded cache of generators.

    Interleaved clients each advance their own contiguous window of the
    stream, so the offsets any one worker sees hop between a handful of
    fronts.  A single cached generator would pay a skip — or, for LFSR
    kernels, a full clock-and-discard rebuild — on nearly every chunk
    (measured: 8 concurrent clients halved total throughput).  Instead,
    up to ``max_streams`` generators are kept, keyed by the offset each
    would serve next:

    * a read continuing any cached front costs nothing extra;
    * a read ahead of the nearest front pays only the forward gap
      (O(1) for counter-based kernels, generate-and-discard for LFSRs);
    * only a read behind *every* cached front rebuilds from seed.

    Because leases tile the stream contiguously, a serving worker almost
    always finds an exact or near front, whatever kernel family runs
    underneath.  Eviction is LRU by last use; collisions on the same
    next-offset keep the most recent generator.  One internal lock makes
    the shared inline-fallback instance safe under concurrent callers.
    """

    def __init__(self, config: StreamConfig, max_streams: int = 8) -> None:
        if max_streams <= 0:
            raise SpecificationError("max_streams must be positive")
        self.config = config
        self.max_streams = max_streams
        self._streams: dict[int, BSRNG] = {}  # next served offset -> generator
        self._lock = threading.Lock()
        self.rebuilds = 0
        self.forward_skips = 0

    def read_range(self, offset: int, n: int) -> bytes:
        """The stream's bytes ``[offset, offset + n)``."""
        if offset < 0 or n < 0:
            raise SpecificationError("offset and n must be non-negative")
        with self._lock:
            rng = self._streams.pop(offset, None)
            if rng is None:
                behind = [o for o in self._streams if o < offset]
                if behind:
                    # nearest front at-or-behind pays the smallest gap
                    rng = self._streams.pop(max(behind))
                    self.forward_skips += 1
                else:
                    rng = self.config.make_rng()
                    self.rebuilds += 1
                rng.skip_bytes(offset - rng.tell())
            data = rng.read(n)
            if len(self._streams) >= self.max_streams:
                self._streams.pop(next(iter(self._streams)))  # oldest entry
            self._streams[offset + n] = rng
            return data


# -- worker side -----------------------------------------------------------------
#: Per-process generator cache: one RangeSource per stream config, owned
#: exclusively by this worker process (the ownership invariant that makes
#: the pool path lock-free in practice).
_WORKER_SOURCES: dict[StreamConfig, RangeSource] = {}


def _worker_init() -> None:
    """Pool initializer: a fork-inherited parent registry must not
    double-count, and serve workers report nothing of their own."""
    obs.disable_metrics()
    obs.disable_tracing()


def _serve_chunk(job: tuple, attempt: int = 0) -> tuple[bytes, int | None, dict | None]:
    """Generate one chunk in a pool worker.

    ``job`` is ``(chunk_id, config, offset, n, verify_crc)`` with an
    optional sixth ``(trace_id, span_id)`` wire pair; when present the
    chunk runs under a :class:`~repro.obs.tracing.SpanCollector` and the
    worker's spans ship home as the third tuple element.  The CRC is
    computed before fault injection mutates the payload, so an injected
    corruption looks exactly like a damaged transfer to the dispatcher.
    """
    chunk_id, config, offset, n, verify_crc = job[:5]
    trace = job[5] if len(job) > 5 else None
    plan = FaultPlan.from_env()
    if plan is not None:
        plan.pre_generate(chunk_id, attempt)
    source = _WORKER_SOURCES.get(config)
    if source is None:
        source = _WORKER_SOURCES[config] = RangeSource(config)
    with SpanCollector(
        trace,
        "serve.worker_chunk",
        process_name="serve-pool-worker",
        chunk=chunk_id,
        offset=offset,
        n=n,
    ) as collector:
        data = source.read_range(offset, n)
    if plan is not None:
        # a bias fault models a *defective generator*, not a damaged
        # transfer: it mutates the payload before the CRC receipt, so the
        # bytes verify clean and only statistical QA can catch them
        data = plan.apply_bias(chunk_id, data)
    crc = payload_crc(data) if verify_crc else None
    if plan is not None:
        data = plan.post_generate(chunk_id, attempt, data)
    return data, crc, collector.snapshot


# -- health gating ---------------------------------------------------------------
class HealthState:
    """Latched RCT/APT verdict over everything the daemon serves.

    The continuous tests are streaming and stateful; one instance screens
    the concatenation of accepted chunks (order of interleaved clients is
    irrelevant to the tests' guarantees — they hunt stuck-at and biased
    output, properties of the generator, not of any one lease).  The
    verdict is sticky: one failure flips :attr:`healthy` until
    :meth:`reset`.
    """

    def __init__(self, alpha: float = 2.0**-20) -> None:
        self.alpha = alpha
        self._lock = threading.Lock()
        self.rct = RepetitionCountTest(alpha)
        self.apt = AdaptiveProportionTest(alpha)
        self.healthy = True
        self.events: list[dict] = []
        self.bytes_screened = 0

    def screen(self, data: bytes) -> str | None:
        """Screen one chunk; returns the failing test name or ``None``.

        On failure the verdict latches unhealthy and the test state is
        reset, so the retried chunk is screened from a clean slate.
        """
        buf = np.frombuffer(data, dtype=np.uint8)
        with self._lock:
            failed: str | None = None
            at = self.rct.update(buf)
            if at is not None:
                failed = "rct"
            else:
                at = self.apt.update(buf)
                if at is not None:
                    failed = "apt"
            if failed is None:
                self.bytes_screened += len(data)
                return None
            self.healthy = False
            position = self.bytes_screened + int(at)
            self.events.append({"test": failed, "position": position, "time": time.time()})
            obs.inc("repro_serve_health_failures_total", 1, test=failed)
            obs.set_gauge("repro_serve_healthy", 0)
            self.rct.reset()
            self.apt.reset()
            flight.record("health-failure", test=failed, position=position)
            flight.dump("health")
            return failed

    def latch(self, test: str, detail: dict | None = None) -> None:
        """Latch unhealthy on an external monitor's verdict.

        The continuous-QA sidecar calls this with ``test="qa:<plugin>"``
        and the triggering window's particulars — same sticky operator
        contract as an RCT/APT screen failure, one layer up.
        """
        with self._lock:
            self.healthy = False
            event: dict = {"test": test, "time": time.time()}
            if detail:
                event["detail"] = detail
            self.events.append(event)
            obs.inc("repro_serve_health_failures_total", 1, test=test)
            obs.set_gauge("repro_serve_healthy", 0)
            flight.record("health-failure", test=test)
            flight.dump("health")

    def reset(self) -> None:
        """Operator action: clear the latch (events are kept)."""
        with self._lock:
            self.healthy = True
            self.rct.reset()
            self.apt.reset()
            obs.set_gauge("repro_serve_healthy", 1)

    def to_dict(self) -> dict:
        """JSON form for ``/healthz`` and ``/v1/status``."""
        with self._lock:
            return {
                "healthy": self.healthy,
                "bytes_screened": self.bytes_screened,
                "events": list(self.events),
            }


# -- the engine ------------------------------------------------------------------
@dataclass
class EngineStats:
    """Dispatch counters for ``/v1/status`` (guarded by the engine lock)."""

    chunks_ok: int = 0
    retries: int = 0
    degraded: int = 0
    crc_rejects: int = 0
    screen_rejects: int = 0
    timeouts: int = 0
    worker_errors: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


class ServeEngine:
    """Generate lease ranges through a persistent supervised worker pool.

    Parameters
    ----------
    config:
        The served stream's :class:`StreamConfig`.
    workers:
        Pool size.  ``0`` disables the pool entirely — every chunk is
        generated inline (useful for tests and single-core boxes).
    supervision:
        Timeout/retry/CRC policy per chunk
        (:class:`~repro.robust.supervisor.SupervisorConfig`; its
        ``degrade_sequential`` flag controls the inline fallback when the
        pool exhausts its retries).
    screen:
        Run the RCT/APT health screen over accepted chunks.
    alpha:
        False-positive rate for the screening cutoffs.
    fleet:
        Mount a supervised :class:`~repro.fleet.controller.FleetController`
        (heartbeat liveness, health eviction, lease reassignment, elastic
        sizing) in place of the anonymous pool.  When set, ``workers`` is
        ignored — membership is the fleet's business — and worker loss is
        absorbed below this engine: chunks are regenerated by healthy
        peers or inline, never surfaced to clients as errors.
    qa:
        Mount a :class:`~repro.qa.sidecar.QASidecar` as a continuous-QA
        monitor: every accepted chunk is (non-blockingly) observed by
        the sidecar's streaming evaluator, and a plugin latch flips
        :attr:`health` unhealthy with a ``qa:<plugin>`` event.
    """

    def __init__(
        self,
        config: StreamConfig | None = None,
        workers: int = 2,
        supervision: SupervisorConfig | None = None,
        screen: bool = True,
        alpha: float = 2.0**-20,
        mp_context: str | None = None,
        fleet=None,
        qa=None,
    ) -> None:
        if workers < 0:
            raise SpecificationError("workers must be non-negative")
        self.config = config or StreamConfig()
        self.workers = workers
        self.supervision = supervision or SupervisorConfig(timeout=30.0, max_retries=2)
        self.screen = screen
        self.health = HealthState(alpha)
        self.stats = EngineStats()
        self._stats_lock = threading.Lock()
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self.fleet_config = fleet  # FleetConfig | None (lazy import below)
        self._fleet = None  # FleetController once started
        self.qa = qa  # QASidecar | None
        if qa is not None:
            qa.bind(self.health)
        self._pool: multiprocessing.pool.Pool | None = None
        self._inline: RangeSource | None = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool (idempotent).

        Call *before* the event loop starts serving: fork-context pools
        must not be created after request threads exist.
        """
        if self._started:
            return
        self._started = True
        obs.set_gauge("repro_serve_healthy", 1)
        if self.qa is not None:
            self.qa.start()
        if self.fleet_config is not None:
            # deferred import: repro.fleet builds on this module
            from repro.fleet.controller import FleetController

            obs.set_gauge("repro_serve_pool_workers", 0)
            self._fleet = FleetController(self.config, self.fleet_config)
            self._fleet.start(supervise=True)
            return
        obs.set_gauge("repro_serve_pool_workers", self.workers)
        if self.workers > 0:
            ctx = mp.get_context(self.mp_context)
            self._pool = ctx.Pool(processes=self.workers, initializer=_worker_init)

    def close(self) -> None:
        """Terminate the pool/fleet (hung workers must die with the daemon)."""
        if self.qa is not None:
            self.qa.close()
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._started = False

    def _inline_source(self) -> RangeSource:
        if self._inline is None:
            self._inline = RangeSource(self.config)
        return self._inline

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, d in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + d)

    # -- dispatch ----------------------------------------------------------------
    def generate_range(self, offset: int, n: int, chunk_id: int = 0, trace=None) -> bytes:
        """The stream bytes ``[offset, offset + n)``, supervised.

        Attempts the chunk through the pool (timeout, retry with backoff,
        CRC verification, health screening); falls back to inline
        generation when the pool is exhausted and degradation is
        enabled.  Raises :class:`~repro.errors.DeviceFailureError` only
        when every path failed.  Safe to call from many threads — the
        persistent pool multiplexes, and the inline fallback serialises
        on the generator lock.

        *trace* re-activates a caller's ``(trace_id, span_id)`` wire pair
        — the daemon captures it on the event loop and passes it here
        because contextvars do not follow ``run_in_executor``.
        """
        if n == 0:
            return b""
        cfg = self.supervision
        if trace is not None:
            entry = trace_context.activate(trace_context.TraceContext.from_wire(trace))
        else:
            entry = contextlib.nullcontext()
        with entry, span("serve.chunk", chunk=chunk_id, offset=offset, n=n):
            wire = trace_context.current_wire() if obs.active_tracer() else None
            job = (chunk_id, self.config, offset, n, cfg.verify_crc, wire)
            if self._fleet is not None:
                try:
                    data = self._fleet.read_range(offset, n)
                except DeviceFailureError:
                    # the fleet is gone and refused to degrade; the engine
                    # still owes the caller deterministic bytes
                    if not cfg.degrade_sequential:
                        raise
                    self._count(degraded=1)
                    obs.inc("repro_serve_degraded_chunks_total")
                    data = self._inline_source().read_range(offset, n)
                # the fleet screens per worker (and evicts); this screen
                # latches the service-wide /healthz verdict
                if self.screen and self.health.screen(data) is not None:
                    self._count(screen_rejects=1)
                self._count(chunks_ok=1)
                self._observe_qa(data)
                return data
            if self._pool is not None:
                for attempt in range(cfg.max_retries + 1):
                    if attempt:
                        time.sleep(cfg.backoff(attempt))
                        self._count(retries=1)
                        obs.inc("repro_serve_chunk_retries_total")
                    data = self._attempt_pool(job, attempt, cfg)
                    if data is not None:
                        self._count(chunks_ok=1)
                        self._observe_qa(data)
                        return data
                if not cfg.degrade_sequential:
                    raise DeviceFailureError(
                        f"chunk {chunk_id} (offset {offset}, {n} bytes) failed "
                        f"{cfg.max_retries + 1} pool attempts"
                    )
                self._count(degraded=1)
                obs.inc("repro_serve_degraded_chunks_total")
            # inline path: workers disabled, or pool exhausted (degrade).
            # The inline stream is deterministic and fault-free, so a
            # screening failure here latches the verdict but cannot be
            # retried away — the bytes are served and /healthz tells the
            # operator the generator itself is suspect.
            data = self._inline_source().read_range(offset, n)
            if self.screen and self.health.screen(data) is not None:
                self._count(screen_rejects=1)
            self._count(chunks_ok=1)
            self._observe_qa(data)
            return data

    def _observe_qa(self, data: bytes) -> None:
        """Hand an accepted chunk to the QA sidecar (non-blocking)."""
        if self.qa is not None:
            self.qa.observe(data)

    def _attempt_pool(self, job: tuple, attempt: int, cfg: SupervisorConfig) -> bytes | None:
        """One pool attempt; ``None`` means retry (reason counted)."""
        chunk_id, _, offset, n, verify = job[:5]
        handle = self._pool.apply_async(_serve_chunk, (job, attempt))
        try:
            data, crc, spans = handle.get(cfg.timeout)
        except mp.TimeoutError:
            self._count(timeouts=1)
            obs.inc("repro_serve_chunk_failures_total", 1, kind="timeout")
            return None
        except Exception as exc:  # worker raised (crash, injected fault, ...)
            self._count(worker_errors=1)
            obs.inc("repro_serve_chunk_failures_total", 1, kind="error")
            obs.inc("repro_serve_worker_exceptions_total", 1, exception=type(exc).__name__)
            return None
        if spans is not None:
            tracer = obs.active_tracer()
            if tracer is not None:
                tracer.merge(spans)
        if verify and (crc is None or payload_crc(data) != crc):
            self._count(crc_rejects=1)
            obs.inc("repro_serve_chunk_failures_total", 1, kind="corrupt")
            flight.record("crc-reject", chunk=chunk_id, offset=offset, n=n)
            flight.dump("crc")
            return None
        if self.screen and self.health.screen(data) is not None:
            self._count(screen_rejects=1)
            obs.inc("repro_serve_chunk_failures_total", 1, kind="screen")
            return None
        return data

    # -- introspection -----------------------------------------------------------
    def status(self) -> dict:
        """JSON snapshot for ``/v1/status``."""
        with self._stats_lock:
            stats = self.stats.to_dict()
        return {
            "stream": self.config.to_dict(),
            "workers": self.workers if self._fleet is None else None,
            "fleet": self._fleet.status() if self._fleet is not None else None,
            "supervision": {
                "timeout": self.supervision.timeout,
                "max_retries": self.supervision.max_retries,
                "verify_crc": self.supervision.verify_crc,
                "degrade_sequential": self.supervision.degrade_sequential,
            },
            "screen": self.screen,
            "chunks": stats,
            "health": self.health.to_dict(),
            "qa": self.qa.status() if self.qa is not None else None,
        }
