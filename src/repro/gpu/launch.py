"""CUDA-style launch configuration and SM occupancy.

The paper fixes *thread blocks = 64* and *threads per block = 256*
(§5.2) and tunes the kernel "loop size" between 4,400 and 13,000; the
occupancy calculator reproduces the register-pressure trade-off those
choices navigate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gpu.specs import GPUSpec

__all__ = ["LaunchConfig", "occupancy"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry of one kernel launch (paper defaults)."""

    blocks: int = 64
    threads_per_block: int = 256
    loop_size: int = 8192  # keystream clocks per kernel invocation

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.threads_per_block <= 0 or self.loop_size <= 0:
            raise ModelError("launch dimensions must be positive")
        if self.threads_per_block > 1024:
            raise ModelError("CUDA caps threads per block at 1024")

    @property
    def total_threads(self) -> int:
        """Threads across the whole grid."""
        return self.blocks * self.threads_per_block

    def lanes(self, datapath: int = 32) -> int:
        """Total parallel generator instances the launch runs."""
        return self.total_threads * datapath

    def bits_per_launch(self, datapath: int = 32) -> int:
        """Output bits one launch produces."""
        return self.lanes(datapath) * self.loop_size


def occupancy(gpu: GPUSpec, registers_per_thread: int, threads_per_block: int = 256) -> float:
    """Fraction of an SM's maximum resident threads a kernel sustains.

    Registers are the binding resource for bitsliced kernels (no shared
    memory beyond the staging buffer, no texture use): resident threads =
    ``regs_per_sm // registers_per_thread`` rounded down to whole blocks.
    """
    if registers_per_thread <= 0:
        raise ModelError("registers_per_thread must be positive")
    if gpu.regs_per_sm == 0 or gpu.max_threads_per_sm == 0:
        return 1.0  # pre-CUDA parts: treat as unconstrained
    regs_per_thread = min(registers_per_thread, 255)
    threads_by_regs = gpu.regs_per_sm // regs_per_thread
    blocks = threads_by_regs // threads_per_block
    if blocks >= 1:
        resident = min(blocks * threads_per_block, gpu.max_threads_per_sm)
    else:
        # A whole block does not fit at this register count: the compiler
        # spills to local memory so one block still runs.  Model the spill
        # as residency capped at what the register file supports (never
        # zero), i.e. partial-block occupancy.
        resident = max(threads_by_regs, 32)
    return resident / gpu.max_threads_per_sm
