"""Advanced SP 800-22 tests: rank, FFT, templates, universal, complexity,
serial, approximate entropy and random excursions."""

import math

import numpy as np
import pytest
from scipy.special import gammaincc

from repro.errors import InsufficientDataError
from repro.gf2.lfsr_theory import berlekamp_massey
from repro.nist import (
    aperiodic_templates,
    approximate_entropy_test,
    binary_matrix_rank_test,
    dft_test,
    linear_complexity_test,
    non_overlapping_template_test,
    overlapping_template_test,
    random_excursions_test,
    random_excursions_variant_test,
    serial_test,
    universal_test,
)


@pytest.fixture(scope="module")
def good_bits():
    return np.random.default_rng(0x5EED).integers(0, 2, size=1_000_000, dtype=np.uint8)


# ------------------------------------------------------------------- rank


class TestBinaryMatrixRank:
    def test_accepts_good(self, good_bits):
        assert binary_matrix_rank_test(good_bits).passed

    def test_rejects_low_rank(self):
        # Repeating one 32-bit row: every matrix has rank 1.
        row = np.random.default_rng(0).integers(0, 2, 32, dtype=np.uint8)
        bits = np.tile(row, 38 * 32)
        assert not binary_matrix_rank_test(bits).passed

    def test_rejects_all_full_rank(self):
        # Identity-like blocks force every matrix to full rank; the expected
        # full-rank fraction is only ~0.2888, so "always full" also fails.
        eye = np.eye(32, dtype=np.uint8).ravel()
        bits = np.tile(eye, 50)
        assert not binary_matrix_rank_test(bits).passed

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            binary_matrix_rank_test(np.ones(38 * 32 * 32 - 1, np.uint8))


# -------------------------------------------------------------------- FFT


class TestDFT:
    def test_accepts_good(self, good_bits):
        assert dft_test(good_bits[:100_000]).passed

    def test_rejects_periodic(self):
        # A strong sinusoidal component concentrates spectral mass.
        t = np.arange(10_000)
        bits = ((np.sin(2 * np.pi * t / 10) > 0)).astype(np.uint8)
        assert not dft_test(bits).passed

    def test_statistic_reported(self, good_bits):
        r = dft_test(good_bits[:10_000])
        assert "n1_observed" in r.statistics or r.statistics  # has diagnostics

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            dft_test(np.ones(999, np.uint8))


# -------------------------------------------------------------- templates


class TestAperiodicTemplates:
    def test_counts_match_nist(self):
        # Numbers of aperiodic templates per m from the sts source.
        expected = {2: 2, 3: 4, 4: 6, 5: 12, 6: 20, 7: 40, 8: 74, 9: 148, 10: 284}
        for m, count in expected.items():
            assert len(aperiodic_templates(m)) == count

    def test_templates_are_aperiodic(self):
        # No template may overlap a shifted copy of itself.
        for tpl in aperiodic_templates(6):
            t = np.array(tpl)
            for shift in range(1, t.size):
                assert not np.array_equal(t[shift:], t[: t.size - shift])


class TestNonOverlappingTemplate:
    def test_accepts_good(self, good_bits):
        assert non_overlapping_template_test(good_bits).passed

    def test_rejects_saturated_template(self):
        # Plant the default template 000000001 back to back.
        tpl = np.array([0, 0, 0, 0, 0, 0, 0, 0, 1], np.uint8)
        bits = np.tile(tpl, 2000)
        assert not non_overlapping_template_test(bits).passed

    def test_rejects_absent_template(self):
        # All-ones never contains the template.
        assert not non_overlapping_template_test(np.ones(20_000, np.uint8)).passed

    def test_analytic_mean(self, good_bits):
        # Observed per-block counts should straddle the theoretical mean
        # mu = (M - m + 1) / 2^m.
        r = non_overlapping_template_test(good_bits)
        mu = r.statistics.get("mu")
        assert mu is not None and mu > 0


class TestOverlappingTemplate:
    def test_accepts_good(self, good_bits):
        assert overlapping_template_test(good_bits).passed

    def test_rejects_all_ones(self):
        # The all-ones template occurs at every position.
        assert not overlapping_template_test(np.ones(1_100_000, np.uint8)).passed

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            overlapping_template_test(np.ones(1000, np.uint8))


# -------------------------------------------------------------- universal


class TestUniversal:
    def test_accepts_good(self, good_bits):
        assert universal_test(good_bits).passed

    def test_rejects_repetitive(self):
        # Tiny period: block gaps are all short, statistic collapses.
        assert not universal_test(np.tile([0, 1], 500_000).astype(np.uint8)).passed

    def test_parameter_selection_follows_n(self, good_bits):
        # NIST's table: n >= 387840 selects L = 6 or larger.
        r = universal_test(good_bits[:400_000])
        assert r.statistics["L"] >= 6

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            universal_test(np.ones(1999, np.uint8))


# ------------------------------------------------------------- complexity


class TestLinearComplexity:
    def test_accepts_good(self, good_bits):
        assert linear_complexity_test(good_bits[:200_000]).passed

    def test_rejects_lfsr_stream(self):
        # A short LFSR's keystream has tiny linear complexity everywhere.
        from repro.core.lfsr import ReferenceLFSR

        bits = ReferenceLFSR(16).run(20_000)
        assert not linear_complexity_test(bits, block_size=500).passed

    def test_consistent_with_berlekamp_massey(self):
        # The per-block statistic is BM complexity; spot-check one block.
        block = np.random.default_rng(5).integers(0, 2, 500, dtype=np.uint8)
        assert 230 <= berlekamp_massey(block) <= 270  # ~M/2 for random data

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            linear_complexity_test(np.ones(9999, np.uint8), block_size=500)


# ----------------------------------------------------------------- serial


class TestSerial:
    def test_two_p_values(self, good_bits):
        assert len(serial_test(good_bits[:100_000]).p_values) == 2

    def test_analytic_psi2(self):
        # psi^2_m for a de Bruijn-complete sequence: every m-pattern equally
        # frequent => psi^2 = 0 => both p-values 1.
        # 00011101 is a de Bruijn sequence of order 3 (circularly complete).
        bits = np.tile([0, 0, 0, 1, 1, 1, 0, 1], 100).astype(np.uint8)
        r = serial_test(bits, m=3)
        assert r.p_values[0] == pytest.approx(1.0)
        assert r.p_values[1] == pytest.approx(1.0)

    def test_rejects_periodic(self):
        assert not serial_test(np.tile([1, 1, 0], 40_000).astype(np.uint8), m=5).passed

    def test_accepts_good(self, good_bits):
        assert serial_test(good_bits).passed

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            serial_test(np.ones(127, np.uint8))


# ----------------------------------------------------- approximate entropy


class TestApproximateEntropy:
    def test_accepts_good(self, good_bits):
        assert approximate_entropy_test(good_bits[:200_000]).passed

    def test_analytic_chi2(self):
        # ApEn of an iid-looking sequence: chi2 = 2n(ln2 - ApEn); recompute
        # ApEn directly from overlapping pattern frequencies.
        bits = np.random.default_rng(11).integers(0, 2, 2048, dtype=np.uint8)
        m = 4
        n = bits.size

        def phi(mm):
            if mm == 0:
                return 0.0
            ext = np.concatenate([bits, bits[: mm - 1]])
            vals = np.zeros(n, dtype=np.int64)
            for j in range(mm):
                vals = (vals << 1) | ext[j : j + n]
            counts = np.bincount(vals, minlength=1 << mm)
            probs = counts[counts > 0] / n
            return float(np.sum(probs * np.log(probs)))

        apen = phi(m) - phi(m + 1)
        chi2 = 2.0 * n * (math.log(2.0) - apen)
        expected = float(gammaincc(2 ** (m - 1), chi2 / 2.0))
        assert approximate_entropy_test(bits, m=m).p_value == pytest.approx(expected, rel=1e-8)

    def test_rejects_constant(self):
        assert not approximate_entropy_test(np.ones(10_000, np.uint8)).passed

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            approximate_entropy_test(np.ones(127, np.uint8))


# ------------------------------------------------------- random excursions


class TestRandomExcursions:
    def test_eight_states(self, good_bits):
        r = random_excursions_test(good_bits)
        assert len(r.p_values) == 8  # x in {-4..-1, 1..4}

    def test_variant_eighteen_states(self, good_bits):
        r = random_excursions_variant_test(good_bits)
        assert len(r.p_values) == 18  # x in {-9..-1, 1..9}

    def test_accepts_good(self, good_bits):
        assert random_excursions_test(good_bits).passed
        assert random_excursions_variant_test(good_bits).passed

    def test_too_few_cycles_raises(self):
        # A strongly drifting walk has almost no zero crossings.
        bits = (np.random.default_rng(2).random(100_000) < 0.7).astype(np.uint8)
        with pytest.raises(InsufficientDataError):
            random_excursions_test(bits)

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            random_excursions_test(np.ones(999, np.uint8))


class TestTemplateCustomisation:
    def test_custom_template_accepted(self, good_bits):
        # any aperiodic template works, not just the default 000000001
        r = non_overlapping_template_test(good_bits, template=(1, 0, 1, 1, 0, 1, 0, 0, 1))
        assert 0.0 <= r.p_value <= 1.0

    def test_template_length_sets_m(self, good_bits):
        r6 = non_overlapping_template_test(good_bits, template=(0, 0, 0, 0, 0, 1))
        assert r6.statistics.get("m", 6) == 6 or r6.p_value >= 0

    def test_every_m4_template_runs(self, good_bits):
        # sweep all aperiodic templates of length 4 (6 of them)
        for tpl in aperiodic_templates(4):
            r = non_overlapping_template_test(good_bits[:100_000], template=tpl)
            assert 0.0 <= r.p_value <= 1.0, tpl


class TestSerialParameterisation:
    def test_m_parameter_respected(self, good_bits):
        # larger m = more patterns; both valid on 100k bits
        r3 = serial_test(good_bits[:100_000], m=3)
        r8 = serial_test(good_bits[:100_000], m=8)
        assert len(r3.p_values) == 2 and len(r8.p_values) == 2

    def test_auto_m_selection(self, good_bits):
        # default m follows NIST's m < log2(n) - 2 guidance
        r = serial_test(good_bits[:100_000])
        assert r.statistics.get("m", 0) >= 3
