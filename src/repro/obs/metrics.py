"""Thread-safe metrics primitives: counters, gauges, log2 histograms.

BSRNG's entire claim is throughput, so the reproduction needs first-class
runtime accounting — not ad-hoc ``perf_counter`` loops.  This module is
the storage layer: a :class:`MetricsRegistry` holds named, labelled
metric instruments and can snapshot itself to a plain-dict form that is
picklable (spawn-context safe), JSON-serialisable, and *mergeable* — a
worker process snapshots its local registry, ships the dict back through
the pool result, and the parent folds it in with a ``partition`` label.

Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotonically increasing total.
* :class:`Gauge` — last-written value (engine gate totals, lane counts).
* :class:`Histogram` — streaming distribution over **fixed log2
  buckets**: one bucket per binary exponent, so ``observe`` is O(1),
  memory is bounded by the value range's exponent span, and merging two
  histograms is exact (bucket-wise addition).  Exposed to Prometheus as
  a cumulative histogram with ``le = 2**(e+1)`` bucket bounds.

Locking discipline: all instruments created by one registry share that
registry's lock.  Increments take the lock — metric updates happen at
refill/partition granularity (thousands per second at most), never per
byte, so contention is irrelevant next to the vectorised work they
account for.  The *disabled* fast path in :mod:`repro.obs` never reaches
this module at all.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator

from repro.errors import SpecificationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log2_bucket",
    "SNAPSHOT_VERSION",
]

#: Version stamp written into every snapshot (forward-compat guard).
SNAPSHOT_VERSION = 1

#: Snapshot key for values <= 0, which have no binary exponent.
_UNDERFLOW = "underflow"


def log2_bucket(value: float) -> int | None:
    """Fixed log2 bucket index: ``e`` such that ``2**e <= value < 2**(e+1)``.

    Returns ``None`` for non-positive values (the underflow bucket).
    """
    if value <= 0:
        return None
    # frexp: value = m * 2**exp with m in [0.5, 1) → exponent is exp - 1
    return math.frexp(value)[1] - 1


class _Instrument:
    """Shared plumbing: identity (name + sorted label pairs) and the lock."""

    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock

    def label_str(self) -> str:
        """Canonical ``{k="v",...}`` rendering (empty string when unlabelled)."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in sorted(self.labels.items()))
        return "{" + inner + "}"


class Counter(_Instrument):
    """Monotonically increasing total."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict[str, str], lock: threading.RLock) -> None:
        super().__init__(name, labels, lock)
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add *n* (must be non-negative: counters only go up)."""
        if n < 0:
            raise SpecificationError("counters are monotonic; inc() needs n >= 0")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """Last-written value (set semantics, not accumulate)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict[str, str], lock: threading.RLock) -> None:
        super().__init__(name, labels, lock)
        self._value = 0.0

    def set(self, v: int | float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = v

    @property
    def value(self) -> int | float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Streaming histogram over fixed log2 buckets."""

    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.RLock) -> None:
        super().__init__(name, labels, lock)
        self._buckets: dict[int | None, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: int | float) -> None:
        """Record one sample."""
        b = log2_bucket(value)
        with self._lock:
            self._buckets[b] = self._buckets.get(b, 0) + 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Samples observed."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        with self._lock:
            return self._sum

    def state(self) -> dict:
        """Plain-dict form (bucket keys stringified for JSON)."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": None if self._count == 0 else self._min,
                "max": None if self._count == 0 else self._max,
                "buckets": {
                    (_UNDERFLOW if k is None else str(k)): v
                    for k, v in sorted(
                        self._buckets.items(), key=lambda kv: (-math.inf if kv[0] is None else kv[0])
                    )
                },
            }

    def _merge_state(self, state: dict) -> None:
        with self._lock:
            self._count += int(state["count"])
            self._sum += float(state["sum"])
            if state.get("min") is not None and state["min"] < self._min:
                self._min = state["min"]
            if state.get("max") is not None and state["max"] > self._max:
                self._max = state["max"]
            for key, n in state.get("buckets", {}).items():
                b = None if key == _UNDERFLOW else int(key)
                self._buckets[b] = self._buckets.get(b, 0) + int(n)


def _labels_key(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labelled metric instruments with snapshot/merge semantics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    ``(name, labels)`` pair always yields the same instrument, so call
    sites never hold references across reconfiguration.  A name is bound
    to exactly one instrument kind; mixing kinds raises.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[tuple[str, str, tuple], _Instrument] = {}

    def _get(self, kind: str, cls, name: str, labels: dict) -> _Instrument:
        if not name:
            raise SpecificationError("metric name must be non-empty")
        key = (kind, name, _labels_key(labels))
        with self._lock:
            for other_kind in ("counter", "gauge", "histogram"):
                if other_kind != kind and any(
                    k[0] == other_kind and k[1] == name for k in self._metrics
                ):
                    raise SpecificationError(
                        f"metric {name!r} already registered as a {other_kind}"
                    )
            inst = self._metrics.get(key)
            if inst is None:
                inst = cls(name, {str(k): str(v) for k, v in labels.items()}, self._lock)
                self._metrics[key] = inst
            return inst

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get or create a histogram."""
        return self._get("histogram", Histogram, name, labels)

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def instruments(self) -> Iterator[tuple[str, _Instrument]]:
        """Iterate ``(kind, instrument)`` over a consistent snapshot."""
        with self._lock:
            items = list(self._metrics.items())
        for (kind, _, _), inst in items:
            yield kind, inst

    # -- snapshot / merge --------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict, picklable, JSON-serialisable state of every metric.

        This is the wire format workers ship back through the pool result
        and the format ``--metrics-out`` writes; :meth:`merge` consumes
        it on the other side.
        """
        out: dict = {"version": SNAPSHOT_VERSION, "metrics": []}
        for kind, inst in self.instruments():
            entry: dict = {"type": kind, "name": inst.name, "labels": dict(inst.labels)}
            if kind == "histogram":
                entry.update(inst.state())  # type: ignore[union-attr]
            else:
                entry["value"] = inst.value  # type: ignore[union-attr]
            out["metrics"].append(entry)
        return out

    def merge(self, snapshot: dict, extra_labels: dict | None = None) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins).  ``extra_labels`` are added to every
        merged series — the parent process passes ``partition=<id>`` so
        per-worker metrics stay distinguishable after the merge.
        """
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise SpecificationError(
                f"unsupported metrics snapshot version {snapshot.get('version')!r}"
            )
        extra = {str(k): str(v) for k, v in (extra_labels or {}).items()}
        for entry in snapshot.get("metrics", []):
            labels = {**entry.get("labels", {}), **extra}
            kind = entry["type"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                self.histogram(entry["name"], **labels)._merge_state(entry)
            else:
                raise SpecificationError(f"unknown metric type {kind!r} in snapshot")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self)} instruments)"
