"""The perf-gate tools must fail loudly, by metric name, on schema drift.

``check_bench_regression.py`` and ``bench_trend.py`` gate CI on speedup
ratios.  Both used to have silent holes: a baseline without
``geomean_speedup`` died with a bare ``KeyError``, a metric new in the
current run was never compared at all, and the trend gate skipped
ratios that appeared or disappeared between entries.  These tests pin
the fixed behaviour: every asymmetry is reported with the metric's name
and the affected run fails the gate.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools"))

import bench_trend  # noqa: E402
import check_bench_regression as cbr  # noqa: E402


def bench_record(speedup: dict, geomean: float | None = None, name: str = "figure10_fused"):
    metrics: dict = {"speedup": dict(speedup)}
    if geomean is not None:
        metrics["geomean_speedup"] = geomean
    return {"schema": 1, "name": name, "metrics": metrics}


def write_json(path, record) -> str:
    path.write_text(json.dumps(record))
    return str(path)


class TestLoadSpeedups:
    def test_loads_map_and_geomean(self, tmp_path):
        path = write_json(tmp_path / "b.json", bench_record({"trivium": 3.0}, geomean=3.0))
        assert cbr.load_speedups(path) == {"trivium": 3.0, "__geomean__": 3.0}

    def test_missing_geomean_loads_without_synthetic_key(self, tmp_path):
        # single-ratio benches (e.g. qa_stream) carry no geomean; the
        # loader must not die — any asymmetry is compare()'s job to name
        path = write_json(tmp_path / "b.json", bench_record({"qa_vs_plain": 0.4}))
        assert cbr.load_speedups(path) == {"qa_vs_plain": 0.4}

    def test_non_numeric_geomean_is_a_named_error(self, tmp_path):
        path = write_json(
            tmp_path / "b.json", bench_record({"trivium": 3.0}, geomean="fast")
        )
        with pytest.raises(ValueError, match="geomean_speedup is 'fast'"):
            cbr.load_speedups(path)

    def test_missing_speedup_map_is_a_named_error(self, tmp_path):
        path = write_json(tmp_path / "b.json", {"schema": 1, "metrics": {}})
        with pytest.raises(ValueError, match="no metrics.speedup map"):
            cbr.load_speedups(path)


class TestCompare:
    def test_within_tolerance_passes(self):
        assert cbr.compare({"a": 2.9}, {"a": 3.0}, tolerance=0.15) == []

    def test_regression_names_the_metric(self):
        problems = cbr.compare({"a": 1.0}, {"a": 3.0}, tolerance=0.15)
        assert len(problems) == 1 and problems[0].startswith("a: speedup 1.00x")

    def test_metric_missing_from_current_fails_by_name(self):
        problems = cbr.compare({}, {"mickey2": 2.5}, tolerance=0.15)
        assert problems == ["mickey2: missing from current run (baseline 2.50x)"]

    def test_metric_new_in_current_fails_by_name(self):
        problems = cbr.compare({"a": 3.0, "b": 9.0}, {"a": 3.0}, tolerance=0.15)
        assert len(problems) == 1
        assert "b: new metric absent from baseline" in problems[0]
        assert "9.00x" in problems[0]

    def test_main_exit_codes(self, tmp_path, capsys):
        cur = write_json(
            tmp_path / "cur.json", bench_record({"a": 3.0, "b": 9.0}, geomean=5.2)
        )
        base = write_json(tmp_path / "base.json", bench_record({"a": 3.0}, geomean=3.0))
        assert cbr.main([cur, base]) == 1  # new metric b fails the gate
        assert "b: new metric absent from baseline" in capsys.readouterr().err
        ok = write_json(tmp_path / "ok.json", bench_record({"a": 3.0}, geomean=3.0))
        assert cbr.main([ok, base]) == 0
        # a run that lost its geomean fails by name, not with a KeyError
        bad = write_json(tmp_path / "bad.json", bench_record({"a": 3.0}))
        assert cbr.main([bad, base]) == 1
        assert "__geomean__: missing from current run" in capsys.readouterr().err
        nonnum = write_json(tmp_path / "nn.json", bench_record({"a": 3.0}, geomean="x"))
        assert cbr.main([nonnum, base]) == 2  # named input error, not a traceback
        assert "geomean_speedup is 'x'" in capsys.readouterr().err


class TestBenchTrendGate:
    def _run(self, tmp_path, record, history_entries, threshold=0.25):
        results = tmp_path / "results"
        results.mkdir(exist_ok=True)
        write_json(results / "BENCH_x.json", record)
        history = tmp_path / "history.jsonl"
        history.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in history_entries)
        )
        return bench_trend.main(
            [
                "--results-dir",
                str(results),
                "--history",
                str(history),
                "--threshold",
                str(threshold),
                "--dry-run",
            ]
        )

    def _hist(self, speedup: dict, geomean: float) -> dict:
        return {
            "name": "x",
            "sha": "aaaa",
            "metrics": {"speedup": dict(speedup), "geomean_speedup": geomean},
        }

    def test_stable_ratios_pass(self, tmp_path):
        record = bench_record({"a": 3.0}, geomean=3.0, name="x")
        assert self._run(tmp_path, record, [self._hist({"a": 3.0}, 3.0)]) == 0

    def test_ratio_drop_breaches(self, tmp_path, capsys):
        record = bench_record({"a": 1.0}, geomean=1.0, name="x")
        assert self._run(tmp_path, record, [self._hist({"a": 3.0}, 3.0)]) == 1
        err = capsys.readouterr().err
        assert "speedup.a fell" in err

    def test_dropped_ratio_breaches_by_name(self, tmp_path, capsys):
        record = bench_record({"a": 3.0}, geomean=3.0, name="x")
        history = [self._hist({"a": 3.0, "gone": 2.0}, 3.0)]
        assert self._run(tmp_path, record, history) == 1
        err = capsys.readouterr().err
        assert "speedup.gone missing from current run" in err

    def test_new_ratio_breaches_by_name(self, tmp_path, capsys):
        record = bench_record({"a": 3.0, "fresh": 5.0}, geomean=3.9, name="x")
        assert self._run(tmp_path, record, [self._hist({"a": 3.0}, 3.0)]) == 1
        err = capsys.readouterr().err
        assert "speedup.fresh is new" in err

    def test_absolute_numbers_never_gate(self, tmp_path):
        record = bench_record({"a": 3.0}, geomean=3.0, name="x")
        record["gbps"] = 0.001  # collapsed, but hardware-dependent
        history = [dict(self._hist({"a": 3.0}, 3.0), gbps=10.0)]
        assert self._run(tmp_path, record, history) == 0

    def test_first_entry_passes_without_gating(self, tmp_path):
        record = bench_record({"a": 3.0}, geomean=3.0, name="x")
        assert self._run(tmp_path, record, []) == 0

    def test_no_threshold_reports_without_gating(self, tmp_path):
        record = bench_record({"a": 3.0, "fresh": 5.0}, geomean=3.9, name="x")
        results = tmp_path / "results"
        results.mkdir()
        write_json(results / "BENCH_x.json", record)
        history = tmp_path / "history.jsonl"
        history.write_text(json.dumps(self._hist({"a": 9.0, "gone": 2.0}, 9.0)) + "\n")
        code = bench_trend.main(
            ["--results-dir", str(results), "--history", str(history), "--dry-run"]
        )
        assert code == 0
