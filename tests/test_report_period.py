"""ASCII chart rendering and the parallel-period estimates."""

import math

import numpy as np
import pytest

from repro.analysis.period import (
    effective_period_log2,
    safe_stream_length,
    stream_overlap_probability,
)
from repro.errors import SpecificationError
from repro.report import bar_chart, grouped_bar_chart, series_table


class TestBarChart:
    def test_scales_to_max(self):
        out = bar_chart([("long", 10.0), ("half", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart([("a", 1.0), ("bbbb", 2.0)], width=4)
        starts = [line.index("█") if "█" in line else len(line) for line in out.splitlines()]
        # a zero bar would have no block; both values here are positive
        assert len(set(starts)) == 1

    def test_unit_and_format(self):
        out = bar_chart([("x", 2.5)], width=4, unit="Gb/s", fmt="{:.2f}")
        assert "2.50 Gb/s" in out

    def test_zero_values_allowed(self):
        out = bar_chart([("x", 0.0), ("y", 1.0)], width=4)
        assert "x" in out

    def test_validation(self):
        with pytest.raises(SpecificationError):
            bar_chart([])
        with pytest.raises(SpecificationError):
            bar_chart([("x", -1.0)])
        with pytest.raises(SpecificationError):
            bar_chart([("x", 1.0)], width=0)

    def test_fractional_cells(self):
        # 1.5/2 of width 4 = 3 cells: 3 full blocks, no partial
        out = bar_chart([("a", 2.0), ("b", 1.5)], width=4)
        assert out.splitlines()[1].count("█") == 3


class TestGroupedBarChart:
    SERIES = {
        "mickey2": {"V100": 2900.0, "2080Ti": 2720.0},
        "curand": {"V100": 2300.0, "2080Ti": 1943.0},
    }

    def test_structure(self):
        out = grouped_bar_chart(self.SERIES, width=20)
        assert "V100:" in out and "2080Ti:" in out
        assert out.count("mickey2") == 2  # once per group

    def test_global_scaling(self):
        out = grouped_bar_chart(self.SERIES, width=20)
        longest = max(line.count("█") for line in out.splitlines())
        assert longest == 20  # the global max fills the width

    def test_group_mismatch_rejected(self):
        bad = {"a": {"x": 1.0}, "b": {"y": 1.0}}
        with pytest.raises(SpecificationError):
            grouped_bar_chart(bad)

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            grouped_bar_chart({})


class TestSeriesTable:
    def test_layout(self):
        out = series_table(TestGroupedBarChart.SERIES, fmt="{:.0f}")
        lines = out.splitlines()
        assert "V100" in lines[0] and "2080Ti" in lines[0]
        assert "2900" in out and "1943" in out
        assert len(lines) == 2 + 2  # header + rule + two series


class TestOverlapProbability:
    def test_birthday_bound_value(self):
        # p = n^2 * L / P exactly in this regime
        p = stream_overlap_probability(100, 4096, 30)
        assert p == pytest.approx(2.0 ** (2 * 12 + 30 - 100))

    def test_monotone_in_streams(self):
        ps = [stream_overlap_probability(64, n, 20) for n in (2, 16, 256)]
        assert ps == sorted(ps)

    def test_saturates_at_one(self):
        assert stream_overlap_probability(32, 1 << 16, 31) == 1.0
        assert stream_overlap_probability(32, 2, 33) == 1.0

    def test_validation(self):
        with pytest.raises(SpecificationError):
            stream_overlap_probability(64, 0, 10)
        with pytest.raises(SpecificationError):
            stream_overlap_probability(0, 4, 10)


class TestEffectivePeriod:
    def test_single_stream_is_full_period(self):
        assert effective_period_log2(100, 1) == pytest.approx(
            math.log2(2**100 - 1), abs=1e-9
        )

    def test_halves_per_doubling(self):
        a = effective_period_log2(64, 1024)
        b = effective_period_log2(64, 2048)
        assert a - b == pytest.approx(1.0)

    def test_paper_scenario(self):
        # 100-bit MICKEY-style register, 4096 lanes: each lane still has
        # ~2^88 outputs — far above any practical draw.
        assert effective_period_log2(100, 4096) > 80


class TestSafeStreamLength:
    def test_inverts_overlap_bound(self):
        n, period = 4096, 100.0
        length = safe_stream_length(period, n, max_collision_prob=2.0**-40)
        assert stream_overlap_probability(period, n, length) == pytest.approx(2.0**-40)

    def test_tighter_bound_shorter_streams(self):
        loose = safe_stream_length(100, 64, max_collision_prob=2.0**-20)
        tight = safe_stream_length(100, 64, max_collision_prob=2.0**-60)
        assert tight < loose

    def test_validation(self):
        with pytest.raises(SpecificationError):
            safe_stream_length(100, 64, max_collision_prob=0.0)
        with pytest.raises(SpecificationError):
            safe_stream_length(100, 0)


class TestOverlapEmpirical:
    def test_overlapping_windows_detected(self):
        """Ground the math: two overlapping windows of one LFSR cycle ARE
        shifted copies (the failure mode the bound protects against)."""
        from repro.core.lfsr import ReferenceLFSR

        lfsr = ReferenceLFSR(16)
        lfsr.seed(1)
        cycle = lfsr.run(3000)
        w1, w2 = cycle[0:1000], cycle[500:1500]
        assert np.array_equal(w1[500:], w2[:500])
