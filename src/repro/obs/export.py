"""Metric snapshot exporters: JSON, Prometheus text exposition, human.

All three render the plain-dict snapshot format of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, so a snapshot can be
written to disk by one process (``repro gen --metrics-out m.json``) and
rendered later by another (``repro stats m.json --format prometheus``).

The Prometheus renderer emits the text exposition format (version
0.0.4): ``# TYPE`` headers, ``name{labels} value`` samples, and for
histograms the cumulative ``_bucket``/``_sum``/``_count`` triplet with
``le`` bounds at the log2 bucket upper edges.  ``tools/lint_prometheus.py``
validates this output in CI.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.errors import SpecificationError
from repro.obs.metrics import SNAPSHOT_VERSION

__all__ = [
    "load_snapshot",
    "render_json",
    "render_prometheus",
    "render_human",
    "write_snapshot",
    "dump",
]


def write_snapshot(snapshot: dict, path: str) -> None:
    """Write a snapshot as JSON to *path* (the ``--metrics-out`` format)."""
    with open(path, "w") as fh:
        fh.write(render_json(snapshot))


def load_snapshot(path: str) -> dict:
    """Read a ``--metrics-out`` JSON snapshot back."""
    with open(path) as fh:
        snap = json.load(fh)
    if snap.get("version") != SNAPSHOT_VERSION:
        raise SpecificationError(
            f"{path}: unsupported metrics snapshot version {snap.get('version')!r}"
        )
    return snap


def render_json(snapshot: dict) -> str:
    """Pretty JSON rendering of a snapshot."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


# -- Prometheus ------------------------------------------------------------------


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape_label(v: str) -> str:
    return str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(v) -> str:
    if isinstance(v, float) and not v.is_integer():
        return repr(v)
    return str(int(v))


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (0.0.4) of a snapshot."""
    by_family: dict[tuple[str, str], list[dict]] = {}
    for entry in snapshot.get("metrics", []):
        by_family.setdefault((entry["name"], entry["type"]), []).append(entry)
    lines: list[str] = []
    for (name, kind), entries in sorted(by_family.items()):
        lines.append(f"# TYPE {name} {'histogram' if kind == 'histogram' else kind}")
        for entry in entries:
            labels = entry.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_label_str(labels)} {_fmt(entry['value'])}")
                continue
            # histogram: cumulative buckets at log2 upper edges, then +Inf
            cumulative = 0
            buckets = entry.get("buckets", {})
            numeric = sorted(int(k) for k in buckets if k != "underflow")
            if "underflow" in buckets:
                cumulative += buckets["underflow"]
                le = _label_str({**labels, "le": _fmt(2.0 ** numeric[0]) if numeric else "0"})
                lines.append(f"{name}_bucket{le} {cumulative}")
            for e in numeric:
                cumulative += buckets[str(e)]
                le = _label_str({**labels, "le": _fmt(float(2.0 ** (e + 1)))})
                lines.append(f"{name}_bucket{le} {cumulative}")
            inf = _label_str({**labels, "le": "+Inf"})
            lines.append(f"{name}_bucket{inf} {entry['count']}")
            lines.append(f"{name}_sum{_label_str(labels)} {_fmt(float(entry['sum']))}")
            lines.append(f"{name}_count{_label_str(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human summary ---------------------------------------------------------------


def render_human(snapshot: dict) -> str:
    """Aligned plain-text summary, grouped by instrument kind."""
    counters, gauges, histograms = [], [], []
    for entry in snapshot.get("metrics", []):
        series = f"{entry['name']}{_label_str(entry.get('labels', {}))}"
        if entry["type"] == "counter":
            counters.append((series, _fmt(entry["value"])))
        elif entry["type"] == "gauge":
            gauges.append((series, _fmt(entry["value"])))
        else:
            if entry["count"]:
                mean = entry["sum"] / entry["count"]
                detail = (
                    f"count={entry['count']} mean={mean:.3g} "
                    f"min={entry['min']:.3g} max={entry['max']:.3g}"
                )
            else:
                detail = "count=0"
            histograms.append((series, detail))
    lines: list[str] = []
    for title, rows in (("counters", counters), ("gauges", gauges), ("histograms", histograms)):
        if not rows:
            continue
        lines.append(f"{title}:")
        width = max(len(s) for s, _ in rows)
        for series, value in sorted(rows):
            lines.append(f"  {series:<{width}}  {value}")
        lines.append("")
    if not lines:
        return "(no metrics recorded)\n"
    return "\n".join(lines)


def dump(snapshot: dict, fmt: str, out: TextIO) -> None:
    """Render *snapshot* in *fmt* ('json' | 'prometheus' | 'human') to *out*."""
    renderers = {
        "json": render_json,
        "prometheus": render_prometheus,
        "human": render_human,
    }
    try:
        renderer = renderers[fmt]
    except KeyError:
        raise SpecificationError(
            f"unknown format {fmt!r}; pick one of {sorted(renderers)}"
        ) from None
    out.write(renderer(snapshot))
