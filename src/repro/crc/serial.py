"""Bit-serial CRC (the paper's Fig. 5 "naive implementation").

The register holds the running remainder; each input bit costs a shift,
a mask and a conditional XOR of the polynomial — exactly the per-bit
work pattern bitslicing eliminates.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import SpecificationError

__all__ = [
    "CRCSpec",
    "SerialCRC",
    "CRC8_ATM",
    "CRC16_CCITT",
    "CRC32_IEEE",
    "crc_table_lookup",
    "table_crc_bytes",
]


@dataclass(frozen=True)
class CRCSpec:
    """Width and polynomial of a CRC (MSB-first, non-reflected form)."""

    name: str
    width: int
    poly: int  # without the leading x^width term
    init: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 64:
            raise SpecificationError("CRC width must be in [1, 64]")
        if self.poly >> self.width:
            raise SpecificationError("polynomial does not fit the width")


#: CRC-8-ATM (x^8 + x^2 + x + 1) — the paper's Fig. 5/6 example uses an
#: 8-bit register with low-order taps; this is the standard such code.
CRC8_ATM = CRCSpec("CRC-8-ATM", 8, 0x07)
CRC16_CCITT = CRCSpec("CRC-16-CCITT", 16, 0x1021, init=0xFFFF)
CRC32_IEEE = CRCSpec("CRC-32-IEEE", 32, 0x04C11DB7, init=0xFFFFFFFF)


class SerialCRC:
    """One CRC register, clocked one message bit at a time (msb-first)."""

    def __init__(self, spec: CRCSpec = CRC8_ATM) -> None:
        self.spec = spec
        self.reset()

    def reset(self) -> None:
        """Restore the spec's init value."""
        self.state = self.spec.init

    def feed_bit(self, bit: int) -> None:
        """Shift one message bit into the register."""
        top = (self.state >> (self.spec.width - 1)) & 1
        self.state = (self.state << 1) & ((1 << self.spec.width) - 1)
        if top ^ (bit & 1):
            self.state ^= self.spec.poly

    def feed_bits(self, bits) -> int:
        """Shift a whole bit sequence through; returns the state."""
        for b in as_bit_array(bits):
            self.feed_bit(int(b))
        return self.state

    def checksum(self, bits) -> int:
        """CRC of a complete message (resets first)."""
        self.reset()
        return self.feed_bits(bits)


def _byte_table(spec: CRCSpec) -> list[int]:
    """The 256-entry byte-at-a-time stepping table for *spec*."""
    if spec.width < 8:
        raise SpecificationError("table driver supports width >= 8")
    mask = (1 << spec.width) - 1
    table = []
    for byte in range(256):
        reg = byte << (spec.width - 8)
        for _ in range(8):
            top = (reg >> (spec.width - 1)) & 1
            reg = (reg << 1) & mask
            if top:
                reg ^= spec.poly
        table.append(reg)
    return table


#: Bit-reversal of each byte value — maps between the MSB-first
#: (non-reflected) bit convention used here and the LSB-first (reflected)
#: convention of ``zlib.crc32``.
_BITREV8 = np.array([int(f"{i:08b}"[::-1], 2) for i in range(256)], dtype=np.uint8)


def _crc32_ieee_fast(data: bytes) -> int:
    """MSB-first CRC-32-IEEE via ``zlib.crc32`` (C speed, GIL-releasing).

    An MSB-first CRC with polynomial P, init I and no output xor equals
    the bit-reversal of the LSB-first CRC with polynomial rev(P) and init
    rev(I) over bit-reversed message bytes.  For CRC-32-IEEE that
    reflected register is exactly what zlib computes internally
    (``zlib.crc32(x) == raw_register ^ 0xFFFFFFFF``), so the whole
    checksum reduces to one table lookup pass and one zlib call —
    ~50x faster than the per-byte Python loop, and zlib drops the GIL on
    large buffers, which is what lets the serve engine verify chunks from
    many client threads concurrently.
    """
    reflected = _BITREV8[np.frombuffer(data, dtype=np.uint8)].tobytes()
    raw = zlib.crc32(reflected) ^ 0xFFFFFFFF
    return int(f"{raw:032b}"[::-1], 2)


def table_crc_bytes(spec: CRCSpec, data: bytes) -> int:
    """CRC of one byte string (msb-first), table-driven.

    The single-message companion to :func:`crc_table_lookup`, used where
    one long message is checksummed once (e.g. the supervisors'
    per-partition integrity hooks) rather than many short lanes at once.
    CRC-32-IEEE takes the zlib fast path (bit-identical, see
    :func:`_crc32_ieee_fast`); other specs fall back to a plain Python
    loop over a precomputed table.
    """
    if spec == CRC32_IEEE:
        return _crc32_ieee_fast(data)
    table = _byte_table(spec)
    mask = (1 << spec.width) - 1
    shift = spec.width - 8
    reg = spec.init
    for b in data:
        reg = ((reg << 8) & mask) ^ table[((reg >> shift) ^ b) & 0xFF]
    return reg


def crc_table_lookup(spec: CRCSpec, data: np.ndarray) -> np.ndarray:
    """Byte-at-a-time table CRC over many messages (oracle for tests).

    ``data`` is ``(n_messages, n_bytes)`` uint8; bits are consumed
    msb-first within each byte.  Returns ``(n_messages,)`` checksums.
    """
    data = np.asarray(data, dtype=np.uint8)
    if data.ndim != 2:
        raise SpecificationError("expected (n_messages, n_bytes)")
    table = np.array(_byte_table(spec), dtype=np.uint64)
    mask = (1 << spec.width) - 1
    out = np.full(data.shape[0], spec.init, dtype=np.uint64)
    shift = np.uint64(spec.width - 8)
    m = np.uint64(mask)
    for j in range(data.shape[1]):
        idx = ((out >> shift) ^ data[:, j]).astype(np.uint64) & np.uint64(0xFF)
        out = ((out << np.uint64(8)) & m) ^ table[idx]
    return out
