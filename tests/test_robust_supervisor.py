"""Partition supervisor: crash/hang/corruption recovery, backoff policy,
degradation, and the supervised multi-device equivalence guarantees."""

import numpy as np
import pytest

from repro.errors import DeviceFailureError, SpecificationError
from repro.gpu.multigpu import LanePartitionedGenerator, MultiDeviceGenerator
from repro.robust.faults import Fault, FaultPlan
from repro.robust.supervisor import PartitionSupervisor, SupervisorConfig, payload_crc


class TestConfig:
    def test_defaults(self):
        cfg = SupervisorConfig()
        assert cfg.timeout is None and cfg.max_retries == 2 and cfg.maxtasksperchild == 1

    def test_backoff_is_exponential(self):
        cfg = SupervisorConfig(backoff_base=0.1, backoff_factor=2.0)
        assert cfg.backoff(1) == pytest.approx(0.1)
        assert cfg.backoff(3) == pytest.approx(0.4)

    def test_invalid_rejected(self):
        with pytest.raises(SpecificationError):
            SupervisorConfig(timeout=0.0)
        with pytest.raises(SpecificationError):
            SupervisorConfig(max_retries=-1)
        with pytest.raises(SpecificationError):
            SupervisorConfig(backoff_factor=0.5)


class TestPayloadCrc:
    def test_bytes_and_array_agree(self):
        data = bytes(range(100))
        assert payload_crc(data) == payload_crc(np.frombuffer(data, np.uint8))

    def test_sensitive_to_flips(self):
        data = bytearray(range(100))
        ref = payload_crc(bytes(data))
        data[42] ^= 0x01
        assert payload_crc(bytes(data)) != ref


def _mk(algorithm="xorwow", **kw):
    defaults = dict(seed=5, lanes=64, n_devices=3, block_bytes=256)
    defaults.update(kw)
    return MultiDeviceGenerator(algorithm, **defaults)


class TestCrashRecovery:
    def test_single_crash_retried_byte_identical(self):
        plan = FaultPlan((Fault("crash", 1, 0),))
        gen = _mk(fault_plan=plan)
        out = gen.generate(6, parallel=True)
        assert out == gen.sequential_reference(6)
        assert gen.last_report.attempts[1] == 2
        assert gen.last_report.retried_partitions == {1}

    def test_multiple_simultaneous_crashes(self):
        plan = FaultPlan((Fault("crash", 0, 0), Fault("crash", 2, 0)))
        gen = _mk(fault_plan=plan)
        assert gen.generate(6, parallel=True) == gen.sequential_reference(6)
        assert gen.last_report.retried_partitions == {0, 2}

    def test_repeated_crash_same_partition(self):
        plan = FaultPlan((Fault("crash", 1, 0), Fault("crash", 1, 1)))
        gen = _mk(fault_plan=plan, max_retries=3)
        assert gen.generate(6, parallel=True) == gen.sequential_reference(6)
        assert gen.last_report.attempts[1] == 3


class TestTimeoutRecovery:
    def test_hung_partition_times_out_and_retries(self):
        plan = FaultPlan((Fault("delay", 0, 0, delay=30.0),))
        gen = _mk(fault_plan=plan, timeout=0.75)
        out = gen.generate(6, parallel=True)
        assert out == gen.sequential_reference(6)
        kinds = [(e.partition, e.kind) for e in gen.last_report.events]
        assert (0, "timeout") in kinds

    def test_short_delay_within_timeout_is_fine(self):
        plan = FaultPlan((Fault("delay", 0, 0, delay=0.05),))
        gen = _mk(fault_plan=plan, timeout=10.0)
        assert gen.generate(3, parallel=True) == gen.sequential_reference(3)
        assert not gen.last_report.events


class TestCorruptionRecovery:
    def test_crc_detects_and_retries(self):
        plan = FaultPlan((Fault("corrupt", 2, 0, corrupt_bytes=3),), seed=1)
        gen = _mk(fault_plan=plan, verify_crc=True)
        out = gen.generate(6, parallel=True)
        assert out == gen.sequential_reference(6)
        assert any(e.kind == "corrupt" for e in gen.last_report.events)

    def test_without_crc_corruption_slips_through(self):
        # the negative control: verification off means a corrupted payload
        # is concatenated as-is — exactly why the hook exists
        plan = FaultPlan((Fault("corrupt", 2, 0, corrupt_bytes=3),), seed=1)
        gen = _mk(fault_plan=plan, verify_crc=False)
        assert gen.generate(6, parallel=True) != gen.sequential_reference(6)

    def test_stuck_payload_caught_by_crc(self):
        plan = FaultPlan((Fault("stuck", 0, 0),))
        gen = _mk(fault_plan=plan, verify_crc=True)
        assert gen.generate(6, parallel=True) == gen.sequential_reference(6)


class TestDegradation:
    def test_pool_exhaustion_degrades_to_inline(self):
        plan = FaultPlan(tuple(Fault("crash", 1, a) for a in range(3)))
        gen = _mk(fault_plan=plan, max_retries=2)
        out = gen.generate(6, parallel=True)
        assert out == gen.sequential_reference(6)
        assert gen.last_report.degraded
        assert any(e.kind == "degraded" for e in gen.last_report.events)

    def test_degradation_disabled_raises(self):
        plan = FaultPlan(tuple(Fault("crash", 1, a) for a in range(3)))
        gen = _mk(fault_plan=plan, max_retries=2, degrade_sequential=False)
        with pytest.raises(DeviceFailureError):
            gen.generate(6, parallel=True)

    def test_unrecoverable_fault_raises_even_inline(self):
        # crash on every attempt the policy allows, parallel and inline
        plan = FaultPlan(tuple(Fault("crash", 1, a) for a in range(10)))
        gen = _mk(fault_plan=plan, max_retries=1)
        with pytest.raises(DeviceFailureError):
            gen.generate(6, parallel=True)


class TestSequentialPath:
    def test_inline_retry_handles_crash(self):
        plan = FaultPlan((Fault("crash", 1, 0),))
        gen = _mk(fault_plan=plan)
        assert gen.generate(6, parallel=False) == gen.sequential_reference(6)
        assert gen.last_report.attempts[1] == 2

    def test_inline_crc_verification(self):
        plan = FaultPlan((Fault("corrupt", 0, 0),), seed=4)
        gen = _mk(fault_plan=plan, verify_crc=True)
        assert gen.generate(6, parallel=False) == gen.sequential_reference(6)


class TestEmptyJobs:
    def test_zero_blocks_fast_path_parallel(self):
        gen = _mk()
        assert gen.generate(0, parallel=True) == b""
        assert gen.last_report is None  # no supervisor ran at all

    def test_negative_blocks_rejected(self):
        with pytest.raises(SpecificationError):
            _mk().generate(-1)

    def test_supervisor_empty_jobs(self):
        sup = PartitionSupervisor(lambda payload, attempt: (payload, None))
        assert sup.run({}, parallel=True) == {}


class TestLanePartitionedSupervision:
    def test_crash_recovery_lane_path(self):
        plan = FaultPlan((Fault("crash", 1, 0),))
        gen = LanePartitionedGenerator(
            "trivium", seed=1, total_lanes=16, n_devices=2, fault_plan=plan
        )
        lanes = gen.generate_lanes(64, parallel=True)
        assert np.array_equal(lanes, gen.sequential_reference(64))
        assert gen.last_report.retried_partitions == {1}

    def test_corruption_recovery_lane_path(self):
        plan = FaultPlan((Fault("corrupt", 0, 0, corrupt_bytes=2),), seed=8)
        gen = LanePartitionedGenerator(
            "trivium", seed=1, total_lanes=16, n_devices=2, verify_crc=True, fault_plan=plan
        )
        lanes = gen.generate_lanes(64, parallel=True)
        assert np.array_equal(lanes, gen.sequential_reference(64))


class TestReportShape:
    def test_clean_run_has_empty_report(self):
        gen = _mk()
        gen.generate(6, parallel=True)
        assert gen.last_report.events == []
        assert not gen.last_report.degraded
        assert set(gen.last_report.attempts.values()) == {1}


class TestFailureWallTimes:
    """Failed/evicted partitions get partition_wall entries too, not just
    accepted results — that is what makes drain latency measurable."""

    def test_retried_partition_timed_and_overwritten_by_acceptance(self):
        plan = FaultPlan((Fault("crash", 1, 0),))
        gen = _mk(fault_plan=plan)
        gen.generate(6, parallel=True)
        walls = gen.last_report.supervisor.partition_wall
        assert set(walls) == {0, 1, 2}  # the crashed partition is timed too
        assert all(w >= 0.0 for w in walls.values())
        assert all(p.wall_s is not None for p in gen.last_report.partitions)

    def test_unrecoverable_partition_still_timed(self):
        def worker(payload, attempt):
            raise RuntimeError("boom")

        sup = PartitionSupervisor(
            worker, SupervisorConfig(max_retries=1, degrade_sequential=False)
        )
        with pytest.raises(DeviceFailureError):
            sup.run({7: b"x"}, parallel=False)
        # the partition never delivered, but its failure wall is recorded
        assert 7 in sup.report.partition_wall
        assert sup.report.partition_wall[7] >= 0.0

    def test_corrupt_receipt_timed(self):
        plan = FaultPlan((Fault("corrupt", 0, 0),), seed=4)
        gen = _mk(fault_plan=plan, verify_crc=True)
        gen.generate(6, parallel=True)
        assert 0 in gen.last_report.supervisor.partition_wall
