"""BSRNG — the user-facing pseudo-random number generator API.

One class fronts every generator in the package: the three bitsliced
cipher banks (the paper's contribution) and the row-major baselines
(cuRAND's algorithms and the Table-1 lineage).  All of them feed a common
word buffer, so downstream code — the examples, the NIST harness, the
benchmarks — is generator-agnostic:

>>> rng = BSRNG("mickey2", seed=42, lanes=512)
>>> rng.random_uint64(4).shape
(4,)
>>> 0.0 <= float(rng.random(1)[0]) < 1.0
True
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro import obs
from repro.core.engine import BitslicedEngine
from repro.errors import SpecificationError
from repro.obs.tracing import span

__all__ = ["BSRNG", "available_algorithms"]


def _make_bitsliced(cls_path: str) -> Callable:
    def factory(
        seed: int, lanes: int, dtype, fused: bool, clocks_per_call: int, threads: int = 1
    ) -> "_PlaneSource":
        module_name, cls_name = cls_path.rsplit(".", 1)
        module = __import__(module_name, fromlist=[cls_name])
        cls = getattr(module, cls_name)
        if threads > 1:
            from repro.core.lanebank import ThreadedLaneBank

            bank = ThreadedLaneBank(
                cls,
                seed,
                lanes=lanes,
                dtype=dtype,
                threads=threads,
                fused=fused,
                clocks_per_call=clocks_per_call,
            )
            return _PlaneSource(bank)
        engine = BitslicedEngine(
            n_lanes=lanes, dtype=dtype, fused=fused, clocks_per_call=clocks_per_call
        )
        return _PlaneSource(cls(engine).seed(seed))

    return factory


def _make_baseline(cls_path: str) -> Callable:
    def factory(
        seed: int, lanes: int, dtype, fused: bool, clocks_per_call: int, threads: int = 1
    ) -> "_WordSource":
        if threads > 1:
            raise SpecificationError("threads > 1 requires a bitsliced algorithm")
        module_name, cls_name = cls_path.rsplit(".", 1)
        module = __import__(module_name, fromlist=[cls_name])
        cls = getattr(module, cls_name)
        return _WordSource(cls(seed=seed, n_streams=lanes))

    return factory


# -- double-buffered refill plumbing -------------------------------------------
# One background worker produces refill N+1 while the consumer drains N.
# The executor is process-global and keyed by PID: a fork-inherited
# ThreadPoolExecutor is unusable (its worker thread does not survive the
# fork but its bookkeeping says it exists, so no new thread ever spawns
# and every submit deadlocks) — after a fork the child lazily builds its
# own.
_REFILL_EXECUTOR: tuple[int, ThreadPoolExecutor] | None = None


def _refill_executor() -> ThreadPoolExecutor:
    global _REFILL_EXECUTOR
    pid = os.getpid()
    if _REFILL_EXECUTOR is None or _REFILL_EXECUTOR[0] != pid:
        _REFILL_EXECUTOR = (
            pid,
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="bsrng-refill"),
        )
    return _REFILL_EXECUTOR[1]


def _quiesce_refills() -> None:
    """Pre-fork barrier: wait until the refill worker is idle.

    Forking while the worker thread holds an allocator or GIL-internal
    lock would deadlock the child; draining the (single-worker, FIFO)
    queue from the forking thread guarantees the worker is between tasks
    at fork time.
    """
    if _REFILL_EXECUTOR is not None and _REFILL_EXECUTOR[0] == os.getpid():
        try:
            _REFILL_EXECUTOR[1].submit(lambda: None).result()
        except RuntimeError:  # pragma: no cover - executor already shut down
            pass


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(before=_quiesce_refills)


#: Registry: algorithm name → (factory, kind, description).
_REGISTRY: dict[str, tuple[Callable, str, str]] = {
    "mickey2": (
        _make_bitsliced("repro.ciphers.mickey_bitsliced.BitslicedMickey2"),
        "bitsliced",
        "MICKEY 2.0 stream cipher, bitsliced (the paper's best performer)",
    ),
    "grain": (
        _make_bitsliced("repro.ciphers.grain_bitsliced.BitslicedGrain"),
        "bitsliced",
        "Grain v1 stream cipher, bitsliced",
    ),
    "trivium": (
        _make_bitsliced("repro.ciphers.trivium_bitsliced.BitslicedTrivium"),
        "bitsliced",
        "Trivium stream cipher, bitsliced (extension: lightest eSTREAM profile-2 core)",
    ),
    "aes128ctr": (
        _make_bitsliced("repro.ciphers.aes_bitsliced.BitslicedAESCTR"),
        "bitsliced",
        "AES-128 in CTR mode, bitsliced (synthesized S-box circuit)",
    ),
    "mt19937": (
        _make_baseline("repro.baselines.mt19937.MT19937Bank"),
        "baseline",
        "Mersenne Twister — cuRAND's default host algorithm (the paper's baseline)",
    ),
    "xorwow": (
        _make_baseline("repro.baselines.xorwow.XorwowBank"),
        "baseline",
        "XORWOW — cuRAND's default device generator",
    ),
    "philox": (
        _make_baseline("repro.baselines.philox.PhiloxBank"),
        "baseline",
        "Philox4x32-10 counter-based generator (cuRAND option)",
    ),
    "chacha20": (
        _make_baseline("repro.baselines.chacha.ChaCha20Bank"),
        "baseline",
        "ChaCha20 ARX stream cipher (extension: the design bitslicing does NOT suit)",
    ),
    "rc4": (
        _make_baseline("repro.baselines.rc4.RC4Bank"),
        "baseline",
        "RC4-drop768 (extension: historical table-based CSPRNG; broken, baseline only)",
    ),
    "mrg32k3a": (
        _make_baseline("repro.baselines.mrg32k3a.MRG32k3aBank"),
        "baseline",
        "MRG32k3a combined multiple recursive generator (cuRAND option)",
    ),
    "xorshift128plus": (
        _make_baseline("repro.baselines.xorshift.Xorshift128PlusBank"),
        "baseline",
        "xorshift128+ (xorgensGP lineage, Table 1)",
    ),
    "parkmiller": (
        _make_baseline("repro.baselines.park_miller.ParkMillerBank"),
        "baseline",
        "Park-Miller MINSTD (Langdon 2009 GPU PRNG lineage, Table 1)",
    ),
    "ca": (
        _make_baseline("repro.baselines.ca_prng.CellularAutomatonBank"),
        "baseline",
        "Rule-30 cellular-automaton PRNG (CA-PRNG lineage, Table 1)",
    ),
    "lcg": (
        _make_baseline("repro.baselines.lcg.LCG64Bank"),
        "baseline",
        "64-bit LCG (historical baseline)",
    ),
    "middlesquare": (
        _make_baseline("repro.baselines.middle_square.MiddleSquareWeylBank"),
        "baseline",
        "Middle-square with Weyl sequence (von Neumann lineage, §2.1)",
    ),
}


def available_algorithms() -> dict[str, str]:
    """Map of algorithm name → one-line description."""
    return {name: desc for name, (_, _, desc) in _REGISTRY.items()}


class _PlaneSource:
    """Adapter: bitsliced cipher bank → uint64 word stream."""

    def __init__(self, bank) -> None:
        self.bank = bank
        #: Single-touch hook: called with every emitted plane block while
        #: it is still cache-hot (per K-clock block on the fused path).
        self.epilogue = None
        self._rows_per_refill = max(64, bank.engine.stage_rows)
        # keep refills 8-byte aligned so the uint64 view below is exact
        itemsize = bank.engine.dtype.itemsize
        while (self._rows_per_refill * bank.engine.n_words * itemsize) % 8:
            self._rows_per_refill += 1

    def next_words(self) -> np.ndarray:
        """The next refill of the word stream."""
        planes = self.bank.next_planes(self._rows_per_refill, epilogue=self.epilogue)
        flat = np.ascontiguousarray(planes).view(np.uint8).ravel()
        return flat.view(np.uint64)

    @property
    def refill_bytes(self) -> int:
        """Bytes one refill produces (the seek granularity)."""
        return self._rows_per_refill * self.bank.engine.n_words * self.bank.engine.dtype.itemsize

    def skip_refills(self, k: int) -> bool:
        """Native seek past *k* refills when the bank supports it (CTR)."""
        skip_rows = getattr(self.bank, "skip_rows", None)
        if skip_rows is None:
            return False
        try:
            skip_rows(k * self._rows_per_refill)
        except SpecificationError:  # e.g. misaligned with the CTR batch
            return False
        return True

    def gates_per_output_bit(self) -> float:
        """Logic cost per emitted bit (NaN when not modelled)."""
        return self.bank.gates_per_output_bit()


class _WordSource:
    """Adapter: row-major baseline bank → uint64 word stream."""

    def __init__(self, bank) -> None:
        self.bank = bank
        #: Single-touch hook: called with each refill right after it is
        #: produced (baseline banks have no kernel epilogue to ride, so
        #: the refill itself is the hot window).
        self.epilogue = None
        self._words_per_refill = 4096
        # counter-based banks (Philox, ChaCha20) expose block-granular
        # skipahead; refills round up to whole blocks, so the effective
        # refill size is block-aligned and skippable in O(1)
        wpb = getattr(bank, "words_per_block", None)
        if wpb and getattr(bank, "skip_blocks", None):
            self._blocks_per_refill = -(-self._words_per_refill // wpb)
            self._refill_words = self._blocks_per_refill * wpb
            self.refill_bytes = self._refill_words * np.dtype(bank.word_dtype).itemsize

    def skip_refills(self, k: int) -> bool:
        """O(1) counter skipahead when the bank supports it."""
        if not hasattr(self, "_blocks_per_refill"):
            return False
        self.bank.skip_blocks(k * self._blocks_per_refill)
        return True

    def next_words(self) -> np.ndarray:
        """The next refill of the word stream."""
        raw = self.bank.next_words(self._words_per_refill)
        raw = np.ascontiguousarray(raw)
        if raw.dtype == np.uint64:
            words = raw.ravel()
        else:
            flat = raw.view(np.uint8).ravel()
            usable = flat.size - flat.size % 8
            words = flat[:usable].view(np.uint64)
        if self.epilogue is not None:
            self.epilogue(words)
        return words

    def gates_per_output_bit(self) -> float:
        """Logic cost per emitted bit (NaN when not modelled)."""
        return float(getattr(self.bank, "ops_per_output_bit", lambda: float("nan"))())


class BSRNG:
    """High-throughput pseudo-random number generator.

    Parameters
    ----------
    algorithm:
        One of :func:`available_algorithms` (default ``"mickey2"``, the
        paper's best performer).
    seed:
        Integer seed; expands deterministically into per-lane key/IV or
        per-stream state material.
    lanes:
        Number of parallel generator instances (bitsliced lanes or
        baseline streams).  More lanes = more work per vector op.
    dtype:
        Virtual datapath word type for bitsliced algorithms (uint32 or
        uint64; wider words carry more lanes per NumPy instruction).
    fused:
        Route refills through the compiled fused kernels
        (:mod:`repro.codegen.fused`).  ``None`` (default) enables fusion
        for bitsliced algorithms and is a no-op for baselines; the
        stream is bit-identical either way.
    clocks_per_call:
        Clock batch size K of one fused kernel call.
    prefetch:
        Double-buffer refills: a background worker produces buffer N+1
        while buffer N drains.  Kicks in from the second refill, so
        one-shot draws pay nothing.
    threads:
        Split the lane columns across a persistent thread pool
        (:class:`~repro.core.lanebank.ThreadedLaneBank`; bitsliced
        algorithms only).  The stream is bit-identical to ``threads=1``;
        NumPy releases the GIL inside the kernels, so on multi-core
        hosts refills genuinely overlap.

    Thread safety
    -------------
    All public draws (:meth:`read`, :meth:`random_bytes`, ...),
    :meth:`skip_bytes` and :meth:`reseed` serialise on :attr:`lock`, a
    re-entrant lock, so concurrent callers interleave at draw granularity
    and the union of their draws is exactly the sequential stream — no
    bytes are duplicated or lost.  Compound operations that must be
    atomic (e.g. "record :meth:`tell`, then draw") take the lock
    explicitly::

        with rng.lock:
            offset = rng.tell()
            data = rng.read(n)   # data == offline stream at `offset`

    The serve layer's worker pool instead relies on the *per-worker
    ownership invariant*: each worker process owns its generator
    exclusively, so the lock is uncontended there.
    """

    def __init__(
        self,
        algorithm: str = "mickey2",
        seed: int = 0,
        lanes: int = 4096,
        dtype=np.uint64,
        *,
        fused: bool | None = None,
        clocks_per_call: int = 32,
        prefetch: bool = True,
        threads: int = 1,
    ) -> None:
        try:
            factory, kind, _ = _REGISTRY[algorithm]
        except KeyError:
            raise SpecificationError(
                f"unknown algorithm {algorithm!r}; available: {sorted(_REGISTRY)}"
            ) from None
        if threads <= 0:
            raise SpecificationError("threads must be positive")
        self.algorithm = algorithm
        self.kind = kind
        self.seed = int(seed)
        self.lanes = int(lanes)
        self._dtype = dtype
        self.fused = (kind == "bitsliced") if fused is None else bool(fused)
        self.clocks_per_call = int(clocks_per_call)
        self.prefetch = bool(prefetch)
        self.threads = int(threads)
        self._reseed_count = 0
        self._tap = None  # generation-time single-touch hook (see attach_generation_tap)
        self._source = factory(
            self.seed, self.lanes, dtype, self.fused, self.clocks_per_call, self.threads
        )
        self._buf = np.zeros(0, dtype=np.uint8)
        self._pos = 0
        self._pending = None  # in-flight prefetched refill (Future)
        self._refills = 0
        #: Serialises draws/seeks/reseeds across threads (re-entrant, so
        #: callers can compose atomic tell-then-read sequences).
        self.lock = threading.RLock()
        self._position = 0  # stream offset: bytes emitted + skipped since seed

    def reseed(self, seed: int | None = None) -> None:
        """Rebuild the generator bank from a fresh seed.

        With ``seed=None`` a new seed is derived from the current one via
        SplitMix64 stream separation (distinct from :meth:`spawn`
        children), so repeated reseeds walk a deterministic, non-repeating
        seed sequence — the recovery action health monitoring takes when a
        bank goes bad.  Buffered output from the old state is discarded.
        """
        from repro.core.seeding import expand_seed_words

        with self.lock:
            obs.inc("repro_generator_reseeds_total", 1, algorithm=self.algorithm)
            self._reseed_count += 1
            if seed is None:
                seed = int(expand_seed_words(self.seed, 1, stream=31 + self._reseed_count)[0])
            self._discard_pending()
            factory, _, _ = _REGISTRY[self.algorithm]
            self.seed = int(seed)
            self._source = factory(
                self.seed, self.lanes, self._dtype, self.fused, self.clocks_per_call, self.threads
            )
            self._source.epilogue = self._tap  # the tap outlives the bank it watched
            self._buf = np.zeros(0, dtype=np.uint8)
            self._pos = 0
            self._refills = 0
            self._position = 0

    # -- stream plumbing ---------------------------------------------------------
    # The internal buffer is byte-granular so partial draws never discard
    # generated output: random_bytes(1) twice equals random_bytes(2).
    def _discard_pending(self) -> None:
        """Wait out and drop any in-flight prefetched refill.

        A refill that *failed* is dropped the same way: the future is
        detached before its result is inspected, so a transient worker
        error can never wedge the generator — previously a raising
        future stayed parked in ``_pending`` and every later draw,
        seek *and reseed* (the designated recovery action) re-raised
        the same stale exception forever.
        """
        pending, self._pending = self._pending, None
        if pending is None:
            return
        try:
            pending.result()
        except Exception:
            obs.inc("repro_generator_refill_errors_total", 1, algorithm=self.algorithm)

    def _next_buffer(self) -> np.ndarray:
        """Produce the next refill, double-buffered when ``prefetch``.

        The first refill is always synchronous (a one-shot draw should
        not pay for a speculative second buffer); from the second refill
        on, buffer N+1 is produced on the background worker while N
        drains, so a steady consumer only ever waits for the *remainder*
        of an overlapped refill — the buffer-swap latency metric below.
        """
        if not self.prefetch:
            return self._source.next_words().view(np.uint8)
        t0 = time.perf_counter()
        if self._pending is not None:
            # detach before .result(): if the refill failed, the error
            # propagates to this caller once and the next draw retries
            # synchronously instead of replaying a poisoned future
            pending, self._pending = self._pending, None
            buf = pending.result().view(np.uint8)
            obs.inc("repro_generator_prefetch_hits_total", 1, algorithm=self.algorithm)
        else:
            buf = self._source.next_words().view(np.uint8)
        self._refills += 1
        if self._refills >= 2:
            self._pending = _refill_executor().submit(self._source.next_words)
        if obs.metrics_enabled():
            obs.observe(
                "repro_generator_buffer_swap_seconds",
                time.perf_counter() - t0,
                algorithm=self.algorithm,
            )
        return buf

    def _take_bytes(self, n: int, touch=None) -> np.ndarray:
        with self.lock:
            out = np.empty(n, dtype=np.uint8)
            filled = 0
            while filled < n:
                avail = self._buf.size - self._pos
                if avail == 0:
                    with span("refill", algo=self.algorithm):
                        self._buf = self._next_buffer()
                    self._pos = 0
                    avail = self._buf.size
                    if obs.metrics_enabled():
                        obs.inc("repro_generator_refills_total", 1, algorithm=self.algorithm)
                        obs.inc(
                            "repro_generator_generated_bytes_total", avail, algorithm=self.algorithm
                        )
                        obs.observe("repro_generator_refill_bytes", avail, algorithm=self.algorithm)
                take = min(avail, n - filled)
                out[filled : filled + take] = self._buf[self._pos : self._pos + take]
                if touch is not None:
                    # single-touch: account the chunk right after the copy,
                    # while it is still hot, instead of re-reading the whole
                    # draw cold afterwards
                    touch.update(out[filled : filled + take])
                self._pos += take
                filled += take
            self._position += n
            if obs.metrics_enabled():
                obs.inc("repro_generator_emitted_bytes_total", n, algorithm=self.algorithm)
            return out

    def _take_words(self, n: int) -> np.ndarray:
        return self._take_bytes(8 * n).view(np.uint64)

    def skip_bytes(self, n: int) -> None:
        """Advance the stream by *n* bytes without materialising them.

        Counter-based kernels (AES-CTR) seek whole refills in O(1) — the
        mechanism behind §5.4's counter-space partitioning; everything
        else (LFSR-based kernels must be clocked) generates and discards.
        """
        if n < 0:
            raise SpecificationError("n must be non-negative")
        with self.lock:
            obs.inc("repro_generator_skipped_bytes_total", n, algorithm=self.algorithm)
            self._position += n
            # drain whatever is already buffered
            take = min(n, self._buf.size - self._pos)
            self._pos += take
            n -= take
            # an in-flight prefetched buffer is the next refill of the stream:
            # it must be consumed (as skipped output) before any native seek,
            # or the generator state would double-produce those bytes
            if n and self._pending is not None:
                pending, self._pending = self._pending, None
                self._buf = pending.result().view(np.uint8)
                self._pos = min(n, self._buf.size)
                n -= self._pos
            refill = getattr(self._source, "refill_bytes", 0)
            skip = getattr(self._source, "skip_refills", None)
            if n and refill and skip is not None:
                k = n // refill
                if k and skip(k):
                    n -= k * refill
            while n:
                self._buf = self._source.next_words().view(np.uint8)
                self._pos = min(n, self._buf.size)
                n -= self._pos

    # -- public draws -----------------------------------------------------------
    def read(self, n: int) -> bytes:
        """*n* stream bytes (file-like alias of :meth:`random_bytes`)."""
        return self.random_bytes(n)

    def tell(self) -> int:
        """Current stream offset: bytes emitted plus bytes skipped since
        the last (re)seed.  ``rng.tell()`` names the offset at which the
        next :meth:`read` begins — the coordinate the serve layer's
        counter-space leases are expressed in."""
        with self.lock:
            return self._position

    def random_uint64(self, n: int) -> np.ndarray:
        """*n* uniform 64-bit words."""
        if n < 0:
            raise SpecificationError("n must be non-negative")
        return self._take_words(n)

    def random_uint32(self, n: int) -> np.ndarray:
        """*n* uniform 32-bit words."""
        if n < 0:
            raise SpecificationError("n must be non-negative")
        return self._take_words(-(-n // 2)).view(np.uint32)[:n].copy()

    def random_bytes(self, n: int) -> bytes:
        """*n* uniform bytes."""
        if n < 0:
            raise SpecificationError("n must be non-negative")
        return self._take_bytes(n).tobytes()

    def random_uint8(self, n: int) -> np.ndarray:
        """*n* uniform bytes as a uint8 array (no ``bytes`` round-trip).

        The array-consuming callers (health screening, the statistical
        batteries) previously went ``random_bytes`` → ``np.frombuffer``,
        paying a ``tobytes`` copy just to wrap the result again; this is
        the same draw without the detour.
        """
        if n < 0:
            raise SpecificationError("n must be non-negative")
        return self._take_bytes(n)

    def read_with_receipt(self, n: int, touch=None):
        """*n* stream bytes plus their single-touch accounting.

        Returns ``(data, receipt)`` where *receipt* is a
        :class:`repro.core.touch.Receipt` whose ``crc`` equals
        ``payload_crc(data)`` — computed chunk-by-chunk during the draw
        copy itself, so the bytes are never re-read cold for the
        checksum.  Workers that ship chunks with integrity receipts
        (fleet, multi-device) draw through this instead of pairing
        :meth:`read` with a separate CRC pass.  Pass an existing
        :class:`~repro.core.touch.StreamTouch` as *touch* to accumulate
        across calls; its running state is folded in (the receipt then
        covers everything the touch has seen).
        """
        from repro.core.touch import StreamTouch

        if n < 0:
            raise SpecificationError("n must be non-negative")
        if touch is None:
            touch = StreamTouch()
        data = self._take_bytes(n, touch=touch)
        return data.tobytes(), touch.receipt()

    def attach_generation_tap(self, fn) -> None:
        """Install *fn* as the source's single-touch epilogue (None detaches).

        *fn* is called with every refill block as it is generated — on
        the fused paths per compiled K-clock kernel call, while the
        block is cache-hot — before the bytes ever reach the draw
        buffer.  The health layer uses this for its continuous bit
        census of raw source output.  A refill already in flight on the
        prefetch worker keeps the hook it was started with; taps cover
        refills that *begin* after attachment.  The tap survives
        :meth:`reseed`.
        """
        with self.lock:
            self._tap = fn
            self._source.epilogue = fn

    def random_bits(self, n: int) -> np.ndarray:
        """*n* bits as a uint8 0/1 array (little bit order of the stream)."""
        raw = self._take_bytes(-(-n // 8))
        return np.unpackbits(raw, bitorder="little")[:n]

    def random(self, size: int | tuple = 1) -> np.ndarray:
        """Uniform float64 in [0, 1) with full 53-bit mantissas."""
        shape = (size,) if isinstance(size, int) else tuple(size)
        n = int(np.prod(shape)) if shape else 1
        words = self._take_words(n)
        return ((words >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))).reshape(shape)

    def integers(self, low: int, high: int, size: int = 1) -> np.ndarray:
        """Uniform integers in ``[low, high)`` (Lemire-style rejection-free
        scaling is not used; modulo bias is below 2^-32 for ranges < 2^32)."""
        if high <= low:
            raise SpecificationError("need high > low")
        span = high - low
        if span > (1 << 63):
            raise SpecificationError("range too wide")
        words = self._take_words(size)
        return (low + (words % np.uint64(span)).astype(np.int64)).astype(np.int64)

    def normal(self, size: int = 1) -> np.ndarray:
        """Standard normal deviates via Box–Muller."""
        n = -(-size // 2) * 2
        u = self.random(n).reshape(2, -1)
        u1 = np.clip(u[0], np.finfo(np.float64).tiny, None)
        r = np.sqrt(-2.0 * np.log(u1))
        theta = 2.0 * np.pi * u[1]
        out = np.concatenate([r * np.cos(theta), r * np.sin(theta)])
        return out[:size]

    # -- stream spawning ---------------------------------------------------------
    def spawn(self, n_children: int) -> list["BSRNG"]:
        """*n_children* independent child generators (SPRNG-style).

        Child seeds are derived through SplitMix64 stream separation, so
        children never share key/IV material with each other or with this
        generator — the safe way to hand generators to worker processes
        without coordinating offsets.
        """
        from repro.core.seeding import expand_seed_words

        if n_children <= 0:
            raise SpecificationError("n_children must be positive")
        child_seeds = expand_seed_words(self.seed, n_children, stream=23)
        return [
            BSRNG(
                self.algorithm,
                seed=int(s),
                lanes=self.lanes,
                dtype=self._dtype,
                fused=self.fused,
                clocks_per_call=self.clocks_per_call,
                prefetch=self.prefetch,
                threads=self.threads,
            )
            for s in child_seeds
        ]

    # -- introspection ---------------------------------------------------------------
    def gates_per_output_bit(self) -> float:
        """Logic-gate cost per emitted bit (NaN for table-based baselines)."""
        return self._source.gates_per_output_bit()

    def publish_metrics(self) -> None:
        """Fold slow-moving state into the metrics registry.

        Counters stream into the registry as generation happens; the
        engine's cumulative gate tallies and the bank geometry are
        *state*, so they are published as gauges on demand — call this
        before snapshotting (``--metrics-out`` does).  No-op while
        metrics are disabled and for baselines without an engine.
        """
        if not obs.metrics_enabled():
            return
        obs.set_gauge(
            "repro_generator_lanes", self.lanes, algorithm=self.algorithm, kind=self.kind
        )
        obs.set_gauge("repro_generator_fused", int(self.fused), algorithm=self.algorithm)
        if self.fused:
            obs.set_gauge(
                "repro_generator_clocks_per_call", self.clocks_per_call, algorithm=self.algorithm
            )
        gpb = self.gates_per_output_bit()
        if gpb == gpb:  # skip NaN (table-based baselines)
            obs.set_gauge("repro_generator_gates_per_bit", gpb, algorithm=self.algorithm)
        bank = getattr(self._source, "bank", None)
        engine = getattr(bank, "engine", None)
        if isinstance(engine, BitslicedEngine):
            engine.publish_gate_metrics(algorithm=self.algorithm)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BSRNG(algorithm={self.algorithm!r}, seed={self.seed}, lanes={self.lanes}, "
            f"fused={self.fused})"
        )
