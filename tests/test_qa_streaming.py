"""Streaming evaluator invariants: chunk-splitting, skips, latching.

The load-bearing property is **chunk-split invariance** — the monitor's
state is a pure function of the byte stream, however it was chunked —
proved here with Hypothesis over arbitrary cut points, plus the two
adversarial extremes (one byte at a time; one giant chunk).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import SpecificationError
from repro.nist.result import TestResult
from repro.qa import QAPlugin, StreamingEvaluator
from repro.qa.plugin_api import PluginResult


def _mean_plugin(alpha=1e-6, min_bits=1, name="Mean"):
    """A deterministic toy test: p = 2·min(mean, 1-mean) of the bits."""

    def fn(bits):
        m = float(np.mean(bits)) if bits.size else 0.0
        return TestResult(name, [2.0 * min(m, 1.0 - m)], {"mean": m})

    return QAPlugin(name, fn, family="toy", min_bits=min_bits, alpha=alpha)


def _evaluator(**kw):
    kw.setdefault("plugins", [_mean_plugin()])
    kw.setdefault("window_bytes", 8)
    return StreamingEvaluator(**kw)


def _feed_chunked(evaluator, data: bytes, cuts):
    last = 0
    for cut in sorted(set(cuts)):
        cut = min(cut, len(data))
        evaluator.feed(data[last:cut])
        last = cut
    evaluator.feed(data[last:])
    return evaluator


class TestChunkSplitInvariance:
    @given(
        data=st.binary(min_size=0, max_size=257),
        cuts=st.lists(st.integers(min_value=0, max_value=257), max_size=8),
    )
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_cuts_match_one_shot(self, data, cuts):
        whole = _evaluator()
        whole.feed(data)
        split = _feed_chunked(_evaluator(), data, cuts)
        assert split.status() == whole.status()

    def test_byte_at_a_time_matches_one_shot_with_metrics(self, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        with obs.scoped() as reg_whole:
            whole = _evaluator(window_bytes=64)
            whole.feed(data)
            snap_whole = reg_whole.snapshot()
        with obs.scoped() as reg_split:
            split = _evaluator(window_bytes=64)
            for i in range(len(data)):
                split.feed(data[i : i + 1])
            snap_split = reg_split.snapshot()
        assert split.status() == whole.status()

        # the counter/gauge metric surface is identical too (histograms
        # carry wall-clock timings, so only their sample counts compare)
        def comparable(snap):
            out = []
            for m in snap["metrics"]:
                if m["type"] == "histogram":
                    out.append((m["name"], tuple(sorted(m["labels"].items())), m["count"]))
                else:
                    out.append(
                        (m["name"], tuple(sorted(m["labels"].items())), m["value"])
                    )
            return sorted(out, key=lambda t: (t[0], t[1]))

        assert comparable(snap_split) == comparable(snap_whole)

    def test_trailing_partial_window_is_buffered_not_evaluated(self):
        ev = _evaluator(window_bytes=8)
        ev.feed(b"\xaa" * 11)
        assert ev.windows_seen == 1
        assert ev.bytes_seen == 11
        assert ev.status()["buffered_bytes"] == 3


class TestSkipSemantics:
    @given(window_bytes=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_declared_floor_skips_exactly_when_window_too_small(self, window_bytes):
        """min_bits > window_bits ⇒ never runs, every window a skip —
        and the converse: min_bits ≤ window_bits ⇒ never floor-skips."""
        floor_bits = 256
        ev = StreamingEvaluator(
            [_mean_plugin(min_bits=floor_bits)], window_bytes=window_bytes
        )
        ev.feed(b"\x5c" * (window_bytes * 5))
        state = ev.status()["plugins"]["Mean"]
        if floor_bits > window_bytes * 8:
            assert state["windows"] == 0
            assert state["skips"] == 5
            assert "needs 256 bits" in state["skip_reason"]
        else:
            assert state["windows"] == 5
            assert state["skips"] == 0
        assert ev.healthy  # skips never latch

    def test_content_dependent_skip_counts_with_plugin_reason(self):
        calls = {"n": 0}

        def fn(bits):
            calls["n"] += 1
            from repro.errors import InsufficientDataError

            raise InsufficientDataError("walk too short")

        ev = StreamingEvaluator(
            [QAPlugin("Walk", fn, min_bits=1)], window_bytes=8
        )
        ev.feed(b"\x00" * 24)
        state = ev.status()["plugins"]["Walk"]
        assert calls["n"] == 3  # it *was* invoked (eligible), then skipped
        assert state["windows"] == 0 and state["skips"] == 3
        assert state["skip_reason"] == "walk too short"


class TestLatching:
    def _failing_then_fine(self):
        """p=0 on the all-zero window, p=1 otherwise."""

        def fn(bits):
            return PluginResult(
                status="ok", p_values=(0.0 if not bits.any() else 1.0,)
            )

        return QAPlugin("ZeroTrap", fn, min_bits=1, alpha=1e-6)

    def test_latch_is_permanent_and_records_first_window(self):
        ev = StreamingEvaluator([self._failing_then_fine()], window_bytes=4)
        ev.feed(b"\xff" * 8)  # windows 0,1: fine
        assert ev.healthy
        ev.feed(b"\x00" * 4)  # window 2: latches
        ev.feed(b"\xff" * 40)  # recovery does not unlatch
        assert not ev.healthy
        assert ev.latched == ["ZeroTrap"]
        state = ev.status()["plugins"]["ZeroTrap"]
        assert state["latched"] and state["failures"] == 1
        assert state["first_failure"]["window"] == 2
        assert state["first_failure"]["p_value"] == 0.0

    def test_listener_fires_once_per_plugin(self):
        events = []
        ev = StreamingEvaluator([self._failing_then_fine()], window_bytes=4)
        ev.add_latch_listener(lambda name, info: events.append((name, info["window"])))
        ev.feed(b"\x00" * 12)  # three failing windows
        assert events == [("ZeroTrap", 0)]
        assert ev.status()["plugins"]["ZeroTrap"]["failures"] == 3

    def test_fail_alpha_overrides_plugin_alpha(self):
        # p = 0.25 on this pattern: mean 1/8 per byte 0x01 → p = 0.25
        plugin = _mean_plugin(alpha=0.5)  # would latch at its own alpha
        ev = StreamingEvaluator([plugin], window_bytes=8, fail_alpha=1e-9)
        ev.feed(b"\x01" * 8)
        assert ev.healthy  # global override rescued it
        strict = StreamingEvaluator([plugin], window_bytes=8)
        strict.feed(b"\x01" * 8)
        assert not strict.healthy


class TestSampling:
    def test_sample_evaluates_every_nth_window_deterministically(self):
        ev = _evaluator(window_bytes=4, sample=3)
        ev.feed(b"\xaa" * 40)  # 10 complete windows
        assert ev.windows_seen == 10
        state = ev.status()["plugins"]["Mean"]
        assert state["windows"] == 4  # windows 0, 3, 6, 9

    def test_sampling_is_chunk_split_invariant_too(self):
        data = bytes(range(256)) * 3
        whole = _evaluator(window_bytes=16, sample=2)
        whole.feed(data)
        split = _feed_chunked(_evaluator(window_bytes=16, sample=2), data, [7, 100, 101, 500])
        assert split.status() == whole.status()


class TestValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(SpecificationError):
            _evaluator(window_bytes=0)
        with pytest.raises(SpecificationError):
            _evaluator(sample=0)
        with pytest.raises(SpecificationError):
            _evaluator(fail_alpha=0.0)
        with pytest.raises(SpecificationError, match="duplicate"):
            StreamingEvaluator([_mean_plugin(), _mean_plugin()])

    def test_default_plugin_set_is_streaming_capable_registry(self):
        ev = StreamingEvaluator(window_bytes=1 << 14)
        names = ev.plugin_names()
        assert "Frequency" in names and "BirthdaySpacings" in names
        assert "LinearComplexity" not in names  # cost-excluded from streaming
