"""E12 (§6 discussion) — the latency drawback, tabulated.

The conclusion names delay the "major drawback" of GPU generation vs
ASIC/FPGA/optical methods.  This bench renders the modeled
latency/throughput frontier for the Figure-10 kernels, plus a measured
software counterpart: wall time from constructing a BSRNG to its first
byte (dominated by the same initialisation clocks the model charges).
"""

import time

import pytest
from _emit import emit_bench
from conftest import emit_table

from repro.core.generator import BSRNG
from repro.gpu.latency import first_byte_latency_us
from repro.gpu.model import ThroughputModel

KERNELS = ("aes128ctr", "mickey2", "grain", "trivium", "curand-mt")


def test_latency_throughput_frontier(benchmark):
    model = ThroughputModel()
    rows = []
    for k in KERNELS:
        rows.append(
            (
                k,
                first_byte_latency_us(k, "GTX 2080 Ti"),
                model.predict_gbps(k, "GTX 2080 Ti"),
            )
        )
    lines = [
        "modeled on GTX 2080 Ti:",
        "",
        f"{'kernel':<12}{'first byte (us)':>17}{'throughput (Gb/s)':>19}",
        "-" * 48,
    ]
    for k, lat, gbps in rows:
        lines.append(f"{k:<12}{lat:>17.1f}{gbps:>19.0f}")
    lines.append("")
    lines.append("the paper's trade-off: the throughput winner (MICKEY) pays the")
    lines.append("largest time-to-first-byte; counter-mode kernels start instantly")
    emit_table("latency_frontier", lines)
    emit_bench(
        "latency_frontier",
        params={"gpu": "GTX 2080 Ti", "kernels": list(KERNELS)},
        metrics={
            "first_byte_us": {k: lat for k, lat, _ in rows},
            "modeled_gbps": {k: g for k, _, g in rows},
        },
    )
    benchmark.pedantic(lambda: first_byte_latency_us("mickey2", "GTX 2080 Ti"), rounds=3, iterations=1)

    by_kernel = {k: (lat, gbps) for k, lat, gbps in rows}
    # Among the paper's kernels MICKEY wins throughput (the Trivium
    # extension tops it by saturating the memory roof — see EXPERIMENTS).
    paper_kernels = ("mickey2", "grain", "aes128ctr", "curand-mt")
    assert by_kernel["mickey2"][1] == max(by_kernel[k][1] for k in paper_kernels)
    assert by_kernel["mickey2"][0] == max(
        by_kernel[k][0] for k in ("mickey2", "grain", "trivium", "aes128ctr")
    )


def test_measured_first_byte(benchmark):
    """Software analogue: construction-to-first-byte, per algorithm."""
    rows = {}
    for alg in ("mickey2", "grain", "trivium", "aes128ctr", "xorwow"):
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            BSRNG(alg, seed=1, lanes=1024).random_bytes(1)
            best = min(best, time.perf_counter() - t0)
        rows[alg] = best * 1e3
    lines = [
        f"{'algorithm':<12}{'first byte (ms, this machine)':>31}",
        "-" * 43,
    ]
    for alg, ms in rows.items():
        lines.append(f"{alg:<12}{ms:>31.2f}")
    emit_table("latency_measured", lines)
    emit_bench(
        "latency_measured",
        params={"lanes": 1024},
        wall_s=rows["mickey2"] / 1e3,
        metrics={"first_byte_ms": dict(rows)},
    )
    benchmark.extra_info["ms"] = {k: round(v, 2) for k, v in rows.items()}
    benchmark.pedantic(lambda: BSRNG("grain", seed=1, lanes=1024).random_bytes(1), rounds=1, iterations=1)

    # Initialisation clocks dominate in software too: trivium's 1152
    # cheap clocks and mickey's 260 expensive ones both dwarf xorwow.
    assert rows["mickey2"] > rows["xorwow"]
    assert rows["trivium"] > rows["xorwow"]
