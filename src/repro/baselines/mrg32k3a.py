"""MRG32k3a (L'Ecuyer 1999) — the combined multiple recursive generator
cuRAND ships alongside XORWOW and Philox.

Two order-3 linear recurrences modulo the near-2^32 primes

.. math::

    x^{(1)}_n = (1403580\\,x^{(1)}_{n-2} - 810728\\,x^{(1)}_{n-3}) \\bmod m_1
    \\qquad m_1 = 2^{32} - 209

    x^{(2)}_n = (527612\\,x^{(2)}_{n-1} - 1370589\\,x^{(2)}_{n-3}) \\bmod m_2
    \\qquad m_2 = 2^{32} - 22853

combined as ``z = (x1 - x2) mod m1``, giving a period near 2^191.
Products stay below 2^63, so the lockstep bank runs in plain int64.

Output words are ``z`` in ``[0, m1)``; the shortfall from 2^32 is
~4.9e-8 of the range — the same truncation cuRAND's integer interface
exposes — and is documented rather than hidden.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank

__all__ = ["MRG32k3aBank", "MRG32K3A_M1", "MRG32K3A_M2"]

MRG32K3A_M1 = 4294967087  # 2^32 - 209
MRG32K3A_M2 = 4294944443  # 2^32 - 22853
_A12 = 1403580
_A13N = 810728  # used negated
_A21 = 527612
_A23N = 1370589  # used negated


class MRG32k3aBank(StreamBank):
    """``n_streams`` MRG32k3a generators in lockstep."""

    word_dtype = np.uint32
    # 2 mults + 2 mods + combine per component pair ≈ 12 instructions/word
    ops_per_word = 12.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        # Six state words per stream, all in-range and not all-zero per
        # component (L'Ecuyer's only seeding requirement).
        from repro.core.seeding import expand_seed_words

        raw = np.stack(
            [expand_seed_words(int(s), 6, stream=11) for s in stream_seeds.tolist()]
        ).astype(np.int64)
        self._x1 = raw[:, 0:3] % (MRG32K3A_M1 - 1) + 1  # in [1, m1-1]
        self._x2 = raw[:, 3:6] % (MRG32K3A_M2 - 1) + 1  # in [1, m2-1]

    def _step(self) -> np.ndarray:
        x1, x2 = self._x1, self._x2
        p1 = (_A12 * x1[:, 1] - _A13N * x1[:, 0]) % MRG32K3A_M1
        p2 = (_A21 * x2[:, 2] - _A23N * x2[:, 0]) % MRG32K3A_M2
        # shift the order-3 histories (column 2 is the newest value)
        x1[:, 0] = x1[:, 1]
        x1[:, 1] = x1[:, 2]
        x1[:, 2] = p1
        x2[:, 0] = x2[:, 1]
        x2[:, 1] = x2[:, 2]
        x2[:, 2] = p2
        return ((p1 - p2) % MRG32K3A_M1).astype(np.uint32)
