"""Plugin-based randomness QA: discoverable test registry + streaming eval.

The SP 800-22 battery (:mod:`repro.nist`) and the analysis checks
(:mod:`repro.analysis`) validate generator output *offline*; this
package turns every one of those call sites into a **discoverable
plugin** and adds the two capabilities a hardcoded battery cannot have:

* **extensibility** — a test is a :class:`~repro.qa.plugin_api.QAPlugin`
  with a declared name, data requirement in bits, params and first-class
  skip semantics (``status: "skipped"``).  Plugins register into a
  :class:`~repro.qa.registry.PluginRegistry`; third-party test families
  load through entry points (group ``repro.qa_plugins``) or the
  ``REPRO_QA_PLUGINS`` environment variable without touching this repo.
* **online evaluation** — the
  :class:`~repro.qa.streaming.StreamingEvaluator` runs window-eligible
  plugins continuously over an unbounded byte stream with bounded
  memory and latched verdicts, and
  :class:`~repro.qa.sidecar.QASidecar` mounts that evaluator into the
  serving engine (``repro serve --qa``) as a continuous-QA sidecar that
  latches ``/healthz``.

The battery drivers (:func:`repro.nist.run_suite`,
:func:`repro.nist.run_suite_parallel`) are thin consumers of this
registry: the plugin-driven battery reproduces the legacy
:class:`~repro.nist.suite.SuiteReport` bit-identically (enforced by
``tests/test_qa_conformance.py``).

See DESIGN.md §15 for the plugin contract, discovery order, streaming
window model and skip semantics.
"""

from repro.qa.battery import run_battery
from repro.qa.plugin_api import PluginResult, QAPlugin, as_battery_plugin
from repro.qa.registry import (
    PluginRegistry,
    battery_order,
    default_registry,
    reset_default_registry,
    resolve_battery_plugin,
)
from repro.qa.sidecar import QASidecar
from repro.qa.streaming import StreamingEvaluator

__all__ = [
    "PluginResult",
    "QAPlugin",
    "as_battery_plugin",
    "PluginRegistry",
    "default_registry",
    "reset_default_registry",
    "resolve_battery_plugin",
    "battery_order",
    "run_battery",
    "StreamingEvaluator",
    "QASidecar",
]
