"""Throughput models: first-principles roofline and paper-anchored.

Two models, deliberately kept separate:

:func:`roofline_gbps`
    Pure first principles — measured gate counts, the GPU's logic issue
    rate, register-pressure occupancy, and the modelled write bandwidth.
    No knowledge of the paper's results.

:func:`anchored_throughput_gbps` / :class:`ThroughputModel`
    The roofline *shape* rescaled through one calibration constant per
    kernel family, solved from the paper's stated anchor points
    (MICKEY = 2.72 Tb/s on the GTX 2080 Ti; cuRAND 1.4× below it there).
    This regenerates Figure 10/11 as the paper reports them, while the
    size of the calibration constant quantifies how far the paper's
    absolute claims sit above a plain roofline — a reproduction finding
    recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.gpu.kernels import KernelProfile, kernel_profiles
from repro.gpu.launch import LaunchConfig, occupancy
from repro.gpu.memory import effective_write_bw
from repro.gpu.specs import GPUSpec, get_gpu

__all__ = ["roofline_gbps", "anchored_throughput_gbps", "ThroughputModel", "PAPER_ANCHORS"]

#: Quantitative claims in the paper's text used as calibration anchors.
PAPER_ANCHORS = {
    # (kernel, gpu) -> Gbps
    ("mickey2", "GTX 2080 Ti"): 2720.0,  # "2.72 Tb/s ... on the affordable GTX 2080 Ti"
    ("mickey2", "Tesla V100"): 2900.0,  # "2.90 Tb/s on Nvidia V100"
    ("curand-mt", "GTX 2080 Ti"): 2720.0 / 1.4,  # "40% improvement over ... cuRAND"
}

#: Anchors *derived from the paper's prose*, not its text numbers: Figure
#: 10's per-bar values are not printed, but the text fixes the ordering —
#: MICKEY is "our highest performance among all of the implemented
#: CPRNGs" and "the peak AES performance is limited compared to the
#: stream ciphers".  The ratios below encode that reading and are flagged
#: as assumptions in EXPERIMENTS.md.
DERIVED_ANCHORS = {
    ("grain", "GTX 2080 Ti"): 2720.0 * 0.85,
    ("aes128ctr", "GTX 2080 Ti"): 2720.0 * 0.45,
}


def roofline_gbps(
    kernel: KernelProfile | str,
    gpu: GPUSpec | str,
    launch: LaunchConfig | None = None,
    stage_bytes: int = 8192,
) -> float:
    """First-principles throughput estimate in Gbit/s.

    ``min(compute, memory)`` where compute = logic issue rate × datapath
    lanes per instruction / gates per bit × occupancy, and memory is the
    staged, coalesced write bandwidth.
    """
    if isinstance(kernel, str):
        try:
            kernel = kernel_profiles()[kernel]
        except KeyError:
            raise ModelError(
                f"unknown kernel {kernel!r}; known: {sorted(kernel_profiles())}"
            ) from None
    if isinstance(gpu, str):
        gpu = get_gpu(gpu)
    compute, memory = roofline_terms(kernel, gpu, launch, stage_bytes)
    return min(compute, memory)


def roofline_terms(
    kernel: KernelProfile,
    gpu: GPUSpec,
    launch: LaunchConfig | None = None,
    stage_bytes: int = 8192,
) -> tuple[float, float]:
    """The two roofline terms (Gbit/s): compute-bound and memory-bound."""
    launch = launch or LaunchConfig()
    occ = occupancy(gpu, kernel.registers_per_thread, launch.threads_per_block)
    compute_bps = gpu.logic_ops_per_s * kernel.bits_per_instruction * occ
    mem_bps = effective_write_bw(gpu.mem_bw_gbs, stage_bytes=stage_bytes) * 8e9
    return compute_bps / 1e9, mem_bps / 1e9


@dataclass
class ThroughputModel:
    """Anchored model: roofline shape × per-family calibration.

    ``family_scale`` maps kernel name → multiplier; families without an
    anchor inherit the bitsliced or row-major family default.
    """

    launch: LaunchConfig = field(default_factory=LaunchConfig)
    stage_bytes: int = 8192
    family_scale: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.family_scale:
            self.family_scale = self._calibrate()

    def _calibrate(self) -> dict:
        profiles_all = kernel_profiles()
        scales: dict[str, float] = {}
        for (kname, gname), gbps in {**PAPER_ANCHORS, **DERIVED_ANCHORS}.items():
            compute, memory = roofline_terms(
                profiles_all[kname], get_gpu(gname), self.launch, self.stage_bytes
            )
            if compute <= 0:
                raise ModelError(f"degenerate roofline for {kname} on {gname}")
            if gbps > memory:
                raise ModelError(
                    f"anchor {gbps} Gbps for {kname} on {gname} exceeds the "
                    f"physical memory roof {memory:.0f} Gbps"
                )
            # solve min(compute * scale, memory) == anchor for the scale;
            # keep the first (primary) anchor per kernel
            scales.setdefault(kname, gbps / compute)
        profiles = kernel_profiles()
        rowmajor_default = scales.get("curand-mt", 1.0)
        for name, prof in profiles.items():
            if name not in scales:
                scales[name] = scales.get("mickey2", 1.0) if prof.bitsliced else rowmajor_default
        return scales

    def predict_gbps(self, kernel_name: str, gpu_name: str) -> float:
        """Anchored throughput prediction in Gbit/s.

        The calibration multiplier rescales the *compute* term only: it
        absorbs everything the plain instruction-count roofline misses
        (dual-issue, ILP, loop fusion) but cannot create DRAM bandwidth,
        so predictions stay capped by the physical memory roof.  Kernels
        so light they hit that roof (e.g. the Trivium extension) saturate
        it rather than scaling without bound.
        """
        try:
            kernel = kernel_profiles()[kernel_name]
        except KeyError:
            raise ModelError(
                f"unknown kernel {kernel_name!r}; known: {sorted(kernel_profiles())}"
            ) from None
        try:
            scale = self.family_scale[kernel_name]
        except KeyError:
            raise ModelError(f"no calibration for kernel {kernel_name!r}") from None
        compute, memory = roofline_terms(
            kernel, get_gpu(gpu_name), self.launch, self.stage_bytes
        )
        return min(compute * scale, memory)

    def calibration_report(self) -> dict:
        """How far each anchored family sits above the plain roofline."""
        return dict(self.family_scale)

    def figure10_series(self, gpus=None, kernels=("aes128ctr", "mickey2", "grain", "curand-mt")) -> dict:
        """kernel → [Gbps per GPU], the series of the paper's Figure 10."""
        from repro.gpu.specs import TABLE2_GPUS

        gpu_names = list(gpus) if gpus is not None else list(TABLE2_GPUS)
        return {
            k: {g: self.predict_gbps(k, g) for g in gpu_names} for k in kernels
        }


def anchored_throughput_gbps(kernel_name: str, gpu_name: str) -> float:
    """Convenience wrapper over a default :class:`ThroughputModel`."""
    return ThroughputModel().predict_gbps(kernel_name, gpu_name)
