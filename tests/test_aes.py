"""AES-128: FIPS-197 / SP 800-38A known-answer tests and structure checks."""

import numpy as np
import pytest

from repro.ciphers.aes import AES128, INV_SBOX, SBOX, aes128_ctr_keystream, gf_mul
from repro.errors import KeyScheduleError

FIPS_KEY = "000102030405060708090a0b0c0d0e0f"
FIPS_PT = "00112233445566778899aabbccddeeff"
FIPS_CT = "69c4e0d86a7b0430d8cdb78070b4c55a"

NIST_CTR_KEY = "2b7e151628aed2a6abf7158809cf4f3c"
NIST_CTR_ICB = "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"
# SP 800-38A F.5.1: CTR-AES128 plaintext/ciphertext block pairs.
NIST_CTR_PAIRS = [
    ("6bc1bee22e409f96e93d7e117393172a", "874d6191b620e3261bef6864990db6ce"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "9806f66b7970fdff8617187bb9fffdff"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "5ae4df3edbd5d35e5b4f09020db03eab"),
    ("f69f2445df4f9b17ad2b417be66c3710", "1e031dda2fbe03d1792170a0f3009cee"),
]


class TestGF:
    def test_mul_identity(self):
        for x in (0, 1, 0x53, 0xFF):
            assert gf_mul(x, 1) == x

    def test_mul_known(self):
        # FIPS-197 worked example: {57} • {83} = {c1}
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_mul_commutative(self):
        assert gf_mul(0x12, 0x34) == gf_mul(0x34, 0x12)


class TestSBox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert len(set(SBOX.tolist())) == 256

    def test_inverse(self):
        x = np.arange(256, dtype=np.uint8)
        assert np.array_equal(INV_SBOX[SBOX[x]], x)

    def test_no_fixed_points(self):
        x = np.arange(256, dtype=np.uint8)
        assert not np.any(SBOX[x] == x)
        assert not np.any(SBOX[x] == x ^ 0xFF)  # no 'anti-fixed' points either


class TestBlockCipher:
    def test_fips197_kat(self):
        assert AES128(FIPS_KEY).encrypt_hex(FIPS_PT) == FIPS_CT

    def test_key_schedule_first_round_key_is_key(self):
        a = AES128(FIPS_KEY)
        assert a.round_keys[0].tobytes().hex() == FIPS_KEY

    def test_key_schedule_shape(self):
        assert AES128(FIPS_KEY).round_keys.shape == (11, 16)

    def test_batched_equals_single(self, rng):
        a = AES128(FIPS_KEY)
        blocks = rng.integers(0, 256, size=(5, 16), dtype=np.uint8)
        batch = a.encrypt_block(blocks)
        for i in range(5):
            assert np.array_equal(batch[i], a.encrypt_block(blocks[i]))

    def test_key_length_enforced(self):
        with pytest.raises(KeyScheduleError):
            AES128(b"\x00" * 15)

    def test_block_length_enforced(self):
        with pytest.raises(KeyScheduleError):
            AES128(FIPS_KEY).encrypt_block(np.zeros(15, dtype=np.uint8))

    def test_avalanche(self):
        a = AES128(FIPS_KEY)
        pt = np.zeros(16, dtype=np.uint8)
        base = a.encrypt_block(pt)
        pt2 = pt.copy()
        pt2[0] = 1
        flipped = a.encrypt_block(pt2)
        diff = np.unpackbits(base ^ flipped).sum()
        assert 40 <= diff <= 88  # ~64 of 128 bits


class TestCTR:
    def test_sp80038a_keystream(self):
        ks = aes128_ctr_keystream(NIST_CTR_KEY, NIST_CTR_ICB, 4)
        for i, (pt_hex, ct_hex) in enumerate(NIST_CTR_PAIRS):
            pt = np.frombuffer(bytes.fromhex(pt_hex), dtype=np.uint8)
            ct = np.frombuffer(bytes.fromhex(ct_hex), dtype=np.uint8)
            assert np.array_equal(ks[i] ^ pt, ct), f"block {i}"

    def test_start_block_offsets(self):
        full = aes128_ctr_keystream(NIST_CTR_KEY, NIST_CTR_ICB, 4)
        tail = aes128_ctr_keystream(NIST_CTR_KEY, NIST_CTR_ICB, 2, start_block=2)
        assert np.array_equal(full[2:], tail)

    def test_counter_wraps_128_bits(self):
        ks = aes128_ctr_keystream(NIST_CTR_KEY, "ff" * 16, 2)
        # second block encrypts counter 0 (wraparound), which must differ
        assert not np.array_equal(ks[0], ks[1])

    def test_nonce_length_enforced(self):
        with pytest.raises(KeyScheduleError):
            aes128_ctr_keystream(NIST_CTR_KEY, "00" * 15, 1)
