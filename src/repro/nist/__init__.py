"""NIST SP 800-22 statistical test suite (rev. 1a), from scratch.

The paper validates its generators with sts-2.1.2 (Table 3).  This
package reimplements all fifteen tests on NumPy bit arrays plus the
suite-level aggregation NIST prescribes (pass proportion with its
confidence band, and the uniformity-of-p-values chi-square whose P-value
is what Table 3 actually prints per test).

Every test accepts a 0/1 ``uint8`` array and returns a
:class:`~repro.nist.result.TestResult`; tests that need more data than
supplied raise :class:`~repro.errors.InsufficientDataError` rather than
fabricating a p-value.
"""

from repro.nist.complexity import linear_complexity_test
from repro.nist.cusum import cumulative_sums_test
from repro.nist.entropy import approximate_entropy_test
from repro.nist.fips140 import Fips140Report, fips140_battery
from repro.nist.excursions import random_excursions_test, random_excursions_variant_test
from repro.nist.frequency import block_frequency_test, frequency_test
from repro.nist.rank import binary_matrix_rank_test
from repro.nist.parallel import plan_shards, run_suite_parallel, run_suite_sequential
from repro.nist.result import TestResult
from repro.nist.runs import longest_run_test, runs_test
from repro.nist.serial import serial_test
from repro.nist.spectral import dft_test
from repro.nist.suite import ALL_TESTS, SuiteReport, run_suite, summarize_pvalues
from repro.nist.template import (
    aperiodic_templates,
    non_overlapping_template_test,
    overlapping_template_test,
)
from repro.nist.universal import universal_test

__all__ = [
    "TestResult",
    "fips140_battery",
    "Fips140Report",
    "frequency_test",
    "block_frequency_test",
    "runs_test",
    "longest_run_test",
    "binary_matrix_rank_test",
    "dft_test",
    "non_overlapping_template_test",
    "overlapping_template_test",
    "aperiodic_templates",
    "universal_test",
    "linear_complexity_test",
    "serial_test",
    "approximate_entropy_test",
    "cumulative_sums_test",
    "random_excursions_test",
    "random_excursions_variant_test",
    "ALL_TESTS",
    "run_suite",
    "run_suite_parallel",
    "run_suite_sequential",
    "plan_shards",
    "summarize_pvalues",
    "SuiteReport",
]
