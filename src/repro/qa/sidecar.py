"""The serving sidecar: continuous QA off the hot path.

:class:`QASidecar` runs a :class:`~repro.qa.streaming.StreamingEvaluator`
on its own daemon thread behind a bounded queue.  The serving engine
calls :meth:`observe` with every accepted chunk — a non-blocking
enqueue, so QA adds nanoseconds to the request path no matter how
expensive the plugin set is.  When the generator outpaces the
evaluator the queue fills and chunks are *dropped from QA* (never from
clients), with the loss counted in ``repro_qa_dropped_chunks_total`` —
sampled QA that says so beats complete QA that throttles serving.

Verdicts propagate through :meth:`bind`: a plugin latch calls
``HealthState.latch("qa:<plugin>", ...)``, so ``/healthz`` flips 503
with the plugin name and triggering window in its event list — the
same operator contract as the SP 800-90B screen, one layer up.

A plugin that *raises* on the sidecar thread (a real bug — skips are
first-class results, not exceptions) must not take serving down: the
exception is swallowed, counted in ``repro_qa_sidecar_errors_total``
and the offending window abandoned.
"""

from __future__ import annotations

import queue
import threading

from repro import obs
from repro.errors import SpecificationError
from repro.qa.streaming import StreamingEvaluator

__all__ = ["QASidecar"]

_CLOSE = object()


class QASidecar:
    """Feed an evaluator from a serving hot path without blocking it."""

    def __init__(
        self,
        evaluator: StreamingEvaluator,
        *,
        queue_chunks: int = 64,
    ) -> None:
        if queue_chunks < 1:
            raise SpecificationError("queue_chunks must be positive")
        self.evaluator = evaluator
        self._queue: queue.Queue = queue.Queue(maxsize=queue_chunks)
        self._thread: threading.Thread | None = None
        self._closed = False
        self.dropped_chunks = 0
        self.errors = 0

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        if self._thread is not None:
            return
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-qa-sidecar", daemon=True
        )
        self._thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Drain the queue, stop the thread (idempotent)."""
        if self._thread is None:
            return
        self._closed = True
        self._queue.put(_CLOSE)
        self._thread.join(timeout)
        self._thread = None

    # -- hot path ----------------------------------------------------------------
    def observe(self, data: bytes) -> None:
        """Enqueue one accepted chunk for evaluation; never blocks.

        A full queue drops the chunk from QA and counts the loss.
        """
        if self._closed:
            return
        try:
            self._queue.put_nowait(bytes(data))
        except queue.Full:
            self.dropped_chunks += 1
            obs.inc("repro_qa_dropped_chunks_total")

    # -- verdict wiring ----------------------------------------------------------
    def bind(self, health) -> None:
        """Latch *health* (a ``HealthState``) when any plugin latches."""

        def _latch(plugin: str, info: dict) -> None:
            health.latch(f"qa:{plugin}", info)

        self.evaluator.add_latch_listener(_latch)

    # -- worker ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            try:
                self.evaluator.feed(item)
            except Exception as exc:  # a plugin bug must not kill serving
                self.errors += 1
                obs.inc(
                    "repro_qa_sidecar_errors_total", exception=type(exc).__name__
                )

    # -- introspection -----------------------------------------------------------
    @property
    def healthy(self) -> bool:
        return self.evaluator.healthy

    def status(self) -> dict:
        """JSON snapshot (``/v1/status``'s ``qa`` block)."""
        out = self.evaluator.status()
        out["dropped_chunks"] = self.dropped_chunks
        out["sidecar_errors"] = self.errors
        out["queue_depth"] = self._queue.qsize()
        return out
