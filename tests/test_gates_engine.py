"""Unit tests for the gate layer, counters, register file and engine."""

import numpy as np
import pytest

from repro.core.engine import BitslicedEngine
from repro.core.gates import GateCounter, GateOps
from repro.core.registers import RotatingRegisterFile
from repro.errors import BitsliceLayoutError


class TestGateOps:
    def setup_method(self):
        self.g = GateOps()
        self.a = np.array([0b1100], dtype=np.uint64)
        self.b = np.array([0b1010], dtype=np.uint64)

    def test_xor(self):
        assert self.g.xor(self.a, self.b)[0] == 0b0110
        assert self.g.counter.xor == 1

    def test_and(self):
        assert self.g.and_(self.a, self.b)[0] == 0b1000

    def test_or(self):
        assert self.g.or_(self.a, self.b)[0] == 0b1110

    def test_not(self):
        assert self.g.not_(np.array([0], dtype=np.uint8))[0] == 0xFF

    def test_mux_selects_per_lane(self):
        sel = np.array([0b0101], dtype=np.uint64)
        out = self.g.mux(sel, self.a, self.b)
        # lanes with sel=1 take a, others take b
        assert out[0] == ((self.a[0] & sel[0]) | (self.b[0] & ~sel[0])) & 0xF

    def test_mux_costs_three_gates(self):
        c = GateCounter()
        g = GateOps(c)
        g.mux(self.a, self.a, self.b)
        assert c.total == 3

    def test_stacked_rows_counted(self):
        c = GateCounter()
        g = GateOps(c)
        g.xor(np.zeros((5, 3), dtype=np.uint64), np.zeros((5, 3), dtype=np.uint64))
        assert c.xor == 5

    def test_inplace_ops(self):
        out = self.a.copy()
        self.g.ixor(out, self.b)
        assert out[0] == 0b0110

    @pytest.mark.parametrize("op", ["ixor", "iand", "ior"])
    def test_inplace_partially_aliased_operand(self, op):
        # The register-renaming pattern: a shifted view of the output
        # itself.  NumPy ufuncs chunk large arrays, so without a
        # defensive copy the early output writes corrupt the later
        # operand reads — this is the latent scratch-buffer aliasing bug.
        # Use an array big enough to span several ufunc buffers.
        state = np.arange(1 << 16, dtype=np.uint64)
        expect = getattr(np, {"ixor": "bitwise_xor", "iand": "bitwise_and",
                              "ior": "bitwise_or"}[op])(state[:-1], state[1:].copy())
        out = state.copy()
        getattr(self.g, op)(out[:-1], out[1:])
        assert np.array_equal(out[:-1], expect)

    def test_inplace_full_overlap_passthrough(self):
        # Operand IS the output: well-defined in NumPy, must not copy.
        out = np.array([0b1100, 0b1010], dtype=np.uint64)
        self.g.ixor(out, out)
        assert not out.any()


class TestGateCounter:
    def test_totals(self):
        c = GateCounter()
        c.add("xor", 3)
        c.add("and_", 2)
        c.add("shift", 1)
        assert c.total == 6 and c.logic == 5

    def test_reset(self):
        c = GateCounter()
        c.add("xor")
        c.reset()
        assert c.total == 0

    def test_labels(self):
        c = GateCounter()
        c.label("phase1").add("xor", 2)
        c.label(None).add("xor", 1)
        assert c.counts_by_label == {"phase1": {"xor": 2}}

    def test_snapshot_keys(self):
        snap = GateCounter().snapshot()
        assert set(snap) == {"xor", "and", "or", "not", "shift", "total"}


class TestRotatingRegisterFile:
    def test_shift_is_renaming(self):
        f = RotatingRegisterFile(4, 2, np.uint8)
        for i in range(4):
            f[i] = np.full(2, i, dtype=np.uint8)
        retired = f.shift_in(np.full(2, 99, dtype=np.uint8))
        assert retired.tolist() == [0, 0]
        assert f[0].tolist() == [1, 1]
        assert f[3].tolist() == [99, 99]

    def test_negative_index(self):
        f = RotatingRegisterFile(3, 1, np.uint8)
        f[2] = np.array([7], dtype=np.uint8)
        assert f[-1][0] == 7

    def test_out_of_range(self):
        f = RotatingRegisterFile(3, 1)
        with pytest.raises(BitsliceLayoutError):
            f[3]

    def test_gather_matches_getitem(self):
        f = RotatingRegisterFile(5, 1, np.uint8)
        for i in range(5):
            f[i] = np.array([i * 10], dtype=np.uint8)
        f.shift_in(np.array([50], dtype=np.uint8))
        g = f.gather([0, 2, 4])
        assert g[:, 0].tolist() == [f[0][0], f[2][0], f[4][0]]

    def test_snapshot_logical_order(self):
        f = RotatingRegisterFile(3, 1, np.uint8)
        f.load(np.array([[1], [2], [3]], dtype=np.uint8))
        f.shift_in(np.array([4], dtype=np.uint8))
        assert f.snapshot()[:, 0].tolist() == [2, 3, 4]

    def test_shift_count(self):
        f = RotatingRegisterFile(3, 1)
        f.shift_in(np.zeros(1, dtype=np.uint64))
        f.shift_in(np.zeros(1, dtype=np.uint64))
        assert f.shifts == 2

    def test_load_shape_check(self):
        f = RotatingRegisterFile(3, 2)
        with pytest.raises(BitsliceLayoutError):
            f.load(np.zeros((2, 2), dtype=np.uint64))


class TestEngine:
    def test_geometry(self):
        e = BitslicedEngine(n_lanes=100, dtype=np.uint32)
        assert e.n_words == 4 and e.width == 32

    def test_constructors(self):
        e = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        assert e.zeros().tolist() == [0]
        assert e.ones()[0] == 0xFF
        assert e.zeros(3).shape == (3, 1)
        assert e.const(1)[0] == 0xFF

    def test_active_mask_partial(self):
        e = BitslicedEngine(n_lanes=10, dtype=np.uint8)
        assert e.active_mask().tolist() == [0xFF, 0b11]

    def test_invalid_params(self):
        with pytest.raises(BitsliceLayoutError):
            BitslicedEngine(n_lanes=0)
        with pytest.raises(BitsliceLayoutError):
            BitslicedEngine(stage_rows=0)
        with pytest.raises(BitsliceLayoutError):
            BitslicedEngine(dtype=np.float64)

    def test_gate_report(self):
        e = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        e.gates.xor(e.zeros(), e.ones())
        rep = e.gate_report()
        assert rep["xor"] == 1 and rep["n_lanes"] == 8


class TestStageBuffer:
    def test_flush_on_capacity(self):
        e = BitslicedEngine(n_lanes=8, dtype=np.uint8, stage_rows=4)
        stage = e.make_stage()
        dest = np.zeros((10, 1), dtype=np.uint8)
        row = 0
        for i in range(6):
            row = stage.push(np.full(1, i, dtype=np.uint8), dest, row)
        assert row == 4 and stage.fill == 2 and stage.flushes == 1
        row = stage.drain(dest, row)
        assert row == 6
        assert dest[:6, 0].tolist() == [0, 1, 2, 3, 4, 5]

    def test_drain_empty_is_noop(self):
        e = BitslicedEngine(n_lanes=8, dtype=np.uint8, stage_rows=4)
        stage = e.make_stage()
        dest = np.zeros((2, 1), dtype=np.uint8)
        assert stage.drain(dest, 0) == 0
