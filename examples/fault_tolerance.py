#!/usr/bin/env python
"""Fault-tolerant multi-device generation.

Scripts three injected failures against a 4-device job — a crashed
device, a hung device, and a corrupted transfer — and shows the
supervisor recover every one with byte-identical output, because each
partition is a pure function of ``(seed, start_block, n_blocks)``.
Then wedges a generator at a constant byte and shows the SP 800-90B
Repetition Count Test catch it within a handful of samples.

Run:  python examples/fault_tolerance.py
"""

import time

from repro.errors import HealthTestError
from repro.gpu.multigpu import MultiDeviceGenerator
from repro.robust import Fault, FaultPlan, HealthMonitoredBSRNG, StuckBSRNG

BLOCK_BYTES = 1 << 14
TOTAL_BLOCKS = 8
N_DEVICES = 4


def main() -> None:
    plan = FaultPlan(
        (
            Fault("crash", partition=1, attempt=0),  # device 1 dies on first try
            Fault("delay", partition=2, attempt=0, delay=30.0),  # device 2 hangs
            Fault("corrupt", partition=3, attempt=0, corrupt_bytes=5),  # bad transfer
        ),
        seed=2024,
    )
    gen = MultiDeviceGenerator(
        "aes128ctr",
        seed=99,
        lanes=1024,
        n_devices=N_DEVICES,
        block_bytes=BLOCK_BYTES,
        timeout=2.0,
        max_retries=2,
        verify_crc=True,
        fault_plan=plan,
    )

    print(f"{N_DEVICES}-device job, {TOTAL_BLOCKS} blocks x {BLOCK_BYTES} bytes")
    print("injected: crash on device 1, 30s hang on device 2, 5 corrupted bytes on device 3")
    t0 = time.perf_counter()
    multi = gen.generate(TOTAL_BLOCKS, parallel=True)
    elapsed = time.perf_counter() - t0

    print(f"\nsupervisor report ({elapsed:.2f}s wall):")
    for event in gen.last_report.events:
        print(f"  device {event.partition} attempt {event.attempt}: {event.kind}  ({event.detail})")
    print(f"  attempts per device: {dict(sorted(gen.last_report.attempts.items()))}")

    reference = gen.sequential_reference(TOTAL_BLOCKS)
    assert multi == reference
    print(f"\nrecovered output == sequential reference ({len(multi):,} bytes)  [OK]")

    # -- continuous health tests: a wedged bank ------------------------------------
    print("\nwedging a generator at 0xAA after 100 honest bytes...")
    stuck = StuckBSRNG("xorwow", seed=7, lanes=256, stuck_byte=0xAA, stuck_after=100)
    monitor = HealthMonitoredBSRNG(stuck, startup_test=False)
    try:
        monitor.random_bytes(4096)
        raise AssertionError("health tests missed a stuck-at fault")
    except HealthTestError as exc:
        print(f"repetition count test tripped: {exc}  [OK]")

    # degrade mode: reseed the bank instead of failing the caller
    stuck = StuckBSRNG("xorwow", seed=7, lanes=256, stuck_byte=0xAA, stuck_after=100)
    monitor = HealthMonitoredBSRNG(stuck, startup_test=False, on_failure="degrade")
    data = monitor.random_bytes(4096)
    assert len(data) == 4096
    print(
        f"degrade mode: {monitor.log.reseeds} reseed recovered the bank, "
        f"{len(data):,} healthy bytes emitted  [OK]"
    )


if __name__ == "__main__":
    main()
