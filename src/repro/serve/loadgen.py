"""Async load generator for the serve daemon.

Drives ``GET /v1/bytes`` with N concurrent clients, each holding one
persistent keep-alive connection and issuing sequential requests — the
classic closed-loop load model, so offered load scales with concurrency
and measured latency is honest (no coordinated omission from a dropped
open-loop schedule).

Every request runs inside an :func:`repro.obs.span` (name
``serve_load.request``), so the latency distribution is computed from
the tracer's span records — the same telemetry a production trace would
carry — and a ``--trace-out`` style export shows the request timeline in
Perfetto.  ``benchmarks/bench_serve_load.py`` wraps this into the
committed ``BENCH_serve_load.json`` artifact.

The HTTP client is raw asyncio streams (stdlib only, matching the
server): it parses the status line, headers, and a ``Content-Length``
body, and verifies the advertised lease length matches the payload.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro import obs
from repro.errors import SpecificationError
from repro.obs.tracing import Tracer

__all__ = ["LoadResult", "run_load", "fetch_bytes", "percentile"]

SPAN_NAME = "serve_load.request"


@dataclass
class LoadResult:
    """Aggregate outcome of one closed-loop load run."""

    concurrency: int
    requests: int
    errors: int
    bytes_received: int
    wall_s: float
    latencies_ms: list[float] = field(repr=False, default_factory=list)
    #: (lease_offset, length) per completed request — non-overlap evidence
    leases: list[tuple[int, int]] = field(repr=False, default_factory=list)

    @property
    def rps(self) -> float:
        """Completed requests per second of wall time."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50.0)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99.0)

    def to_dict(self) -> dict:
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "errors": self.errors,
            "bytes_received": self.bytes_received,
            "wall_s": round(self.wall_s, 4),
            "rps": round(self.rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


def percentile(values: list[float], q: float) -> float:
    """The *q*-th percentile by linear interpolation (0 for no samples)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, dict[str, str], bytes]:
    """Parse one Content-Length HTTP response off *reader*."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise SpecificationError(f"bad status line {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if "content-length" not in headers:
        raise SpecificationError("response without Content-Length")
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, body


async def fetch_bytes(
    host: str, port: int, n: int, *, fmt: str = "raw"
) -> tuple[bytes, int]:
    """One-shot ``GET /v1/bytes?n=n`` → ``(payload, lease_offset)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /v1/bytes?n={n}&format={fmt} HTTP/1.1\r\n"
            f"Host: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        status, headers, body = await _read_response(reader)
        if status != 200:
            raise SpecificationError(f"HTTP {status}: {body[:200]!r}")
        return body, int(headers["x-repro-lease-offset"])
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _client(
    host: str,
    port: int,
    client_id: int,
    requests: int,
    n_bytes: int,
    result: LoadResult,
) -> None:
    """One closed-loop client: persistent connection, sequential requests."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for _ in range(requests):
            t0 = time.perf_counter()
            try:
                with obs.span(SPAN_NAME, client=client_id, n=n_bytes):
                    writer.write(
                        f"GET /v1/bytes?n={n_bytes} HTTP/1.1\r\n"
                        f"Host: {host}\r\nConnection: keep-alive\r\n\r\n".encode()
                    )
                    await writer.drain()
                    status, headers, body = await _read_response(reader)
                if status != 200 or len(body) != n_bytes:
                    result.errors += 1
                    continue
                result.requests += 1
                result.bytes_received += len(body)
                result.latencies_ms.append((time.perf_counter() - t0) * 1e3)
                result.leases.append(
                    (int(headers["x-repro-lease-offset"]), n_bytes)
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                result.errors += 1
                return  # connection is gone; this client stops
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_load(
    host: str,
    port: int,
    *,
    concurrency: int = 4,
    requests_per_client: int = 25,
    n_bytes: int = 1 << 16,
    tracer: Tracer | None = None,
) -> LoadResult:
    """Run the closed-loop load and aggregate the outcome.

    When *tracer* is given it is installed for the run, and the latency
    distribution is recomputed from its ``serve_load.request`` span
    records (wall microseconds) — measurement via telemetry rather than
    ad-hoc stopwatches, as the rest of the pipeline reports itself.
    """
    if concurrency <= 0 or requests_per_client <= 0 or n_bytes <= 0:
        raise SpecificationError("concurrency, requests and n_bytes must be positive")
    if tracer is not None:
        obs.enable_tracing(tracer)
    result = LoadResult(
        concurrency=concurrency, requests=0, errors=0, bytes_received=0, wall_s=0.0
    )
    t0 = time.perf_counter()
    try:
        await asyncio.gather(
            *(
                _client(host, port, i, requests_per_client, n_bytes, result)
                for i in range(concurrency)
            )
        )
    finally:
        result.wall_s = time.perf_counter() - t0
        if tracer is not None:
            spans = [r for r in tracer.records if r.name == SPAN_NAME]
            if spans:
                result.latencies_ms = [r.dur_us / 1e3 for r in spans]
            obs.disable_tracing()
    return result
