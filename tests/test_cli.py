"""CLI tests: every subcommand drives the same public API end to end."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_gen_defaults(self):
        args = build_parser().parse_args(["gen"])
        assert args.algorithm == "mickey2" and args.format == "hex"


class TestInfo:
    def test_lists_algorithms_and_gpus(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mickey2" in out and "trivium" in out
        assert "GTX 2080 Ti" in out and "Tesla V100" in out


class TestGen:
    def test_hex_stdout(self, capsys):
        assert main(["gen", "-a", "xorwow", "-n", "16", "-s", "3"]) == 0
        out = capsys.readouterr().out.strip()
        assert len(out) == 32
        bytes.fromhex(out)  # must parse

    def test_deterministic(self, capsys):
        main(["gen", "-a", "mickey2", "-n", "8", "-s", "5", "-l", "128"])
        first = capsys.readouterr().out
        main(["gen", "-a", "mickey2", "-n", "8", "-s", "5", "-l", "128"])
        assert capsys.readouterr().out == first

    def test_raw_to_file(self, tmp_path):
        path = tmp_path / "out.bin"
        assert main(["gen", "-a", "philox", "-n", "64", "-f", "raw", "-o", str(path)]) == 0
        assert path.stat().st_size == 64

    def test_nist_ascii_format(self, tmp_path):
        path = tmp_path / "bits.txt"
        main(["gen", "-a", "xorwow", "-n", "4", "-f", "nist-ascii", "-o", str(path)])
        text = path.read_text()
        assert len(text) == 32 and set(text) <= {"0", "1"}


class TestNist:
    def test_generator_battery(self, capsys):
        rc = main(
            ["nist", "-a", "xorwow", "--sequences", "4", "--bits", "20000", "-s", "1"]
        )
        out = capsys.readouterr().out
        assert "Frequency" in out
        assert rc in (0, 1)  # 0 unless a small-N proportion flake

    def test_file_battery(self, tmp_path, capsys):
        path = tmp_path / "bits.bin"
        path.write_bytes(np.random.default_rng(0).bytes(40_000))
        rc = main(["nist", "--input", str(path), "--sequences", "2"])
        out = capsys.readouterr().out
        assert "file" in out and "Frequency" in out
        assert rc in (0, 1)

    def test_file_too_short(self, tmp_path, capsys):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"\x00")
        assert main(["nist", "--input", str(path), "--sequences", "64"]) == 2


class TestModel:
    def test_single_query(self, capsys):
        assert main(["model", "-k", "mickey2", "-g", "GTX 2080 Ti"]) == 0
        assert "2720" in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["model", "--figure10"]) == 0
        out = capsys.readouterr().out
        assert "mickey2" in out and "Tesla V100" in out


class TestCuda:
    def test_mickey_kernel(self, capsys):
        assert main(["cuda", "mickey2"]) == 0
        out = capsys.readouterr().out
        assert "__device__" in out and "mickey2_clock" in out

    def test_sbox_to_file(self, tmp_path):
        path = tmp_path / "sbox.cu"
        assert main(["cuda", "aes-sbox", "-o", str(path)]) == 0
        assert "aes_sbox" in path.read_text()


class TestThroughput:
    def test_named_algorithms(self, capsys, monkeypatch):
        # keep the timed loop short for CI
        assert main(["throughput", "xorwow", "--mbits", "1"]) == 0
        out = capsys.readouterr().out
        assert "xorwow" in out and "Mbit/s" in out


class TestFips:
    def test_strong_generator_passes(self, capsys):
        assert main(["fips", "-a", "grain", "-s", "3"]) == 0
        out = capsys.readouterr().out
        assert "Monobit" in out and "pass" in out


class TestSelftest:
    def test_healthy_generator_passes(self, capsys):
        assert main(["selftest", "-a", "xorwow", "-s", "3", "-l", "256", "-n", "65536"]) == 0
        out = capsys.readouterr().out
        assert "startup self-test" in out and "RCT cutoff" in out
        assert "continuous health tests over 65,536 bytes: pass" in out

    def test_defaults_parse(self):
        args = build_parser().parse_args(["selftest"])
        assert args.algorithm == "mickey2" and args.n_bytes == 1 << 20


class TestGenRobust:
    def test_health_flag_deterministic(self, capsys):
        # the monitored stream starts after the consumed 20,000-bit
        # power-up block, but stays deterministic per seed
        main(["gen", "-a", "xorwow", "-n", "16", "-s", "5", "-l", "256", "--health"])
        first = capsys.readouterr().out
        main(["gen", "-a", "xorwow", "-n", "16", "-s", "5", "-l", "256", "--health"])
        assert capsys.readouterr().out == first

    def test_devices_flag_matches_single(self, capsys):
        main(["gen", "-a", "xorwow", "-n", "64", "-s", "7", "-l", "256"])
        single = capsys.readouterr().out
        main(["gen", "-a", "xorwow", "-n", "64", "-s", "7", "-l", "256",
              "--devices", "3", "--timeout", "30", "--retries", "2"])
        assert capsys.readouterr().out == single
