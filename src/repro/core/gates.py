"""The gate layer: word-wide logic operations with instruction accounting.

In the paper's CUDA kernels every bitsliced building block compiles down
to 32-bit logic instructions (``XOR``/``AND``/``OR``/``NOT``); one
instruction advances 32 cipher lanes.  Here a "gate" is one vectorized
NumPy logic op over a plane (shape ``(n_words,)`` or a stack of planes),
which advances ``64 * n_words`` lanes — the software analogue of issuing
the same instruction across the whole device at once.

:class:`GateCounter` records how many *scalar gate evaluations per lane*
each kernel performs.  Those counts feed the GPU roofline model
(:mod:`repro.gpu.model`) — the model's ops-per-output-bit numbers are
measured from the very circuits we execute, not estimated by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GateCounter", "GateOps"]


@dataclass
class GateCounter:
    """Tally of gate evaluations, by kind.

    Counts are per-lane: one call to :meth:`GateOps.xor` on a stack of
    ``r`` plane rows adds ``r`` to ``xor`` (each row is one instruction in
    the unrolled kernel, regardless of how many lanes a word carries).
    """

    xor: int = 0
    and_: int = 0
    or_: int = 0
    not_: int = 0
    shift: int = 0
    counts_by_label: dict = field(default_factory=dict)
    _label: str | None = None

    @property
    def total(self) -> int:
        """All counted operations, including shifts."""
        return self.xor + self.and_ + self.or_ + self.not_ + self.shift

    @property
    def logic(self) -> int:
        """Gates excluding shifts (bitsliced kernels should have shift == 0)."""
        return self.xor + self.and_ + self.or_ + self.not_

    def add(self, kind: str, n: int = 1) -> None:
        """Count *n* operations of *kind*."""
        setattr(self, kind, getattr(self, kind) + n)
        if self._label is not None:
            bucket = self.counts_by_label.setdefault(self._label, {})
            bucket[kind] = bucket.get(kind, 0) + n

    def reset(self) -> None:
        """Zero all counters."""
        self.xor = self.and_ = self.or_ = self.not_ = self.shift = 0
        self.counts_by_label.clear()

    def merge(self, other: "GateCounter") -> None:
        """Fold another counter's tallies into this one.

        The threaded lane bank gives each worker thread its own counter
        (:meth:`add` is a read-modify-write, so sharing one across
        threads would drop counts) and merges them on demand.
        """
        self.xor += other.xor
        self.and_ += other.and_
        self.or_ += other.or_
        self.not_ += other.not_
        self.shift += other.shift
        for label, bucket in other.counts_by_label.items():
            mine = self.counts_by_label.setdefault(label, {})
            for kind, n in bucket.items():
                mine[kind] = mine.get(kind, 0) + n

    def label(self, name: str | None) -> "GateCounter":
        """Set the attribution label for subsequent gates (None to clear)."""
        self._label = name
        return self

    def snapshot(self) -> dict:
        """Copy of the per-kind counts plus totals."""
        return {
            "xor": self.xor,
            "and": self.and_,
            "or": self.or_,
            "not": self.not_,
            "shift": self.shift,
            "total": self.total,
        }


def _safe_operand(out: np.ndarray, b):
    """Defuse the read-after-write hazard of a partially aliased operand.

    In-place ufuncs are well-defined when the operand *is* the output
    (full overlap) but undefined when it merely overlaps it — e.g. a
    shifted view ``state[1:]`` XORed into ``state[:-1]``, exactly the
    register-renaming pattern bitsliced kernels use.  NumPy may process
    such pairs in chunks, so earlier output writes corrupt later operand
    reads.  Partial overlaps get a defensive copy; disjoint and
    fully-overlapping operands pass through untouched.
    """
    ba = np.asarray(b)
    if ba is out or not np.may_share_memory(out, ba):
        return b
    if (
        ba.shape == out.shape
        and ba.strides == out.strides
        and ba.__array_interface__["data"][0] == out.__array_interface__["data"][0]
    ):
        return b  # same memory, same layout: full overlap is well-defined
    if np.shares_memory(out, ba):
        return ba.copy()
    return b


def _rows(x) -> int:
    """Number of plane rows an operand represents (1 for a single plane)."""
    arr = np.asarray(x)
    if arr.ndim <= 1:
        return 1
    n = 1
    for d in arr.shape[:-1]:
        n *= d
    return n


class GateOps:
    """Word-wide gates bound to a :class:`GateCounter`.

    All operations are pure (no in-place aliasing surprises); kernels that
    need in-place updates use the ``i*`` variants which write into ``out``.
    """

    __slots__ = ("counter",)

    def __init__(self, counter: GateCounter | None = None) -> None:
        self.counter = counter if counter is not None else GateCounter()

    # -- pure ops ---------------------------------------------------------
    def xor(self, a, b):
        """Full-width XOR, counted."""
        self.counter.add("xor", max(_rows(a), _rows(b)))
        return np.bitwise_xor(a, b)

    def and_(self, a, b):
        """Full-width AND, counted."""
        self.counter.add("and_", max(_rows(a), _rows(b)))
        return np.bitwise_and(a, b)

    def or_(self, a, b):
        """Full-width OR, counted."""
        self.counter.add("or_", max(_rows(a), _rows(b)))
        return np.bitwise_or(a, b)

    def not_(self, a):
        """Full-width NOT, counted."""
        self.counter.add("not_", _rows(a))
        return np.bitwise_not(a)

    def mux(self, sel, a, b):
        """Per-lane select: ``a`` where ``sel`` lane bit is 1 else ``b``.

        Implemented as ``b ^ (sel & (a ^ b))`` — 3 gates, the standard
        branch-free bitsliced conditional.
        """
        return self.xor(b, self.and_(sel, self.xor(a, b)))

    # -- in-place ops ------------------------------------------------------
    def ixor(self, out, b):
        """In-place XOR into *out*, counted; safe under partial aliasing."""
        self.counter.add("xor", max(_rows(out), _rows(b)))
        np.bitwise_xor(out, _safe_operand(out, b), out=out)
        return out

    def iand(self, out, b):
        """In-place AND into *out*, counted; safe under partial aliasing."""
        self.counter.add("and_", max(_rows(out), _rows(b)))
        np.bitwise_and(out, _safe_operand(out, b), out=out)
        return out

    def ior(self, out, b):
        """In-place OR into *out*, counted; safe under partial aliasing."""
        self.counter.add("or_", max(_rows(out), _rows(b)))
        np.bitwise_or(out, _safe_operand(out, b), out=out)
        return out
