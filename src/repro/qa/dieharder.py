"""Dieharder-inspired test families: birthday spacings, permutations.

Two classics from Marsaglia's Diehard battery (as curated by dieharder)
that the SP 800-22 set does not cover — both sensitive to *arithmetic*
structure (lattice artefacts, ordering bias) that bit-counting tests
miss entirely; LCGs famously ace Frequency/Runs and fail both of these.

* :func:`birthday_spacings_test` — draw ``n`` "birthdays" of ``m`` bits,
  sort, and count duplicate values among the spacings.  Under H0 the
  duplicate count is asymptotically Poisson with mean ``n³/(4·2^m)``;
  we sum the count over ``trials`` independent draws (Poisson means
  add) and report a two-sided exact Poisson p-value.  The statistic is
  discrete, so the p-value is *not* uniform under H0 (NIST's uniformity
  χ² would eventually reject a good generator) — registered with
  ``battery=False``, like every family below.
* :func:`permutations_test` — the relative ordering of ``order``
  consecutive words is equidistributed over ``order!`` permutations; a
  χ² over the observed permutation counts catches ordering bias.  With
  ``overlap=True`` (the dieharder OPERM flavour) windows advance one
  word at a time; overlapping windows are positively correlated, and
  the exact covariance correction is notoriously error-prone (dieharder
  shipped a broken operm5 for years), so we deflate the χ² by the
  overlap factor instead — a *conservative* correction, enforced
  empirically by the calibration suite.  ``overlap=False`` uses
  disjoint windows and a clean χ² null (battery-aggregatable).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gammainc

from repro.errors import InsufficientDataError, SpecificationError
from repro.nist._utils import check_bits, igamc
from repro.nist.result import TestResult

__all__ = ["birthday_spacings_test", "permutations_test"]


def _pack_words(arr: np.ndarray, word_bits: int, n_words: int) -> np.ndarray:
    """First ``n_words`` little-bit-order words of ``word_bits`` bits."""
    trimmed = arr[: n_words * word_bits].reshape(n_words, word_bits)
    weights = (1 << np.arange(word_bits, dtype=np.int64)).astype(np.int64)
    return trimmed.astype(np.int64) @ weights


def birthday_spacings_test(
    bits,
    n_birthdays: int = 256,
    bits_per_birthday: int = 20,
    trials: int = 8,
) -> TestResult:
    """Marsaglia's birthday-spacings test (dieharder ``diehard_birthdays``).

    Total duplicate-spacing count over *trials* draws vs its exact
    Poisson null (two-sided).  Defaults give a per-trial mean of
    ``256³/2²² = 4`` and a total mean of 32 from 40,960 bits.
    """
    if n_birthdays < 8 or not 8 <= bits_per_birthday <= 48:
        raise SpecificationError("need n_birthdays >= 8 and 8 <= bits_per_birthday <= 48")
    if trials < 1:
        raise SpecificationError("trials must be positive")
    need = trials * n_birthdays * bits_per_birthday
    arr = check_bits(bits, need, "birthday_spacings")
    days = _pack_words(arr, bits_per_birthday, trials * n_birthdays).reshape(
        trials, n_birthdays
    )
    days.sort(axis=1)
    spacings = np.diff(days, axis=1)
    # duplicates among the spacings of each trial (Marsaglia's statistic)
    duplicates = 0
    for row in spacings:
        duplicates += row.size - np.unique(row).size
    mu = trials * (n_birthdays**3) / (4.0 * 2.0**bits_per_birthday)
    # Poisson tails via regularized incomplete gammas (exact, no loops):
    # P(X <= k) = Q(k+1, mu), P(X >= k) = P(k, mu) for k >= 1.
    lower = igamc(duplicates + 1, mu)
    upper = float(gammainc(duplicates, mu)) if duplicates >= 1 else 1.0
    p = min(1.0, 2.0 * min(lower, upper))
    return TestResult(
        "birthday_spacings",
        [p],
        {
            "duplicates": int(duplicates),
            "expected": mu,
            "trials": trials,
            "n_birthdays": n_birthdays,
            "bits_per_birthday": bits_per_birthday,
        },
    )


def _permutation_index(windows: np.ndarray) -> np.ndarray:
    """Lehmer index in ``[0, order!)`` of each row's ordering pattern."""
    count, order = windows.shape
    index = np.zeros(count, dtype=np.int64)
    for i in range(order - 1):
        smaller_later = (windows[:, i + 1 :] < windows[:, i : i + 1]).sum(axis=1)
        index = index * (order - i) + smaller_later
    return index


def permutations_test(
    bits,
    order: int = 5,
    word_bits: int = 32,
    overlap: bool = True,
    min_expected: float = 5.0,
) -> TestResult:
    """Ordering of consecutive words vs the uniform permutation null.

    χ² over ``order!`` permutation categories; overlapping windows
    deflate the statistic by ``order`` (see module docstring).  Requires
    enough windows for ``min_expected`` counts per category.
    """
    if not 2 <= order <= 7:
        raise SpecificationError("order must be in [2, 7] (order! categories)")
    if word_bits < 8 or word_bits > 64:
        raise SpecificationError("word_bits must be in [8, 64]")
    perms = math.factorial(order)
    min_windows = int(math.ceil(min_expected * perms))
    if overlap:
        need_words = min_windows + order - 1
    else:
        need_words = min_windows * order
    arr = check_bits(bits, need_words * word_bits, "permutations")
    n_words = arr.size // word_bits
    words = _pack_words(arr, word_bits, n_words)
    if overlap:
        windows = np.lib.stride_tricks.sliding_window_view(words, order)
    else:
        windows = words[: (n_words // order) * order].reshape(-1, order)
    if windows.shape[0] < min_windows:
        raise InsufficientDataError(
            f"permutations needs {min_windows} windows, got {windows.shape[0]}"
        )
    counts = np.bincount(_permutation_index(windows), minlength=perms)
    expected = windows.shape[0] / perms
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    deflation = float(order) if overlap else 1.0
    p = igamc((perms - 1) / 2.0, chi2 / deflation / 2.0)
    return TestResult(
        "permutations",
        [p],
        {
            "chi2": chi2,
            "windows": int(windows.shape[0]),
            "categories": perms,
            "overlap": overlap,
            "deflation": deflation,
        },
    )
