"""Prometheus text-exposition linter, importable as a library.

Historically this checker lived only in ``tools/lint_prometheus.py`` and
could be invoked solely as a script; the serve layer's tests want to
validate a live ``/metrics`` response in-process, so the core moved here
and the tool became a thin wrapper.  :func:`lint` returns the list of
format violations (empty = clean) for a full exposition document.

Checks, per the exposition format spec (version 0.0.4):

* every line is a comment (``# HELP`` / ``# TYPE``), blank, or a sample
  ``name{labels} value [timestamp]``;
* metric and label names match ``[a-zA-Z_:][a-zA-Z0-9_:]*`` /
  ``[a-zA-Z_][a-zA-Z0-9_]*``; label values are properly quoted;
* sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed);
* a family's ``# TYPE`` line precedes its samples, at most once;
* histogram families expose ``_bucket`` series with an ``le`` label,
  cumulative non-decreasing bucket counts ending in ``le="+Inf"``, and
  matching ``_sum`` / ``_count`` series with ``_count`` equal to the
  ``+Inf`` bucket.

Deliberately dependency-free (stdlib ``re`` only) so the CI wrapper can
run it before anything is installed beyond the package itself.
"""

from __future__ import annotations

import re

__all__ = ["lint", "count_samples"]

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_value(text: str) -> float | None:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(raw: str, lineno: int, errors: list[str]) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = raw.strip().rstrip(",")
    if not rest:
        return labels
    pos = 0
    while pos < len(rest):
        m = LABEL_RE.match(rest, pos)
        if not m:
            errors.append(f"line {lineno}: malformed label pair at {rest[pos:]!r}")
            return labels
        labels[m.group("name")] = m.group("value")
        pos = m.end()
        if pos < len(rest):
            if rest[pos] != ",":
                errors.append(f"line {lineno}: expected ',' between labels")
                return labels
            pos += 1
    return labels


def count_samples(text: str) -> int:
    """Number of sample (non-comment, non-blank) lines in *text*."""
    return sum(
        1 for line in text.splitlines() if line.strip() and not line.startswith("#")
    )


def lint(text: str) -> list[str]:
    """All format violations found in *text* (empty list = clean)."""
    errors: list[str] = []
    declared_types: dict[str, str] = {}
    sample_seen: set[str] = set()
    # histogram accounting: family -> {labelset-sans-le: [(le, count)]}
    buckets: dict[str, dict[tuple, list[tuple[float, float]]]] = {}
    sums: dict[str, dict[tuple, float]] = {}
    counts: dict[str, dict[tuple, float]] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in TYPES:
                        errors.append(f"line {lineno}: malformed TYPE line")
                        continue
                    family = parts[2]
                    if family in declared_types:
                        errors.append(f"line {lineno}: duplicate TYPE for {family}")
                    if family in sample_seen:
                        errors.append(
                            f"line {lineno}: TYPE for {family} after its samples"
                        )
                    declared_types[family] = parts[3]
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: not a valid sample line: {line!r}")
            continue
        name, raw_labels = m.group("name"), m.group("labels")
        value = _parse_value(m.group("value"))
        if value is None:
            errors.append(f"line {lineno}: bad sample value {m.group('value')!r}")
            continue
        labels = _parse_labels(raw_labels or "", lineno, errors)
        # resolve the family: histogram samples use _bucket/_sum/_count
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared_types.get(base) == "histogram":
                family = base
                break
        if family in declared_types:
            sample_seen.add(family)
        if declared_types.get(family) == "histogram":
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: histogram bucket without le label")
                    continue
                le = _parse_value(labels["le"])
                if le is None:
                    errors.append(f"line {lineno}: bad le value {labels['le']!r}")
                    continue
                buckets.setdefault(family, {}).setdefault(key, []).append((le, value))
            elif name.endswith("_sum"):
                sums.setdefault(family, {})[key] = value
            elif name.endswith("_count"):
                counts.setdefault(family, {})[key] = value

    # histogram cross-checks
    for family, series in buckets.items():
        for key, entries in series.items():
            label_desc = "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"
            les = [le for le, _ in entries]
            vals = [v for _, v in entries]
            if les != sorted(les):
                errors.append(f"{family}{label_desc}: bucket le values not sorted")
            if vals != sorted(vals):
                errors.append(f"{family}{label_desc}: bucket counts not cumulative")
            if not les or les[-1] != float("inf"):
                errors.append(f"{family}{label_desc}: missing le=\"+Inf\" bucket")
            elif counts.get(family, {}).get(key) != vals[-1]:
                errors.append(
                    f"{family}{label_desc}: _count != +Inf bucket "
                    f"({counts.get(family, {}).get(key)} vs {vals[-1]})"
                )
            if key not in sums.get(family, {}):
                errors.append(f"{family}{label_desc}: missing _sum series")
    for family in set(sums) | set(counts):
        if family not in buckets:
            errors.append(f"{family}: histogram with _sum/_count but no buckets")
    return errors
