"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List generator algorithms and the GPU catalogue.
``gen``
    Generate random output (hex, raw binary, or NIST sts input formats).
``nist``
    Run the SP 800-22 battery on a generator or an input file —
    ``--workers N`` shards it across a supervised process pool
    (``--timeout``/``--retries`` set the per-shard recovery policy).
``fips``
    Run the FIPS 140-2 power-up battery (fast accept/reject gate).
``qa``
    The randomness-QA plugin registry: ``qa list`` (discovered
    plugins), ``qa run`` (battery-capable plugins with NIST
    aggregation), ``qa stream`` (streaming evaluation with latched
    verdicts over a generator or file stream; see DESIGN.md §15).
``selftest``
    Run the startup self-test plus the SP 800-90B continuous health
    tests (Repetition Count / Adaptive Proportion) over a stream.
``throughput``
    Measure the software throughput of one or more algorithms.
``stats``
    Render a telemetry snapshot (JSON/Prometheus/human) — either a
    ``--metrics-out`` file or a fresh instrumented run.
``serve``
    Run the RNG-as-a-service daemon: counter-space leases, streaming
    HTTP endpoints, ``/healthz``/``/metrics``, graceful SIGTERM drain
    (see ``repro.serve`` and DESIGN.md §12).
``top``
    Live ANSI dashboard over a running daemon — polls ``/metrics`` and
    ``/v1/status`` and renders rates, latency quantiles, and the
    per-worker fleet table (see DESIGN.md §14).
``model``
    Query the anchored GPU throughput model (the paper's Figure 10).
``cuda``
    Emit the generated CUDA kernels (paper §4.4).

``gen``, ``nist``, ``throughput``, ``selftest``, ``serve`` and ``fleet``
accept ``--metrics-out PATH``
(write a JSON metrics snapshot) and ``--trace-out PATH`` (write a
Chrome-trace-event JSON viewable in Perfetto), plus the fused-kernel
group ``--fused/--no-fused``, ``--clocks-per-call K`` and ``--dtype
{uint32,uint64}``.  ``repro selftest --fused`` additionally cross-checks
the fused stream byte-for-byte against the per-clock interpreter before
running the health tests.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BSRNG: bitsliced high-throughput random number generation "
        "(ICPP Workshops 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_fused_flags(p) -> None:
        p.add_argument(
            "--fused",
            dest="fused",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="use the compiled fused-kernel path "
            "(default: on for bitsliced algorithms; --no-fused forces the "
            "per-clock interpreter)",
        )
        p.add_argument(
            "--clocks-per-call",
            type=int,
            default=32,
            metavar="K",
            help="clocks advanced per fused kernel call (default 32)",
        )
        p.add_argument(
            "--dtype",
            choices=("uint32", "uint64"),
            default="uint64",
            help="lane-packing word width (default uint64)",
        )

    def add_telemetry_flags(p) -> None:
        p.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write a JSON metrics snapshot (render it with 'repro stats')",
        )
        p.add_argument(
            "--trace-out",
            default=None,
            metavar="PATH",
            help="write a Chrome-trace-event JSON (open in Perfetto)",
        )

    sub.add_parser("info", help="list algorithms and GPU platforms")

    gen = sub.add_parser("gen", help="generate random output")
    gen.add_argument("-a", "--algorithm", default="mickey2")
    gen.add_argument("-s", "--seed", type=int, default=0)
    gen.add_argument("-l", "--lanes", type=int, default=4096)
    gen.add_argument("-n", "--bytes", type=int, default=32, dest="n_bytes")
    gen.add_argument(
        "-f",
        "--format",
        choices=("hex", "raw", "nist-ascii", "nist-binary"),
        default="hex",
    )
    gen.add_argument("-o", "--output", default="-", help="output path ('-' = stdout)")
    gen.add_argument(
        "--health",
        action="store_true",
        help="front the generator with startup + continuous health tests",
    )
    gen.add_argument(
        "--devices",
        type=int,
        default=1,
        help="generate through N supervised worker devices (paper §5.4)",
    )
    gen.add_argument("--retries", type=int, default=2, help="per-partition retry budget")
    gen.add_argument("--timeout", type=float, default=None, help="per-partition timeout (s)")
    add_fused_flags(gen)
    add_telemetry_flags(gen)

    nist = sub.add_parser("nist", help="run the NIST SP 800-22 battery")
    nist.add_argument("-a", "--algorithm", default="mickey2")
    nist.add_argument("-s", "--seed", type=int, default=0)
    nist.add_argument("-l", "--lanes", type=int, default=4096)
    nist.add_argument("--sequences", type=int, default=24)
    nist.add_argument("--bits", type=int, default=100_000)
    nist.add_argument("--input", help="read bits from a raw binary file instead")
    nist.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the battery across N supervised worker processes "
        "(1 = sequential; requires a generator source, not --input)",
    )
    nist.add_argument(
        "--timeout", type=float, default=None, help="per-shard-round timeout (s)"
    )
    nist.add_argument("--retries", type=int, default=2, help="per-shard retry budget")
    add_fused_flags(nist)
    add_telemetry_flags(nist)

    fips = sub.add_parser("fips", help="FIPS 140-2 power-up battery (20,000 bits)")
    fips.add_argument("-a", "--algorithm", default="mickey2")
    fips.add_argument("-s", "--seed", type=int, default=0)
    fips.add_argument("-l", "--lanes", type=int, default=4096)

    qa = sub.add_parser(
        "qa", help="randomness-QA plugin registry: list, battery run, streaming eval"
    )
    qa_sub = qa.add_subparsers(dest="qa_action", required=True)
    qa_list = qa_sub.add_parser(
        "list", help="list every discovered QA plugin (builtins, entry points, env)"
    )
    qa_list.add_argument("--json", action="store_true", help="machine-readable output")
    qa_run = qa_sub.add_parser(
        "run", help="run battery-capable plugins with NIST-style aggregation"
    )
    qa_run.add_argument("-a", "--algorithm", default="mickey2")
    qa_run.add_argument("-s", "--seed", type=int, default=0)
    qa_run.add_argument("-l", "--lanes", type=int, default=4096)
    qa_run.add_argument("--sequences", type=int, default=24)
    qa_run.add_argument("--bits", type=int, default=100_000)
    qa_run.add_argument(
        "--plugins", default=None, metavar="NAME,NAME",
        help="battery plugin names (default: every battery-capable plugin, "
        "SP 800-22 Table-3 order first)",
    )
    add_fused_flags(qa_run)
    add_telemetry_flags(qa_run)
    qa_stream = qa_sub.add_parser(
        "stream", help="streaming evaluation over a generator or file stream"
    )
    qa_stream.add_argument("-a", "--algorithm", default="mickey2")
    qa_stream.add_argument("-s", "--seed", type=int, default=0)
    qa_stream.add_argument("-l", "--lanes", type=int, default=4096)
    qa_stream.add_argument(
        "-n", "--bytes", type=int, default=1 << 22, dest="n_bytes",
        help="stream length to evaluate (default 4 MiB)",
    )
    qa_stream.add_argument("--input", default=None, help="read the stream from a file")
    qa_stream.add_argument(
        "--window-bytes", type=int, default=1 << 14,
        help="evaluation window (default 16 KiB)",
    )
    qa_stream.add_argument(
        "--chunk-bytes", type=int, default=1 << 16,
        help="feed granularity (results are chunk-split invariant)",
    )
    qa_stream.add_argument(
        "--fail-alpha", type=float, default=None,
        help="per-window failure threshold for all plugins "
        "(default: each plugin's own alpha)",
    )
    qa_stream.add_argument(
        "--sample", type=int, default=1, help="evaluate every K-th window"
    )
    qa_stream.add_argument(
        "--plugins", default=None, metavar="NAME,NAME",
        help="plugin names (default: every streaming-capable plugin)",
    )
    qa_stream.add_argument("--json", action="store_true", help="emit the full status JSON")
    add_fused_flags(qa_stream)
    add_telemetry_flags(qa_stream)

    st = sub.add_parser(
        "selftest", help="startup self-test + SP 800-90B continuous health tests"
    )
    st.add_argument("-a", "--algorithm", default="mickey2")
    st.add_argument("-s", "--seed", type=int, default=0)
    st.add_argument("-l", "--lanes", type=int, default=4096)
    st.add_argument(
        "-n", "--bytes", type=int, default=1 << 20, dest="n_bytes",
        help="continuous-test stream length",
    )
    st.add_argument(
        "--alpha", type=float, default=2.0**-30,
        help="per-test false-positive rate for the cutoff derivation",
    )
    add_fused_flags(st)
    st.add_argument(
        "--cross-check-bytes",
        type=int,
        default=1 << 16,
        metavar="N",
        help="stream length for the fused-vs-unfused cross-check "
        "(run with --fused; 0 disables)",
    )
    add_telemetry_flags(st)

    tp = sub.add_parser("throughput", help="measure software throughput")
    tp.add_argument("algorithms", nargs="*", default=[])
    tp.add_argument("-l", "--lanes", type=int, default=16384)
    tp.add_argument("--mbits", type=float, default=8.0, help="Mbit per measurement")
    add_fused_flags(tp)
    add_telemetry_flags(tp)

    stats = sub.add_parser(
        "stats", help="render a telemetry snapshot (JSON / Prometheus / human)"
    )
    stats.add_argument(
        "input",
        nargs="?",
        default=None,
        help="metrics snapshot JSON written by --metrics-out; "
        "omitted = run a short instrumented generation",
    )
    stats.add_argument(
        "--format",
        choices=("human", "prometheus", "json"),
        default="human",
        dest="fmt",
    )
    stats.add_argument("-a", "--algorithm", default="mickey2")
    stats.add_argument("-s", "--seed", type=int, default=0)
    stats.add_argument("-l", "--lanes", type=int, default=4096)
    stats.add_argument(
        "-n", "--bytes", type=int, default=1 << 20, dest="n_bytes",
        help="bytes to generate in the no-input self-run mode",
    )

    serve = sub.add_parser(
        "serve", help="run the RNG-as-a-service daemon (HTTP, leases, /healthz)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8797, help="listen port (0 = ephemeral)"
    )
    serve.add_argument("-a", "--algorithm", default="trivium")
    serve.add_argument("-s", "--seed", type=int, default=0)
    serve.add_argument("-l", "--lanes", type=int, default=4096)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="persistent generation worker processes (0 = inline, no pool)",
    )
    serve.add_argument(
        "--fleet", type=int, default=0, metavar="N", dest="fleet",
        help="mount a heartbeat-supervised elastic fleet of N workers "
        "instead of the anonymous pool (health eviction, lease "
        "reassignment; see DESIGN.md §13)",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="S",
        help="fleet worker heartbeat period (default 1s)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=5.0, metavar="S",
        help="silence past this evicts a fleet worker (default 5s)",
    )
    serve.add_argument(
        "--fleet-chunk-bytes", type=int, default=None, metavar="N",
        help="fleet lease granularity (default: --chunk-bytes); smaller "
        "than --chunk-bytes pipelines one request across several workers",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0, help="per-chunk worker timeout (s)"
    )
    serve.add_argument("--retries", type=int, default=2, help="per-chunk retry budget")
    serve.add_argument(
        "--chunk-bytes", type=int, default=1 << 16,
        help="generation / streaming granularity (default 64 KiB)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=4,
        help="buffered chunks per stream before backpressure (default 4)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds in-flight requests get after SIGTERM (default 10)",
    )
    serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="lease journal (JSONL); restarting over it resumes allocation",
    )
    serve.add_argument(
        "--no-screen", action="store_true",
        help="disable the SP 800-90B RCT/APT output screen",
    )
    serve.add_argument(
        "--alpha", type=float, default=2.0**-20,
        help="health-screen false-positive rate (default 2^-20)",
    )
    serve.add_argument(
        "--qa", action="store_true",
        help="mount the continuous-QA sidecar: streaming plugin evaluation "
        "over every accepted chunk, latching /healthz on a failed verdict",
    )
    serve.add_argument(
        "--qa-window-bytes", type=int, default=1 << 14, metavar="N",
        help="QA evaluation window (default 16 KiB)",
    )
    serve.add_argument(
        "--qa-alpha", type=float, default=1e-9, metavar="A",
        help="per-window QA failure threshold (default 1e-9 — a served "
        "stream evaluates millions of windows, so the offline alphas "
        "would false-latch)",
    )
    serve.add_argument(
        "--qa-sample", type=int, default=1, metavar="K",
        help="evaluate every K-th QA window (default 1 = all)",
    )
    serve.add_argument(
        "--qa-plugins", default=None, metavar="NAME,NAME",
        help="QA plugin names (default: every streaming-capable plugin)",
    )
    add_fused_flags(serve)
    add_telemetry_flags(serve)

    top = sub.add_parser(
        "top", help="live dashboard over a running serve daemon (/metrics + status)"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8797)
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="poll / redraw period (default 1s)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="print frames sequentially instead of redrawing the screen",
    )

    fleet = sub.add_parser(
        "fleet",
        help="generate through a supervised worker fleet and verify the merge",
    )
    fleet.add_argument("-a", "--algorithm", default="trivium")
    fleet.add_argument("-s", "--seed", type=int, default=0)
    fleet.add_argument("-l", "--lanes", type=int, default=4096)
    fleet.add_argument(
        "-n", "--bytes", type=int, default=1 << 20, dest="n_bytes",
        help="total bytes to generate through the fleet (default 1 MiB)",
    )
    fleet.add_argument("--workers", type=int, default=2, help="initial fleet size")
    fleet.add_argument(
        "--chunk-bytes", type=int, default=1 << 16,
        help="bytes per chunk lease (default 64 KiB)",
    )
    fleet.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="S",
        help="worker heartbeat period (default 0.5s)",
    )
    fleet.add_argument(
        "--heartbeat-timeout", type=float, default=3.0, metavar="S",
        help="silence past this evicts a worker (default 3s)",
    )
    fleet.add_argument(
        "--no-verify", action="store_true",
        help="skip the bit-identity check against a single-device reference",
    )
    fleet.add_argument(
        "--no-screen", action="store_true",
        help="disable the per-worker SP 800-90B output screen",
    )
    fleet.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the merged bytes (default: discard after verification)",
    )
    add_fused_flags(fleet)
    add_telemetry_flags(fleet)

    model = sub.add_parser("model", help="query the GPU throughput model")
    model.add_argument("-k", "--kernel", default="mickey2")
    model.add_argument("-g", "--gpu", default="GTX 2080 Ti")
    model.add_argument("--figure10", action="store_true", help="print the full Figure-10 series")

    cuda = sub.add_parser("cuda", help="emit generated CUDA kernels")
    cuda.add_argument("kernel", choices=("mickey2", "aes-sbox"))
    cuda.add_argument("-o", "--output", default="-")

    return parser


def _fused_kwargs(args) -> dict:
    """BSRNG/engine keyword arguments from the ``--fused`` flag group."""
    return {
        "dtype": np.uint32 if getattr(args, "dtype", "uint64") == "uint32" else np.uint64,
        "fused": getattr(args, "fused", None),
        "clocks_per_call": getattr(args, "clocks_per_call", 32),
    }


def _telemetry(args):
    """Context manager: honour ``--metrics-out`` / ``--trace-out``.

    Enables the corresponding telemetry layer for the body and writes the
    snapshot / Chrome trace on the way out (including early error
    returns, so a failed selftest still leaves its evidence behind).
    """
    from contextlib import contextmanager

    from repro import obs

    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)

    @contextmanager
    def ctx():
        tracer = obs.enable_tracing() if trace_out else None
        if metrics_out:
            obs.enable_metrics()
        try:
            yield
        finally:
            if metrics_out:
                obs.write_snapshot(obs.registry().snapshot(), metrics_out)
                obs.disable_metrics()
            if tracer is not None:
                tracer.write(trace_out)
                obs.disable_tracing()

    return ctx()


def _cmd_info(_args) -> int:
    from repro.core.generator import available_algorithms
    from repro.gpu.specs import GPU_CATALOGUE

    print("algorithms:")
    for name, desc in available_algorithms().items():
        print(f"  {name:<18} {desc}")
    print("\nGPU catalogue (paper Tables 1-2):")
    for g in GPU_CATALOGUE.values():
        print(
            f"  {g.name:<12} {g.year}  {g.sp_gflops:>8.0f} SP GFLOPS  "
            f"{g.mem_bw_gbs:>6.0f} GB/s"
        )
    return 0


def _cmd_gen(args) -> int:
    from repro.bitio.bits import bits_from_bytes
    from repro.bitio.streams import write_nist_ascii, write_nist_binary
    from repro.core.generator import BSRNG
    from repro.obs import span

    with _telemetry(args), span(
        "gen", algo=args.algorithm, n_bytes=args.n_bytes, devices=args.devices
    ):
        if args.devices > 1:
            # supervised multi-device path: block-granular partitioning, so
            # round the byte count up to whole blocks and trim
            from repro.gpu.multigpu import MultiDeviceGenerator

            block_bytes = 1 << 12
            gen = MultiDeviceGenerator(
                args.algorithm,
                seed=args.seed,
                lanes=args.lanes,
                n_devices=args.devices,
                block_bytes=block_bytes,
                timeout=args.timeout,
                max_retries=args.retries,
                verify_crc=True,
                fused=args.fused,
                clocks_per_call=args.clocks_per_call,
            )
            data = gen.generate(-(-args.n_bytes // block_bytes))[: args.n_bytes]
        elif args.health:
            from repro.robust.health import HealthMonitoredBSRNG

            inner = BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes, **_fused_kwargs(args))
            rng = HealthMonitoredBSRNG(inner)
            data = rng.random_bytes(args.n_bytes)
            rng.inner.publish_metrics()
        else:
            rng = BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes, **_fused_kwargs(args))
            data = rng.random_bytes(args.n_bytes)
            rng.publish_metrics()
    if args.format == "hex":
        payload = data.hex().encode() + b"\n"
    elif args.format == "raw":
        payload = data
    elif args.format == "nist-ascii":
        import io

        buf = io.StringIO()
        write_nist_ascii(bits_from_bytes(data), buf)
        payload = buf.getvalue().encode()
    else:  # nist-binary
        payload = data  # little-bit-order packed == our byte stream
    if args.output == "-":
        sys.stdout.buffer.write(payload)
    else:
        with open(args.output, "wb") as fh:
            fh.write(payload)
    return 0


def _cmd_nist(args) -> int:
    from repro.bitio.bits import bits_from_bytes
    from repro.core.generator import BSRNG
    from repro.nist import run_suite, run_suite_parallel
    from repro.obs import span

    workers = args.workers
    if args.input and workers > 1:
        print(
            "--workers needs a generator source (workers regenerate their "
            "sequence chunks); running the file battery sequentially",
            file=sys.stderr,
        )
        workers = 1
    with _telemetry(args), span(
        "nist", algo=args.algorithm, sequences=args.sequences, workers=workers
    ):
        if args.input:
            raw = open(args.input, "rb").read()
            bits = bits_from_bytes(raw)
            per_seq = bits.size // args.sequences
            if per_seq == 0:
                print("input too short for the requested sequence count", file=sys.stderr)
                return 2
            source = lambda i: bits[i * per_seq : (i + 1) * per_seq]  # noqa: E731
            n_bits = per_seq
        else:
            n_bits = args.bits
        print(
            f"NIST SP 800-22: {args.sequences} sequences x {n_bits:,} bits "
            f"({'file ' + args.input if args.input else args.algorithm})"
            + (f", {workers} workers" if workers > 1 else "")
        )
        if workers > 1:
            report = run_suite_parallel(
                args.algorithm,
                seed=args.seed,
                lanes=args.lanes,
                n_sequences=args.sequences,
                n_bits=n_bits,
                workers=workers,
                timeout=args.timeout,
                max_retries=args.retries,
                **_fused_kwargs(args),
            )
        elif args.input:
            report = run_suite(source, args.sequences)
        else:
            rng = BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes, **_fused_kwargs(args))
            report = run_suite(lambda i: rng.random_bits(n_bits), args.sequences)
    print(report.to_table())
    sup = report.supervision
    if sup is not None and (sup.events or sup.degraded):
        print(
            f"\nsupervision: {len(sup.attempts)} shards, "
            f"{len(sup.retried_partitions)} retried, degraded: {sup.degraded}"
        )
        for event in sup.events:
            print(f"  shard {event.partition} attempt {event.attempt}: {event.kind}")
    print(f"\nall passed: {report.all_passed}")
    return 0 if report.all_passed else 1


def _cmd_fips(args) -> int:
    from repro.core.generator import BSRNG
    from repro.nist import fips140_battery
    from repro.nist.fips140 import BLOCK_BITS

    rng = BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes)
    report = fips140_battery(rng.random_bits(BLOCK_BITS))
    print(f"FIPS 140-2 on {args.algorithm} (seed={args.seed}):")
    print(report.to_table())
    return 0 if report.passed else 1


def _cmd_selftest(args) -> int:
    from repro.errors import HealthTestError
    from repro.obs import span
    from repro.robust.health import HealthMonitoredBSRNG

    from repro.core.generator import BSRNG

    print(f"self-test: {args.algorithm} (seed={args.seed}, alpha={args.alpha:.3g})")
    with _telemetry(args), span("selftest", algo=args.algorithm):
        if args.fused and args.cross_check_bytes > 0:
            # --fused cross-check mode: the fused compiled kernels must
            # reproduce the interpreter stream byte for byte before we
            # trust them with the health-tested output path.
            n = args.cross_check_bytes
            kw = _fused_kwargs(args)
            fused_rng = BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes, **kw)
            kw = dict(kw, fused=False)
            plain_rng = BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes, **kw)
            with span("selftest.fused_crosscheck", algo=args.algorithm, n_bytes=n):
                if fused_rng.random_bytes(n) != plain_rng.random_bytes(n):
                    print(f"fused cross-check over {n:,} bytes: FAIL (stream mismatch)")
                    return 1
            print(f"fused cross-check over {n:,} bytes: pass (fused == unfused)")
        try:
            mon = HealthMonitoredBSRNG(
                BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes, **_fused_kwargs(args)),
                alpha=args.alpha,
            )
        except HealthTestError as exc:
            print(f"startup self-test: FAIL ({exc})")
            return 1
        print("startup self-test (FIPS 140-2, 20,000 bits): pass")
        print(f"  {mon.startup_report.to_table()}".replace("\n", "\n  "))
        print(
            f"continuous tests: RCT cutoff {mon.rct.cutoff}, "
            f"APT cutoff {mon.apt.cutoff}/{mon.apt.window}"
        )
        chunk = 1 << 16
        remaining = args.n_bytes
        try:
            while remaining > 0:
                mon.random_bytes(min(chunk, remaining))
                remaining -= chunk
        except HealthTestError as exc:
            print(f"continuous health tests: FAIL ({exc})")
            return 1
        finally:
            mon.inner.publish_metrics()
        print(f"continuous health tests over {mon.log.bytes_screened:,} bytes: pass")
    return 0


def _cmd_throughput(args) -> int:
    from repro import obs
    from repro.core.generator import BSRNG, available_algorithms
    from repro.obs import span

    algorithms = args.algorithms or list(available_algorithms())
    # Draw in chunks until enough wall time has elapsed: buffered refills
    # then amortise out instead of letting one pre-filled buffer masquerade
    # as generator throughput.
    chunk = 1 << 20
    min_seconds = max(args.mbits / 100.0, 0.25)
    print(f"{'algorithm':<18}{'Mbit/s':>10}")
    print("-" * 28)
    with _telemetry(args):
        for alg in algorithms:
            rng = BSRNG(alg, seed=1, lanes=args.lanes, **_fused_kwargs(args))
            total = 0
            with span("throughput.measure", algo=alg):
                t0 = time.perf_counter()
                while (elapsed := time.perf_counter() - t0) < min_seconds:
                    rng.random_bytes(chunk)
                    total += chunk
            mbit_s = 8 * total / elapsed / 1e6
            obs.set_gauge("repro_throughput_mbit_s", round(mbit_s, 1), algorithm=alg)
            rng.publish_metrics()
            print(f"{alg:<18}{mbit_s:>10.1f}")
    return 0


def _cmd_stats(args) -> int:
    from repro import obs

    if args.input:
        snap = obs.load_snapshot(args.input)
    else:
        # self-run mode: a short fully-instrumented generation, so
        # `repro stats` with no arguments always has something to show
        from repro.core.generator import BSRNG

        with obs.scoped() as reg:
            with obs.span("stats.selfrun", algo=args.algorithm):
                rng = BSRNG(args.algorithm, seed=args.seed, lanes=args.lanes)
                rng.random_bytes(args.n_bytes)
                rng.publish_metrics()
            snap = reg.snapshot()
    obs.dump(snap, args.fmt, sys.stdout)
    return 0


def _cmd_qa(args) -> int:
    import json

    from repro.qa import default_registry

    registry = default_registry()
    if args.qa_action == "list":
        rows = registry.describe()
        if args.json:
            print(json.dumps(rows, indent=2))
            return 0
        print(
            f"{'Name':<26}{'Family':<11}{'Min bits':>9}{'Cost':>7}"
            f"  {'Battery':<8}{'Stream':<7}Source"
        )
        print("-" * 78)
        for row in rows:
            print(
                f"{row['name']:<26}{row['family']:<11}{row['min_bits']:>9}"
                f"{row['cost']:>7.1f}  {str(row['battery']):<8}"
                f"{str(row['streaming']):<7}{row['source']}"
            )
        return 0

    if args.qa_action == "run":
        from repro.core.generator import BSRNG
        from repro.qa import run_battery
        from repro.qa.registry import battery_order, resolve_battery_plugin

        names = (
            [n.strip() for n in args.plugins.split(",") if n.strip()]
            if args.plugins
            else battery_order()
        )
        plugins = [resolve_battery_plugin(n) for n in names]
        print(
            f"QA battery: {args.sequences} sequences x {args.bits:,} bits "
            f"({args.algorithm}), {len(plugins)} plugins"
        )
        with _telemetry(args):
            rng = BSRNG(
                args.algorithm, seed=args.seed, lanes=args.lanes, **_fused_kwargs(args)
            )
            report = run_battery(
                lambda i: rng.random_bits(args.bits), args.sequences, plugins
            )
        print(report.to_table())
        print(f"\nall passed: {report.all_passed}")
        return 0 if report.all_passed else 1

    # qa stream
    from repro.qa import StreamingEvaluator

    if args.plugins:
        plugins = [registry.get(n.strip()) for n in args.plugins.split(",") if n.strip()]
    else:
        plugins = registry.select(streaming=True)
    evaluator = StreamingEvaluator(
        plugins,
        window_bytes=args.window_bytes,
        fail_alpha=args.fail_alpha,
        sample=args.sample,
    )
    with _telemetry(args):
        if args.input:
            with open(args.input, "rb") as fh:
                while True:
                    chunk = fh.read(args.chunk_bytes)
                    if not chunk:
                        break
                    evaluator.feed(chunk)
        else:
            from repro.core.generator import BSRNG

            rng = BSRNG(
                args.algorithm, seed=args.seed, lanes=args.lanes, **_fused_kwargs(args)
            )
            remaining = args.n_bytes
            while remaining > 0:
                take = min(args.chunk_bytes, remaining)
                evaluator.feed(rng.read(take))
                remaining -= take
    status = evaluator.status()
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        print(
            f"QA stream: {status['bytes_seen']:,} bytes, "
            f"{status['windows_seen']} windows of {status['window_bytes']:,} bytes"
        )
        print(f"{'Plugin':<26}{'Windows':>8}{'Skips':>7}{'Fails':>7}{'Min p':>12}  Verdict")
        print("-" * 70)
        for name, row in status["plugins"].items():
            min_p = "-" if row["min_p"] is None else f"{row['min_p']:.2e}"
            verdict = "LATCHED" if row["latched"] else ("ok" if row["eligible"] else "skipped")
            print(
                f"{name:<26}{row['windows']:>8}{row['skips']:>7}"
                f"{row['failures']:>7}{min_p:>12}  {verdict}"
            )
    print(f"\nhealthy: {evaluator.healthy}")
    return 0 if evaluator.healthy else 1


def _cmd_serve(args) -> int:
    import asyncio
    import logging

    from repro.robust.supervisor import SupervisorConfig
    from repro.serve import DaemonConfig, ServeDaemon, ServeEngine, StreamConfig

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(levelname)s %(message)s"
    )
    stream = StreamConfig(
        algorithm=args.algorithm,
        seed=args.seed,
        lanes=args.lanes,
        dtype=args.dtype,
        fused=args.fused,
        clocks_per_call=args.clocks_per_call,
    )
    fleet_config = None
    if args.fleet > 0:
        from repro.fleet import FleetConfig

        fleet_config = FleetConfig(
            workers=args.fleet,
            max_workers=max(args.fleet * 2, args.fleet + 2),
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            chunk_bytes=args.fleet_chunk_bytes or args.chunk_bytes,
            screen=not args.no_screen,
            alpha=args.alpha,
        )
    qa_sidecar = None
    if args.qa:
        from repro.qa import QASidecar, StreamingEvaluator, default_registry

        registry = default_registry()
        if args.qa_plugins:
            qa_plugins = [
                registry.get(n.strip()) for n in args.qa_plugins.split(",") if n.strip()
            ]
        else:
            qa_plugins = registry.select(streaming=True)
        qa_sidecar = QASidecar(
            StreamingEvaluator(
                qa_plugins,
                window_bytes=args.qa_window_bytes,
                fail_alpha=args.qa_alpha,
                sample=args.qa_sample,
            )
        )
    engine = ServeEngine(
        stream,
        workers=args.workers,
        supervision=SupervisorConfig(timeout=args.timeout, max_retries=args.retries),
        screen=not args.no_screen,
        alpha=args.alpha,
        fleet=fleet_config,
        qa=qa_sidecar,
    )
    daemon = ServeDaemon(
        engine,
        DaemonConfig(
            host=args.host,
            port=args.port,
            chunk_bytes=args.chunk_bytes,
            queue_depth=args.queue_depth,
            drain_grace=args.drain_grace,
            journal_path=args.journal,
        ),
    )

    def on_started() -> None:
        # parseable readiness line: supervisors and the smoke test key on it
        print(
            f"repro-serve listening on {daemon.config.host}:{daemon.bound_port}",
            flush=True,
        )

    with _telemetry(args):
        asyncio.run(daemon.run(install_signal_handlers=True, on_started=on_started))
    return 0


def _cmd_top(args) -> int:
    from repro.obs.dashboard import run_top

    return run_top(
        host=args.host,
        port=args.port,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )


def _cmd_fleet(args) -> int:
    import time as _time

    from repro.fleet import FleetConfig, FleetController
    from repro.obs import span
    from repro.serve.engine import StreamConfig

    stream = StreamConfig(
        algorithm=args.algorithm,
        seed=args.seed,
        lanes=args.lanes,
        dtype=args.dtype,
        fused=args.fused,
        clocks_per_call=args.clocks_per_call,
    )
    config = FleetConfig(
        workers=args.workers,
        max_workers=max(args.workers * 2, args.workers + 2),
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        chunk_bytes=args.chunk_bytes,
        screen=not args.no_screen,
    )
    print(
        f"fleet: {args.workers} workers x {args.algorithm} "
        f"(seed={args.seed}, lanes={args.lanes}), "
        f"{args.n_bytes:,} bytes in {args.chunk_bytes:,}-byte leases"
    )
    with _telemetry(args), span("fleet", algo=args.algorithm, n=args.n_bytes):
        controller = FleetController(stream, config)
        controller.start(supervise=True)
        try:
            t0 = _time.perf_counter()
            data = controller.read_range(0, args.n_bytes)
            wall = _time.perf_counter() - t0
            status = controller.status()
        finally:
            controller.close()
    gbps = args.n_bytes * 8 / wall / 1e9 if wall > 0 else float("inf")
    print(f"generated {len(data):,} bytes in {wall:.3f}s ({gbps:.3f} Gbit/s)")
    counters = status["counters"]
    print(
        "membership: "
        + ", ".join(f"{w['worker_id']}:{w['state']}" for w in status["workers"])
    )
    print(
        f"evictions: {counters['evictions']}, "
        f"reassignments: {counters['reassignments']}, "
        f"stale results: {counters['stale_results']}, "
        f"scale up/down: {counters['scale_ups']}/{counters['scale_downs']}, "
        f"degraded chunks: {counters['degraded_chunks']}"
    )
    for event in status["events"]:
        if event["kind"] in ("evict", "scale_up", "scale_down", "degrade"):
            print(f"  [{event['at']:.3f}] {event['kind']} worker {event['worker_id']}: {event['detail']}")
    if args.output:
        with open(args.output, "wb") as fh:
            fh.write(data)
        print(f"wrote {args.output}")
    if not args.no_verify:
        reference = stream.make_rng().random_bytes(args.n_bytes)
        if data != reference:
            print("FAIL: fleet merge differs from the single-device stream")
            return 1
        print("verified: bit-identical to the single-device stream")
    return 0


def _cmd_model(args) -> int:
    from repro.gpu.model import ThroughputModel
    from repro.gpu.specs import TABLE2_GPUS

    model = ThroughputModel()
    if args.figure10:
        series = model.figure10_series()
        print(f"{'kernel':<12}" + "".join(f"{g:>14}" for g in TABLE2_GPUS))
        for k, row in series.items():
            print(f"{k:<12}" + "".join(f"{row[g]:>14.0f}" for g in TABLE2_GPUS))
        print("(modeled Gbit/s)")
    else:
        gbps = model.predict_gbps(args.kernel, args.gpu)
        print(f"{args.kernel} on {args.gpu}: {gbps:.0f} Gbit/s (modeled)")
    return 0


def _cmd_cuda(args) -> int:
    if args.kernel == "mickey2":
        from repro.ciphers.mickey_circuit import mickey_cuda_source

        src = mickey_cuda_source()
    else:
        from repro.ciphers.aes_bitsliced import sbox_circuit
        from repro.codegen import emit_cuda

        src = emit_cuda(sbox_circuit(), func_name="aes_sbox")
    if args.output == "-":
        sys.stdout.write(src)
    else:
        with open(args.output, "w") as fh:
            fh.write(src)
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "gen": _cmd_gen,
    "nist": _cmd_nist,
    "fips": _cmd_fips,
    "qa": _cmd_qa,
    "selftest": _cmd_selftest,
    "throughput": _cmd_throughput,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "fleet": _cmd_fleet,
    "model": _cmd_model,
    "cuda": _cmd_cuda,
}


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
