"""Fleet integration: real worker processes over LocalProcessTransport.

Sized for a small CI box — few workers, small chunks, generous heartbeat
deadlines (the container may have a single core, so freshly launched
workers can be CPU-starved by a busy sibling; a tight deadline would
evict healthy members and make these tests flaky)."""

from repro.fleet import FleetConfig, FleetController
from repro.robust.faults import Fault, FaultPlan
from repro.robust.supervisor import SupervisorConfig
from repro.serve.engine import ServeEngine, StreamConfig

STREAM = StreamConfig(algorithm="trivium", seed=9, lanes=64)


def reference(n: int, offset: int = 0) -> bytes:
    rng = STREAM.make_rng()
    rng.skip_bytes(offset)
    return rng.random_bytes(n)


def make_config(**overrides) -> FleetConfig:
    defaults = dict(
        workers=2,
        max_workers=4,
        heartbeat_interval=0.2,
        heartbeat_timeout=4.0,
        chunk_bytes=4096,
        scale_up_backlog=100,  # keep membership stable unless a test wants growth
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestCleanFleet:
    def test_bit_identical_merge(self):
        with FleetController(STREAM, make_config()) as ctrl:
            data = ctrl.read_range(0, 65536, timeout=120)
            status = ctrl.status()
        assert data == reference(65536)
        assert status["counters"]["jobs_completed"] == 16
        assert status["counters"]["stale_results"] == 0

    def test_nonzero_offset_and_repeat_reads(self):
        with FleetController(STREAM, make_config()) as ctrl:
            first = ctrl.read_range(8192, 4096, timeout=120)
            second = ctrl.read_range(0, 8192, timeout=120)
        assert first == reference(4096, offset=8192)
        assert second == reference(8192)


class TestChaosDrills:
    def test_crash_and_silence_evicted_bit_identical(self):
        plan = FaultPlan(
            faults=(
                Fault("crash", partition=0, attempt=1),  # dies on its 2nd job
                Fault("hb_silence", partition=1, attempt=0),  # registers, never beats
            ),
            seed=5,
        )
        config = make_config(workers=3, heartbeat_timeout=2.0)
        with FleetController(STREAM, config, fault_plan=plan) as ctrl:
            data = ctrl.read_range(0, 262144, timeout=180)
            status = ctrl.status()
        assert data == reference(262144)
        reasons = {w["evicted_reason"] for w in status["workers"] if w["state"] == "evicted"}
        assert "crash" in reasons
        assert status["counters"]["evictions"] >= 1
        # replacements kept the fleet at target
        live = [w for w in status["workers"] if w["state"] in ("live", "launching")]
        assert len(live) >= 1

    def test_slow_bleed_strikes_out_bit_identical(self):
        plan = FaultPlan(
            faults=(Fault("slow_bleed", partition=0, attempt=0, corrupt_bytes=2),),
            seed=6,
        )
        config = make_config(max_strikes=2)
        with FleetController(STREAM, config, fault_plan=plan) as ctrl:
            data = ctrl.read_range(0, 131072, timeout=180)
            status = ctrl.status()
        assert data == reference(131072)
        evicted = [w for w in status["workers"] if w["state"] == "evicted"]
        assert any(w["evicted_reason"] == "corrupt" for w in evicted)

    def test_every_initial_worker_lost_still_serves(self):
        plan = FaultPlan(
            faults=tuple(Fault("crash", partition=p, attempt=0) for p in range(2)),
            seed=7,
        )
        with FleetController(STREAM, make_config(), fault_plan=plan) as ctrl:
            data = ctrl.read_range(0, 32768, timeout=180)
            status = ctrl.status()
        assert data == reference(32768)
        assert status["counters"]["evictions"] >= 2


class TestServeEngineFleet:
    def test_engine_routes_through_fleet(self):
        engine = ServeEngine(
            STREAM,
            supervision=SupervisorConfig(timeout=60.0, max_retries=1),
            fleet=make_config(),
        )
        engine.start()
        try:
            data = engine.generate_range(0, 16384)
            status = engine.status()
        finally:
            engine.close()
        assert data == reference(16384)
        assert status["workers"] is None
        assert status["fleet"] is not None
        assert status["fleet"]["counters"]["jobs_completed"] >= 1
        assert engine.stats.chunks_ok == 1

    def test_engine_survives_worker_loss(self, monkeypatch):
        # the engine builds its own controller; faults reach the workers
        # the deployment way, through REPRO_FAULT_PLAN
        plan = FaultPlan(faults=(Fault("crash", partition=0, attempt=0),), seed=8)
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        engine = ServeEngine(
            STREAM,
            supervision=SupervisorConfig(timeout=60.0, max_retries=1),
            fleet=make_config(),
        )
        engine.start()
        try:
            data = engine.generate_range(0, 16384)
        finally:
            engine.close()
        assert data == reference(16384)
        assert engine.stats.chunks_ok == 1


class TestSilenceEviction:
    def test_silent_worker_evicted_during_long_run(self):
        """Give the run enough wall time for the silence deadline to fire.

        Generation speed can't be relied on for that (the fused kernels
        got fast enough to finish the whole range inside the deadline),
        so the *silent* worker is paced with per-job delays summing past
        its own liveness deadline: its in-flight jobs keep the run open
        until the deadline fires, then get reassigned to the healthy
        peer — making the eviction window deterministic.
        """
        pacing = tuple(
            Fault("delay", partition=0, attempt=k, delay=0.7) for k in range(4)
        )
        plan = FaultPlan(
            faults=(Fault("hb_silence", partition=0, attempt=0),) + pacing, seed=9
        )
        config = make_config(workers=2, heartbeat_interval=0.1, heartbeat_timeout=1.0)
        with FleetController(STREAM, config, fault_plan=plan) as ctrl:
            data = ctrl.read_range(0, 393216, timeout=240)
            status = ctrl.status()
        assert data == reference(393216)
        assert any(
            w["evicted_reason"] == "heartbeat"
            for w in status["workers"]
            if w["state"] == "evicted"
        )


class TestFleetTracing:
    def test_worker_spans_merge_under_one_trace(self):
        """≥2 worker processes' spans stitch into the controller's trace."""
        import os

        from repro import obs

        tracer = obs.enable_tracing()
        try:
            with FleetController(STREAM, make_config(workers=2)) as ctrl:
                # enough chunks that both members serve at least one
                data = ctrl.read_range(0, 65536, timeout=120)
            records = tracer.records
        finally:
            obs.disable_tracing()
        assert data == reference(65536)
        root = next(r for r in records if r.name == "fleet.read_range")
        chunks = [r for r in records if r.name == "fleet.worker_chunk"]
        worker_pids = {r.pid for r in chunks}
        assert len(worker_pids) >= 2, "expected spans from at least two workers"
        assert os.getpid() not in worker_pids
        # single trace end to end, every parent link resolvable
        in_trace = [r for r in records if r.trace_id == root.trace_id]
        assert root in in_trace and all(c in in_trace for c in chunks)
        span_ids = {r.span_id for r in in_trace}
        assert len(span_ids) == len(in_trace)  # unique across processes
        for rec in in_trace:
            assert rec.parent_id is None or rec.parent_id in span_ids
        for chunk in chunks:
            assert chunk.parent_id == root.span_id
        # the controller labelled each merged span with its worker id
        assert {c.args.get("worker") for c in chunks} >= {0, 1}
