"""Lease-manager invariants: the granted ranges partition the stream.

The property the whole service rests on: whatever interleaving of
acquire / release / crash-and-resume happens, the set of granted leases
is pairwise disjoint and tiles ``[0, high_water)`` gap-free — and no
byte range is ever granted twice, even across journal resumes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecificationError
from repro.serve.leases import Lease, LeaseManager


def assert_partition(leases: list[Lease], high_water: int) -> None:
    """Pairwise disjoint, gap-free union from 0 up to *high_water*."""
    spans = sorted((lease.offset, lease.end) for lease in leases)
    cursor = 0
    for start, end in spans:
        assert start == cursor, f"gap or overlap at offset {start} (expected {cursor})"
        cursor = end
    assert cursor == high_water


class TestLeaseBasics:
    def test_acquire_is_sequential(self):
        mgr = LeaseManager()
        a = mgr.acquire(100, client="a")
        b = mgr.acquire(50, client="b")
        assert (a.offset, a.length) == (0, 100)
        assert (b.offset, b.length) == (100, 50)
        assert mgr.high_water == 150

    def test_release_never_recycles(self):
        mgr = LeaseManager()
        a = mgr.acquire(64)
        assert mgr.release(a.lease_id)
        # the released range stays burned: the next grant starts after it
        b = mgr.acquire(64)
        assert b.offset == 64
        assert not mgr.release(a.lease_id), "double release must be a no-op"

    def test_rejects_bad_lengths(self):
        mgr = LeaseManager(max_lease_bytes=1024)
        with pytest.raises(SpecificationError):
            mgr.acquire(0)
        with pytest.raises(SpecificationError):
            mgr.acquire(-5)
        with pytest.raises(SpecificationError):
            mgr.acquire(2048)

    def test_stats_shape(self):
        mgr = LeaseManager()
        mgr.acquire(10)
        keep = mgr.acquire(20)
        mgr.release(keep.lease_id)
        stats = mgr.stats()
        assert stats["high_water_bytes"] == 30
        assert stats["active"] == 1
        assert stats["released"] == 1


class TestJournalResume:
    def test_resume_continues_allocation(self, tmp_path):
        path = str(tmp_path / "leases.jsonl")
        mgr = LeaseManager(journal_path=path)
        first = mgr.acquire(100, client="one")
        mgr.release(first.lease_id)
        unfinished = mgr.acquire(40, client="two")
        mgr.close()

        reborn = LeaseManager(journal_path=path)
        assert reborn.high_water == 140
        orphans = reborn.orphaned_leases()
        assert [o.lease_id for o in orphans] == [unfinished.lease_id]
        nxt = reborn.acquire(10, client="three")
        assert nxt.offset == 140, "resumed allocation must not replay burned bytes"
        assert nxt.lease_id > unfinished.lease_id
        reborn.close()

    def test_gap_in_journal_is_rejected(self, tmp_path):
        path = tmp_path / "leases.jsonl"
        records = [
            {"op": "acquire", "lease_id": 0, "offset": 0, "length": 10, "client": ""},
            {"op": "acquire", "lease_id": 1, "offset": 99, "length": 10, "client": ""},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        with pytest.raises(SpecificationError, match="journal gap"):
            LeaseManager(journal_path=str(path))

    def test_corrupt_journal_line_is_rejected(self, tmp_path):
        path = tmp_path / "leases.jsonl"
        path.write_text('{"op": "acquire", "lease_id": 0\n')
        with pytest.raises(SpecificationError, match="corrupt journal"):
            LeaseManager(journal_path=str(path))


# One operation script: acquire some length, release a previously seen
# lease (index into the grant history), or restart from the journal.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), st.integers(min_value=1, max_value=4096)),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("restart"), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


class TestPartitionProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_grant_history_is_always_a_partition(self, ops, tmp_path_factory):
        """Acquire/release/restart in any order → granted ranges tile [0, hw)."""
        path = str(tmp_path_factory.mktemp("leases") / "journal.jsonl")
        mgr = LeaseManager(journal_path=path)
        granted: list[Lease] = []
        offsets_seen: set[int] = set()
        try:
            for op, arg in ops:
                if op == "acquire":
                    lease = mgr.acquire(arg)
                    assert lease.offset not in offsets_seen, "offset reissued"
                    offsets_seen.add(lease.offset)
                    granted.append(lease)
                elif op == "release" and granted:
                    mgr.release(granted[arg % len(granted)].lease_id)
                elif op == "restart":
                    mgr.close()
                    mgr = LeaseManager(journal_path=path)
                    resumed = {o.lease_id for o in mgr.orphaned_leases()}
                    # orphans are exactly the grants never released
                    assert resumed <= {lease.lease_id for lease in granted}
                assert_partition(granted, mgr.high_water)
        finally:
            mgr.close()
