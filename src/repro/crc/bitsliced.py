"""Bitsliced CRC (the paper's Fig. 6).

The CRC register becomes ``width`` planes; one clock consumes one message
bit from *every* stream: the shift is plane renaming on the rotating
file, and the conditional polynomial XOR becomes an AND-mask XOR on the
tap planes — "fully paralleled CRC calculation for 32 different data
streams simultaneously without any computational overhead".
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.core.bitslice import bitslice, unbitslice
from repro.core.engine import BitslicedEngine
from repro.crc.serial import CRC8_ATM, CRCSpec
from repro.errors import SpecificationError

__all__ = ["BitslicedCRC"]


class BitslicedCRC:
    """CRC over ``engine.n_lanes`` independent bit streams.

    State plane ``i`` holds register bit ``i`` (LSB = 0) of every lane.
    """

    def __init__(self, spec: CRCSpec = CRC8_ATM, engine: BitslicedEngine | None = None) -> None:
        self.spec = spec
        self.engine = engine if engine is not None else BitslicedEngine()
        self._tap_idx = np.array([i for i in range(spec.width) if (spec.poly >> i) & 1])
        self.state = np.zeros((spec.width, self.engine.n_words), dtype=self.engine.dtype)
        self.reset()

    def reset(self) -> None:
        """Restore the init value in every lane's register planes."""
        init_bits = [(self.spec.init >> i) & 1 for i in range(self.spec.width)]
        full = np.iinfo(self.engine.dtype).max
        for i, b in enumerate(init_bits):
            self.state[i] = full if b else 0

    def feed_planes(self, bit_planes: np.ndarray) -> None:
        """Clock in message bits, one plane per clock (msb-first order).

        ``bit_planes`` is ``(n_clocks, n_words)``: row t carries message
        bit t of every lane.
        """
        planes = np.asarray(bit_planes, dtype=self.engine.dtype)
        if planes.ndim != 2 or planes.shape[1] != self.engine.n_words:
            raise SpecificationError(
                f"expected (n_clocks, {self.engine.n_words}) planes, got {planes.shape}"
            )
        w = self.spec.width
        st = self.state
        counter = self.engine.counter
        for t in range(planes.shape[0]):
            fb = st[w - 1] ^ planes[t]  # top bit ⊕ input, per lane
            # shift: plane i <- plane i-1 (renaming realised as a row move
            # on the contiguous buffer; see RotatingRegisterFile for the
            # pure-renaming variant used by the LFSR ablation)
            st[1:] = st[:-1]
            st[0] = 0
            st[self._tap_idx] ^= fb
            counter.add("xor", 1 + self._tap_idx.size)

    def feed_bits(self, messages) -> None:
        """Clock in an ``(n_lanes, n_bits)`` message matrix."""
        arr = as_bit_array(messages)
        if arr.shape[0] != self.engine.n_lanes:
            raise SpecificationError(
                f"expected {self.engine.n_lanes} message rows, got {arr.shape[0]}"
            )
        self.feed_planes(bitslice(arr, dtype=self.engine.dtype))

    def checksums(self) -> np.ndarray:
        """Per-lane CRC values as integers (``(n_lanes,)`` uint64)."""
        bits = unbitslice(self.state, self.engine.n_lanes)  # (n_lanes, width)
        weights = (np.uint64(1) << np.arange(self.spec.width, dtype=np.uint64))
        return (bits.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)

    def checksum_messages(self, messages) -> np.ndarray:
        """Reset, feed all messages, return per-lane checksums."""
        self.reset()
        self.feed_bits(messages)
        return self.checksums()
