"""GPU platform catalogue (the paper's Table 2, plus Table 1's legacy GPUs)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["GPUSpec", "TABLE2_GPUS", "LEGACY_GPUS", "GPU_CATALOGUE", "get_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Structural characteristics of one GPU platform.

    The three headline numbers are exactly the columns of the paper's
    Table 2; SM resources (used by the occupancy calculator) follow the
    public architecture whitepapers.
    """

    name: str
    year: int
    sp_gflops: float
    dp_gflops: float
    mem_bw_gbs: float
    sm_count: int = 0
    regs_per_sm: int = 65536
    max_threads_per_sm: int = 2048
    shared_kb_per_sm: int = 48
    #: launch MSRP in USD (0 = unknown) — backs the paper's
    #: "performance per cost" framing and the "affordable ... GTX 2080
    #: Ti" claim in the abstract.
    launch_price_usd: float = 0.0
    #: board power in watts (0 = unknown).
    tdp_w: float = 0.0

    @property
    def logic_ops_per_s(self) -> float:
        """Peak 32-bit integer-logic issue rate (ops/s).

        FP32 "GFLOPS" ratings count FMA as two flops; the integer/logic
        pipes issue one op per lane per cycle, i.e. half the FMA rating.
        """
        return self.sp_gflops * 1e9 / 2.0


#: The paper's Table 2 evaluation platforms.
TABLE2_GPUS: dict[str, GPUSpec] = {
    g.name: g
    for g in (
        GPUSpec("GTX 480", 2010, 1344.0, 168.0, 177.0, sm_count=15, regs_per_sm=32768, max_threads_per_sm=1536, launch_price_usd=499.0, tdp_w=250.0),
        GPUSpec("GTX 980 Ti", 2015, 5632.0, 176.0, 337.0, sm_count=22, launch_price_usd=649.0, tdp_w=250.0),
        GPUSpec("GTX 1050 Ti", 2016, 1981.0, 62.0, 112.0, sm_count=6, launch_price_usd=139.0, tdp_w=75.0),
        GPUSpec("GTX 1080 Ti", 2017, 10609.0, 332.0, 484.0, sm_count=28, launch_price_usd=699.0, tdp_w=250.0),
        GPUSpec("Tesla V100", 2017, 14028.0, 7014.0, 900.0, sm_count=80, launch_price_usd=8999.0, tdp_w=300.0),
        GPUSpec("GTX 2080 Ti", 2018, 11750.0, 367.0, 616.0, sm_count=68, shared_kb_per_sm=64, launch_price_usd=999.0, tdp_w=250.0),
    )
}

#: GPUs appearing only in Table 1 (prior work).
LEGACY_GPUS: dict[str, GPUSpec] = {
    g.name: g
    for g in (
        GPUSpec("8800 GTX", 2006, 345.6, 0.0, 86.4, sm_count=16, regs_per_sm=8192, max_threads_per_sm=768),
        GPUSpec("7800 GTX", 2005, 20.6, 0.0, 54.4, sm_count=0, regs_per_sm=0, max_threads_per_sm=0),
        GPUSpec("T10P", 2008, 622.1, 77.8, 102.0, sm_count=30, regs_per_sm=16384, max_threads_per_sm=1024),
        GPUSpec("S1070", 2008, 2488.3, 311.0, 408.0, sm_count=120, regs_per_sm=16384, max_threads_per_sm=1024),
    )
}

GPU_CATALOGUE: dict[str, GPUSpec] = {**LEGACY_GPUS, **TABLE2_GPUS}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by name (raises :class:`~repro.errors.ModelError`)."""
    try:
        return GPU_CATALOGUE[name]
    except KeyError:
        raise ModelError(f"unknown GPU {name!r}; known: {sorted(GPU_CATALOGUE)}") from None
