"""BSRNG — a high-throughput parallel bitsliced approach for random number generators.

Reproduction of Khalaj Monfared et al., ICPP Workshops 2020
(DOI 10.1145/3409390.3409402).

The package is organised as:

``repro.core``
    The paper's primary contribution: column-major (bitsliced) data
    representation, the virtual SIMD engine, bitsliced LFSRs and the
    high-level :class:`~repro.core.generator.BSRNG` generator API.
``repro.ciphers``
    Reference and bitsliced implementations of MICKEY 2.0, Grain v1 and
    AES-128-CTR.
``repro.baselines``
    The comparison PRNGs (cuRAND's MT19937 / XORWOW / Philox, plus the
    generators of the paper's Table 1 lineage).
``repro.nist``
    A from-scratch NIST SP 800-22 statistical test suite.
``repro.gpu``
    GPU platform catalogue, roofline throughput model and multi-device
    dispatch — the substitution for the paper's CUDA testbed.
``repro.crc``, ``repro.codegen``, ``repro.analysis``, ``repro.gf2``,
``repro.bitio``
    Supporting substrates (bitsliced CRC application, bit-level circuit
    code generation, randomness analysis, GF(2) algebra, bit packing).
"""

import logging as _logging

from repro.core.bitslice import bitslice, bitslice_bytes, unbitslice, unbitslice_bytes
from repro.core.generator import BSRNG, available_algorithms

# Library logging convention: a NullHandler on the package root, so
# `repro.robust.*` WARNING records (supervisor retries, health-test
# failures) are silent until an application configures logging.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "BSRNG",
    "available_algorithms",
    "bitslice",
    "unbitslice",
    "bitslice_bytes",
    "unbitslice_bytes",
    "__version__",
]
