"""Trivium reference implementation (bit-serial, row-major).

Written from the eSTREAM specification (De Cannière & Preneel,
"Trivium — a stream cipher construction inspired by block cipher design
principles"): a 288-bit state split into three shift registers of 93, 84
and 111 bits, three AND gates and eleven XORs per clock — the lightest
cipher in the eSTREAM profile-2 (hardware) portfolio and therefore a
natural extension of the paper's cipher family (the paper evaluates its
profile-2 siblings MICKEY 2.0 and Grain).

Key and IV are 80 bits each; initialisation clocks the state 4 x 288 =
1152 times without emitting output.  This class is the oracle for
:class:`repro.ciphers.trivium_bitsliced.BitslicedTrivium`.
"""

from __future__ import annotations

import numpy as np

from repro.ciphers.mickey import _coerce_bits

__all__ = ["Trivium"]

KEY_BITS = 80
IV_BITS = 80
STATE_BITS = 288
INIT_CLOCKS = 4 * STATE_BITS

# 0-based positions within the 288-bit state s[0..287]
# (the spec's s_1..s_288 shifted down by one):
#   register A = s[0..92], B = s[93..176], C = s[177..287].
_T1_TAPS = (65, 92)  # s66, s93
_T2_TAPS = (161, 176)  # s162, s177
_T3_TAPS = (242, 287)  # s243, s288
_T1_AND = (90, 91)  # s91 * s92
_T2_AND = (174, 175)  # s175 * s176
_T3_AND = (285, 286)  # s286 * s287
_T1_FWD = 170  # s171
_T2_FWD = 263  # s264
_T3_FWD = 68  # s69
_B_HEAD = 93
_C_HEAD = 177


class Trivium:
    """One Trivium keystream generator instance.

    Parameters
    ----------
    key / iv:
        80 bits each (hex string, bytes or bit array); element 0 loads
        the spec's ``K_1`` / ``IV_1`` position.
    """

    def __init__(self, key, iv) -> None:
        self.s = np.zeros(STATE_BITS, dtype=np.uint8)
        self.reseed(key, iv)

    def reseed(self, key, iv) -> None:
        """Load key/IV and run the 1152 initialisation clocks."""
        key_bits = _coerce_bits(key, KEY_BITS, "key")
        iv_bits = _coerce_bits(iv, IV_BITS, "iv")
        self.s[:] = 0
        self.s[:KEY_BITS] = key_bits
        self.s[_B_HEAD : _B_HEAD + IV_BITS] = iv_bits
        self.s[285:288] = 1
        for _ in range(INIT_CLOCKS):
            self._clock()

    def _clock(self) -> int:
        s = self.s
        t1 = int(s[_T1_TAPS[0]] ^ s[_T1_TAPS[1]])
        t2 = int(s[_T2_TAPS[0]] ^ s[_T2_TAPS[1]])
        t3 = int(s[_T3_TAPS[0]] ^ s[_T3_TAPS[1]])
        z = t1 ^ t2 ^ t3
        t1 ^= int(s[_T1_AND[0]] & s[_T1_AND[1]]) ^ int(s[_T1_FWD])
        t2 ^= int(s[_T2_AND[0]] & s[_T2_AND[1]]) ^ int(s[_T2_FWD])
        t3 ^= int(s[_T3_AND[0]] & s[_T3_AND[1]]) ^ int(s[_T3_FWD])
        # each register shifts toward higher indices; new bit at its head
        s[1:_B_HEAD] = s[: _B_HEAD - 1]
        s[_B_HEAD + 1 : _C_HEAD] = s[_B_HEAD : _C_HEAD - 1]
        s[_C_HEAD + 1 :] = s[_C_HEAD:-1]
        s[0] = t3
        s[_B_HEAD] = t1
        s[_C_HEAD] = t2
        return z

    def next_bit(self) -> int:
        """Emit one keystream bit and clock the registers."""
        return self._clock()

    def keystream(self, n_bits: int) -> np.ndarray:
        """The next *n_bits* keystream bits as a uint8 array."""
        out = np.empty(n_bits, dtype=np.uint8)
        for i in range(n_bits):
            out[i] = self._clock()
        return out

    def keystream_bytes(self, n_bytes: int) -> bytes:
        """The next *n_bytes* keystream bytes (msb-first packing)."""
        bits = self.keystream(8 * n_bytes)
        return np.packbits(bits, bitorder="big").tobytes()

    def state(self) -> np.ndarray:
        """A copy of the 288-bit state array."""
        return self.s.copy()
