"""Kernel cost profiles, measured from the live implementations.

The roofline model charges each kernel a gate count per output bit; to
keep the model honest those counts come from the *instrumented circuits
that actually run* — ``gates_per_output_bit()`` on the cipher banks, and
``ops_per_output_bit()`` on the baseline banks — not from hand estimates.
Register-pressure figures are derived from the state-plane counts plus
the live temporaries of each kernel's inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["KernelProfile", "kernel_profiles"]


@dataclass(frozen=True)
class KernelProfile:
    """Cost model inputs for one generator kernel.

    Attributes
    ----------
    gates_per_bit:
        Logic instructions per emitted bit *per lane* (bitsliced) or per
        stream (row-major).
    datapath_lanes:
        How many independent output bits one instruction advances: 32 for
        bitsliced kernels on a 32-bit GPU datapath, 1 for row-major.
    registers_per_thread:
        32-bit registers a thread needs (state planes + live temps);
        drives the occupancy penalty.
    bitsliced:
        Whether the kernel uses the column-major layout.
    """

    name: str
    gates_per_bit: float
    datapath_lanes: int
    registers_per_thread: int
    bitsliced: bool

    @property
    def bits_per_instruction(self) -> float:
        """Output bits one instruction advances (datapath / gates-per-bit)."""
        return self.datapath_lanes / self.gates_per_bit


@lru_cache(maxsize=1)
def kernel_profiles() -> dict[str, KernelProfile]:
    """Measure gate counts from tiny live instances of every kernel."""
    from repro.baselines.mt19937 import MT19937Bank
    from repro.baselines.philox import PhiloxBank
    from repro.baselines.xorwow import XorwowBank
    from repro.ciphers.aes_bitsliced import BitslicedAESCTR
    from repro.ciphers.grain_bitsliced import BitslicedGrain
    from repro.ciphers.mickey_bitsliced import BitslicedMickey2
    from repro.ciphers.trivium_bitsliced import BitslicedTrivium
    from repro.core.engine import BitslicedEngine

    from repro.ciphers.mickey_circuit import mickey_clock_circuit

    grain = BitslicedGrain(BitslicedEngine(n_lanes=8, dtype=np.uint8))
    trivium = BitslicedTrivium(BitslicedEngine(n_lanes=8, dtype=np.uint8))
    aes = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8))

    # MICKEY's cost comes from the *generated* one-clock circuit — the
    # same netlist the emitted CUDA kernel would execute — after constant
    # folding and CSE (≈ 600 gates/clock vs ≈ 1150 in the unfolded
    # hand-vectorized tally).
    mickey_gates = float(mickey_clock_circuit(mixing=False).gate_counts()["total"])

    profiles = {
        # MICKEY: 200 state planes live in registers (the paper: "200
        # registers, each containing 32 bits") + ~10 temporaries.  The CUDA
        # implementation splits the bank across threads so the per-thread
        # register count stays at the architectural 255 cap's working set.
        "mickey2": KernelProfile("mickey2", mickey_gates, 32, 210, True),
        "grain": KernelProfile("grain", grain.gates_per_output_bit(), 32, 168, True),
        # Trivium (extension beyond the paper): 288 state planes but only
        # 14 gates/clock; register pressure like MICKEY's bank split.
        "trivium": KernelProfile("trivium", trivium.gates_per_output_bit(), 32, 255, True),
        "aes128ctr": KernelProfile("aes128ctr", aes.gates_per_output_bit(), 32, 160, True),
        "curand-mt": KernelProfile(
            "curand-mt",
            MT19937Bank(seed=0, n_streams=4).ops_per_output_bit(),
            1,
            48,
            False,
        ),
        "curand-xorwow": KernelProfile(
            "curand-xorwow",
            XorwowBank(seed=0, n_streams=4).ops_per_output_bit(),
            1,
            16,
            False,
        ),
        "curand-philox": KernelProfile(
            "curand-philox",
            PhiloxBank(seed=0, n_streams=4).ops_per_output_bit(),
            1,
            24,
            False,
        ),
    }
    return profiles
