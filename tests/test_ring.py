"""Zero-copy output ring: unit behaviour, leak safety, zero-pickle paths.

Covers :mod:`repro.core.ring` directly (slot bounds, ref validation,
resolve accounting, owner/attacher lifecycle), the segment-leak
guarantees (unlink on close; resource-tracker reclamation when the owner
dies by SIGTERM without cleanup), and the two parallel result paths that
ride on it: :class:`~repro.gpu.multigpu.MultiDeviceGenerator` partitions
and fleet chunk leases must move **zero pickled payload bytes** for
ring-eligible chunks while staying bit-identical to the sequential
reference — including through a corruption fault drill, where a damaged
slot payload must fail the CRC receipt and be retried.
"""

import os
import subprocess
import sys
import time
from multiprocessing import shared_memory

import pytest

from repro import obs
from repro.core.ring import RingSlotRef, SharedMemoryRing, attach_ring
from repro.errors import SpecificationError
from repro.fleet.controller import FleetConfig, FleetController
from repro.gpu.multigpu import MultiDeviceGenerator
from repro.robust.faults import Fault, FaultPlan
from repro.serve.engine import RangeSource, StreamConfig


def _counter_total(reg, name: str) -> int:
    return sum(
        entry["value"]
        for entry in reg.snapshot()["metrics"]
        if entry["type"] == "counter" and entry["name"] == name
    )


def _segment_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


# -- unit behaviour ------------------------------------------------------------------
class TestRingUnit:
    def test_roundtrip_all_slots(self):
        with SharedMemoryRing(64, 4) as ring:
            refs = [ring.write(slot, bytes([slot]) * (slot + 1)) for slot in range(4)]
            for slot, ref in enumerate(refs):
                assert ref == RingSlotRef(ring=ring.name, slot=slot, length=slot + 1)
                assert ring.read(ref) == bytes([slot]) * (slot + 1)

    def test_overwrite_shorter_payload(self):
        # a retried job overwrites its slot; the ref length bounds the read
        with SharedMemoryRing(16, 1) as ring:
            ring.write(0, b"x" * 16)
            ref = ring.write(0, b"ab")
            assert ring.read(ref) == b"ab"

    def test_rejects_bad_geometry(self):
        with pytest.raises(SpecificationError):
            SharedMemoryRing(0, 4)
        with pytest.raises(SpecificationError):
            SharedMemoryRing(64, 0)

    def test_write_bounds(self):
        with SharedMemoryRing(8, 2) as ring:
            with pytest.raises(SpecificationError):
                ring.write(2, b"x")
            with pytest.raises(SpecificationError):
                ring.write(-1, b"x")
            with pytest.raises(SpecificationError):
                ring.write(0, b"x" * 9)

    def test_read_rejects_foreign_and_bad_refs(self):
        with SharedMemoryRing(8, 2) as ring:
            with pytest.raises(SpecificationError):
                ring.read(RingSlotRef(ring="not-this-ring", slot=0, length=1))
            with pytest.raises(SpecificationError):
                ring.read(RingSlotRef(ring=ring.name, slot=5, length=1))
            with pytest.raises(SpecificationError):
                ring.read(RingSlotRef(ring=ring.name, slot=0, length=9))

    def test_attach_shares_and_validates(self):
        with SharedMemoryRing(32, 2) as ring:
            ref = ring.write(1, b"hello")
            attached = SharedMemoryRing(32, 2, name=ring.name)
            try:
                assert not attached.owner
                assert attached.read(ref) == b"hello"
            finally:
                attached.close()
            # an attacher demanding more capacity than the segment holds
            with pytest.raises(SpecificationError):
                SharedMemoryRing(32, 3, name=ring.name)

    def test_resolve_accounting(self):
        with SharedMemoryRing(16, 1) as ring:
            ref = ring.write(0, b"abcd")
            with obs.scoped() as reg:
                assert ring.resolve(ref) == b"abcd"
                assert ring.resolve(b"pickled!") == b"pickled!"
                assert ring.resolve(("not", "bytes")) == ("not", "bytes")
                assert _counter_total(reg, "repro_ring_payload_bytes_total") == 4
                assert _counter_total(reg, "repro_ring_slot_writes_total") == 1
                assert _counter_total(reg, "repro_result_pickled_payload_bytes_total") == 8

    def test_attach_ring_caches_per_process(self):
        with SharedMemoryRing(16, 2) as ring:
            a = attach_ring(ring.name, 16, 2)
            b = attach_ring(ring.name, 16, 2)
            try:
                assert a is b
            finally:
                a.close()
            # a closed cache entry is replaced, not handed back
            c = attach_ring(ring.name, 16, 2)
            try:
                assert c is not a
            finally:
                c.close()


# -- lifecycle and leak safety -------------------------------------------------------
class TestRingLifecycle:
    def test_owner_close_unlinks(self):
        ring = SharedMemoryRing(16, 1)
        name = ring.name
        assert _segment_exists(name)
        ring.close()
        assert not _segment_exists(name)
        ring.close()  # idempotent

    def test_attacher_close_does_not_unlink(self):
        with SharedMemoryRing(16, 1) as ring:
            attached = SharedMemoryRing(16, 1, name=ring.name)
            attached.close()
            assert _segment_exists(ring.name)

    def test_sigterm_of_owner_does_not_leak(self):
        """An owner killed without cleanup must not leak the segment.

        SIGTERM's default disposition skips every Python-level finaliser,
        so reclamation is the ``resource_tracker`` watchdog's job; poll
        until it notices the death and unlinks.
        """
        code = (
            "import sys, time; sys.path.insert(0, %r)\n"
            "from repro.core.ring import SharedMemoryRing\n"
            "ring = SharedMemoryRing(64, 2)\n"
            "print(ring.name, flush=True)\n"
            "time.sleep(60)\n"
        ) % os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", code], stdout=subprocess.PIPE, text=True
        )
        try:
            name = proc.stdout.readline().strip()
            assert name and _segment_exists(name)
            proc.terminate()
            proc.wait(timeout=10)
            deadline = time.monotonic() + 10.0
            while _segment_exists(name):
                assert time.monotonic() < deadline, f"segment {name} leaked past SIGTERM"
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.stdout.close()


# -- multi-device zero-pickle path ---------------------------------------------------
def _multidevice(ctx: str, **kw) -> MultiDeviceGenerator:
    return MultiDeviceGenerator(
        "trivium",
        seed=7,
        lanes=128,
        n_devices=2,
        block_bytes=4096,
        mp_context=ctx,
        **kw,
    )


class TestMultiDeviceRing:
    @pytest.mark.parametrize("ctx", ["fork", "spawn"])
    def test_zero_pickled_payload_bytes(self, ctx):
        gen = _multidevice(ctx, verify_crc=True)
        with obs.scoped() as reg:
            out = gen.generate(6)
            assert _counter_total(reg, "repro_ring_payload_bytes_total") == len(out)
            assert _counter_total(reg, "repro_result_pickled_payload_bytes_total") == 0
        assert out == gen.sequential_reference(6)
        assert not gen.last_report.degraded

    def test_ring_disabled_still_correct(self):
        gen = _multidevice("fork", use_ring=False)
        with obs.scoped() as reg:
            out = gen.generate(4)
            assert _counter_total(reg, "repro_ring_payload_bytes_total") == 0
        assert out == gen.sequential_reference(4)

    def test_corrupt_slot_payload_is_rejected_and_retried(self):
        """The fault drill: a payload damaged after its CRC was computed
        lands in the ring slot corrupted, must fail the receipt check on
        the controller side, and the retry must regenerate it exactly."""
        plan = FaultPlan((Fault("corrupt", 0, 0, corrupt_bytes=3),))
        gen = _multidevice("fork", verify_crc=True, fault_plan=plan)
        with obs.scoped() as reg:
            out = gen.generate(6)
            # both the corrupted attempt and the clean retry travelled
            # through the ring, never through the pickle machinery
            assert _counter_total(reg, "repro_ring_payload_bytes_total") > len(out)
            assert _counter_total(reg, "repro_result_pickled_payload_bytes_total") == 0
        assert out == gen.sequential_reference(6)
        report = gen.last_report
        assert 0 in report.retried_partitions
        assert any(e.kind == "corrupt" for e in report.events)


# -- fleet zero-pickle path ----------------------------------------------------------
class TestFleetRing:
    def _stream(self) -> StreamConfig:
        return StreamConfig(algorithm="trivium", seed=11, lanes=128)

    def test_zero_pickled_payload_bytes(self):
        stream = self._stream()
        n = 6 * 16384
        ref = RangeSource(stream).read_range(0, n)
        cfg = FleetConfig(
            workers=2, chunk_bytes=16384, mp_context="fork", heartbeat_timeout=30.0
        )
        with obs.scoped() as reg:
            with FleetController(stream, cfg) as fleet:
                name = fleet._ring.name
                out = fleet.read_range(0, n, timeout=120.0)
            assert _counter_total(reg, "repro_ring_payload_bytes_total") == n
            assert _counter_total(reg, "repro_result_pickled_payload_bytes_total") == 0
        assert out == ref
        assert not _segment_exists(name)  # close() unlinked the segment

    def test_corrupt_worker_payload_strikes_and_recovers(self):
        stream = self._stream()
        n = 4 * 16384
        ref = RangeSource(stream).read_range(0, n)
        plan = FaultPlan(
            (Fault("corrupt", 0, 0, corrupt_bytes=2), Fault("corrupt", 1, 0, corrupt_bytes=2))
        )
        cfg = FleetConfig(
            workers=2,
            chunk_bytes=16384,
            mp_context="fork",
            heartbeat_timeout=30.0,
            max_strikes=3,
            screen=False,  # isolate the CRC receipt path
        )
        with obs.scoped() as reg:
            with FleetController(stream, cfg, fault_plan=plan) as fleet:
                out = fleet.read_range(0, n, timeout=120.0)
            assert _counter_total(reg, "repro_fleet_receipt_failures_total") >= 1
            assert _counter_total(reg, "repro_result_pickled_payload_bytes_total") == 0
        assert out == ref

    def test_ring_disabled_still_correct(self):
        stream = self._stream()
        n = 2 * 16384
        ref = RangeSource(stream).read_range(0, n)
        cfg = FleetConfig(
            workers=1,
            chunk_bytes=16384,
            mp_context="fork",
            heartbeat_timeout=30.0,
            use_ring=False,
        )
        with obs.scoped() as reg:
            with FleetController(stream, cfg) as fleet:
                assert fleet._ring is None
                out = fleet.read_range(0, n, timeout=120.0)
            assert _counter_total(reg, "repro_ring_payload_bytes_total") == 0
            assert _counter_total(reg, "repro_result_pickled_payload_bytes_total") == n
        assert out == ref
