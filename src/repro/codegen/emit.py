"""Source emitters: circuit IR → vectorized NumPy or CUDA-C text.

The NumPy emitter produces a flat, loop-free function — the software twin
of the paper's unrolled CUDA kernels — that the bitsliced AES uses in its
hot loop.  The CUDA emitter produces a compilable ``__device__`` function
so the reproduction also demonstrates the paper's actual deployment
artifact (it is emitted, tested for well-formedness, but of course not
compiled here).
"""

from __future__ import annotations

from repro.codegen.circuit import Circuit

__all__ = [
    "emit_numpy",
    "emit_numpy_inplace",
    "compile_inplace",
    "emit_cuda",
    "emit_cuda_epilogue",
]


def _toposorted_gates(circuit: Circuit):
    for node in circuit._live_order:  # already in creation (topological) order
        if node.op not in ("in", "const"):
            yield node


def emit_numpy(circuit: Circuit, func_name: str = "kernel") -> str:
    """Emit a Python function ``func_name(**inputs) -> dict`` of plane ops."""
    lines = [
        f"def {func_name}({', '.join(circuit.input_names)}):",
        '    """Generated bitsliced kernel (repro.codegen.emit)."""',
    ]
    first = circuit.input_names[0] if circuit.input_names else None
    if first is not None:
        lines.append(f"    _ones = ~np.zeros_like({first})")
        lines.append(f"    _zeros = np.zeros_like({first})")
    else:
        lines.append("    _ones = ~np.zeros(1, dtype=np.uint64)")
        lines.append("    _zeros = np.zeros(1, dtype=np.uint64)")
    names: dict[int, str] = {}
    for node in circuit._live_order:
        if node.op == "in":
            names[node.id] = node.name
        elif node.op == "const":
            names[node.id] = "_ones" if node.args[0] else "_zeros"
    ops = {"xor": "^", "and": "&", "or": "|"}
    for node in _toposorted_gates(circuit):
        var = f"t{node.id}"
        if node.op == "not":
            lines.append(f"    {var} = ~{names[node.args[0]]}")
        else:
            a, b = names[node.args[0]], names[node.args[1]]
            lines.append(f"    {var} = {a} {ops[node.op]} {b}")
        names[node.id] = var
    pairs = ", ".join(f"{name!r}: {names[node.id]}" for name, node in circuit.outputs.items())
    lines.append(f"    return {{{pairs}}}")
    return "\n".join(lines) + "\n"


def emit_numpy_inplace(circuit: Circuit, func_name: str = "kernel") -> tuple[str, int]:
    """Emit an allocation-free kernel ``f(*inputs, out, regs, ones, zeros)``.

    Unlike :func:`emit_numpy`, every gate writes into a preallocated
    register from ``regs`` (a list of arrays shaped like the inputs) via
    the ufunc ``out=`` parameter, so the hot loop performs **zero**
    temporary allocations — the "no per-gate temporaries" discipline of
    the fused execution path.  Registers are assigned by linear scan over
    the topologically ordered gate list: a register frees as soon as its
    node's last consumer has executed, so the pool stays near the
    circuit's live-range width rather than its gate count.

    ``out`` is an indexable of output buffers, one per circuit output in
    declaration order; a gate that defines exactly one output and has no
    later consumers writes straight into its output buffer.  ``ones`` /
    ``zeros`` supply constant planes.  Returns ``(source, n_regs)`` where
    ``n_regs`` is the register-pool size the caller must preallocate.
    """
    gates = list(_toposorted_gates(circuit))
    out_nodes = list(circuit.outputs.values())
    out_ids = {n.id for n in out_nodes}
    # Last gate index that reads each node (outputs are pinned to the end).
    last_use: dict[int, int] = {}
    for gi, node in enumerate(gates):
        for a in node.args:
            last_use[a] = gi
    for n in out_nodes:
        last_use[n.id] = len(gates)

    # How many output slots each node feeds (a node may be several outputs).
    out_slots: dict[int, list[int]] = {}
    for slot, node in enumerate(out_nodes):
        out_slots.setdefault(node.id, []).append(slot)

    names: dict[int, str] = {}
    for node in circuit.nodes:
        if node.op == "in":
            names[node.id] = node.name
        elif node.op == "const":
            names[node.id] = "ones" if node.args[0] else "zeros"

    lines = [
        f"def {func_name}({', '.join(circuit.input_names)}, out, regs, ones, zeros):",
        '    """Generated in-place bitsliced kernel (repro.codegen.emit)."""',
    ]
    free: list[int] = []
    reg_of: dict[int, int] = {}
    n_regs = 0
    ops = {"xor": "np.bitwise_xor", "and": "np.bitwise_and", "or": "np.bitwise_or"}
    for gi, node in enumerate(gates):
        args = [names[a] for a in node.args]
        # Free operand registers whose last consumer is this gate; the
        # freed register may immediately be reused as this gate's target
        # (full-overlap in-place ufuncs are well-defined).
        for a in node.args:
            if a in reg_of and last_use.get(a) == gi:
                free.append(reg_of.pop(a))
        slots = out_slots.get(node.id, [])
        direct_out = len(slots) == 1 and last_use[node.id] == len(gates) and all(
            node.id not in g.args for g in gates[gi + 1 :]
        )
        if direct_out:
            target = f"out[{slots[0]}]"
        else:
            reg = free.pop() if free else n_regs
            n_regs = max(n_regs, reg + 1)
            reg_of[node.id] = reg
            target = f"regs[{reg}]"
        if node.op == "not":
            lines.append(f"    np.bitwise_not({args[0]}, out={target})")
        else:
            lines.append(f"    {ops[node.op]}({args[0]}, {args[1]}, out={target})")
        names[node.id] = target
    # Outputs not produced by a direct-write gate (shared nodes, inputs,
    # constants, multi-slot nodes) are copied at the end.
    for slot, node in enumerate(out_nodes):
        if names[node.id] != f"out[{slot}]":
            lines.append(f"    out[{slot}][...] = {names[node.id]}")
    return "\n".join(lines) + "\n", n_regs


def compile_inplace(circuit: Circuit, func_name: str = "kernel"):
    """Compile :func:`emit_numpy_inplace` output; returns ``(fn, n_regs)``."""
    import numpy as np

    src, n_regs = emit_numpy_inplace(circuit, func_name=func_name)
    ns: dict = {"np": np}
    exec(src, ns)  # noqa: S102 - our own generated source
    return ns[func_name], n_regs


def emit_cuda(circuit: Circuit, func_name: str = "kernel", word_type: str = "uint32_t") -> str:
    """Emit a CUDA-C ``__device__`` function over bitsliced words.

    Inputs arrive as ``const word_type*`` in declaration order, outputs
    are written through ``word_type*`` pointers — the calling convention
    of the paper's generated MICKEY kernel.
    """
    params = [f"const {word_type} {n}" for n in circuit.input_names]
    params += [f"{word_type} *out_{n}" for n in circuit.outputs]
    lines = [
        "/* Generated by repro.codegen.emit (bitsliced kernel). */",
        "#include <stdint.h>",
        "",
        f"__device__ __forceinline__ void {func_name}({', '.join(params)}) {{",
    ]
    names: dict[int, str] = {}
    need_ones = need_zeros = False
    for node in circuit._live_order:
        if node.op == "in":
            names[node.id] = node.name
        elif node.op == "const":
            if node.args[0]:
                names[node.id] = "_ones"
                need_ones = True
            else:
                names[node.id] = "_zeros"
                need_zeros = True
    if need_ones:
        lines.append(f"    const {word_type} _ones = ~({word_type})0;")
    if need_zeros:
        lines.append(f"    const {word_type} _zeros = ({word_type})0;")
    ops = {"xor": "^", "and": "&", "or": "|"}
    for node in _toposorted_gates(circuit):
        var = f"t{node.id}"
        if node.op == "not":
            lines.append(f"    const {word_type} {var} = ~{names[node.args[0]]};")
        else:
            a, b = names[node.args[0]], names[node.args[1]]
            lines.append(f"    const {word_type} {var} = {a} {ops[node.op]} {b};")
        names[node.id] = var
    for name, node in circuit.outputs.items():
        lines.append(f"    *out_{name} = {names[node.id]};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def emit_cuda_epilogue(func_name: str = "touch", word_type: str = "uint32_t") -> str:
    """Emit the device-side single-touch epilogue (store + CRC + census).

    The CUDA twin of :class:`repro.core.touch.StreamTouch`: a
    ``{func_name}_word`` fold that accounts one just-computed word while
    it is still in registers, and a ``{func_name}_store`` loop that
    writes a block to global memory and folds every word in the same
    pass — so the output path reads each byte exactly once, the same
    discipline the host-side fused kernels follow.

    The receipt is bit-identical to ``StreamTouch``/``payload_crc``: an
    MSB-first CRC-32-IEEE with init ``0xFFFFFFFF`` and no final xor,
    folding bytes in memory order — least-significant byte first, since
    the bitsliced planes are little-endian words on every supported
    host.  The caller seeds ``*crc = 0xFFFFFFFFu`` once per stream and
    may span multiple blocks with the same running register, mirroring
    ``StreamTouch.update``'s chunked accumulation.
    """
    if word_type not in ("uint32_t", "uint64_t"):
        raise ValueError(f"unsupported word_type {word_type!r}")
    word_bytes = 4 if word_type == "uint32_t" else 8
    popc = "__popc" if word_type == "uint32_t" else "__popcll"
    guard = func_name.upper()
    return f"""\
/* Generated by repro.codegen.emit (single-touch output epilogue). */
#include <stdint.h>

#define {guard}_CRC32_POLY 0x04C11DB7u

/* Fold one word into the running receipt while it is hot: popcount for
 * the SP 800-90B monobit census plus an MSB-first CRC-32-IEEE over the
 * word's bytes in little-endian memory order.  Bit-identical to the
 * host's StreamTouch accounting. */
__device__ __forceinline__ void {func_name}_word(
    {word_type} word, uint32_t *crc, uint64_t *ones) {{
    *ones += (uint64_t){popc}(word);
    uint32_t c = *crc;
#pragma unroll
    for (int b = 0; b < {word_bytes}; ++b) {{
        c ^= (uint32_t)((word >> (8 * b)) & 0xFFu) << 24;
#pragma unroll
        for (int k = 0; k < 8; ++k)
            c = (c << 1) ^ ((c >> 31) ? {guard}_CRC32_POLY : 0u);
    }}
    *crc = c;
}}

/* Single-touch store: copy a block to global output and account every
 * word in the same pass.  Seed *crc = 0xFFFFFFFFu at stream start; the
 * running register carries across consecutive blocks. */
__device__ void {func_name}_store(
    const {word_type} *__restrict__ src, {word_type} *__restrict__ dst,
    int n_words, uint32_t *crc, uint64_t *ones) {{
    uint32_t c = *crc;
    uint64_t pop = *ones;
    for (int i = 0; i < n_words; ++i) {{
        const {word_type} w = src[i];
        dst[i] = w;
        {func_name}_word(w, &c, &pop);
    }}
    *crc = c;
    *ones = pop;
}}
"""
