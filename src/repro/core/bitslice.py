"""Row-major ↔ column-major (bitsliced) transposes.

The paper's §4.1: instead of storing each cipher instance's state in its
own registers (row-major), store *bit i of every instance* together in one
machine word (column-major).  A word of width ``W`` then behaves as ``W``
one-bit processors, and every logic instruction advances ``W`` independent
cipher instances at once.

Layout
------
A bitsliced plane set is a 2-D array of shape ``(n_bits, n_words)`` and an
unsigned dtype of width ``W``; lane ``k`` lives in word ``k // W`` at bit
position ``k % W`` (little bit order).  Conversions are implemented with
vectorized ``packbits``/``unpackbits`` so the transpose itself never runs
a Python-level loop over lanes or bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import BitsliceLayoutError

__all__ = [
    "SUPPORTED_DTYPES",
    "word_width",
    "n_words_for_lanes",
    "bitslice",
    "unbitslice",
    "bitslice_bytes",
    "unbitslice_bytes",
    "broadcast_bit",
    "lane_mask",
    "BitslicedState",
]

#: Word dtypes the virtual datapath may use.  ``uint64`` is the default; the
#: narrower types exist for the width-ablation experiment (DESIGN.md E7/E8).
SUPPORTED_DTYPES = (np.uint8, np.uint16, np.uint32, np.uint64)


def word_width(dtype) -> int:
    """Datapath width in bits for *dtype* (8, 16, 32 or 64)."""
    dt = np.dtype(dtype)
    if dt.type not in SUPPORTED_DTYPES:
        raise BitsliceLayoutError(f"unsupported bitslice word dtype {dt}")
    return dt.itemsize * 8


def n_words_for_lanes(n_lanes: int, dtype=np.uint64) -> int:
    """Number of words needed to hold *n_lanes* lanes."""
    if n_lanes <= 0:
        raise BitsliceLayoutError("lane count must be positive")
    width = word_width(dtype)
    return -(-n_lanes // width)


def bitslice(bits, dtype=np.uint64) -> np.ndarray:
    """Transpose a ``(n_lanes, n_bits)`` 0/1 matrix into bitsliced planes.

    Returns an array of shape ``(n_bits, n_words)`` and the requested word
    dtype.  Lanes beyond ``n_lanes`` within the last word are zero.

    >>> planes = bitslice([[1, 0], [1, 1], [0, 1]], dtype=np.uint8)
    >>> planes[:, 0]   # bit 0 of lanes (1,1,0) -> 0b011 ; bit 1 -> 0b110
    array([3, 6], dtype=uint8)
    """
    arr = as_bit_array(bits)
    if arr.ndim != 2:
        raise BitsliceLayoutError("bitslice expects a 2-D (n_lanes, n_bits) matrix")
    n_lanes, n_bits = arr.shape
    width = word_width(dtype)
    n_words = n_words_for_lanes(max(n_lanes, 1), dtype)
    # Column k of `arr` is the k-th state bit across lanes; pack each column
    # into lane words.  packbits over axis 1 of the (n_bits, n_lanes)
    # transpose packs 8 lanes/byte; viewing groups bytes into words
    # little-endian, which matches little bit order (lane k = bit k of word).
    cols = np.ascontiguousarray(arr.T)
    packed = np.packbits(cols, axis=1, bitorder="little")
    want_bytes = n_words * np.dtype(dtype).itemsize
    if packed.shape[1] < want_bytes:
        pad = np.zeros((n_bits, want_bytes - packed.shape[1]), dtype=np.uint8)
        packed = np.concatenate([packed, pad], axis=1)
    planes = packed.view(np.dtype(dtype).newbyteorder("<")).astype(dtype, copy=False)
    return np.ascontiguousarray(planes)


def unbitslice(planes: np.ndarray, n_lanes: int) -> np.ndarray:
    """Inverse of :func:`bitslice`: planes ``(n_bits, n_words)`` → bits ``(n_lanes, n_bits)``."""
    planes = np.asarray(planes)
    if planes.ndim != 2:
        raise BitsliceLayoutError("unbitslice expects a 2-D (n_bits, n_words) array")
    width = word_width(planes.dtype)
    if n_lanes <= 0 or n_lanes > planes.shape[1] * width:
        raise BitsliceLayoutError(
            f"lane count {n_lanes} out of range for {planes.shape[1]} words of width {width}"
        )
    le = planes.astype(planes.dtype.newbyteorder("<"), copy=False)
    as_bytes = np.ascontiguousarray(le).view(np.uint8).reshape(planes.shape[0], -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :n_lanes]
    return np.ascontiguousarray(bits.T)


def bitslice_bytes(rows: np.ndarray, dtype=np.uint64) -> np.ndarray:
    """Bitslice a ``(n_lanes, n_bytes)`` byte matrix.

    Byte ``b`` bit ``i`` of each lane becomes plane ``8 * b + i`` (little
    bit order inside each byte), giving ``8 * n_bytes`` planes.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim != 2:
        raise BitsliceLayoutError("bitslice_bytes expects a 2-D (n_lanes, n_bytes) matrix")
    bits = np.unpackbits(rows, axis=1, bitorder="little")
    return bitslice(bits, dtype=dtype)


def unbitslice_bytes(planes: np.ndarray, n_lanes: int) -> np.ndarray:
    """Inverse of :func:`bitslice_bytes` → ``(n_lanes, n_bytes)`` uint8."""
    bits = unbitslice(planes, n_lanes)
    if bits.shape[1] % 8:
        raise BitsliceLayoutError("plane count is not a multiple of 8")
    return np.packbits(bits, axis=1, bitorder="little")


def broadcast_bit(bit: int, n_words: int, dtype=np.uint64) -> np.ndarray:
    """A plane with the constant *bit* in every lane (all-zeros or all-ones)."""
    if bit not in (0, 1):
        raise BitsliceLayoutError("broadcast_bit takes 0 or 1")
    fill = np.iinfo(dtype).max if bit else 0
    return np.full(n_words, fill, dtype=dtype)


def lane_mask(n_lanes: int, n_words: int, dtype=np.uint64) -> np.ndarray:
    """A plane with ones in the first *n_lanes* lanes and zeros beyond.

    Used to keep padding lanes silent when ``n_lanes`` is not a multiple of
    the word width.
    """
    width = word_width(dtype)
    if n_lanes < 0 or n_lanes > n_words * width:
        raise BitsliceLayoutError("n_lanes out of range")
    full, rem = divmod(n_lanes, width)
    mask = np.zeros(n_words, dtype=dtype)
    mask[:full] = np.iinfo(dtype).max
    if rem:
        mask[full] = (np.uint64(1 << rem) - np.uint64(1)).astype(dtype)
    return mask


@dataclass
class BitslicedState:
    """A named bundle of bitsliced planes plus its lane geometry.

    Thin but convenient: ciphers keep their registers as raw arrays for
    speed and wrap them in a ``BitslicedState`` at API boundaries so shape
    and lane-count errors surface early.
    """

    planes: np.ndarray
    n_lanes: int

    def __post_init__(self) -> None:
        self.planes = np.asarray(self.planes)
        if self.planes.ndim != 2:
            raise BitsliceLayoutError("planes must be 2-D (n_bits, n_words)")
        width = word_width(self.planes.dtype)
        if not 0 < self.n_lanes <= self.planes.shape[1] * width:
            raise BitsliceLayoutError(
                f"n_lanes {self.n_lanes} does not fit {self.planes.shape[1]} words of width {width}"
            )

    @classmethod
    def from_bits(cls, bits, dtype=np.uint64) -> "BitslicedState":
        """Bitslice a row-major ``(n_lanes, n_bits)`` matrix into a state."""
        arr = as_bit_array(bits)
        if arr.ndim != 2:
            raise BitsliceLayoutError("from_bits expects (n_lanes, n_bits)")
        return cls(bitslice(arr, dtype=dtype), arr.shape[0])

    @property
    def n_bits(self) -> int:
        """Number of state bits (plane rows)."""
        return self.planes.shape[0]

    @property
    def n_words(self) -> int:
        """Words per plane row."""
        return self.planes.shape[1]

    @property
    def dtype(self):
        """Word dtype of the planes."""
        return self.planes.dtype

    def to_bits(self) -> np.ndarray:
        """Return the row-major ``(n_lanes, n_bits)`` view."""
        return unbitslice(self.planes, self.n_lanes)

    def lane(self, k: int) -> np.ndarray:
        """Extract lane *k* as an ``(n_bits,)`` bit array."""
        if not 0 <= k < self.n_lanes:
            raise BitsliceLayoutError(f"lane {k} out of range")
        width = word_width(self.planes.dtype)
        word = self.planes[:, k // width]
        return ((word >> np.asarray(k % width, dtype=self.planes.dtype)) & np.asarray(1, dtype=self.planes.dtype)).astype(np.uint8)
