"""Trivium tests: reference semantics, bitsliced cross-validation,
avalanche and generator integration (extension beyond the paper)."""

import numpy as np
import pytest

from repro.analysis import avalanche_profile, key_avalanche
from repro.ciphers.trivium import INIT_CLOCKS, STATE_BITS, Trivium
from repro.ciphers.trivium_bitsliced import BitslicedTrivium
from repro.core.engine import BitslicedEngine
from repro.errors import KeyScheduleError


@pytest.fixture()
def rng_np():
    return np.random.default_rng(0xBEEF)


class TestReference:
    def test_state_size(self):
        t = Trivium(np.zeros(80, np.uint8), np.zeros(80, np.uint8))
        assert t.state().shape == (STATE_BITS,)

    def test_init_clock_count(self):
        assert INIT_CLOCKS == 1152

    def test_determinism(self, rng_np):
        key = rng_np.integers(0, 2, 80, dtype=np.uint8)
        iv = rng_np.integers(0, 2, 80, dtype=np.uint8)
        a = Trivium(key, iv).keystream(128)
        b = Trivium(key, iv).keystream(128)
        assert np.array_equal(a, b)

    def test_key_sensitivity(self, rng_np):
        key = rng_np.integers(0, 2, 80, dtype=np.uint8)
        iv = rng_np.integers(0, 2, 80, dtype=np.uint8)
        key2 = key.copy()
        key2[0] ^= 1
        assert not np.array_equal(Trivium(key, iv).keystream(128), Trivium(key2, iv).keystream(128))

    def test_iv_sensitivity(self, rng_np):
        key = rng_np.integers(0, 2, 80, dtype=np.uint8)
        iv = rng_np.integers(0, 2, 80, dtype=np.uint8)
        iv2 = iv.copy()
        iv2[79] ^= 1
        assert not np.array_equal(Trivium(key, iv).keystream(128), Trivium(key, iv2).keystream(128))

    def test_hex_key_accepted(self):
        t = Trivium("0123456789ABCDEF0123", "00000000000000000000")
        assert t.keystream(8).size == 8

    def test_wrong_key_length_rejected(self):
        with pytest.raises(KeyScheduleError):
            Trivium(np.zeros(79, np.uint8), np.zeros(80, np.uint8))
        with pytest.raises(KeyScheduleError):
            Trivium(np.zeros(80, np.uint8), np.zeros(64, np.uint8))

    def test_keystream_balanced(self):
        bits = Trivium(np.ones(80, np.uint8), np.zeros(80, np.uint8)).keystream(4096)
        assert 0.45 < bits.mean() < 0.55

    def test_avalanche(self):
        def ks(key_bits):
            return Trivium(key_bits, np.zeros(80, np.uint8)).keystream(512)

        prof = avalanche_profile(key_avalanche(ks, key_bits=80, n_flips=8))
        assert prof["passed"], prof

    def test_reseed_resets(self, rng_np):
        key = rng_np.integers(0, 2, 80, dtype=np.uint8)
        iv = rng_np.integers(0, 2, 80, dtype=np.uint8)
        t = Trivium(key, iv)
        first = t.keystream(64)
        t.reseed(key, iv)
        assert np.array_equal(t.keystream(64), first)


class TestBitsliced:
    def test_matches_reference_all_lanes(self, rng_np, dtype):
        lanes = 11
        keys = rng_np.integers(0, 2, (lanes, 80), dtype=np.uint8)
        ivs = rng_np.integers(0, 2, (lanes, 80), dtype=np.uint8)
        bank = BitslicedTrivium(BitslicedEngine(n_lanes=lanes, dtype=dtype))
        bank.load(keys, ivs)
        got = bank.keystream_bits(192)
        for k in range(lanes):
            assert np.array_equal(got[k], Trivium(keys[k], ivs[k]).keystream(192)), k

    def test_seed_shared_key(self):
        bank = BitslicedTrivium(BitslicedEngine(n_lanes=8, dtype=np.uint8)).seed(3)
        lanes = bank.keystream_bits(512)
        # distinct IVs: no two lanes repeat
        assert np.unique(np.packbits(lanes, axis=1), axis=0).shape[0] == 8

    def test_requires_load(self):
        bank = BitslicedTrivium(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.next_planes(4)

    def test_shape_validation(self):
        bank = BitslicedTrivium(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.load(np.zeros((7, 80), np.uint8), np.zeros((8, 80), np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.load(np.zeros((8, 80), np.uint8), np.zeros((8, 64), np.uint8))

    def test_gate_accounting(self):
        bank = BitslicedTrivium(BitslicedEngine(n_lanes=8, dtype=np.uint8)).seed(1)
        bank.engine.reset_gate_counts()
        bank.next_planes(10)
        snap = bank.engine.counter.snapshot()
        assert snap["xor"] == 10 * 11
        assert snap["and"] == 10 * 3

    def test_cheapest_cipher(self):
        # The extension's selling point: fewest gates per output bit.
        from repro.ciphers.grain_bitsliced import BitslicedGrain
        from repro.ciphers.mickey_bitsliced import BitslicedMickey2

        eng = lambda: BitslicedEngine(n_lanes=8, dtype=np.uint8)  # noqa: E731
        t = BitslicedTrivium(eng()).gates_per_output_bit()
        assert t < BitslicedGrain(eng()).gates_per_output_bit()
        assert t < BitslicedMickey2(eng()).gates_per_output_bit()


class TestGeneratorIntegration:
    def test_registered(self):
        from repro import available_algorithms

        assert "trivium" in available_algorithms()

    def test_stream_draws(self):
        from repro import BSRNG

        rng = BSRNG("trivium", seed=5, lanes=256)
        assert len(rng.random_bytes(100)) == 100
        assert rng.random(10).shape == (10,)

    def test_stream_prefix(self):
        from repro import BSRNG

        a = BSRNG("trivium", seed=5, lanes=128)
        chunked = a.random_bytes(37) + a.random_bytes(91)
        assert chunked == BSRNG("trivium", seed=5, lanes=128).random_bytes(128)

    def test_nist_spot_check(self):
        from repro import BSRNG
        from repro.nist import frequency_test, runs_test, serial_test

        bits = BSRNG("trivium", seed=9, lanes=512).random_bits(100_000)
        assert frequency_test(bits).passed
        assert runs_test(bits).passed
        assert serial_test(bits).passed

    def test_kernel_profile_present(self):
        from repro.gpu.kernels import kernel_profiles

        prof = kernel_profiles()["trivium"]
        assert prof.bitsliced and prof.gates_per_bit == 14.0
