"""Park–Miller MINSTD — the multiplicative LCG behind Langdon's early
GPU PRNGs (Table 1 rows [20]/[21]): ``x' = 16807 x mod (2^31 - 1)``."""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank

__all__ = ["ParkMillerBank"]

_A = np.uint64(16807)
_MOD = np.uint64(2147483647)  # 2^31 - 1


class ParkMillerBank(StreamBank):
    """``n_streams`` MINSTD generators in lockstep.

    Outputs the 31-bit state directly (as the original does); the top bit
    of each emitted uint32 is always 0, which is itself a useful fixture
    for the statistical tests — MINSTD fails modern batteries, and the
    NIST suite should show that.
    """

    word_dtype = np.uint32
    # 64-bit mul + mod ≈ 6 instructions / 31 useful bits.
    ops_per_word = 6.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        s = stream_seeds % _MOD
        s[s == 0] = np.uint64(1)
        self._x = s

    def _step(self) -> np.ndarray:
        self._x = (_A * self._x) % _MOD
        return self._x.astype(np.uint32)
