"""SP 800-22 test 11: Serial Test (overlapping m-bit pattern uniformity)."""

from __future__ import annotations

import numpy as np

from repro.errors import SpecificationError
from repro.nist._utils import check_bits, igamc, overlapping_pattern_counts
from repro.nist.result import TestResult

__all__ = ["serial_test"]


def _psi_squared(bits: np.ndarray, m: int) -> float:
    if m == 0:
        return 0.0
    counts = overlapping_pattern_counts(bits, m, wrap=True)
    n = bits.size
    return float((1 << m) / n * np.sum(counts.astype(np.float64) ** 2) - n)


def serial_test(bits, m: int | None = None) -> TestResult:
    """Frequencies of overlapping m-, (m−1)- and (m−2)-bit patterns.

    Emits two p-values (∇ψ² and ∇²ψ²); ``m`` defaults to the largest
    value satisfying NIST's guidance ``m < ⌊log₂ n⌋ − 2`` (capped at 16,
    the sts default for megabit streams).
    """
    arr = check_bits(bits, 128, "serial")
    n = arr.size
    if m is None:
        m = min(16, max(2, int(np.floor(np.log2(n))) - 3))
    if m < 2:
        raise SpecificationError("serial test needs m >= 2")
    psi_m = _psi_squared(arr, m)
    psi_m1 = _psi_squared(arr, m - 1)
    psi_m2 = _psi_squared(arr, m - 2)
    d1 = psi_m - psi_m1
    d2 = psi_m - 2.0 * psi_m1 + psi_m2
    p1 = igamc(2.0 ** (m - 2), d1 / 2.0)
    p2 = igamc(2.0 ** (m - 3), d2 / 2.0)
    return TestResult(
        "Serial",
        [p1, p2],
        {"m": m, "psi2_m": psi_m, "del1": d1, "del2": d2},
    )
