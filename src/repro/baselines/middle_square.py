"""Middle-Square Weyl Sequence PRNG (Widynski 2017).

The paper's §2.1 opens with von Neumann's Middle Square Method; the bare
method degenerates quickly, so we implement the modern Weyl-stabilised
variant, which is both historically faithful and statistically sound.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank
from repro.core.seeding import splitmix64

__all__ = ["MiddleSquareWeylBank"]


class MiddleSquareWeylBank(StreamBank):
    """``n_streams`` msws generators; each stream gets a distinct odd Weyl
    increment (the per-stream "s" constant of the construction)."""

    word_dtype = np.uint32
    # square + add + rotate ≈ 5 instructions / word.
    ops_per_word = 5.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        self._x = splitmix64(stream_seeds)
        self._w = np.zeros_like(self._x)
        self._s = splitmix64(stream_seeds + np.uint64(1)) | np.uint64(1)

    def _step(self) -> np.ndarray:
        x, w, s = self._x, self._w, self._s
        x = x * x
        w = w + s
        x = x + w
        x = (x >> np.uint64(32)) | (x << np.uint64(32))
        self._x, self._w = x, w
        return (x & np.uint64(0xFFFFFFFF)).astype(np.uint32)
