"""Philox4x32-10 (Salmon et al. 2011, "Parallel random numbers: as easy
as 1, 2, 3") — the counter-based generator cuRAND offers for massively
parallel streams.

Counter-based generation is a natural fit for the paper's multi-device
partitioning (§5.4): device *d* simply starts its counter at its
partition offset, and any sub-sequence can be regenerated independently.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank

__all__ = ["philox4x32", "PhiloxBank"]

_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint32(0x9E3779B9)
_W1 = np.uint32(0xBB67AE85)


def _mulhilo(m: np.uint64, a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prod = m * a.astype(np.uint64)
    return (prod & np.uint64(0xFFFFFFFF)).astype(np.uint32), (prod >> np.uint64(32)).astype(np.uint32)


def philox4x32(counter: np.ndarray, key: np.ndarray, rounds: int = 10) -> np.ndarray:
    """The Philox4x32 bijection, vectorized.

    Parameters
    ----------
    counter:
        ``(n, 4)`` uint32 counters.
    key:
        ``(n, 2)`` or ``(2,)`` uint32 keys.

    Returns ``(n, 4)`` uint32 outputs.
    """
    ctr = np.array(counter, dtype=np.uint32, ndmin=2).copy()
    k = np.array(key, dtype=np.uint32, ndmin=2)
    k0 = k[..., 0].copy()
    k1 = k[..., 1].copy()
    c0, c1, c2, c3 = (ctr[:, i].copy() for i in range(4))
    for _ in range(rounds):
        lo0, hi0 = _mulhilo(_M0, c0)
        lo1, hi1 = _mulhilo(_M1, c2)
        c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
        k0 = k0 + _W0
        k1 = k1 + _W1
    return np.stack([c0, c1, c2, c3], axis=1)


class PhiloxBank(StreamBank):
    """``n_streams`` Philox streams; stream *j* owns counter lane *j* and
    all streams share one key (the counter-based idiom)."""

    word_dtype = np.uint32
    # 10 rounds × (2 mul + 4 xor + 2 add) + output ≈ 85 instructions per
    # 4 words ≈ 21 / word.
    ops_per_word = 21.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        first = stream_seeds[0]
        self._key = np.array(
            [first & np.uint64(0xFFFFFFFF), first >> np.uint64(32)], dtype=np.uint32
        )
        self._block = 0

    @property
    def words_per_block(self) -> int:
        """Words one bank step emits (the skip-ahead granularity)."""
        return 4 * self.n_streams

    def skip_blocks(self, k: int) -> None:
        """cuRAND-style skipahead: jump *k* bank blocks in O(1)."""
        from repro.errors import SpecificationError

        if k < 0:
            raise SpecificationError("cannot skip backwards")
        self._block += k

    def _step(self) -> np.ndarray:
        n = self.n_streams
        ctr = np.zeros((n, 4), dtype=np.uint32)
        idx = np.uint64(self._block) * np.uint64(n) + np.arange(n, dtype=np.uint64)
        ctr[:, 0] = (idx & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        ctr[:, 1] = (idx >> np.uint64(32)).astype(np.uint32)
        self._block += 1
        return philox4x32(ctr, self._key).ravel()

    def next_words(self, n: int) -> np.ndarray:
        """At least *n* words, in whole 4-word blocks per stream."""
        from repro.errors import SpecificationError

        if n <= 0:
            raise SpecificationError("n must be positive")
        steps = -(-n // (4 * self.n_streams))
        return np.concatenate([self._step() for _ in range(steps)])
