"""Latency model tests (§6's "delay" drawback, quantified)."""

import pytest

from repro.errors import ModelError
from repro.gpu.latency import INIT_CLOCKS, LatencyModel, first_byte_latency_us
from repro.gpu.launch import LaunchConfig


class TestInitClocks:
    def test_spec_values(self):
        # From the cipher specifications, not tuned numbers.
        assert INIT_CLOCKS["grain"] == 160
        assert INIT_CLOCKS["trivium"] == 1152
        assert INIT_CLOCKS["aes128ctr"] == 0
        assert INIT_CLOCKS["mickey2"] == 260  # 80 IV + 80 key + 100 preclock


class TestLatencyModel:
    def test_positive_for_all_kernels(self):
        for k in ("mickey2", "grain", "trivium", "aes128ctr", "curand-mt"):
            assert first_byte_latency_us(k, "GTX 2080 Ti") > 0

    def test_mickey_pays_most_init(self):
        # MICKEY's 260 expensive clocks dominate: slowest to first byte
        # among the bitsliced kernels — the §6 drawback, quantified.
        lat = {k: first_byte_latency_us(k, "GTX 2080 Ti") for k in ("mickey2", "grain", "trivium", "aes128ctr")}
        assert lat["mickey2"] == max(lat.values())
        assert lat["aes128ctr"] == min(lat.values())

    def test_latency_vs_throughput_inversion(self):
        # The paper's trade-off: MICKEY wins throughput but loses latency
        # to cuRAND by orders of magnitude.
        from repro.gpu.model import ThroughputModel

        m = ThroughputModel()
        assert m.predict_gbps("mickey2", "GTX 2080 Ti") > m.predict_gbps("curand-mt", "GTX 2080 Ti")
        assert first_byte_latency_us("mickey2", "GTX 2080 Ti") > 10 * first_byte_latency_us(
            "curand-mt", "GTX 2080 Ti"
        )

    def test_faster_gpu_lower_latency(self):
        slow = first_byte_latency_us("mickey2", "GTX 1050 Ti")
        fast = first_byte_latency_us("mickey2", "Tesla V100")
        assert fast < slow

    def test_components_accumulate(self):
        model = LatencyModel.of("grain", "Tesla V100")
        total = model.first_byte_us()
        assert total > model.init_time_us()
        assert total > model.transfer_time_us(8192)

    def test_bigger_stage_costs_more_latency(self):
        model = LatencyModel.of("grain", "Tesla V100")
        assert model.first_byte_us(stage_bytes=65536) > model.first_byte_us(stage_bytes=2048)

    def test_clock_time_scales_with_launch(self):
        small = LatencyModel.of("grain", "Tesla V100", LaunchConfig(blocks=16))
        big = LatencyModel.of("grain", "Tesla V100", LaunchConfig(blocks=256))
        assert big.clock_time_us() > small.clock_time_us()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ModelError):
            LatencyModel.of("rc5", "Tesla V100")

    def test_negative_transfer_rejected(self):
        with pytest.raises(ModelError):
            LatencyModel.of("grain", "Tesla V100").transfer_time_us(-1)
