#!/usr/bin/env python
"""RNG-as-a-service: talk to a ``repro serve`` daemon and audit its leases.

By default this boots a daemon in-process on an ephemeral port, so the
example is self-contained; point ``--host``/``--port`` at a running
``python -m repro serve`` instance to exercise a real deployment.

What it shows:

1. ``GET /v1/bytes`` — each response carries ``X-Repro-Lease-*`` headers
   naming the counter-space slice ``[offset, offset + length)`` the bytes
   were drawn from; concurrent clients never receive overlapping slices.
2. **Offline audit** — because the stream is a pure function of
   ``(algorithm, seed, lanes)``, any client can re-derive its bytes by
   seeking a fresh ``BSRNG`` to the lease offset.  The service adds
   availability, not trust.
3. ``GET /v1/stream`` — chunked transfer encoding for bulk draws.
4. ``/v1/status`` and ``/healthz`` — the operational surface.

Run:  python examples/serve_client.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
import urllib.request

from repro.core.generator import BSRNG
from repro.serve import DaemonConfig, ServeDaemon, ServeEngine, StreamConfig

ALGORITHM, SEED, LANES = "trivium", 2020, 1024


def fetch(host: str, port: int, path: str) -> tuple[bytes, dict]:
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=30) as resp:
        return resp.read(), dict(resp.headers)


def start_local_daemon() -> tuple[ServeDaemon, threading.Thread]:
    engine = ServeEngine(
        StreamConfig(algorithm=ALGORITHM, seed=SEED, lanes=LANES), workers=2
    )
    daemon = ServeDaemon(engine, DaemonConfig(port=0))
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()), daemon=True)
    thread.start()
    if not daemon.started.wait(30):
        raise RuntimeError("daemon failed to start")
    return daemon, thread


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default=None, help="connect to a running daemon")
    parser.add_argument("--port", type=int, default=8797)
    args = parser.parse_args()

    daemon = thread = None
    if args.host is None:
        daemon, thread = start_local_daemon()
        host, port = daemon.config.host, daemon.bound_port
        print(f"booted in-process daemon on {host}:{port} ({ALGORITHM})")
    else:
        host, port = args.host, args.port
        print(f"connecting to {host}:{port}")
    print()

    try:
        # -- 1. draw bytes; the lease headers name the slice we were granted
        leases = []
        print("GET /v1/bytes?n=48  (three draws)")
        for _ in range(3):
            body, headers = fetch(host, port, "/v1/bytes?n=48")
            offset = int(headers["X-Repro-Lease-Offset"])
            length = int(headers["X-Repro-Lease-Length"])
            leases.append((offset, length, body))
            print(f"  lease [{offset:>6}, {offset + length:>6})  {body[:12].hex()}…")

        spans = sorted((off, ln) for off, ln, _ in leases)
        for (a_off, a_len), (b_off, _) in zip(spans, spans[1:]):
            assert a_off + a_len <= b_off, "leases overlap!"
        print("  leases are disjoint ✓")
        print()

        # -- 2. offline audit: recompute every draw from the public stream
        print("offline audit against a fresh BSRNG")
        for offset, length, body in leases:
            rng = BSRNG(ALGORITHM, seed=SEED, lanes=LANES)
            rng.skip_bytes(offset)
            assert rng.read(length) == body
            print(f"  offset {offset:>6}: served bytes == offline stream ✓")
        print()

        # -- 3. bulk draw over the chunked streaming endpoint
        body, headers = fetch(host, port, "/v1/stream?n=262144")
        print(f"GET /v1/stream?n=262144 -> {len(body)} bytes "
              f"(lease offset {headers['X-Repro-Lease-Offset']})")
        print()

        # -- 4. operational surface
        status = json.loads(fetch(host, port, "/v1/status")[0])
        print("GET /v1/status")
        print(f"  algorithm      : {status['engine']['stream']['algorithm']}")
        print(f"  bytes served   : {status['server']['bytes_served']}")
        print(f"  lease high-water: {status['leases']['high_water_bytes']} bytes")
        print(f"  chunks ok      : {status['engine']['chunks']['chunks_ok']}")
        body, _ = fetch(host, port, "/healthz")
        print(f"GET /healthz -> {json.loads(body)['healthy'] and 'healthy' or 'UNHEALTHY'}")
    finally:
        if daemon is not None:
            daemon.shutdown_threadsafe()
            thread.join(15)
            print("\ndaemon drained cleanly")


if __name__ == "__main__":
    main()
