"""E13 (abstract/§6) — performance per cost.

The abstract claims efficiency "in terms of performance and performance
per cost", and the conclusion positions GPUs as "a suitable replacement
for expensive Tbps optical solutions".  This bench tabulates the modeled
MICKEY throughput per launch-dollar and per watt on the Table-2 GPUs —
quantifying the "affordable NVIDIA GTX 2080 Ti" framing: the consumer
card beats the datacenter V100 ~8x on throughput per dollar.
"""

import pytest
from _emit import emit_bench
from conftest import emit_table

from repro.gpu.model import ThroughputModel
from repro.gpu.specs import TABLE2_GPUS
from repro.report import bar_chart


def test_cost_efficiency(benchmark):
    model = ThroughputModel()
    rows = []
    for g in TABLE2_GPUS.values():
        gbps = model.predict_gbps("mickey2", g.name)
        rows.append(
            (
                g.name,
                gbps,
                gbps / g.launch_price_usd if g.launch_price_usd else float("nan"),
                gbps / g.tdp_w if g.tdp_w else float("nan"),
            )
        )
    benchmark.pedantic(lambda: model.predict_gbps("mickey2", "GTX 2080 Ti"), rounds=3, iterations=1)

    lines = [
        "bitsliced MICKEY 2.0, anchored model:",
        "",
        f"{'GPU':<14}{'Gb/s':>8}{'Gb/s per $':>12}{'Gb/s per W':>12}",
        "-" * 46,
    ]
    for name, gbps, per_usd, per_w in rows:
        lines.append(f"{name:<14}{gbps:>8.0f}{per_usd:>12.2f}{per_w:>12.2f}")
    lines.append("")
    lines.append(
        bar_chart(
            [(name, per_usd) for name, _, per_usd, _ in rows],
            width=36,
            unit="Gb/s/$",
            fmt="{:.2f}",
        )
    )
    emit_table("cost_efficiency", lines)
    emit_bench(
        "cost_efficiency",
        params={"kernel": "mickey2"},
        metrics={
            "gbps_per_usd": {n: v for n, _, v, _ in rows if v == v},
            "gbps_per_watt": {n: v for n, _, _, v in rows if v == v},
        },
    )

    by_gpu = {name: (per_usd, per_w) for name, _, per_usd, per_w in rows}
    # The abstract's "affordable 2080 Ti" framing: the consumer flagship
    # dominates the datacenter part on throughput per dollar...
    assert by_gpu["GTX 2080 Ti"][0] > 5 * by_gpu["Tesla V100"][0]
    # ... and per-dollar the best value is a consumer card, not the V100.
    best_value = max(by_gpu, key=lambda n: by_gpu[n][0])
    assert best_value != "Tesla V100"
    # Per watt, newer silicon wins monotonically enough that the 2080 Ti
    # beats the 2010 GTX 480 by a wide margin.
    assert by_gpu["GTX 2080 Ti"][1] > 5 * by_gpu["GTX 480"][1]
