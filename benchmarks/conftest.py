"""Shared helpers for the experiment benchmarks.

Every bench regenerates one paper artifact (table or figure), prints its
rows, and also writes them under ``benchmarks/results/`` so the output
survives pytest's capture regardless of ``-s``.  EXPERIMENTS.md records
the paper-vs-measured comparison for each.
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Set REPRO_FULL=1 for paper-scale workloads (1000 x 1 Mbit NIST runs
#: etc.); default sizes keep the whole bench suite under a few minutes.
FULL_SCALE = os.environ.get("REPRO_FULL", "0") == "1"


def emit_table(name: str, lines: list[str]) -> str:
    """Print a result table and persist it to benchmarks/results/."""
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    sys.stdout.write(f"\n{text}")
    return text


def measure_gbps(fn, bits_per_call: int, *, repeat: int = 3, warmup: int = 1) -> float:
    """Best-of-N wall-clock throughput of ``fn`` in Gbit/s."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return bits_per_call / best / 1e9


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0xBE7C)
