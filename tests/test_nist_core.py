"""Core SP 800-22 tests: frequency family, runs family, cusum.

Validation strategy (the sts KAT files are not redistributable):

* analytic cross-checks — recompute the expected p-value from the
  published formula with scipy, independently of the implementation;
* rejection — pathological inputs every correct implementation must fail;
* acceptance — high-quality reference bits must pass;
* edge behaviour — minimum lengths raise ``InsufficientDataError``.
"""

import math

import numpy as np
import pytest
from scipy.special import erfc, gammaincc
from scipy.stats import norm

from repro.errors import InsufficientDataError
from repro.nist import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
)


@pytest.fixture(scope="module")
def good_bits():
    """1 Mbit of reference-quality bits (NumPy PCG64, seed fixed)."""
    return np.random.default_rng(0xA5A5).integers(0, 2, size=1_000_000, dtype=np.uint8)


def make_biased(n, p_one, seed=7):
    return (np.random.default_rng(seed).random(n) < p_one).astype(np.uint8)


# ---------------------------------------------------------------- frequency


class TestFrequency:
    def test_analytic_p_value(self):
        # 40 ones in 100 bits: S = -20, s_obs = 2.0, p = erfc(2/sqrt(2)).
        bits = np.zeros(100, dtype=np.uint8)
        bits[:40] = 1
        r = frequency_test(bits)
        assert r.p_value == pytest.approx(float(erfc(2.0 / math.sqrt(2.0))), rel=1e-12)

    def test_balanced_sequence_has_p_one(self):
        bits = np.concatenate([np.ones(50, np.uint8), np.zeros(50, np.uint8)])
        assert frequency_test(bits).p_value == pytest.approx(1.0)

    def test_order_invariance(self, good_bits):
        # The statistic depends only on the ones count.
        sample = good_bits[:10_000]
        shuffled = np.random.default_rng(1).permutation(sample)
        assert frequency_test(sample).p_value == pytest.approx(
            frequency_test(shuffled).p_value
        )

    def test_rejects_all_zeros(self):
        assert not frequency_test(np.zeros(1000, np.uint8)).passed

    def test_rejects_bias(self):
        assert not frequency_test(make_biased(100_000, 0.51)).passed

    def test_accepts_good(self, good_bits):
        assert frequency_test(good_bits).passed

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            frequency_test(np.ones(99, np.uint8))


# ---------------------------------------------------------- block frequency


class TestBlockFrequency:
    def test_analytic_p_value(self):
        # Two blocks of 100: one all-ones, one balanced.
        # chi2 = 4 * sum((pi_i - 1/2)^2) * M = 4*100*(0.25 + 0) = 100.
        bits = np.concatenate(
            [np.ones(100, np.uint8), np.tile([0, 1], 50).astype(np.uint8)]
        )
        r = block_frequency_test(bits, block_size=100)
        assert r.p_value == pytest.approx(float(gammaincc(1.0, 50.0)), rel=1e-10)

    def test_perfect_blocks_pass(self):
        bits = np.tile([0, 1], 5000).astype(np.uint8)
        assert block_frequency_test(bits, block_size=100).p_value == pytest.approx(1.0)

    def test_rejects_blocky_bias(self):
        # Alternating all-ones / all-zeros blocks: globally balanced but
        # every block is maximally lopsided.
        blocks = [np.full(128, i % 2, dtype=np.uint8) for i in range(64)]
        assert not block_frequency_test(np.concatenate(blocks), block_size=128).passed

    def test_accepts_good(self, good_bits):
        assert block_frequency_test(good_bits).passed

    def test_discards_tail(self):
        # 250 bits with M=100 uses exactly 2 blocks; the tail must not count.
        bits = np.zeros(250, np.uint8)
        bits[:100] = np.tile([0, 1], 50)
        bits[100:200] = np.tile([0, 1], 50)
        bits[200:] = 1  # pathological tail, should be ignored
        assert block_frequency_test(bits, block_size=100).p_value == pytest.approx(1.0)

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            block_frequency_test(np.ones(99, np.uint8), block_size=100)


# ------------------------------------------------------------------- runs


class TestRuns:
    def test_analytic_p_value(self):
        # From the SP 800-22 formula: p = erfc(|V - 2n pi (1-pi)| /
        # (2 sqrt(2n) pi (1-pi))) with V the observed run count.
        bits = np.random.default_rng(3).integers(0, 2, 1000, dtype=np.uint8)
        pi = bits.mean()
        v_obs = 1 + int(np.count_nonzero(np.diff(bits)))
        n = bits.size
        expected = float(
            erfc(abs(v_obs - 2 * n * pi * (1 - pi)) / (2 * math.sqrt(2 * n) * pi * (1 - pi)))
        )
        assert runs_test(bits).p_value == pytest.approx(expected, rel=1e-10)

    def test_rejects_alternating(self):
        # 0101... has the maximum possible run count.
        assert not runs_test(np.tile([0, 1], 500).astype(np.uint8)).passed

    def test_rejects_long_runs(self):
        # 64-bit runs: far too few transitions.
        bits = np.repeat(np.arange(32) % 2, 64).astype(np.uint8)
        assert not runs_test(bits).passed

    def test_accepts_good(self, good_bits):
        assert runs_test(good_bits).passed

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            runs_test(np.ones(99, np.uint8))


# ------------------------------------------------------------- longest run


class TestLongestRun:
    def test_accepts_good(self, good_bits):
        assert longest_run_test(good_bits).passed

    def test_rejects_alternating(self):
        # Longest run of ones == 1 in every block: wildly atypical.
        assert not longest_run_test(np.tile([0, 1], 5000).astype(np.uint8)).passed

    def test_rejects_solid_ones(self):
        assert not longest_run_test(np.ones(10_000, np.uint8)).passed

    def test_all_three_regimes_run(self, good_bits):
        # The test switches (M, K) at n=6272 and n=750000.
        for n in (128, 10_000, 800_000):
            assert longest_run_test(good_bits[:n]).p_value >= 0.0

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            longest_run_test(np.ones(127, np.uint8))


# ------------------------------------------------------------------ cusum


class TestCumulativeSums:
    def test_two_p_values(self, good_bits):
        r = cumulative_sums_test(good_bits[:100_000])
        assert len(r.p_values) == 2  # forward and backward

    def test_analytic_p_value(self):
        # For z = max|S_k|, the p-value is the NIST theta-like series; we
        # recompute it here from the published formula with scipy's norm.
        bits = np.random.default_rng(9).integers(0, 2, 1000, dtype=np.uint8)
        n = bits.size
        x = 2.0 * bits - 1.0
        z = int(np.max(np.abs(np.cumsum(x))))
        total = 0.0
        for k in range((-n // z + 1) // 4, (n // z - 1) // 4 + 1):
            total += norm.cdf((4 * k + 1) * z / math.sqrt(n)) - norm.cdf(
                (4 * k - 1) * z / math.sqrt(n)
            )
        part = 0.0
        for k in range((-n // z - 3) // 4, (n // z - 1) // 4 + 1):
            part += norm.cdf((4 * k + 3) * z / math.sqrt(n)) - norm.cdf(
                (4 * k + 1) * z / math.sqrt(n)
            )
        expected = 1.0 - total + part
        assert cumulative_sums_test(bits).p_values[0] == pytest.approx(expected, rel=1e-8)

    def test_reverse_symmetry(self, good_bits):
        # Forward p of the reversed sequence == backward p of the original.
        bits = good_bits[:10_000]
        fwd, bwd = cumulative_sums_test(bits).p_values
        rfwd, rbwd = cumulative_sums_test(bits[::-1]).p_values
        assert fwd == pytest.approx(rbwd)
        assert bwd == pytest.approx(rfwd)

    def test_rejects_drift(self):
        assert not cumulative_sums_test(make_biased(50_000, 0.52)).passed

    def test_accepts_good(self, good_bits):
        assert cumulative_sums_test(good_bits).passed

    def test_min_length(self):
        with pytest.raises(InsufficientDataError):
            cumulative_sums_test(np.ones(99, np.uint8))
