"""Linear feedback shift registers: reference, naive-parallel and bitsliced.

Three implementations of the same recurrence

.. math:: s_{t+n} = \\bigoplus_{i \\in T} s_{t+i}

(the Fibonacci form of an LFSR whose characteristic polynomial is
``x^n + sum(x^i for i in T)``):

:class:`ReferenceLFSR`
    One instance, row-major, Python integers — the specification oracle.
:class:`NaiveParallelLFSR`
    Many instances, row-major, one word-sized register per lane with
    per-clock shift+mask work.  This is the paper's §4.3 strawman ("32
    parallel LFSRs in 32 threads"): every output bit per lane costs about
    ``k`` tap extractions *and* a shift, and a lane's register uses only
    ``n`` of its word's bits.
:class:`BitslicedLFSR`
    Many instances, column-major: ``k`` full-width XORs produce one output
    bit in *every* lane, and the shift is O(1) register renaming
    (:class:`~repro.core.registers.RotatingRegisterFile`).

The op-count asymmetry between the last two is exactly the paper's claimed
``32·k`` → ``k`` reduction; the ablation benchmark E8 measures it.
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.core.bitslice import bitslice
from repro.core.engine import BitslicedEngine
from repro.core.registers import RotatingRegisterFile
from repro.errors import SpecificationError

__all__ = [
    "PRIMITIVE_TAPS",
    "ReferenceLFSR",
    "GaloisLFSR",
    "NaiveParallelLFSR",
    "BitslicedLFSR",
]

#: Known primitive characteristic polynomials ``x^n + sum(x^i, i in taps)``,
#: indexed by degree.  Degrees ≤ 16 are verified exhaustively in the test
#: suite (full period ``2^n - 1``); the larger entries are classical
#: primitive trinomials/pentanomials from the LFSR literature (Zierler's
#: trinomial tables and the Xilinx XAPP052 tap list).
PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    2: (0, 1),
    3: (0, 1),
    4: (0, 1),
    5: (0, 2),
    6: (0, 1),
    7: (0, 1),
    8: (0, 2, 3, 4),
    9: (0, 4),
    10: (0, 3),
    11: (0, 2),
    12: (0, 1, 4, 6),
    13: (0, 1, 3, 4),
    14: (0, 1, 6, 10),
    15: (0, 1),
    16: (0, 4, 13, 15),
    17: (0, 3),
    18: (0, 7),
    19: (0, 1, 2, 6),
    20: (0, 3),
    21: (0, 2),
    22: (0, 1),
    23: (0, 5),
    24: (0, 17, 22, 23),
    25: (0, 3),
    31: (0, 3),
    32: (0, 1, 2, 22),
    89: (0, 38),
    100: (0, 37),
    127: (0, 1),
}


def fibonacci_transition_matrix(n: int, taps) -> np.ndarray:
    """One-step state map of the Fibonacci LFSR as an ``(n, n)`` GF(2)
    matrix (``new = M @ old``): rows 0..n-2 shift, row n-1 gathers taps.

    ``gf2_matpow`` of this matrix is the jump-ahead operator shared by
    :meth:`ReferenceLFSR.jump` and :meth:`BitslicedLFSR.jump`.
    """
    m = np.zeros((n, n), dtype=np.uint8)
    for i in range(n - 1):
        m[i, i + 1] = 1
    for t in taps:
        m[n - 1, t] = 1
    return m


def _check_taps(n: int, taps) -> tuple[int, ...]:
    taps = tuple(sorted(set(int(t) for t in taps)))
    if n < 2:
        raise SpecificationError("LFSR degree must be at least 2")
    if not taps:
        raise SpecificationError("LFSR needs at least one feedback tap")
    if taps[0] != 0:
        raise SpecificationError(
            "tap exponent 0 must be present (non-zero constant term keeps the map invertible)"
        )
    if taps[-1] >= n:
        raise SpecificationError(f"tap exponent {taps[-1]} not below degree {n}")
    return taps


class ReferenceLFSR:
    """Single-instance, bit-serial oracle implementation.

    State bit 0 (``s_t``) is both the register's output and the LSB of the
    integer register; a clock emits ``s_t`` and inserts the feedback bit at
    the top — the costly shift/mask pattern the paper sets out to remove.
    """

    def __init__(self, n: int, taps=None, state: int = 1) -> None:
        self.n = int(n)
        self.taps = _check_taps(self.n, taps if taps is not None else PRIMITIVE_TAPS[self.n])
        self.tap_mask = 0
        for t in self.taps:
            self.tap_mask |= 1 << t
        self.seed(state)

    def seed(self, state: int) -> None:
        """Load a non-zero *n*-bit state."""
        state = int(state) & ((1 << self.n) - 1)
        if state == 0:
            raise SpecificationError("the all-zero LFSR state is a fixed point")
        self.state = state

    def step(self) -> int:
        """Clock once; return the emitted bit ``s_t``."""
        out = self.state & 1
        fb = (self.state & self.tap_mask).bit_count() & 1
        self.state = (self.state >> 1) | (fb << (self.n - 1))
        return out

    def run(self, n_steps: int) -> np.ndarray:
        """Emit *n_steps* bits as a uint8 array."""
        out = np.empty(n_steps, dtype=np.uint8)
        for i in range(n_steps):
            out[i] = self.step()
        return out

    def jump(self, k: int) -> None:
        """Advance the register by *k* clocks in ``O(n^3 log k)``.

        Equivalent to calling :meth:`step` *k* times (without emitting the
        bits) — the seek primitive multi-stream deployments use to place
        lanes at provably disjoint stream offsets.
        """
        if k < 0:
            raise SpecificationError("cannot jump backwards")
        from repro.gf2.linalg import gf2_matpow

        mk = gf2_matpow(fibonacci_transition_matrix(self.n, self.taps), k)
        state_bits = np.array([(self.state >> i) & 1 for i in range(self.n)], dtype=np.uint8)
        new_bits = (mk.astype(np.int64) @ state_bits.astype(np.int64)) & 1
        self.state = int(sum(int(b) << i for i, b in enumerate(new_bits)))

    def period(self, limit: int | None = None) -> int:
        """Cycle length of the current state (exhaustive walk).

        Only sensible for small ``n``; *limit* guards runaway walks.
        """
        limit = limit if limit is not None else (1 << self.n)
        start = self.state
        steps = 0
        while True:
            self.step()
            steps += 1
            if self.state == start:
                return steps
            if steps > limit:
                raise SpecificationError(f"period exceeds limit {limit}")


class GaloisLFSR:
    """Galois-form twin of :class:`ReferenceLFSR` (same output sequence
    family, feedback XORed into the taps instead of gathered from them).

    Included because MICKEY's R register is Galois-structured (paper Fig. 2)
    and because the two forms' equivalence is a useful property test.
    """

    def __init__(self, n: int, taps=None, state: int = 1) -> None:
        self.n = int(n)
        taps = _check_taps(self.n, taps if taps is not None else PRIMITIVE_TAPS[self.n])
        # The Galois mask for the *same* characteristic polynomial places a
        # feedback XOR wherever the polynomial has a term: bit j of the mask
        # corresponds to exponent j+1 (the shift consumes one power of x),
        # plus reinsertion at the top for the x^n term.
        self.taps = taps
        self.mask = 0
        for t in taps:
            if t == 0:
                continue
            self.mask |= 1 << (t - 1)
        self.mask |= 1 << (self.n - 1)
        self.seed(state)

    def seed(self, state: int) -> None:
        """Load a non-zero *n*-bit state."""
        state = int(state) & ((1 << self.n) - 1)
        if state == 0:
            raise SpecificationError("the all-zero LFSR state is a fixed point")
        self.state = state

    def step(self) -> int:
        """Clock all lanes once; returns the emitted bits."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self.mask
        return out

    def run(self, n_steps: int) -> np.ndarray:
        """Emit *n_steps* output bits."""
        out = np.empty(n_steps, dtype=np.uint8)
        for i in range(n_steps):
            out[i] = self.step()
        return out

    def transition_matrix(self) -> np.ndarray:
        """One-step state map: shift right + conditional mask on bit 0."""
        m = np.zeros((self.n, self.n), dtype=np.uint8)
        for i in range(self.n - 1):
            m[i, i + 1] = 1
        for i in range(self.n):
            if (self.mask >> i) & 1:
                m[i, 0] ^= 1
        return m

    def jump(self, k: int) -> None:
        """Advance by *k* clocks in ``O(n^3 log k)`` (see
        :meth:`ReferenceLFSR.jump`)."""
        if k < 0:
            raise SpecificationError("cannot jump backwards")
        from repro.gf2.linalg import gf2_matpow

        mk = gf2_matpow(self.transition_matrix(), k)
        state_bits = np.array([(self.state >> i) & 1 for i in range(self.n)], dtype=np.uint8)
        new_bits = (mk.astype(np.int64) @ state_bits.astype(np.int64)) & 1
        self.state = int(sum(int(b) << i for i, b in enumerate(new_bits)))


class NaiveParallelLFSR:
    """Row-major lanes: one word-register per lane, shift/mask per clock.

    ``states`` is a uint64 vector, lane ``j``'s LFSR register in element
    ``j``.  Each clock performs ``k`` single-bit tap extractions (shift +
    AND each) plus the register shift — the instruction pattern the
    bitsliced layout eliminates.  ``ops_per_step_per_lane`` reports the
    cost the roofline model charges this variant.
    """

    def __init__(self, n: int, taps=None, states=None, n_lanes: int = 64) -> None:
        self.n = int(n)
        if self.n > 64:
            raise SpecificationError("NaiveParallelLFSR packs each lane in a uint64")
        self.taps = _check_taps(self.n, taps if taps is not None else PRIMITIVE_TAPS[self.n])
        if states is None:
            states = (np.arange(1, n_lanes + 1, dtype=np.uint64) * np.uint64(2654435761)) % np.uint64(1 << self.n)
            states[states == 0] = 1
        self.states = np.asarray(states, dtype=np.uint64).copy()
        if np.any(self.states == 0) or np.any(self.states >> np.uint64(self.n)):
            raise SpecificationError("lane states must be non-zero n-bit values")
        self.n_lanes = self.states.size

    @property
    def ops_per_step_per_lane(self) -> int:
        # per tap: shift + and + xor-accumulate; plus output extract, shift,
        # feedback placement (shift + or).
        """Instructions one lane pays per clock (roofline input)."""
        return 3 * len(self.taps) + 4

    def step(self) -> np.ndarray:
        """Clock all lanes once; return their emitted bits (uint8 vector)."""
        s = self.states
        one = np.uint64(1)
        out = (s & one).astype(np.uint8)
        fb = np.zeros_like(s)
        for t in self.taps:
            fb ^= (s >> np.uint64(t)) & one
        self.states = (s >> one) | (fb << np.uint64(self.n - 1))
        return out

    def run(self, n_steps: int) -> np.ndarray:
        """Emit ``(n_steps, n_lanes)`` bits."""
        out = np.empty((n_steps, self.n_lanes), dtype=np.uint8)
        for i in range(n_steps):
            out[i] = self.step()
        return out


class BitslicedLFSR:
    """Column-major lanes on a rotating register file (paper Fig. 8).

    One clock = ``k`` full-width XOR gates + one O(1) renaming shift, and
    emits one output bit in *every* lane.
    """

    def __init__(self, n: int, taps=None, *, engine: BitslicedEngine | None = None) -> None:
        self.n = int(n)
        self.taps = _check_taps(self.n, taps if taps is not None else PRIMITIVE_TAPS[self.n])
        self.engine = engine if engine is not None else BitslicedEngine()
        self.file = RotatingRegisterFile(self.n, self.engine.n_words, self.engine.dtype)
        self._seeded = False

    @property
    def ops_per_step(self) -> int:
        """Full-width gate ops per clock (for *all* lanes together)."""
        return len(self.taps)  # k XORs; the shift is renaming, zero gates

    def seed_from_bits(self, states) -> None:
        """Load per-lane initial states from an ``(n_lanes, n)`` bit matrix."""
        arr = as_bit_array(states)
        if arr.ndim != 2 or arr.shape != (self.engine.n_lanes, self.n):
            raise SpecificationError(
                f"expected ({self.engine.n_lanes}, {self.n}) state bits, got {arr.shape}"
            )
        if np.any(~arr.any(axis=1)):
            raise SpecificationError("the all-zero LFSR state is a fixed point")
        self.file.load(bitslice(arr, dtype=self.engine.dtype))
        self._seeded = True

    def seed_from_ints(self, states) -> None:
        """Load per-lane initial states from integers (lsb = ``s_t``)."""
        vals = np.asarray(states, dtype=np.uint64)
        if vals.size != self.engine.n_lanes:
            raise SpecificationError(f"need {self.engine.n_lanes} lane states")
        bits = ((vals[:, None] >> np.arange(self.n, dtype=np.uint64)) & np.uint64(1)).astype(np.uint8)
        self.seed_from_bits(bits)

    def _require_seed(self) -> None:
        if not self._seeded:
            raise SpecificationError("BitslicedLFSR must be seeded before stepping")

    def step(self) -> np.ndarray:
        """Clock once; return the output plane (one bit per lane)."""
        self._require_seed()
        g = self.engine.gates
        fb = self.file[self.taps[0]].copy()
        for t in self.taps[1:]:
            g.ixor(fb, self.file[t])
        self.engine.counter.add("xor", 1)  # account the copy-as-first-operand
        return self.file.shift_in(fb)

    def run(self, n_steps: int) -> np.ndarray:
        """Emit ``(n_steps, n_words)`` output planes via the staging buffer."""
        self._require_seed()
        out = np.empty((n_steps, self.engine.n_words), dtype=self.engine.dtype)
        stage = self.engine.make_stage()
        row = 0
        for _ in range(n_steps):
            row = stage.push(self.step(), out, row)
        stage.drain(out, row)
        return out

    def jump(self, k: int) -> None:
        """Advance every lane by *k* clocks in ``O(n^2)`` plane XORs.

        The jump operator ``M^k`` is one ``(n, n)`` GF(2) matrix shared by
        all lanes (they run the same polynomial), so in the bitsliced
        layout it applies as at most ``n^2`` full-width plane XORs —
        independent of the lane count, like everything else here.
        """
        self._require_seed()
        if k < 0:
            raise SpecificationError("cannot jump backwards")
        from repro.gf2.linalg import gf2_matpow

        mk = gf2_matpow(fibonacci_transition_matrix(self.n, self.taps), k)
        old = self.file.snapshot()  # (n, n_words), logical order
        new = np.zeros_like(old)
        for i in range(self.n):
            cols = np.flatnonzero(mk[i])
            if cols.size:
                new[i] = np.bitwise_xor.reduce(old[cols], axis=0)
                self.engine.counter.add("xor", max(0, cols.size - 1))
        self.file.load(new)

    def state_bits(self) -> np.ndarray:
        """Current per-lane states as an ``(n_lanes, n)`` bit matrix."""
        from repro.core.bitslice import unbitslice

        return unbitslice(self.file.snapshot(), self.engine.n_lanes)
