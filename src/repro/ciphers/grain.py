"""Grain v1 reference implementation (bit-serial, row-major).

Written from the eSTREAM specification (Hell, Johansson & Meier, "Grain —
a stream cipher for constrained environments"): an 80-bit LFSR and an
80-bit NFSR shifted together, a nonlinear filter ``h`` over five state
bits, and an output mask of seven NFSR bits (paper §2.3.3, Fig. 4).

Key is 80 bits, IV is 64 bits; initialisation clocks the cipher 160 times
feeding the output back into both registers.  This class is the oracle
for :class:`repro.ciphers.grain_bitsliced.BitslicedGrain`.
"""

from __future__ import annotations

import numpy as np

from repro.ciphers.mickey import _coerce_bits
from repro.errors import KeyScheduleError

__all__ = ["GrainV1"]

KEY_BITS = 80
IV_BITS = 64
STATE_BITS = 80
INIT_CLOCKS = 160

#: LFSR recurrence s_{i+80} = s_{i+62} + s_{i+51} + s_{i+38} + s_{i+23} + s_{i+13} + s_i
LFSR_TAPS = (62, 51, 38, 23, 13, 0)

#: Output mask A: z = sum b_{i+k}, k in A, plus h(...)
OUTPUT_TAPS = (1, 2, 4, 10, 31, 43, 56)


def _g(b: np.ndarray) -> int:
    """NFSR feedback g(x) (degree-6 terms of the spec, minus the s_i term)."""
    lin = b[62] ^ b[60] ^ b[52] ^ b[45] ^ b[37] ^ b[33] ^ b[28] ^ b[21] ^ b[14] ^ b[9] ^ b[0]
    quad = (
        (b[63] & b[60])
        ^ (b[37] & b[33])
        ^ (b[15] & b[9])
        ^ (b[60] & b[52] & b[45])
        ^ (b[33] & b[28] & b[21])
        ^ (b[63] & b[45] & b[28] & b[9])
        ^ (b[60] & b[52] & b[37] & b[33])
        ^ (b[63] & b[60] & b[21] & b[15])
        ^ (b[63] & b[60] & b[52] & b[45] & b[37])
        ^ (b[33] & b[28] & b[21] & b[15] & b[9])
        ^ (b[52] & b[45] & b[37] & b[33] & b[28] & b[21])
    )
    return int(lin ^ quad)


def _h(x0: int, x1: int, x2: int, x3: int, x4: int) -> int:
    """Filter h(x); inputs are (s_{i+3}, s_{i+25}, s_{i+46}, s_{i+64}, b_{i+63})."""
    return (
        x1
        ^ x4
        ^ (x0 & x3)
        ^ (x2 & x3)
        ^ (x3 & x4)
        ^ (x0 & x1 & x2)
        ^ (x0 & x2 & x3)
        ^ (x0 & x2 & x4)
        ^ (x1 & x2 & x4)
        ^ (x2 & x3 & x4)
    )


class GrainV1:
    """One Grain v1 keystream generator instance.

    Parameters
    ----------
    key:
        80-bit key (hex string, 10 bytes or 80-bit array; element 0 is
        the spec's ``b_0`` loading position).
    iv:
        64-bit IV in the same formats.
    """

    def __init__(self, key, iv) -> None:
        self.lfsr = np.zeros(STATE_BITS, dtype=np.uint8)
        self.nfsr = np.zeros(STATE_BITS, dtype=np.uint8)
        self.reseed(key, iv)

    def reseed(self, key, iv) -> None:
        """Load key/IV and run the 160 initialisation clocks."""
        key_bits = _coerce_bits(key, KEY_BITS, "key")
        iv_bits = _coerce_bits(iv, IV_BITS, "iv")
        self.nfsr[:] = key_bits
        self.lfsr[:IV_BITS] = iv_bits
        self.lfsr[IV_BITS:] = 1
        for _ in range(INIT_CLOCKS):
            z = self._output_bit()
            self._shift(extra_feedback=z)

    def _output_bit(self) -> int:
        s, b = self.lfsr, self.nfsr
        z = _h(int(s[3]), int(s[25]), int(s[46]), int(s[64]), int(b[63]))
        for k in OUTPUT_TAPS:
            z ^= int(b[k])
        return z

    def _shift(self, extra_feedback: int = 0) -> None:
        s, b = self.lfsr, self.nfsr
        fs = 0
        for t in LFSR_TAPS:
            fs ^= int(s[t])
        fb = int(s[0]) ^ _g(b)
        fs ^= extra_feedback
        fb ^= extra_feedback
        s[:-1] = s[1:]
        s[-1] = fs
        b[:-1] = b[1:]
        b[-1] = fb

    def next_bit(self) -> int:
        """Emit one keystream bit and clock the registers."""
        z = self._output_bit()
        self._shift()
        return z

    def keystream(self, n_bits: int) -> np.ndarray:
        """The next *n_bits* keystream bits as a uint8 array."""
        out = np.empty(n_bits, dtype=np.uint8)
        for i in range(n_bits):
            out[i] = self.next_bit()
        return out

    def keystream_bytes(self, n_bytes: int) -> bytes:
        """The next *n_bytes* keystream bytes (msb-first packing)."""
        bits = self.keystream(8 * n_bytes)
        return np.packbits(bits, bitorder="big").tobytes()

    def state(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the (LFSR, NFSR) state bit arrays."""
        return self.lfsr.copy(), self.nfsr.copy()
