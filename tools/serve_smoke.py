#!/usr/bin/env python
"""CI smoke test for the ``repro serve`` daemon.

Boots the real CLI entry point in a subprocess, then exercises the
deployment-critical path end to end:

1. wait for the parseable ``repro-serve listening on host:port`` line;
2. run 4 concurrent closed-loop clients against ``/v1/bytes``;
3. assert the granted leases never overlap and every payload matches an
   offline BSRNG positioned at the announced lease offset;
4. lint the live ``/metrics`` exposition with :mod:`repro.obs.promlint`;
5. send SIGTERM and require a graceful drain with exit status 0.

Exit status: 0 = all green, 1 = any check failed.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--algorithm trivium]
"""

from __future__ import annotations

import argparse
import asyncio
import os
import pathlib
import re
import signal
import subprocess
import sys
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.promlint import lint  # noqa: E402
from repro.serve.engine import StreamConfig  # noqa: E402
from repro.serve.loadgen import run_load  # noqa: E402

READY_RE = re.compile(r"^repro-serve listening on ([\d.]+):(\d+)\s*$")


def fail(msg: str) -> "NoReturn":  # noqa: F821 - documentation type only
    print(f"serve_smoke: FAIL — {msg}", file=sys.stderr)
    raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="trivium")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--lanes", type=int, default=1024)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=5)
    parser.add_argument("--n-bytes", type=int, default=32768)
    args = parser.parse_args(argv)

    env = dict(os.environ)
    root = pathlib.Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "-a", args.algorithm, "-s", str(args.seed), "-l", str(args.lanes),
            "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        host = port = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line and proc.poll() is not None:
                fail(f"daemon exited early with {proc.returncode}")
            m = READY_RE.match(line.strip())
            if m:
                host, port = m.group(1), int(m.group(2))
                break
        if port is None:
            fail("no readiness line within 60s")
        print(f"serve_smoke: daemon ready on {host}:{port}")

        result = asyncio.run(
            run_load(
                host,
                port,
                concurrency=args.clients,
                requests_per_client=args.requests,
                n_bytes=args.n_bytes,
            )
        )
        if result.errors:
            fail(f"{result.errors} client errors")
        expected = args.clients * args.requests
        if result.requests != expected:
            fail(f"completed {result.requests}/{expected} requests")
        print(
            f"serve_smoke: {result.requests} requests, {result.rps:.1f} rps, "
            f"p50 {result.p50_ms:.1f} ms, p99 {result.p99_ms:.1f} ms"
        )

        spans = sorted(result.leases)
        for (off_a, len_a), (off_b, _) in zip(spans, spans[1:]):
            if off_a + len_a > off_b:
                fail(f"overlapping leases at offsets {off_a} and {off_b}")
        print(f"serve_smoke: {len(spans)} leases, non-overlapping")

        # conformance: re-derive one served range offline
        cfg = StreamConfig(algorithm=args.algorithm, seed=args.seed, lanes=args.lanes)
        with urllib.request.urlopen(
            f"http://{host}:{port}/v1/bytes?n=64", timeout=30
        ) as resp:
            follow_off = int(resp.headers["X-Repro-Lease-Offset"])
            follow = resp.read()
        rng2 = cfg.make_rng()
        rng2.skip_bytes(follow_off)
        if rng2.read(64) != follow:
            fail(f"served bytes at offset {follow_off} differ from offline stream")
        print("serve_smoke: offline conformance OK")

        with urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=30) as resp:
            problems = lint(resp.read().decode())
        if problems:
            fail(f"/metrics lint problems: {problems}")
        print("serve_smoke: /metrics lint clean")

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        if rc != 0:
            fail(f"daemon exited {rc} after SIGTERM (expected graceful 0)")
        print("serve_smoke: graceful drain, exit 0")
        print("serve_smoke: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
