"""Baseline PRNGs: known-answer vectors and bank behaviour."""

import numpy as np
import pytest

from repro.baselines import (
    CellularAutomatonBank,
    LCG64Bank,
    MRG32k3aBank,
    MT19937,
    MT19937Bank,
    MiddleSquareWeylBank,
    ParkMillerBank,
    PhiloxBank,
    Xorshift128PlusBank,
    XorwowBank,
    philox4x32,
)
from repro.errors import SpecificationError

ALL_BANKS = [
    MRG32k3aBank,
    MT19937Bank,
    XorwowBank,
    PhiloxBank,
    Xorshift128PlusBank,
    ParkMillerBank,
    CellularAutomatonBank,
    LCG64Bank,
    MiddleSquareWeylBank,
]


class TestMT19937KAT:
    def test_canonical_seed_5489(self):
        m = MT19937(5489)
        out = m.random_uint32(10)
        # canonical first outputs of the reference mt19937ar
        assert out[0] == 3499211612
        assert out[1] == 581869302
        assert out[2] == 3890346734
        assert out[3] == 3586334585

    def test_matches_numpy_randomstate(self):
        # numpy's legacy RandomState is the same MT19937 core
        ours = MT19937(12345).random_uint32(100)
        theirs = np.random.RandomState(12345).randint(0, 2**32, size=100, dtype=np.uint64)
        assert np.array_equal(ours.astype(np.uint64), theirs)

    def test_block_boundary_continuity(self):
        m = MT19937(1)
        a = m.random_uint32(1000)
        m2 = MT19937(1)
        b = np.concatenate([m2.random_uint32(624), m2.random_uint32(376)])
        assert np.array_equal(a, b)


class TestPhiloxKAT:
    def test_zero_vector(self):
        out = philox4x32(np.zeros((1, 4), dtype=np.uint32), np.zeros(2, dtype=np.uint32))
        assert [hex(int(x)) for x in out[0]] == ["0x6627e8d5", "0xe169c58d", "0xbc57ac4c", "0x9b00dbd8"]

    def test_bijection_distinct_counters(self):
        ctrs = np.zeros((4, 4), dtype=np.uint32)
        ctrs[:, 0] = np.arange(4)
        out = philox4x32(ctrs, np.zeros(2, dtype=np.uint32))
        assert len({row.tobytes() for row in out}) == 4

    def test_key_sensitivity(self):
        c = np.zeros((1, 4), dtype=np.uint32)
        a = philox4x32(c, np.array([0, 0], dtype=np.uint32))
        b = philox4x32(c, np.array([1, 0], dtype=np.uint32))
        assert not np.array_equal(a, b)


@pytest.mark.parametrize("bank_cls", ALL_BANKS)
class TestBankContract:
    def test_deterministic(self, bank_cls):
        a = bank_cls(seed=42, n_streams=8).next_words(64)
        b = bank_cls(seed=42, n_streams=8).next_words(64)
        assert np.array_equal(a, b)

    def test_seed_sensitivity(self, bank_cls):
        a = bank_cls(seed=1, n_streams=8).next_words(64)
        b = bank_cls(seed=2, n_streams=8).next_words(64)
        assert not np.array_equal(a, b)

    def test_minimum_count(self, bank_cls):
        out = bank_cls(seed=0, n_streams=4).next_words(100)
        assert out.size >= 100

    def test_zero_request_rejected(self, bank_cls):
        with pytest.raises(SpecificationError):
            bank_cls(seed=0, n_streams=4).next_words(0)

    def test_invalid_stream_count(self, bank_cls):
        with pytest.raises(SpecificationError):
            bank_cls(seed=0, n_streams=0)

    def test_rough_balance(self, bank_cls):
        words = bank_cls(seed=3, n_streams=16).next_words(4096)
        bits = np.unpackbits(np.ascontiguousarray(words).view(np.uint8))
        if bank_cls is ParkMillerBank:
            # MINSTD's top uint32 bit is structurally 0 — that's the point
            assert 0.40 < bits.mean() < 0.52
        else:
            assert 0.47 < bits.mean() < 0.53


class TestParkMiller:
    def test_recurrence(self):
        bank = ParkMillerBank(seed=0, n_streams=1)
        x0 = int(bank._x[0])
        step = bank._step()
        assert int(step[0]) == (16807 * x0) % 2147483647

    def test_stays_in_range(self):
        bank = ParkMillerBank(seed=5, n_streams=8)
        out = bank.next_words(256)
        assert out.max() < 2**31


class TestXorshift:
    def test_never_all_zero(self):
        bank = Xorshift128PlusBank(seed=0, n_streams=64)
        assert np.all((bank._s0 | bank._s1) != 0)


class TestOpsAccounting:
    @pytest.mark.parametrize("bank_cls", ALL_BANKS)
    def test_ops_per_bit_positive(self, bank_cls):
        bank = bank_cls(seed=0, n_streams=2)
        assert bank.ops_per_output_bit() > 0

    def test_ca_is_most_expensive(self):
        # Table 1's CA-PRNG row is the slowest family; our op model agrees.
        ca = CellularAutomatonBank(seed=0, n_streams=2).ops_per_output_bit()
        others = [c(seed=0, n_streams=2).ops_per_output_bit() for c in ALL_BANKS if c is not CellularAutomatonBank]
        assert ca > max(others)


class TestMRG32k3a:
    def test_recurrence_matches_scalar(self):
        """Lockstep bank vs a straight transcription of L'Ecuyer's
        recurrences, per stream."""
        bank = MRG32k3aBank(seed=42, n_streams=3)
        x1 = [row.tolist() for row in bank._x1]
        x2 = [row.tolist() for row in bank._x2]

        def scalar_step(i):
            p1 = (1403580 * x1[i][1] - 810728 * x1[i][0]) % 4294967087
            p2 = (527612 * x2[i][2] - 1370589 * x2[i][0]) % 4294944443
            x1[i] = [x1[i][1], x1[i][2], p1]
            x2[i] = [x2[i][1], x2[i][2], p2]
            return (p1 - p2) % 4294967087

        words = bank.next_words(15).reshape(5, 3)
        for t in range(5):
            for i in range(3):
                assert int(words[t, i]) == scalar_step(i), (t, i)

    def test_output_below_m1(self):
        from repro.baselines.mrg32k3a import MRG32K3A_M1

        out = MRG32k3aBank(seed=1, n_streams=8).next_words(4096)
        assert int(out.max()) < MRG32K3A_M1

    def test_state_stays_in_range(self):
        from repro.baselines.mrg32k3a import MRG32K3A_M1, MRG32K3A_M2

        bank = MRG32k3aBank(seed=9, n_streams=4)
        bank.next_words(1024)
        assert np.all((bank._x1 >= 0) & (bank._x1 < MRG32K3A_M1))
        assert np.all((bank._x2 >= 0) & (bank._x2 < MRG32K3A_M2))

    def test_streams_differ(self):
        bank = MRG32k3aBank(seed=3, n_streams=4)
        words = bank.next_words(64).reshape(-1, 4)
        assert np.unique(words[0]).size == 4

    def test_generator_registration(self):
        from repro import BSRNG, available_algorithms

        assert "mrg32k3a" in available_algorithms()
        rng = BSRNG("mrg32k3a", seed=2, lanes=32)
        assert len(rng.random_bytes(64)) == 64
