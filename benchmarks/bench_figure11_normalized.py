"""E4 — Figure 11: normalized performance (Gbps per GFLOPS) of the
proposed method vs prior work and cuRAND.

Each prior-work row is normalized to its own device rating (recomputed
from Table 1); our kernels are normalized to the device the anchored
model predicts them on.
"""

from _emit import emit_bench
from conftest import emit_table

from repro.gpu.model import ThroughputModel
from repro.gpu.priorwork import PRIOR_WORK
from repro.gpu.specs import get_gpu


def build_series():
    model = ThroughputModel()
    series = []
    for row in PRIOR_WORK:
        series.append((f"{row.method} ({row.year})", row.normalized))
    for kernel in ("aes128ctr", "grain", "mickey2", "curand-mt"):
        for gpu_name in ("GTX 980 Ti", "GTX 2080 Ti", "Tesla V100"):
            gbps = model.predict_gbps(kernel, gpu_name)
            series.append((f"{kernel} on {gpu_name}", gbps / get_gpu(gpu_name).sp_gflops))
    return series


def test_figure11_normalized(benchmark):
    from repro.report import bar_chart

    series = benchmark(build_series)
    ranked = sorted(series, key=lambda t: -t[1])
    lines = [
        bar_chart(ranked, width=44, unit="Gbps/GFLOPS", fmt="{:.4f}"),
    ]
    emit_table("figure11_normalized", lines)
    emit_bench(
        "figure11_normalized",
        metrics={"gbps_per_gflops": {n: v for n, v in series}},
    )

    vals = dict(series)
    mickey = vals["mickey2 on GTX 2080 Ti"]
    # Figure 11's intended reading: BSRNG's normalized throughput clears
    # every prior row except xorgensGP's outlier claim (see EXPERIMENTS.md).
    beaten = [n for n, v in vals.items() if "(" in n and "on" not in n and mickey > v]
    assert len(beaten) == 5
    # And within our own kernels, MICKEY normalizes best.
    assert mickey >= vals["grain on GTX 2080 Ti"]
    assert mickey > vals["curand-mt on GTX 2080 Ti"]
    assert mickey > vals["aes128ctr on GTX 2080 Ti"]
