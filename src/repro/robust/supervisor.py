"""Partition supervision: retry, timeout, backoff and verified receipt.

The paper's §5.4 scale-out is a straight ``pool.map`` — split the
counter space, run every partition, concatenate.  That works only while
every device always answers.  This supervisor wraps the same fan-out
with the failure handling a production deployment needs:

* a **per-partition timeout** — a hung device does not hang the job;
* **retry with exponential backoff** — failed or timed-out partitions
  are resubmitted on a fresh pool.  Each partition is a pure function of
  ``(seed, start_block, n_blocks)``, so a retried partition regenerates
  *byte-identical* data and the reconstructed stream is unaffected;
* optional **CRC verification** — workers checksum their payload before
  returning it (:func:`repro.crc.table_crc_bytes`); the supervisor
  recomputes on receipt and treats a mismatch as a failed attempt;
* **graceful degradation** — when the worker pool has exhausted its
  retries, remaining partitions run in-process sequentially rather than
  failing the job (disable with ``degrade_sequential=False`` to get a
  :class:`~repro.errors.DeviceFailureError` instead).

Pool hygiene: every round builds its pool with ``maxtasksperchild=1`` so
a worker process never serves two partitions — state corrupted by one
attempt cannot leak into a retry — and tears the pool down with
``terminate()`` in a ``finally`` block, so a ``KeyboardInterrupt``
mid-round leaves no orphaned workers behind.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.crc import CRC32_IEEE, table_crc_bytes
from repro.errors import DeviceFailureError, PartitionCorruptionError, SpecificationError
from repro.obs import flight
from repro.obs.tracing import SpanCollector, span

logger = logging.getLogger(__name__)

__all__ = [
    "SupervisorConfig",
    "PartitionEvent",
    "SupervisorReport",
    "PartitionSupervisor",
    "payload_crc",
    "worker_attempt",
    "unpack_worker_result",
]


def payload_crc(payload: bytes | np.ndarray) -> int:
    """CRC-32 over a partition payload's canonical byte form.

    Workers call this before returning; the supervisor calls it again on
    receipt — both sides must agree on the byte serialisation, hence one
    shared helper.
    """
    data = payload.tobytes() if isinstance(payload, np.ndarray) else payload
    return table_crc_bytes(CRC32_IEEE, data)


def worker_attempt(
    partition: int,
    attempt: int,
    plan_json: str | None,
    verify_crc: bool,
    produce: Callable[[], Any],
    trace=None,
    span_name: str = "worker.attempt",
    process_name: str | None = None,
) -> tuple[Any, int | None, dict, dict | None]:
    """One instrumented worker attempt → ``(result, crc, metrics, spans)``.

    The shared shell every worker entry point follows (device workers,
    lane workers, fleet workers):

    1. resolve the fault plan (explicit JSON first, ``REPRO_FAULT_PLAN``
       env fallback) and apply its *pre*-generation faults;
    2. run ``produce()`` inside a fresh :func:`repro.obs.scoped` registry
       (spawn-safe: established here, in the worker, never inherited)
       and snapshot what it recorded; when *trace* carries a
       ``(trace_id, span_id)`` wire pair the attempt also runs under a
       :class:`~repro.obs.tracing.SpanCollector`, so its spans join the
       caller's distributed trace — shipped home as the fourth tuple
       element (``None`` when untraced or recorded in-process);
    3. CRC the payload *before* post-generation faults mutate it, so
       injected corruption models a damaged transfer and is visible to
       the receiving side's verification hook;
    4. apply *post*-generation faults, preserving ndarray payloads'
       dtype and shape through the byte-level mutation.

    ``produce`` returns the payload (``bytes`` or ``np.ndarray``); it
    runs with metrics enabled and should publish whatever the parent
    wants merged back.  A producer that already knows its checksum —
    because it drew through the single-touch path
    (:meth:`~repro.core.generator.BSRNG.read_with_receipt`) — returns a
    :class:`~repro.core.touch.TouchedPayload` instead; the shell then
    reuses that receipt rather than re-reading the (by now cold)
    payload for a second CRC pass.
    """
    from repro.core.touch import TouchedPayload
    from repro.robust.faults import FaultPlan

    plan = FaultPlan.from_json(plan_json) if plan_json else FaultPlan.from_env()
    if plan is not None:
        plan.pre_generate(partition, attempt)
    with obs.scoped() as reg:
        with SpanCollector(
            trace,
            span_name,
            process_name=process_name,
            partition=partition,
            attempt=attempt,
        ) as collector:
            payload = produce()
        pre_crc = None
        if isinstance(payload, TouchedPayload):
            payload, pre_crc = payload.data, payload.crc
            obs.inc("repro_touch_receipts_reused_total", 1)
        metrics = reg.snapshot()
    crc = (pre_crc if pre_crc is not None else payload_crc(payload)) if verify_crc else None
    if plan is not None:
        if isinstance(payload, np.ndarray):
            mutated = plan.post_generate(partition, attempt, payload.tobytes())
            payload = np.frombuffer(mutated, dtype=payload.dtype).reshape(payload.shape)
        else:
            payload = plan.post_generate(partition, attempt, payload)
    return payload, crc, metrics, collector.snapshot


def unpack_worker_result(ret: Any) -> tuple[Any, int | None, dict | None, dict | None]:
    """Normalise a worker return to ``(result, crc, metrics, spans)``.

    Workers return ``(result, crc)``, ``(result, crc, metrics)`` or —
    when tracing propagates across the process boundary —
    ``(result, crc, metrics, span_snapshot)``.  The metrics element is a
    plain-dict :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, the
    spans element a :meth:`~repro.obs.tracing.Tracer.snapshot`; both
    ride back through the (picklable) pool result or fleet transport.
    """
    if isinstance(ret, tuple) and len(ret) == 4:
        return ret
    if isinstance(ret, tuple) and len(ret) == 3:
        result, crc, metrics = ret
        return result, crc, metrics, None
    result, crc = ret
    return result, crc, None, None


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout/verification policy for one generation job."""

    timeout: float | None = None  # seconds per partition round; None = wait forever
    max_retries: int = 2  # pool rounds after the first (attempts = 1 + max_retries)
    backoff_base: float = 0.05  # sleep before retry round r: base * factor**(r-1)
    backoff_factor: float = 2.0
    verify_crc: bool = False
    degrade_sequential: bool = True
    maxtasksperchild: int | None = 1
    #: Pool size cap.  ``None`` (the historical behaviour) sizes each
    #: round's pool to the number of pending partitions — right when a
    #: partition models a physical device.  Shard-style jobs (many more
    #: work units than cores, e.g. the parallel NIST battery) set an
    #: explicit worker count; queued shards then share the capped pool
    #: and the round deadline scales by the resulting number of waves.
    processes: int | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise SpecificationError("timeout must be positive (or None)")
        if self.max_retries < 0:
            raise SpecificationError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise SpecificationError("need backoff_base >= 0 and backoff_factor >= 1")
        if self.processes is not None and self.processes <= 0:
            raise SpecificationError("processes must be positive (or None)")

    def backoff(self, round_index: int) -> float:
        """Sleep before retry round *round_index* (1-based)."""
        return self.backoff_base * self.backoff_factor ** (round_index - 1)


@dataclass
class PartitionEvent:
    """One observed partition failure or recovery action."""

    partition: int
    attempt: int
    kind: str  # "error" | "timeout" | "corrupt" | "degraded"
    detail: str = ""


@dataclass
class SupervisorReport:
    """What the supervisor saw while completing a job."""

    events: list[PartitionEvent] = field(default_factory=list)
    attempts: dict[int, int] = field(default_factory=dict)
    degraded: bool = False
    #: Per-partition wall time from job start to the partition's final
    #: outcome (seconds): the accepted result, or — for partitions that
    #: failed or were evicted mid-attempt — the last observed failure.
    #: Timing failed attempts too is what makes fleet drain latency
    #: measurable; an accepted result always overwrites failure times.
    partition_wall: dict[int, float] = field(default_factory=dict)
    #: Per-partition metrics snapshots shipped back by instrumented workers.
    worker_metrics: dict[int, dict] = field(default_factory=dict)

    @property
    def retried_partitions(self) -> set[int]:
        """Partitions that needed more than one attempt."""
        return {pid for pid, n in self.attempts.items() if n > 1}

    def record(self, event: PartitionEvent) -> None:
        """Append one event (logged at WARNING: every event is a failure
        or a recovery action, never normal operation)."""
        self.events.append(event)
        logger.warning(
            "partition %d attempt %d: %s%s",
            event.partition,
            event.attempt,
            event.kind,
            f" ({event.detail})" if event.detail else "",
        )
        obs.inc("repro_supervisor_events_total", 1, kind=event.kind)


class PartitionSupervisor:
    """Run partition jobs through a worker pool with failure recovery.

    Parameters
    ----------
    worker:
        A picklable module-level function ``worker(payload, attempt) ->
        (result, crc_or_None)``.  The attempt number is threaded through
        so deterministic fault plans can key on it.
    mp_context:
        ``"fork"`` / ``"spawn"`` / ``None`` (auto: fork where available).
    config:
        The :class:`SupervisorConfig` policy.
    """

    def __init__(
        self,
        worker: Callable[[Any, int], tuple[Any, int | None]],
        mp_context: str | None = None,
        config: SupervisorConfig | None = None,
    ) -> None:
        self.worker = worker
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self.config = config or SupervisorConfig()
        self.report = SupervisorReport()
        self._job_t0 = time.monotonic()
        #: Optional payload materialiser, applied to every worker result
        #: before CRC verification.  Ring-aware callers install
        #: :meth:`repro.core.ring.SharedMemoryRing.resolve` here so
        #: shared-memory slot refs become bytes exactly once, in the
        #: parent — and a torn slot write fails verification the same
        #: way a corrupted pickled payload would.
        self.resolve: Callable[[Any], Any] | None = None

    def _materialise(self, result: Any) -> Any:
        return result if self.resolve is None else self.resolve(result)

    # -- attempt bookkeeping -----------------------------------------------------
    #: Kept as a static method for existing callers; the shared parse
    #: lives in :func:`unpack_worker_result`.
    _unpack = staticmethod(unpack_worker_result)

    def _accepted(
        self, pid: int, metrics: dict | None, spans: dict | None = None
    ) -> None:
        """Book-keeping for one accepted partition result."""
        wall = time.monotonic() - self._job_t0
        self.report.partition_wall[pid] = wall
        if metrics is not None:
            self.report.worker_metrics[pid] = metrics
        if spans is not None:
            tracer = obs.active_tracer()
            if tracer is not None:
                tracer.merge(spans, extra_args={"partition": pid})
        obs.observe("repro_supervisor_partition_seconds", wall)

    def _failed(self, pid: int, event: PartitionEvent) -> None:
        """Record one failed attempt *with* its wall time.

        A partition abandoned mid-attempt (timeout, crash, eviction)
        still gets a ``partition_wall`` entry — job start to the failure
        — so drain latency is measurable even when no result was ever
        accepted.  A later accepted attempt overwrites it.
        """
        self.report.record(event)
        self.report.partition_wall[pid] = time.monotonic() - self._job_t0
        flight.record(
            "partition-failure",
            partition=pid,
            attempt=event.attempt,
            failure=event.kind,
            detail=event.detail,
        )

    def _accept(self, pid: int, result: Any, crc: int | None, attempt: int) -> bool:
        """Verify one returned payload; record a corrupt event on mismatch."""
        if self.config.verify_crc:
            got = payload_crc(result)
            if crc is None or got != crc:
                self._failed(
                    pid,
                    PartitionEvent(
                        pid,
                        attempt,
                        "corrupt",
                        f"crc mismatch: worker 0x{crc or 0:08x}, received 0x{got:08x}",
                    ),
                )
                return False
        return True

    def _bump(self, pid: int) -> None:
        n = self.report.attempts.get(pid, 0) + 1
        self.report.attempts[pid] = n
        obs.inc("repro_supervisor_attempts_total")
        if n > 1:
            obs.inc("repro_supervisor_retries_total")

    # -- pool round --------------------------------------------------------------
    def _run_round(self, pending: dict[int, Any], results: dict[int, Any], attempt: int) -> None:
        """One pool pass over every pending partition."""
        cfg = self.config
        ctx = mp.get_context(self.mp_context)
        procs = len(pending) if cfg.processes is None else min(cfg.processes, len(pending))
        pool = ctx.Pool(processes=procs, maxtasksperchild=cfg.maxtasksperchild)
        try:
            handles = {
                pid: pool.apply_async(self.worker, (payload, attempt))
                for pid, payload in pending.items()
            }
            deadline = None
            if cfg.timeout is not None:
                # with a capped pool the pending partitions drain in
                # waves; a queued partition must not be charged for the
                # wait behind partitions that ran first
                waves = -(-len(pending) // procs)
                deadline = time.monotonic() + cfg.timeout * waves
            for pid, handle in handles.items():
                self._bump(pid)
                wait: float | None = None
                if deadline is not None:
                    wait = max(0.0, deadline - time.monotonic())
                try:
                    result, crc, metrics, spans = self._unpack(handle.get(wait))
                    result = self._materialise(result)
                except mp.TimeoutError:
                    self._failed(
                        pid,
                        PartitionEvent(pid, attempt, "timeout", f"no result within {cfg.timeout}s"),
                    )
                    continue
                except Exception as exc:  # worker raised (crash, bad state, ...)
                    self._failed(
                        pid,
                        PartitionEvent(pid, attempt, "error", f"{type(exc).__name__}: {exc}"),
                    )
                    continue
                if self._accept(pid, result, crc, attempt):
                    results[pid] = result
                    self._accepted(pid, metrics, spans)
            for pid in results:
                pending.pop(pid, None)
        finally:
            # terminate (not close): hung or slow workers must die with the
            # round, including on KeyboardInterrupt — no orphaned processes.
            pool.terminate()
            pool.join()

    # -- in-process path ---------------------------------------------------------
    def _run_inline(
        self,
        pending: dict[int, Any],
        results: dict[int, Any],
        first_attempt: int,
    ) -> None:
        """Sequential in-process execution with the same retry policy.

        Used for ``parallel=False`` jobs and as the degraded fallback
        once the worker pool is exhausted.  Timeouts cannot be enforced
        in-process; errors and CRC failures still consume attempts.
        """
        cfg = self.config
        for pid in sorted(pending):
            last: PartitionEvent | None = None
            for attempt in range(first_attempt, first_attempt + cfg.max_retries + 1):
                self._bump(pid)
                if attempt > first_attempt:
                    time.sleep(cfg.backoff(attempt - first_attempt))
                try:
                    result, crc, metrics, spans = self._unpack(self.worker(pending[pid], attempt))
                    result = self._materialise(result)
                except Exception as exc:
                    last = PartitionEvent(pid, attempt, "error", f"{type(exc).__name__}: {exc}")
                    self._failed(pid, last)
                    continue
                if self._accept(pid, result, crc, attempt):
                    results[pid] = result
                    self._accepted(pid, metrics, spans)
                    break
                last = self.report.events[-1]
            else:
                raise (
                    PartitionCorruptionError(f"partition {pid}: {last.detail}")
                    if last is not None and last.kind == "corrupt"
                    else DeviceFailureError(
                        f"partition {pid} failed every attempt"
                        + (f" (last: {last.detail})" if last is not None else "")
                    )
                )
        for pid in results:
            pending.pop(pid, None)

    # -- entry point -------------------------------------------------------------
    def run(self, jobs: dict[int, Any], parallel: bool = True) -> dict[int, Any]:
        """Complete every job; returns ``{partition_id: result}``.

        Raises :class:`DeviceFailureError` only when a partition fails
        every pool attempt *and* every degraded in-process attempt (or
        degradation is disabled).
        """
        self.report = SupervisorReport()
        self._job_t0 = time.monotonic()
        results: dict[int, Any] = {}
        pending = dict(jobs)
        if not pending:
            return results
        cfg = self.config
        if parallel and len(pending) > 1:
            for round_index in range(cfg.max_retries + 1):
                if round_index > 0:
                    time.sleep(cfg.backoff(round_index))
                with span("supervisor.round", round=round_index, partitions=len(pending)):
                    self._run_round(pending, results, attempt=round_index)
                if not pending:
                    return results
            if not cfg.degrade_sequential:
                pid = min(pending)
                last = [e for e in self.report.events if e.partition == pid]
                raise DeviceFailureError(
                    f"partition {pid} failed {self.report.attempts.get(pid, 0)} pool attempts"
                    + (f" (last: {last[-1].kind}: {last[-1].detail})" if last else "")
                )
            self.report.degraded = True
            obs.inc("repro_supervisor_degraded_jobs_total")
            for pid in sorted(pending):
                self.report.record(
                    PartitionEvent(pid, cfg.max_retries + 1, "degraded", "pool exhausted; running in-process")
                )
            with span("supervisor.degraded", partitions=len(pending)):
                self._run_inline(pending, results, first_attempt=cfg.max_retries + 1)
        else:
            self._run_inline(pending, results, first_attempt=0)
        return results
