"""MICKEY 2.0 reference implementation (bit-serial, row-major).

Written directly from the eSTREAM specification (Babbage & Dodd, "The
stream cipher MICKEY 2.0", 2006): two 100-bit registers R (linear,
Galois-tapped) and S (non-linear), mutually irregularly clocked —
*Mutual Irregular Clocking KEYstream generator* (paper §2.3.1, Fig. 2).

This class is the correctness oracle for
:class:`repro.ciphers.mickey_bitsliced.BitslicedMickey2`; it favours
clarity over speed (one Python-level loop iteration per keystream bit).
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array, bits_from_hex
from repro.ciphers._mickey_tables import COMP0_BITS, COMP1_BITS, FB0_BITS, FB1_BITS, R_TAPS_BITS
from repro.errors import KeyScheduleError

__all__ = ["Mickey2"]

KEY_BITS = 80
STATE_BITS = 100
MAX_IV_BITS = 80


def _coerce_bits(value, n_bits: int | None, what: str) -> np.ndarray:
    """Accept hex strings, byte strings or bit arrays; return a bit array."""
    if isinstance(value, str):
        bits = bits_from_hex(value)
    elif isinstance(value, (bytes, bytearray)):
        bits = bits_from_hex(bytes(value).hex())
    else:
        bits = as_bit_array(value)
    if n_bits is not None and bits.size != n_bits:
        raise KeyScheduleError(f"{what} must be exactly {n_bits} bits, got {bits.size}")
    return bits


class Mickey2:
    """One MICKEY 2.0 keystream generator instance.

    Parameters
    ----------
    key:
        80-bit key — hex string, 10 bytes, or an array of 80 bits
        (``key[0]`` is the spec's ``k_0``, i.e. the most significant bit
        of the first key byte).
    iv:
        0–80 bit initialisation vector in the same formats (bit arrays
        may have any length in range; hex strings use their full nibble
        length).
    """

    def __init__(self, key, iv=()) -> None:
        self.R = np.zeros(STATE_BITS, dtype=np.uint8)
        self.S = np.zeros(STATE_BITS, dtype=np.uint8)
        self.reseed(key, iv)

    # -- state machine -----------------------------------------------------
    def _clock_r(self, input_bit: int, control_bit: int) -> None:
        R = self.R
        feedback = R[99] ^ input_bit
        shifted = np.empty_like(R)
        shifted[0] = 0
        shifted[1:] = R[:-1]
        if feedback:
            shifted ^= R_TAPS_BITS
        if control_bit:
            shifted ^= R
        self.R = shifted

    def _clock_s(self, input_bit: int, control_bit: int) -> None:
        S = self.S
        feedback = S[99] ^ input_bit
        s_hat = np.empty_like(S)
        s_hat[0] = 0
        s_hat[1:99] = S[0:98] ^ ((S[1:99] ^ COMP0_BITS[1:99]) & (S[2:100] ^ COMP1_BITS[1:99]))
        s_hat[99] = S[98]
        if feedback:
            s_hat = s_hat ^ (FB1_BITS if control_bit else FB0_BITS)
        self.S = s_hat

    def _clock_kg(self, mixing: bool, input_bit: int) -> None:
        control_bit_r = self.S[34] ^ self.R[67]
        control_bit_s = self.S[67] ^ self.R[33]
        input_bit_r = input_bit ^ self.S[50] if mixing else input_bit
        self._clock_r(int(input_bit_r), int(control_bit_r))
        self._clock_s(int(input_bit), int(control_bit_s))

    # -- public API ----------------------------------------------------------
    def reseed(self, key, iv=()) -> None:
        """Run the spec's key/IV loading: IV, then key, then 100 preclocks."""
        key_bits = _coerce_bits(key, KEY_BITS, "key")
        iv_bits = _coerce_bits(iv, None, "iv") if not isinstance(iv, tuple) or iv else np.zeros(0, dtype=np.uint8)
        if iv_bits.size > MAX_IV_BITS:
            raise KeyScheduleError(f"IV may be at most {MAX_IV_BITS} bits, got {iv_bits.size}")
        self.key_bits = key_bits
        self.iv_bits = iv_bits
        self.R[:] = 0
        self.S[:] = 0
        for bit in iv_bits:
            self._clock_kg(True, int(bit))
        for bit in key_bits:
            self._clock_kg(True, int(bit))
        for _ in range(STATE_BITS):
            self._clock_kg(True, 0)

    def next_bit(self) -> int:
        """Emit one keystream bit and clock the generator."""
        z = int(self.R[0] ^ self.S[0])
        self._clock_kg(False, 0)
        return z

    def keystream(self, n_bits: int) -> np.ndarray:
        """Emit *n_bits* keystream bits as a uint8 array."""
        out = np.empty(n_bits, dtype=np.uint8)
        for i in range(n_bits):
            out[i] = self.next_bit()
        return out

    def keystream_bytes(self, n_bytes: int) -> bytes:
        """Emit keystream packed msb-first per byte (eSTREAM convention:
        the first keystream bit is the high bit of the first byte)."""
        bits = self.keystream(8 * n_bytes)
        return np.packbits(bits, bitorder="big").tobytes()

    def state(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of (R, S) for inspection/tests."""
        return self.R.copy(), self.S.copy()
