"""Structure detectors: cryptographic misuse patterns, not statistics.

Two detectors aimed at *systematic* structure that a broken keystream
pipeline produces and that classical bit-counting tests are slow to
notice:

* :func:`ecb_structure_test` — duplicate cipher blocks.  A correctly
  keyed CTR/stream construction never repeats a 16-byte block except by
  the birthday bound; a pipeline accidentally running ECB over
  structured input (or replaying a counter) repeats blocks immediately.
  The p-value is the exact Poisson tail of the observed duplicate count
  against the birthday expectation — astronomically small on any true
  positive, ``1.0`` otherwise.
* :func:`repeating_xor_test` — repeating-key XOR (Vigenère-over-bytes).
  For key length ``k``, ``data[i] ^ data[i+k]`` cancels the keystream
  and exposes plaintext-vs-plaintext redundancy: the per-bit Hamming
  weight of the shifted XOR drops well below the 0.5 null.  We scan all
  candidate key lengths and Bonferroni-correct the best z-score.  The
  shift-1 lane doubles as a stuck-byte/constant-output detector.

Both report extreme-value p-values (Bonferroni / discrete), so they are
``battery=False``: streaming-only detectors whose job is the failure
tail, not uniform-under-H0 aggregation.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc, gammainc

from repro.errors import SpecificationError
from repro.nist._utils import check_bits
from repro.nist.result import TestResult

__all__ = ["ecb_structure_test", "repeating_xor_test"]

#: Per-byte popcount lookup (uint8 -> number of set bits).
_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)


def _pack_bytes(arr: np.ndarray) -> np.ndarray:
    """Bit array -> uint8 byte array (little bit order, repo convention)."""
    usable = (arr.size // 8) * 8
    return np.packbits(arr[:usable].astype(np.uint8), bitorder="little")


def ecb_structure_test(bits, block_bytes: int = 16) -> TestResult:
    """Duplicate fixed-size blocks vs the birthday-bound Poisson null.

    With ``n`` blocks of ``b`` bytes the expected number of colliding
    pairs under uniformity is ``C(n,2) / 256**b``; observing ``d >= 1``
    duplicate blocks yields ``p = P(Poisson(mu) >= d)`` — effectively
    zero for any real ECB artefact at the default 16-byte block.
    """
    if block_bytes < 4:
        raise SpecificationError("block_bytes must be >= 4 (birthday bound too weak)")
    arr = check_bits(bits, 2 * block_bytes * 8, "ecb_structure")
    data = _pack_bytes(arr)
    n_blocks = data.size // block_bytes
    blocks = data[: n_blocks * block_bytes].reshape(n_blocks, block_bytes)
    # view rows as opaque records so np.unique dedups whole blocks
    records = np.ascontiguousarray(blocks).view(
        np.dtype((np.void, block_bytes))
    ).ravel()
    duplicates = int(n_blocks - np.unique(records).size)
    mu = (n_blocks * (n_blocks - 1) / 2.0) * math.pow(256.0, -block_bytes)
    if duplicates == 0:
        p = 1.0
    else:
        # P(Poisson(mu) >= d) = regularized lower incomplete gamma P(d, mu);
        # numerically exact for tiny mu (~mu**d / d!), no cancellation.
        p = float(gammainc(duplicates, mu))
    return TestResult(
        "ecb_structure",
        [p],
        {
            "n_blocks": n_blocks,
            "block_bytes": block_bytes,
            "duplicates": duplicates,
            "expected_collisions": mu,
        },
    )


def repeating_xor_test(
    bits, max_key_bytes: int = 64, min_overlap_bytes: int = 128
) -> TestResult:
    """Repeating-key XOR detector via shifted Hamming distance.

    For each candidate key length ``k`` the fraction of set bits in
    ``data[:-k] ^ data[k:]`` is compared against its N(0.5, 1/(4n))
    null; the minimum two-sided p over all lengths is Bonferroni
    corrected.  A keystream reused with period ``k`` (or plain
    plaintext) shows a strong deficit at every multiple of ``k``.
    """
    if max_key_bytes < 1:
        raise SpecificationError("max_key_bytes must be positive")
    if min_overlap_bytes < 16:
        raise SpecificationError("min_overlap_bytes must be >= 16")
    need_bytes = max_key_bytes + min_overlap_bytes
    arr = check_bits(bits, need_bytes * 8, "repeating_xor")
    data = _pack_bytes(arr)
    best_p = 1.0
    best_k = 0
    best_z = 0.0
    for k in range(1, max_key_bytes + 1):
        x = data[:-k] ^ data[k:]
        nbits = 8 * x.size
        frac = float(_POPCOUNT[x].sum(dtype=np.int64)) / nbits
        z = (frac - 0.5) * 2.0 * math.sqrt(nbits)
        p = float(erfc(abs(z) / math.sqrt(2.0)))
        if p < best_p:
            best_p, best_k, best_z = p, k, z
    p = min(1.0, max_key_bytes * best_p)
    return TestResult(
        "repeating_xor",
        [p],
        {
            "best_key_len": best_k,
            "best_z": best_z,
            "candidates": max_key_bytes,
        },
    )
