"""Bitsliced AES-CTR: S-box circuit synthesis and lane cross-validation."""

import numpy as np
import pytest

from repro.ciphers.aes import AES128, SBOX, aes128_ctr_keystream
from repro.ciphers.aes_bitsliced import BitslicedAESCTR, sbox_circuit
from repro.core.bitslice import bitslice_bytes, unbitslice_bytes
from repro.core.engine import BitslicedEngine
from repro.errors import KeyScheduleError

KEY = "2b7e151628aed2a6abf7158809cf4f3c"


class TestSBoxCircuit:
    def test_circuit_computes_sbox_for_all_bytes(self):
        circ = sbox_circuit()
        xs = np.arange(256, dtype=np.uint8)
        planes = {f"x{i}": ((xs >> i) & 1).astype(np.uint64) for i in range(8)}
        # promote each lane bit to a full word so the circuit's constants work
        planes = {k: np.where(v == 1, np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64(0)) for k, v in planes.items()}
        out = circ.evaluate(planes)
        got = np.zeros(256, dtype=np.uint8)
        for i in range(8):
            got |= ((out[f"y{i}"] & np.uint64(1)).astype(np.uint8)) << i
        assert np.array_equal(got, SBOX)

    def test_gate_budget(self):
        counts = sbox_circuit().gate_counts()
        # ANF synthesis with monomial sharing: hundreds of gates, far more
        # than Boyar-Peralta's 113 but structurally correct — this is the
        # measured cost behind the paper's "complex bitsliced S-box" remark.
        assert 300 < counts["total"] < 3000
        assert counts["and"] >= 200  # most monomials need an AND each

    def test_compiled_matches_ir_eval(self, rng):
        circ = sbox_circuit()
        fn = circ.compile()
        ins = {f"x{i}": rng.integers(0, 2**63, size=4, dtype=np.uint64) for i in range(8)}
        a = circ.evaluate(ins)
        b = fn(**ins)
        for k in a:
            assert np.array_equal(a[k], b[k])


class TestEncryptPlanes:
    def test_blocks_match_reference(self, small_engine, rng):
        n = small_engine.n_lanes
        bank = BitslicedAESCTR(small_engine)
        bank.load(KEY)
        blocks = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
        planes = bitslice_bytes(blocks, dtype=small_engine.dtype).reshape(16, 8, -1)
        out = unbitslice_bytes(bank._encrypt_planes(planes).reshape(128, -1), n)
        ref = AES128(KEY).encrypt_block(blocks)
        assert np.array_equal(out, ref)


class TestCTRBank:
    def test_lane0_matches_sp80038a(self):
        eng = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bank = BitslicedAESCTR(eng)
        bank.load(KEY, nonce=0xF0F1F2F3F4F5F6F7, counter_start=0xF8F9FAFBFCFDFEFF)
        ks = bank.keystream_bytes_per_lane(1)
        ref = aes128_ctr_keystream(KEY, "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff", 8)
        for lane in range(8):
            assert np.array_equal(ks[lane], ref[lane]), f"lane {lane}"

    def test_batches_advance_counters(self):
        eng = BitslicedEngine(n_lanes=4, dtype=np.uint8)
        bank = BitslicedAESCTR(eng)
        bank.load(KEY, nonce=1)
        two = bank.keystream_bytes_per_lane(2)
        ref = aes128_ctr_keystream(KEY, (1 << 64).to_bytes(16, "big"), 8)
        # batch 0 = counters 0..3, batch 1 = counters 4..7
        assert np.array_equal(two[0, :16], ref[0])
        assert np.array_equal(two[0, 16:], ref[4])
        assert np.array_equal(two[3, 16:], ref[7])

    def test_generation_before_load_rejected(self):
        bank = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.next_planes(1)

    def test_seed_reproducible(self):
        mk = lambda: BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8)).seed(11)
        assert np.array_equal(mk().next_planes(16), mk().next_planes(16))

    def test_next_planes_truncates(self):
        bank = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8)).seed(1)
        assert bank.next_planes(100).shape == (100, 1)

    def test_keystream_bits_shape(self):
        bank = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8)).seed(1)
        assert bank.keystream_bits(200).shape == (8, 200)

    def test_gates_dominated_by_sbox(self):
        bank = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        g = bank.gates_per_output_bit()
        sbox_total = sbox_circuit().gate_counts()["total"]
        assert g > 10 * sbox_total * 16 / 128 * 0.8  # S-box work dominates
