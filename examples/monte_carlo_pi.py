#!/usr/bin/env python
"""Monte Carlo simulation on BSRNG streams.

The paper motivates high-throughput PRNGs with "stochastic simulation,
i.e., Monte Carlo simulation" — this example estimates pi by rejection
sampling and prices a European call option by geometric Brownian motion,
comparing the bitsliced CSPRNGs against the cuRAND-lineage baselines.

Run:  python examples/monte_carlo_pi.py
"""

import math
import time

import numpy as np

from repro import BSRNG

N_PI = 2_000_000
N_PATHS = 200_000


def estimate_pi(rng: BSRNG, n: int) -> float:
    xy = rng.random(2 * n).reshape(2, n)
    inside = (xy[0] ** 2 + xy[1] ** 2 <= 1.0).sum()
    return 4.0 * inside / n


def price_call(rng: BSRNG, n_paths: int, s0=100.0, k=105.0, r=0.03, sigma=0.2, t=1.0) -> float:
    """European call via terminal-value GBM sampling."""
    z = rng.normal(n_paths)
    st = s0 * np.exp((r - 0.5 * sigma**2) * t + sigma * math.sqrt(t) * z)
    payoff = np.maximum(st - k, 0.0)
    return math.exp(-r * t) * float(payoff.mean())


def black_scholes_call(s0=100.0, k=105.0, r=0.03, sigma=0.2, t=1.0) -> float:
    from scipy.stats import norm

    d1 = (math.log(s0 / k) + (r + sigma**2 / 2) * t) / (sigma * math.sqrt(t))
    d2 = d1 - sigma * math.sqrt(t)
    return s0 * norm.cdf(d1) - k * math.exp(-r * t) * norm.cdf(d2)


def main() -> None:
    algorithms = ["mickey2", "grain", "xorwow", "philox", "mt19937"]
    bs_ref = black_scholes_call()

    print(f"{'algorithm':<12}{'pi estimate':>13}{'|err|':>10}{'call price':>12}"
          f"{'BS err':>9}{'seconds':>9}")
    print("-" * 65)
    for alg in algorithms:
        rng = BSRNG(alg, seed=42, lanes=2048)
        t0 = time.perf_counter()
        pi_hat = estimate_pi(rng, N_PI)
        call = price_call(rng, N_PATHS)
        dt = time.perf_counter() - t0
        print(
            f"{alg:<12}{pi_hat:>13.6f}{abs(pi_hat - math.pi):>10.6f}"
            f"{call:>12.4f}{abs(call - bs_ref):>9.4f}{dt:>9.2f}"
        )

    print(f"\nreference: pi = {math.pi:.6f}, Black-Scholes call = {bs_ref:.4f}")
    print(f"(Monte Carlo s.e. ~ {4 * math.sqrt(math.pi/4*(1-math.pi/4)/N_PI):.6f} for pi)")


if __name__ == "__main__":
    main()
