"""SP 800-22 test 13: Cumulative Sums (Cusum), forward and backward."""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.nist._utils import check_bits, plus_minus_one
from repro.nist.result import TestResult

__all__ = ["cumulative_sums_test"]


def _cusum_p_value(z: int, n: int) -> float:
    """SP 800-22 §2.13.4 closed form over the normal CDF Φ."""
    if z == 0:
        return 0.0
    sqrt_n = math.sqrt(n)
    total = 1.0
    k_lo = int(math.floor((-n / z + 1) / 4.0))
    k_hi = int(math.floor((n / z - 1) / 4.0))
    ks = np.arange(k_lo, k_hi + 1, dtype=np.float64)
    total -= float(np.sum(norm.cdf((4 * ks + 1) * z / sqrt_n) - norm.cdf((4 * ks - 1) * z / sqrt_n)))
    k_lo = int(math.floor((-n / z - 3) / 4.0))
    ks = np.arange(k_lo, k_hi + 1, dtype=np.float64)
    total += float(np.sum(norm.cdf((4 * ks + 3) * z / sqrt_n) - norm.cdf((4 * ks + 1) * z / sqrt_n)))
    return total


def cumulative_sums_test(bits) -> TestResult:
    """Maximal excursion of the ±1 random walk, both directions.

    Emits two p-values (forward and reverse scans).
    """
    arr = check_bits(bits, 100, "cumulative_sums")
    n = arr.size
    x = plus_minus_one(arr)
    fwd = np.cumsum(x)
    z_fwd = int(np.max(np.abs(fwd)))
    rev = np.cumsum(x[::-1])
    z_rev = int(np.max(np.abs(rev)))
    p_fwd = _cusum_p_value(z_fwd, n)
    p_rev = _cusum_p_value(z_rev, n)
    return TestResult(
        "CumulativeSums",
        [p_fwd, p_rev],
        {"z_forward": z_fwd, "z_reverse": z_rev},
    )
