"""MT19937 — the Mersenne Twister (Matsumoto & Nishimura 1998).

cuRAND's host API default and the generator behind the paper's cuRAND
baseline ("evaluated using the Mersenne Twister algorithm as the default
cuRand method", §5.2).  :class:`MT19937` is a single classic instance
validated against the canonical ``seed=5489`` output stream;
:class:`MT19937Bank` advances many instances in lockstep with the twist
itself vectorized (no Python loop over the 624 state words).
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank

__all__ = ["MT19937", "MT19937Bank"]

_N = 624
_M = 397
_MATRIX_A = np.uint32(0x9908B0DF)
_UPPER = np.uint32(0x80000000)
_LOWER = np.uint32(0x7FFFFFFF)
_F = np.uint32(1812433253)


def _init_state_from_seeds(seeds: np.ndarray) -> np.ndarray:
    """Vectorized MT init: seeds ``(k,)`` → states ``(k, 624)``."""
    k = seeds.size
    mt = np.empty((k, _N), dtype=np.uint32)
    mt[:, 0] = seeds.astype(np.uint32)
    for i in range(1, _N):
        prev = mt[:, i - 1]
        mt[:, i] = _F * (prev ^ (prev >> np.uint32(30))) + np.uint32(i)
    return mt


def _twist(mt: np.ndarray) -> np.ndarray:
    """One full twist returning the new state (shape ``(..., 624)``).

    The recurrence reads ``mt[(i + M) % N]`` *after* it has been updated
    for ``i >= N - M``, so a single rolled XOR is incorrect; instead the
    ``x``/``xA`` terms (which use only pre-twist values) are computed in
    one shot and the feedback is applied in three dependency-ordered
    segments of length ``N - M = 227``.
    """
    upper = mt & _UPPER
    lower = np.roll(mt, -1, axis=-1) & _LOWER
    x = upper | lower
    xa = x >> np.uint32(1)
    xa ^= np.where((x & np.uint32(1)).astype(bool), _MATRIX_A, np.uint32(0))
    new = np.empty_like(mt)
    k = _N - _M  # 227
    new[..., :k] = mt[..., _M:] ^ xa[..., :k]
    new[..., k : 2 * k] = new[..., :k] ^ xa[..., k : 2 * k]
    new[..., 2 * k :] = new[..., k : k + (_N - 2 * k)] ^ xa[..., 2 * k :]
    return new


def _temper(y: np.ndarray) -> np.ndarray:
    y = y ^ (y >> np.uint32(11))
    y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
    y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
    return y ^ (y >> np.uint32(18))


class MT19937:
    """Single Mersenne-Twister instance (reference semantics).

    Note the batch generation trick: because word ``i`` of a generation
    depends only on the *pre-twist* state, the whole 624-word block is
    twisted at once and tempered vectorized.
    """

    def __init__(self, seed: int = 5489) -> None:
        self._mt = _init_state_from_seeds(np.array([seed], dtype=np.uint64))[0]
        self._idx = _N

    def next_block(self) -> np.ndarray:
        """The next 624 tempered outputs."""
        self._mt = _twist(self._mt)
        return _temper(self._mt)

    def random_uint32(self, n: int) -> np.ndarray:
        """The next *n* tempered 32-bit outputs."""
        out = np.empty(n, dtype=np.uint32)
        filled = 0
        while filled < n:
            block = self.next_block()
            take = min(n - filled, _N)
            out[filled : filled + take] = block[:take]
            filled += take
        return out


class MT19937Bank(StreamBank):
    """``n_streams`` independent Mersenne Twisters in lockstep.

    Each ``_step`` emits one full 624-word block per stream (the natural
    granularity of the algorithm), flattened stream-major.
    """

    word_dtype = np.uint32
    # temper: 8 ops/word; twist amortised: ~7 ops/word.
    ops_per_word = 15.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        self._mt = _init_state_from_seeds(stream_seeds)

    def _step(self) -> np.ndarray:
        self._mt = _twist(self._mt)
        return _temper(self._mt).ravel()

    def next_words(self, n: int) -> np.ndarray:
        """At least *n* words, in whole 624-word blocks per stream."""
        from repro.errors import SpecificationError

        if n <= 0:
            raise SpecificationError("n must be positive")
        steps = -(-n // (self.n_streams * _N))
        chunks = [self._step() for _ in range(steps)]
        return np.concatenate(chunks)
