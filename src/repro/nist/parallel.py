"""Parallel NIST battery — the paper's Table 3 workload at scale.

``run_suite`` walks ``n_sequences × 15 tests`` in one Python loop; at
the gigabit workloads the fused kernels generate, *validating* the
output costs orders of magnitude more than producing it.  But a battery
is embarrassingly parallel — sts-2.1.2 and paranoid_crypto both treat it
as an independent map over (sequence, test) — so this module shards it
across a supervised process pool:

* **Shard layout** — :func:`plan_shards` cuts the work into
  ``(sequence chunk) × (test group)`` units.  Sequence chunks alone
  saturate the pool when there are enough sequences; when there are
  fewer sequences than workers the planner also splits the tests into
  cost-balanced groups (LinearComplexity dwarfs everything else), so
  even a 2-sequence battery fans out.
* **Counter-space sequence partitioning** — a worker never receives
  bits.  It spawns its own :class:`~repro.core.generator.BSRNG` from the
  job's ``(algorithm, seed)`` and seeks to its chunk with
  :meth:`~repro.core.generator.BSRNG.skip_bytes` — sequence *i* owns
  bytes ``[i·⌈n_bits/8⌉, (i+1)·⌈n_bits/8⌉)`` of the stream, exactly the
  bytes the sequential battery would have drawn — so gigabits of input
  never cross a pickle boundary, and the merged report is bit-identical
  to :func:`~repro.nist.suite.run_suite` on the same seed.
* **Supervision** — shards run under a
  :class:`~repro.robust.supervisor.PartitionSupervisor`: per-round
  timeout, retry with backoff on fresh pools, optional CRC verification
  of the (JSON) result payload, and degradation to in-process execution
  when the pool is exhausted.  Because a shard is a pure function of
  ``(seed, seq_start, n_seqs, tests)``, a retried shard reproduces its
  p-values exactly and recovery never perturbs the aggregate.
* **Telemetry** — the parent counts ``repro_nist_shards_total``; each
  worker times every test into the ``repro_nist_test_seconds`` histogram
  (label ``test=<name>``) in a scoped registry that ships back through
  the pool result and merges parent-side with a ``shard`` label.

The merged :class:`~repro.nist.suite.SuiteReport` carries the
:class:`~repro.robust.supervisor.SupervisorReport` in its
``supervision`` field, so callers can see retries and degradation
without a side channel.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro import obs
from repro.errors import PartitionCorruptionError, SpecificationError
from repro.nist.suite import ALL_TESTS, SuiteReport, summarize_pvalues
from repro.obs.tracing import span
from repro.robust.supervisor import PartitionSupervisor, SupervisorConfig, payload_crc

__all__ = [
    "Shard",
    "TEST_COST",
    "plan_shards",
    "run_suite_parallel",
    "run_suite_sequential",
]

#: Relative wall-cost of each test on a fixed-length sequence (measured
#: on 100k-bit inputs, normalised to Frequency = 1).  Only the *ratios*
#: matter: the planner uses them to cost-balance test groups so no shard
#: is stuck with all of LinearComplexity while another runs three
#: sub-millisecond counting tests.
TEST_COST: dict[str, float] = {
    "Frequency": 1,
    "BlockFrequency": 1,
    "CumulativeSums": 6,
    "Runs": 1,
    "LongestRun": 5,
    "Rank": 4,
    "FFT": 3,
    "NonOverlappingTemplate": 1,
    "OverlappingTemplate": 1,
    "Universal": 4,
    "ApproximateEntropy": 4,
    "RandomExcursions": 2,
    "RandomExcursionsVariant": 2,
    "Serial": 7,
    "LinearComplexity": 480,
}


@dataclass(frozen=True)
class Shard:
    """One work unit: a contiguous sequence chunk × a test group."""

    shard_id: int
    seq_start: int
    n_seqs: int
    tests: tuple[str, ...]


def _resolve_names(tests) -> list[str]:
    """Validate a test selection down to names, battery column order.

    ``None`` keeps the historical default — exactly the
    :data:`~repro.nist.suite.ALL_TESTS` members — so default batteries
    are unaffected by whatever plugins the environment discovers.  An
    explicit selection may additionally name any battery-capable plugin
    from the QA registry (:func:`repro.qa.registry.battery_order`);
    shards resolve those names through
    :func:`repro.qa.registry.resolve_battery_plugin` worker-side.
    """
    if tests is None:
        return list(ALL_TESTS)
    names = list(tests)
    if not names:
        raise SpecificationError("no tests selected")
    from repro.qa.registry import battery_order

    order = battery_order()
    unknown = [n for n in names if n not in order]
    if unknown:
        raise SpecificationError(
            f"unknown tests {unknown}; parallel batteries run battery-capable "
            f"plugins (picklable by name): {sorted(order)}"
        )
    return [n for n in order if n in set(names)]


def plan_shards(
    n_sequences: int,
    tests: Iterable[str] | None = None,
    workers: int = 4,
    *,
    seqs_per_shard: int | None = None,
    test_groups: int | None = None,
) -> list[Shard]:
    """Cut a battery into ``(sequence chunk) × (test group)`` shards.

    Defaults aim for ~2 shards per worker (retry granularity and load
    balancing) while splitting tests only when sequence chunks alone
    cannot fill the pool: ``test_groups`` defaults to
    ``ceil(2·workers / n_chunks)``, i.e. 1 whenever there are at least
    twice as many sequence chunks as workers.  Test groups are balanced
    by :data:`TEST_COST` with a greedy longest-processing-time pass.

    Every (sequence, test) pair lands in exactly one shard, chunks are
    contiguous and disjoint, and the layout is a pure function of its
    arguments — a retried shard is the same shard.
    """
    if n_sequences <= 0:
        raise SpecificationError("n_sequences must be positive")
    if workers <= 0:
        raise SpecificationError("workers must be positive")
    names = _resolve_names(tests)
    if seqs_per_shard is None:
        n_chunks = min(n_sequences, 2 * workers)
        seqs_per_shard = -(-n_sequences // n_chunks)
    if seqs_per_shard <= 0:
        raise SpecificationError("seqs_per_shard must be positive")
    n_chunks = -(-n_sequences // seqs_per_shard)
    if test_groups is None:
        test_groups = -(-(2 * workers) // n_chunks)
    test_groups = max(1, min(int(test_groups), len(names)))
    # greedy LPT: heaviest test first, into the lightest group
    order = sorted(range(len(names)), key=lambda i: (-TEST_COST.get(names[i], 1.0), i))
    members: list[set[int]] = [set() for _ in range(test_groups)]
    loads = [0.0] * test_groups
    for i in order:
        g = loads.index(min(loads))
        members[g].add(i)
        loads[g] += TEST_COST.get(names[i], 1.0)
    groups = [tuple(names[i] for i in sorted(m)) for m in members if m]
    shards = []
    for start in range(0, n_sequences, seqs_per_shard):
        count = min(seqs_per_shard, n_sequences - start)
        for g in groups:
            shards.append(Shard(len(shards), start, count, g))
    return shards


def _shard_worker(job, attempt: int = 0) -> tuple[bytes, int | None, dict]:
    """Run one shard (a worker process of the battery pool).

    Spawns the shard's own :class:`~repro.core.generator.BSRNG`, seeks
    to its sequence chunk via ``skip_bytes`` and runs its test group over
    each sequence.  Returns ``(payload, crc, metrics)``: the payload is
    a canonical JSON encoding of ``{test: {p_values, dropped, reason}}``
    — bytes, so the supervisor's CRC verification and the fault plan's
    corruption injection act on it exactly like a generation payload —
    and ``metrics`` is the worker's scoped registry snapshot (per-test
    timing histograms) for the parent-side merge.
    """
    (
        shard_id,
        algorithm,
        seed,
        lanes,
        seq_start,
        n_seqs,
        n_bits,
        test_names,
        fused,
        clocks_per_call,
        dtype_str,
        verify_crc,
        plan_json,
    ) = job
    from repro.core.generator import BSRNG
    from repro.qa.registry import resolve_battery_plugin
    from repro.robust.faults import FaultPlan

    plan = FaultPlan.from_json(plan_json) if plan_json else FaultPlan.from_env()
    if plan is not None:
        plan.pre_generate(shard_id, attempt)
    # name -> plugin via the registry; ALL_TESTS stays the live primitive
    # (a runtime-patched entry resolves to the patched callable, exactly
    # as the historical dict lookup did)
    plugins = [resolve_battery_plugin(name) for name in test_names]
    out: dict[str, dict] = {
        name: {"p_values": [], "dropped": 0, "reason": ""} for name in test_names
    }
    with obs.scoped() as reg:
        rng = BSRNG(
            algorithm,
            seed=seed,
            lanes=lanes,
            dtype=np.uint32 if dtype_str == "uint32" else np.uint64,
            fused=fused,
            clocks_per_call=clocks_per_call,
        )
        seq_bytes = -(-n_bits // 8)
        with span("nist.shard_seek", shard=shard_id, skip_bytes=seq_start * seq_bytes):
            rng.skip_bytes(seq_start * seq_bytes)
        for _ in range(n_seqs):
            bits = rng.random_bits(n_bits)
            for plugin in plugins:
                t0 = time.perf_counter()
                try:
                    result = plugin.run(bits)
                finally:
                    obs.observe(
                        "repro_nist_test_seconds",
                        time.perf_counter() - t0,
                        test=plugin.name,
                    )
                rec = out[plugin.name]
                if not result.ok:
                    rec["dropped"] += 1
                    if not rec["reason"]:
                        rec["reason"] = result.reason
                    continue
                rec["p_values"].extend(result.p_values)
        obs.inc("repro_nist_shard_sequences_total", n_seqs, shard=shard_id)
        metrics = reg.snapshot()
    # canonical byte form: json round-trips Python floats exactly
    # (shortest-repr), so the merged aggregates are bit-identical
    payload = json.dumps(out, sort_keys=True).encode()
    crc = payload_crc(payload) if verify_crc else None
    if plan is not None:
        payload = plan.post_generate(shard_id, attempt, payload)
    return payload, crc, metrics


def run_suite_sequential(
    algorithm: str = "mickey2",
    seed: int = 0,
    lanes: int = 4096,
    *,
    n_sequences: int,
    n_bits: int,
    tests: Iterable[str] | None = None,
    fused: bool | None = None,
    clocks_per_call: int = 32,
    dtype=np.uint64,
) -> SuiteReport:
    """The single-process battery the parallel runner must reproduce.

    One :class:`~repro.core.generator.BSRNG` stream, sequences drawn
    back to back — the reference both for conformance tests and for the
    speedup benchmark's denominator.
    """
    from repro.core.generator import BSRNG
    from repro.qa.battery import run_battery
    from repro.qa.registry import resolve_battery_plugin

    names = _resolve_names(tests)
    rng = BSRNG(
        algorithm, seed=seed, lanes=lanes, dtype=dtype,
        fused=fused, clocks_per_call=clocks_per_call,
    )
    return run_battery(
        lambda i: rng.random_bits(n_bits),
        n_sequences,
        [resolve_battery_plugin(n) for n in names],
    )


def run_suite_parallel(
    algorithm: str = "mickey2",
    seed: int = 0,
    lanes: int = 4096,
    *,
    n_sequences: int,
    n_bits: int,
    tests: Iterable[str] | None = None,
    workers: int = 4,
    timeout: float | None = None,
    max_retries: int = 2,
    mp_context: str | None = None,
    verify_crc: bool = True,
    degrade_sequential: bool = True,
    fault_plan=None,
    seqs_per_shard: int | None = None,
    test_groups: int | None = None,
    fused: bool | None = None,
    clocks_per_call: int = 32,
    dtype=np.uint64,
) -> SuiteReport:
    """Run the battery sharded over *workers* supervised processes.

    Produces the same :class:`~repro.nist.suite.SuiteReport` aggregates
    as :func:`run_suite_sequential` with the same ``(algorithm, seed,
    lanes, n_sequences, n_bits, tests)`` — bit-identical p-value lists,
    skip reasons and drop counts — because every worker regenerates
    exactly the bytes its sequence chunk owns.

    ``tests`` is an iterable of :data:`~repro.nist.suite.ALL_TESTS`
    *names* (shard payloads must pickle; callables stay parent-side).
    ``timeout`` / ``max_retries`` / ``verify_crc`` /
    ``degrade_sequential`` are the
    :class:`~repro.robust.supervisor.SupervisorConfig` policy; a hung or
    crashed shard is retried on a fresh pool and ultimately degrades to
    in-process execution rather than hanging the battery.  ``fault_plan``
    threads a :class:`~repro.robust.faults.FaultPlan` into the shard
    workers (shard ids are the partition ids), and the
    ``REPRO_FAULT_PLAN`` env var reaches spawn-context workers too.
    """
    if n_bits <= 0:
        raise SpecificationError("n_bits must be positive")
    if workers <= 0:
        raise SpecificationError("workers must be positive")
    names = _resolve_names(tests)
    shards = plan_shards(
        n_sequences, names, workers,
        seqs_per_shard=seqs_per_shard, test_groups=test_groups,
    )
    dtype_str = "uint32" if np.dtype(dtype) == np.dtype(np.uint32) else "uint64"
    plan_json = fault_plan.to_json() if fault_plan is not None else None
    jobs = {
        s.shard_id: (
            s.shard_id,
            algorithm,
            seed,
            lanes,
            s.seq_start,
            s.n_seqs,
            n_bits,
            s.tests,
            fused,
            clocks_per_call,
            dtype_str,
            verify_crc,
            plan_json,
        )
        for s in shards
    }
    config = SupervisorConfig(
        timeout=timeout,
        max_retries=max_retries,
        verify_crc=verify_crc,
        degrade_sequential=degrade_sequential,
        processes=workers,
    )
    supervisor = PartitionSupervisor(_shard_worker, mp_context, config)
    t0 = time.perf_counter()
    with span(
        "nist.parallel_suite",
        algo=algorithm,
        sequences=n_sequences,
        bits=n_bits,
        shards=len(jobs),
        workers=workers,
    ):
        raw = supervisor.run(jobs, parallel=workers > 1 and len(jobs) > 1)
    wall = time.perf_counter() - t0
    obs.inc("repro_nist_shards_total", len(jobs), algorithm=algorithm)
    obs.set_gauge("repro_nist_parallel_workers", workers, algorithm=algorithm)
    obs.observe("repro_nist_battery_seconds", wall, algorithm=algorithm)
    if obs.metrics_enabled():
        for pid, snap in sorted(supervisor.report.worker_metrics.items()):
            obs.registry().merge(snap, extra_labels={"shard": pid})

    # -- parent-side merge: battery order is (sequence outer, test inner),
    # so concatenating each test's chunks by ascending seq_start restores
    # exactly the p-value order the sequential loop would have produced.
    collected: dict[str, list[float]] = {name: [] for name in names}
    dropped: dict[str, int] = {name: 0 for name in names}
    reasons: dict[str, str] = {}
    for s in sorted(shards, key=lambda s: (s.seq_start, s.shard_id)):
        try:
            decoded = json.loads(raw[s.shard_id].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise PartitionCorruptionError(
                f"shard {s.shard_id}: undecodable result payload ({exc}); "
                "enable verify_crc to reject corrupt shards at receipt"
            ) from None
        for name in s.tests:
            rec = decoded[name]
            collected[name].extend(rec["p_values"])
            dropped[name] += rec["dropped"]
            if rec["reason"] and name not in reasons:
                reasons[name] = rec["reason"]

    report = SuiteReport(
        n_sequences=n_sequences, n_bits=n_bits, supervision=supervisor.report
    )
    for name in names:
        if collected[name]:
            report.per_test[name] = summarize_pvalues(collected[name])
        else:
            report.skipped[name] = reasons.get(name, "no data")
        if dropped[name]:
            report.errors[name] = dropped[name]
    return report
