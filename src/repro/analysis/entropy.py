"""Entropy estimators for generated bit streams."""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import SpecificationError

__all__ = ["shannon_entropy_estimate", "min_entropy_estimate"]


def shannon_entropy_estimate(bits, block_size: int = 8) -> float:
    """Plug-in Shannon entropy per bit, from block frequencies.

    1.0 means the block distribution is indistinguishable from uniform at
    this sample size; the estimator is biased low by roughly
    ``(2^m − 1) / (2 n ln 2)`` (Miller–Madow), which matters for small n.
    """
    arr = as_bit_array(bits).ravel()
    if block_size <= 0 or block_size > 20:
        raise SpecificationError("block_size must be in [1, 20]")
    n_blocks = arr.size // block_size
    if n_blocks == 0:
        raise SpecificationError("sequence shorter than one block")
    trimmed = arr[: n_blocks * block_size].reshape(n_blocks, block_size)
    weights = 1 << np.arange(block_size - 1, -1, -1, dtype=np.int64)
    vals = trimmed @ weights
    counts = np.bincount(vals, minlength=1 << block_size)
    freqs = counts[counts > 0] / n_blocks
    h = float(-(freqs * np.log2(freqs)).sum())
    return h / block_size


def min_entropy_estimate(bits, block_size: int = 8) -> float:
    """Min-entropy per bit: ``−log2(max block probability) / m``."""
    arr = as_bit_array(bits).ravel()
    if block_size <= 0 or block_size > 20:
        raise SpecificationError("block_size must be in [1, 20]")
    n_blocks = arr.size // block_size
    if n_blocks == 0:
        raise SpecificationError("sequence shorter than one block")
    trimmed = arr[: n_blocks * block_size].reshape(n_blocks, block_size)
    weights = 1 << np.arange(block_size - 1, -1, -1, dtype=np.int64)
    vals = trimmed @ weights
    counts = np.bincount(vals, minlength=1 << block_size)
    p_max = counts.max() / n_blocks
    return float(-np.log2(p_max) / block_size)
