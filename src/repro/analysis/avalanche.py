"""Avalanche measurements: keystream sensitivity to key/IV bit flips.

A healthy cipher flips ~50% of its keystream when any single key or IV
bit changes.  This is the working substitute for per-cipher known-answer
vectors (which eSTREAM's licence keeps out of this repository): a wrong
tap constant or mis-wired feedback collapses avalanche immediately.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpecificationError

__all__ = ["key_avalanche", "avalanche_profile"]


def key_avalanche(
    make_keystream,
    key_bits: int,
    n_flips: int = 16,
    stream_bits: int = 512,
    seed: int = 0,
) -> np.ndarray:
    """Fraction of keystream bits flipped per single-bit key change.

    Parameters
    ----------
    make_keystream:
        ``f(key_bit_array) -> keystream bit array`` of length ≥
        ``stream_bits``.
    key_bits:
        Key length in bits.
    n_flips:
        How many distinct key-bit positions to probe (evenly spread).

    Returns an array of flip fractions, one per probed position.
    """
    if n_flips <= 0 or key_bits <= 0:
        raise SpecificationError("n_flips and key_bits must be positive")
    rng = np.random.default_rng(seed)
    base_key = rng.integers(0, 2, size=key_bits, dtype=np.uint8)
    base = np.asarray(make_keystream(base_key))[:stream_bits]
    positions = np.linspace(0, key_bits - 1, num=min(n_flips, key_bits), dtype=np.int64)
    out = np.empty(positions.size, dtype=np.float64)
    for i, pos in enumerate(positions):
        key = base_key.copy()
        key[pos] ^= 1
        stream = np.asarray(make_keystream(key))[:stream_bits]
        out[i] = float(np.mean(stream != base))
    return out


def avalanche_profile(fractions: np.ndarray) -> dict:
    """Summary statistics + a pass verdict for avalanche fractions.

    Pass criterion: every probed flip lands in [0.4, 0.6] — loose enough
    for 512-bit samples (σ ≈ 0.022), far tighter than any wiring bug.
    """
    arr = np.asarray(fractions, dtype=np.float64)
    if arr.size == 0:
        raise SpecificationError("no avalanche samples")
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "passed": bool(np.all((arr >= 0.4) & (arr <= 0.6))),
    }
