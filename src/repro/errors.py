"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class BitsliceLayoutError(ReproError, ValueError):
    """A bitsliced array has an unexpected shape, dtype or lane count."""


class KeyScheduleError(ReproError, ValueError):
    """A cipher key or IV has an invalid length or type."""


class SpecificationError(ReproError, ValueError):
    """Parameters violate an algorithm's published specification."""


class ModelError(ReproError, ValueError):
    """The GPU performance model was queried with inconsistent inputs."""


class InsufficientDataError(ReproError, ValueError):
    """A statistical test was given fewer bits than it requires."""
