"""E11 — §5.2: "the peak AES performance is limited ... mainly caused by
the complex bitsliced S-box".

Quantifies that: per-kernel gate costs measured from the live circuits,
the S-box's share of the AES round, and the synthesized-circuit vs
row-major table-lookup ablation (design choice #3).
"""

import numpy as np
import pytest
from _emit import emit_bench
from conftest import emit_table, measure_gbps

from repro.ciphers.aes import SBOX
from repro.ciphers.aes_bitsliced import BitslicedAESCTR, sbox_circuit
from repro.core.engine import BitslicedEngine
from repro.gpu.kernels import kernel_profiles


def test_gates_per_bit_table(benchmark):
    """The per-cipher ops/bit table feeding the GPU model."""
    profiles = benchmark(kernel_profiles)
    lines = [
        f"{'kernel':<16}{'gates/bit':>11}{'datapath':>10}{'bits/instr':>12}",
        "-" * 49,
    ]
    for name in ("mickey2", "grain", "aes128ctr", "curand-mt", "curand-xorwow", "curand-philox"):
        p = profiles[name]
        lines.append(
            f"{name:<16}{p.gates_per_bit:>11.1f}{p.datapath_lanes:>10}{p.bits_per_instruction:>12.2f}"
        )
    emit_table("ablation_gates_per_bit", lines)
    emit_bench(
        "ablation_gates_per_bit",
        metrics={
            "gates_per_bit": {
                name: profiles[name].gates_per_bit
                for name in ("mickey2", "grain", "aes128ctr", "curand-mt")
            }
        },
    )

    # The paper's explanation requires AES to pay far more gates per bit
    # than the stream ciphers.
    assert profiles["aes128ctr"].gates_per_bit > 3 * profiles["grain"].gates_per_bit


def test_sbox_share_of_aes(benchmark):
    circuit = benchmark(sbox_circuit)
    counts = circuit.gate_counts()
    aes = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8)).seed(0)
    total_per_bit = aes.gates_per_output_bit()
    sbox_per_bit = 10 * 16 * counts["total"] / 128.0  # 10 rounds x 16 bytes

    lines = [
        f"synthesized S-box circuit: {counts['total']} gates "
        f"(xor={counts['xor']}, and={counts['and']}, not={counts['not']}, or={counts['or']})",
        f"circuit depth: {circuit.depth()}",
        f"AES gates/keystream bit: {total_per_bit:.1f}",
        f"S-box share: {100 * sbox_per_bit / total_per_bit:.1f}%",
    ]
    emit_table("ablation_sbox_share", lines)
    emit_bench(
        "ablation_sbox_share",
        metrics={
            "sbox_gates": counts["total"],
            "circuit_depth": circuit.depth(),
            "aes_gates_per_bit": total_per_bit,
            "sbox_share": sbox_per_bit / total_per_bit,
        },
    )

    # "mainly caused by the complex bitsliced S-box": SubBytes dominates.
    assert sbox_per_bit / total_per_bit > 0.5


def test_circuit_vs_table_lookup(benchmark):
    """Design ablation: ANF circuit vs row-major np.take byte substitution.

    In the bitsliced layout the table lookup is not even expressible
    without transposing back to row-major — the measured comparison runs
    the substitution step both ways at equal byte counts.
    """
    lanes = 1 << 13
    engine = BitslicedEngine(n_lanes=lanes, dtype=np.uint64)
    rng = np.random.default_rng(2)
    # 16 bytes x 8 bit-planes of lane words (one AES state)
    planes = rng.integers(0, 1 << 63, (16, 8, engine.n_words), dtype=np.uint64)
    row_major_bytes = rng.integers(0, 256, (lanes, 16), dtype=np.uint8)

    aes = BitslicedAESCTR(engine).seed(0)

    circuit_gbps = measure_gbps(
        lambda: aes._sub_bytes(planes), 16 * 8 * lanes, repeat=2
    )
    table_gbps = measure_gbps(
        lambda: SBOX[row_major_bytes], 16 * 8 * lanes, repeat=2
    )

    lines = [
        f"{'SubBytes strategy':<34}{'Gbit/s':>10}",
        "-" * 44,
        f"{'ANF circuit (bitsliced)':<34}{circuit_gbps:>10.3f}",
        f"{'table lookup (row-major)':<34}{table_gbps:>10.3f}",
        "",
        "the circuit is the price of staying bitsliced: S-box lookup is",
        "cheap row-major, but forces a transpose per round in that layout",
    ]
    emit_table("ablation_sbox_lookup", lines)
    emit_bench(
        "ablation_sbox_lookup",
        params={"lanes": lanes},
        gbps=circuit_gbps,
        metrics={"table_gbps": table_gbps},
    )
    benchmark.extra_info["circuit_gbps"] = round(circuit_gbps, 3)
    benchmark.extra_info["table_gbps"] = round(table_gbps, 3)
    benchmark.pedantic(lambda: aes._sub_bytes(planes), rounds=2, iterations=1)

    # Both run; the point is the quantified gap, not a winner.
    assert circuit_gbps > 0 and table_gbps > 0
