"""GPU platform catalogue, throughput models and multi-device dispatch.

This package substitutes for the paper's CUDA testbed (six NVIDIA GPUs,
Table 2).  It provides:

``specs``
    The GPU catalogue — Table 2's evaluation platforms and Table 1's
    legacy GPUs — plus the paper's prior-work rows.
``kernels``
    Kernel cost profiles *measured from the live bitsliced circuits*
    (gates per output bit, register pressure, output bytes per bit).
``launch``
    CUDA-style launch configuration and an SM occupancy calculator.
``model``
    Two throughput models: a first-principles roofline over the measured
    gate counts, and an anchored model calibrated to the paper's stated
    numbers (2.72 Tb/s on the 2080 Ti, 2.90 Tb/s on the V100, 1.9× over
    cuRAND on the 980 Ti).  The gap between the two is itself a
    reproduction finding, reported in EXPERIMENTS.md.
``memory``
    Shared-memory staging and coalescing efficiency models (§4.5).
``multigpu``
    Counter-space partitioning across devices, process-backed parallel
    generation, reconstruction equivalence and the scaling model (§5.4).
``latency``
    Time-to-first-byte model for the §6 "delay" drawback discussion.
"""

from repro.gpu.kernels import KernelProfile, kernel_profiles
from repro.gpu.latency import LatencyModel, first_byte_latency_us
from repro.gpu.launch import LaunchConfig, occupancy
from repro.gpu.memory import coalescing_efficiency, staging_efficiency
from repro.gpu.model import ThroughputModel, anchored_throughput_gbps, roofline_gbps
from repro.gpu.multigpu import (
    LanePartitionedGenerator,
    MultiDeviceGenerator,
    partition_counter_space,
    scaling_model,
)
from repro.gpu.priorwork import PRIOR_WORK, PriorWork
from repro.gpu.specs import GPU_CATALOGUE, LEGACY_GPUS, TABLE2_GPUS, GPUSpec

__all__ = [
    "GPUSpec",
    "TABLE2_GPUS",
    "LEGACY_GPUS",
    "GPU_CATALOGUE",
    "PriorWork",
    "PRIOR_WORK",
    "KernelProfile",
    "kernel_profiles",
    "LaunchConfig",
    "occupancy",
    "roofline_gbps",
    "anchored_throughput_gbps",
    "ThroughputModel",
    "staging_efficiency",
    "coalescing_efficiency",
    "MultiDeviceGenerator",
    "LanePartitionedGenerator",
    "LatencyModel",
    "first_byte_latency_us",
    "partition_counter_space",
    "scaling_model",
]
