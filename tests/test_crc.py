"""CRC tests: serial vs table vs bitsliced cross-validation (paper §4.2)."""

import numpy as np
import pytest

from repro.core.engine import BitslicedEngine
from repro.crc import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_IEEE,
    BitslicedCRC,
    SerialCRC,
    crc_table_lookup,
)
from repro.crc.serial import CRCSpec
from repro.errors import SpecificationError

SPECS = [CRC8_ATM, CRC16_CCITT, CRC32_IEEE]


def serial_checksum_bytes(spec, message: bytes) -> int:
    """Oracle: bit-serial CRC of a byte message (msb-first per byte)."""
    crc = SerialCRC(spec)
    bits = np.unpackbits(np.frombuffer(message, dtype=np.uint8), bitorder="big")
    return crc.checksum(bits)


class TestCRCSpec:
    def test_rejects_bad_width(self):
        with pytest.raises(SpecificationError):
            CRCSpec("bad", 0, 0x7)
        with pytest.raises(SpecificationError):
            CRCSpec("bad", 65, 0x7)

    def test_rejects_oversized_poly(self):
        with pytest.raises(SpecificationError):
            CRCSpec("bad", 8, 0x1FF)


class TestSerialCRC:
    def test_crc8_atm_known_value(self):
        # CRC-8-ATM of byte 0x00 from init 0: register stays 0.
        assert serial_checksum_bytes(CRC8_ATM, b"\x00") == 0

    def test_crc8_single_one_bit(self):
        # Feeding a single 1 bit from state 0: top=0, shift, XOR poly.
        crc = SerialCRC(CRC8_ATM)
        crc.reset()
        crc.feed_bit(1)
        assert crc.state == CRC8_ATM.poly

    def test_linearity_without_init(self):
        # CRC with zero init is GF(2)-linear in the message.
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 64, dtype=np.uint8)
        b = rng.integers(0, 2, 64, dtype=np.uint8)
        crc = SerialCRC(CRC8_ATM)
        assert crc.checksum(a ^ b) == crc.checksum(a) ^ crc.checksum(b)

    def test_affine_with_init(self):
        # Nonzero init makes the map affine: c(a^b) = c(a)^c(b)^c(0).
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2, 80, dtype=np.uint8)
        b = rng.integers(0, 2, 80, dtype=np.uint8)
        crc = SerialCRC(CRC16_CCITT)
        zero = crc.checksum(np.zeros(80, np.uint8))
        assert crc.checksum(a ^ b) == crc.checksum(a) ^ crc.checksum(b) ^ zero

    def test_reset_restores_init(self):
        crc = SerialCRC(CRC32_IEEE)
        crc.feed_bits(np.ones(17, np.uint8))
        crc.reset()
        assert crc.state == CRC32_IEEE.init

    def test_error_detection(self):
        # A single flipped bit always changes the CRC (poly has x^0 term).
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, 120, dtype=np.uint8)
        crc = SerialCRC(CRC8_ATM)
        ref = crc.checksum(msg)
        for pos in (0, 37, 119):
            bad = msg.copy()
            bad[pos] ^= 1
            assert crc.checksum(bad) != ref


class TestTableLookup:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_matches_serial(self, spec):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, size=(8, 16), dtype=np.uint8)
        table_out = crc_table_lookup(spec, data)
        for i in range(data.shape[0]):
            assert int(table_out[i]) == serial_checksum_bytes(spec, data[i].tobytes())

    def test_rejects_narrow_width(self):
        with pytest.raises(SpecificationError):
            crc_table_lookup(CRCSpec("CRC-4", 4, 0x3), np.zeros((1, 1), np.uint8))

    def test_rejects_bad_shape(self):
        with pytest.raises(SpecificationError):
            crc_table_lookup(CRC8_ATM, np.zeros(16, np.uint8))


class TestBitslicedCRC:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_matches_serial_all_lanes(self, spec, dtype):
        engine = BitslicedEngine(n_lanes=37, dtype=dtype)  # deliberately odd
        bs = BitslicedCRC(spec, engine)
        rng = np.random.default_rng(4)
        msgs = rng.integers(0, 2, size=(37, 64), dtype=np.uint8)
        got = bs.checksum_messages(msgs)
        ser = SerialCRC(spec)
        for lane in range(37):
            assert int(got[lane]) == ser.checksum(msgs[lane])

    def test_reset_state_planes(self):
        engine = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bs = BitslicedCRC(CRC16_CCITT, engine)
        rng = np.random.default_rng(5)
        bs.feed_bits(rng.integers(0, 2, (8, 24), dtype=np.uint8))
        bs.reset()
        assert np.all(bs.checksums() == CRC16_CCITT.init)

    def test_incremental_equals_oneshot(self):
        engine = BitslicedEngine(n_lanes=16, dtype=np.uint32)
        bs = BitslicedCRC(CRC8_ATM, engine)
        rng = np.random.default_rng(6)
        msgs = rng.integers(0, 2, (16, 48), dtype=np.uint8)
        bs.reset()
        bs.feed_bits(msgs[:, :20])
        bs.feed_bits(msgs[:, 20:])
        incremental = bs.checksums()
        oneshot = bs.checksum_messages(msgs)
        assert np.array_equal(incremental, oneshot)

    def test_rejects_wrong_lane_count(self):
        engine = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bs = BitslicedCRC(CRC8_ATM, engine)
        with pytest.raises(SpecificationError):
            bs.feed_bits(np.zeros((9, 8), np.uint8))

    def test_rejects_wrong_plane_shape(self):
        engine = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bs = BitslicedCRC(CRC8_ATM, engine)
        with pytest.raises(SpecificationError):
            bs.feed_planes(np.zeros((4, engine.n_words + 1), np.uint8))

    def test_gate_accounting(self):
        # One clock costs 1 + popcount(poly) XOR planes.
        engine = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bs = BitslicedCRC(CRC8_ATM, engine)
        engine.reset_gate_counts()
        bs.feed_planes(np.zeros((10, engine.n_words), np.uint8))
        taps = bin(CRC8_ATM.poly).count("1")
        assert engine.counter.snapshot()["xor"] == 10 * (1 + taps)

    def test_lane_independence(self):
        # Changing one lane's message must not affect other lanes' CRCs.
        engine = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bs = BitslicedCRC(CRC8_ATM, engine)
        rng = np.random.default_rng(7)
        msgs = rng.integers(0, 2, (8, 32), dtype=np.uint8)
        base = bs.checksum_messages(msgs).copy()
        msgs2 = msgs.copy()
        msgs2[3] ^= 1  # flip every bit of lane 3
        out = bs.checksum_messages(msgs2)
        changed = out != base
        assert changed[3]
        assert not changed[np.arange(8) != 3].any()
