"""Baseline PRNGs the paper compares against (or descends from).

The cuRAND library the paper benchmarks (§5.2, Mersenne-Twister default)
is proprietary; we reimplement the algorithms it ships — MT19937, XORWOW,
Philox4x32-10 and MRG32k3a — plus representatives of every generator family in the
paper's Table 1 (xorgens → xorshift128+, Park-Miller, CA-PRNG) and the
historical Middle-Square of §2.1.

All banks share the same shape: ``n_streams`` independent generators
advanced in lockstep by vectorized NumPy ops (the row-major analogue of
"one generator per GPU thread"), emitting words via ``next_words``.
"""

from repro.baselines.ca_prng import CellularAutomatonBank
from repro.baselines.chacha import ChaCha20Bank, chacha20_block
from repro.baselines.lcg import LCG64Bank
from repro.baselines.middle_square import MiddleSquareWeylBank
from repro.baselines.mrg32k3a import MRG32k3aBank
from repro.baselines.mt19937 import MT19937, MT19937Bank
from repro.baselines.park_miller import ParkMillerBank
from repro.baselines.rc4 import RC4Bank, rc4_keystream
from repro.baselines.philox import PhiloxBank, philox4x32
from repro.baselines.xorshift import Xorshift128PlusBank
from repro.baselines.xorwow import XorwowBank

__all__ = [
    "MT19937",
    "MT19937Bank",
    "XorwowBank",
    "MRG32k3aBank",
    "ChaCha20Bank",
    "chacha20_block",
    "RC4Bank",
    "rc4_keystream",
    "PhiloxBank",
    "philox4x32",
    "Xorshift128PlusBank",
    "ParkMillerBank",
    "CellularAutomatonBank",
    "LCG64Bank",
    "MiddleSquareWeylBank",
]
