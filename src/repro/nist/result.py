"""Result container shared by every SP 800-22 test."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TestResult", "ALPHA"]

#: NIST's significance level (the paper uses the same, §5.5).
ALPHA = 0.01


@dataclass
class TestResult:
    """Outcome of one statistical test on one bit sequence.

    ``p_values`` holds every p-value the test produced (some tests emit
    several — serial emits 2, random excursions 8, its variant 18);
    ``p_value`` is their minimum, the conservative scalar NIST uses for
    the pass decision.
    """

    name: str
    p_values: list[float]
    statistics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.p_values = [float(np.clip(p, 0.0, 1.0)) for p in self.p_values]

    @property
    def p_value(self) -> float:
        """The minimum p-value (NIST's conservative scalar)."""
        return min(self.p_values)

    @property
    def passed(self) -> bool:
        """True when the scalar p-value clears alpha = 0.01."""
        return self.p_value >= ALPHA

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"TestResult({self.name}: p={self.p_value:.6f} {status})"
