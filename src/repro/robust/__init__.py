"""Fault tolerance: health-tested generators and supervised scale-out.

Production RNG deployments gate output with startup/continuous health
tests (SP 800-90B, FIPS 140-2) and survive device failure.  This package
adds both layers to the reproduction:

* :mod:`repro.robust.health` — streaming Repetition Count / Adaptive
  Proportion tests and the :class:`HealthMonitoredBSRNG` wrapper;
* :mod:`repro.robust.supervisor` — retry/timeout/backoff/CRC supervision
  for the multi-device partition fan-out;
* :mod:`repro.robust.faults` — a deterministic fault-injection harness
  exercising every recovery path without flakiness.
"""

from repro.robust.faults import FAULT_PLAN_ENV, Fault, FaultPlan, InjectedCrash, StuckBSRNG
from repro.robust.health import (
    AdaptiveProportionTest,
    HealthEvent,
    HealthLog,
    HealthMonitoredBSRNG,
    RepetitionCountTest,
    apt_cutoff,
    rct_cutoff,
    startup_self_test,
)
from repro.robust.supervisor import (
    PartitionEvent,
    PartitionSupervisor,
    SupervisorConfig,
    SupervisorReport,
    payload_crc,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "StuckBSRNG",
    "FAULT_PLAN_ENV",
    "AdaptiveProportionTest",
    "RepetitionCountTest",
    "HealthEvent",
    "HealthLog",
    "HealthMonitoredBSRNG",
    "rct_cutoff",
    "apt_cutoff",
    "startup_self_test",
    "PartitionEvent",
    "PartitionSupervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "payload_crc",
]
