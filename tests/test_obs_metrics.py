"""Metrics layer: instruments, registry, snapshot/merge, exporters."""

import json
import pickle
import threading

import pytest

from repro import obs
from repro.errors import SpecificationError
from repro.obs.metrics import MetricsRegistry, log2_bucket
from repro.obs.promlint import lint

# -- buckets ---------------------------------------------------------------------


def test_log2_bucket_edges():
    assert log2_bucket(1) == 0
    assert log2_bucket(1.5) == 0
    assert log2_bucket(2) == 1
    assert log2_bucket(1024) == 10
    assert log2_bucket(1023.9) == 9
    assert log2_bucket(0.5) == -1
    assert log2_bucket(0) is None
    assert log2_bucket(-3) is None


# -- instruments -----------------------------------------------------------------


def test_counter_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("events_total", kind="x")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(SpecificationError):
        c.inc(-1)


def test_gauge_set_semantics():
    reg = MetricsRegistry()
    g = reg.gauge("level")
    g.set(7)
    g.set(3.5)
    assert g.value == 3.5


def test_histogram_stats_and_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("sizes")
    for v in (1, 2, 3, 1024, 0, -5):
        h.observe(v)
    assert h.count == 6
    assert h.sum == pytest.approx(1025)
    st = h.state()
    assert st["min"] == -5 and st["max"] == 1024
    # 0 and -5 share the underflow bucket; 2 and 3 share exponent 1
    assert st["buckets"] == {"underflow": 2, "0": 1, "1": 2, "10": 1}


def test_empty_histogram_state():
    st = MetricsRegistry().histogram("empty").state()
    assert st["count"] == 0 and st["min"] is None and st["max"] is None


# -- registry --------------------------------------------------------------------


def test_get_or_create_identity():
    reg = MetricsRegistry()
    assert reg.counter("a", x="1") is reg.counter("a", x="1")
    assert reg.counter("a", x="1") is not reg.counter("a", x="2")
    assert len(reg) == 2


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("n")
    with pytest.raises(SpecificationError):
        reg.gauge("n")
    with pytest.raises(SpecificationError):
        reg.histogram("n")


def test_empty_name_raises():
    with pytest.raises(SpecificationError):
        MetricsRegistry().counter("")


def test_concurrent_increments():
    reg = MetricsRegistry()
    c = reg.counter("hits_total")

    def worker():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


# -- snapshot / merge ------------------------------------------------------------


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("bytes_total", algorithm="grain").inc(100)
    reg.gauge("lanes").set(4096)
    h = reg.histogram("refill_bytes")
    h.observe(512)
    h.observe(2048)
    return reg


def test_snapshot_is_picklable_and_jsonable():
    snap = make_registry().snapshot()
    assert snap == pickle.loads(pickle.dumps(snap))
    assert snap == json.loads(json.dumps(snap))


def test_merge_accumulates_counters_and_histograms():
    a, b = make_registry(), make_registry()
    a.merge(b.snapshot())
    merged = a.snapshot()
    by_name = {(m["name"], m["type"]): m for m in merged["metrics"]}
    assert by_name[("bytes_total", "counter")]["value"] == 200
    hist = by_name[("refill_bytes", "histogram")]
    assert hist["count"] == 4 and hist["sum"] == pytest.approx(5120)
    assert hist["buckets"] == {"9": 2, "11": 2}
    # gauges: last write wins, not accumulate
    assert by_name[("lanes", "gauge")]["value"] == 4096


def test_merge_extra_labels_keep_series_distinct():
    parent = MetricsRegistry()
    for pid in (0, 1):
        worker = MetricsRegistry()
        worker.counter("blocks_total").inc(10 * (pid + 1))
        parent.merge(worker.snapshot(), extra_labels={"partition": pid})
    snap = parent.snapshot()
    series = {
        (m["labels"]["partition"], m["value"])
        for m in snap["metrics"]
        if m["name"] == "blocks_total"
    }
    assert series == {("0", 10), ("1", 20)}


def test_merge_rejects_unknown_version():
    with pytest.raises(SpecificationError):
        MetricsRegistry().merge({"version": 99, "metrics": []})


def test_clear():
    reg = make_registry()
    reg.clear()
    assert len(reg) == 0 and reg.snapshot()["metrics"] == []


# -- switchboard -----------------------------------------------------------------


def test_disabled_helpers_are_noops():
    with obs.scoped(enabled=False) as reg:
        obs.inc("c")
        obs.observe("h", 5)
        obs.set_gauge("g", 1)
        assert len(reg) == 0


def test_enabled_helpers_record():
    with obs.scoped() as reg:
        obs.inc("c", 3, k="v")
        obs.observe("h", 5)
        obs.set_gauge("g", 9)
        assert reg.counter("c", k="v").value == 3
        assert reg.histogram("h").count == 1
        assert reg.gauge("g").value == 9


def test_scoped_restores_previous_state():
    before_reg, before_enabled = obs.registry(), obs.metrics_enabled()
    with obs.scoped():
        assert obs.metrics_enabled()
        assert obs.registry() is not before_reg
    assert obs.registry() is before_reg
    assert obs.metrics_enabled() == before_enabled


# -- exporters -------------------------------------------------------------------


def test_prometheus_rendering_lints_clean():
    text = obs.render_prometheus(make_registry().snapshot())
    problems = lint(text)
    assert not problems, problems
    assert '# TYPE bytes_total counter' in text
    assert 'bytes_total{algorithm="grain"} 100' in text
    # log2 histogram: 512 → le=1024, 2048 → le=4096, then +Inf
    assert 'refill_bytes_bucket{le="1024"} 1' in text
    assert 'refill_bytes_bucket{le="4096"} 2' in text
    assert 'refill_bytes_bucket{le="+Inf"} 2' in text
    assert "refill_bytes_count 2" in text


def test_prometheus_underflow_bucket_lints_clean():
    reg = MetricsRegistry()
    h = reg.histogram("deltas")
    for v in (-1, 0, 4):
        h.observe(v)
    text = obs.render_prometheus(reg.snapshot())
    assert not lint(text)
    assert 'deltas_bucket{le="+Inf"} 3' in text


def test_human_rendering():
    out = obs.render_human(make_registry().snapshot())
    assert "counters:" in out and "gauges:" in out and "histograms:" in out
    assert 'bytes_total{algorithm="grain"}' in out
    assert obs.render_human({"version": 1, "metrics": []}).startswith("(no metrics")


def test_snapshot_file_round_trip(tmp_path):
    snap = make_registry().snapshot()
    path = tmp_path / "m.json"
    obs.write_snapshot(snap, str(path))
    assert obs.load_snapshot(str(path)) == snap


def test_load_snapshot_rejects_bad_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 0, "metrics": []}')
    with pytest.raises(SpecificationError):
        obs.load_snapshot(str(path))


def test_dump_unknown_format():
    with pytest.raises(SpecificationError):
        obs.dump({"version": 1, "metrics": []}, "xml", None)
