"""Plugin API, registry, discovery, and the new builtin test families."""

import sys
import textwrap

import numpy as np
import pytest

from repro.errors import InsufficientDataError, SpecificationError
from repro.nist.result import TestResult
from repro.nist.suite import ALL_TESTS
from repro.qa import (
    PluginRegistry,
    PluginResult,
    QAPlugin,
    as_battery_plugin,
    battery_order,
    default_registry,
    reset_default_registry,
    resolve_battery_plugin,
)
from repro.qa.adapters import NIST_MIN_BITS, nist_adapter
from repro.qa.dieharder import birthday_spacings_test, permutations_test
from repro.qa.discovery import PLUGINS_ENV, load_module_plugins
from repro.qa.structure import ecb_structure_test, repeating_xor_test


@pytest.fixture
def reference_bits():
    return np.random.default_rng(0xD1CE).integers(0, 2, 1 << 17, dtype=np.uint8)


class TestPluginResult:
    def test_ok_requires_pvalues(self):
        with pytest.raises(SpecificationError):
            PluginResult(status="ok")

    def test_skipped_carries_no_pvalues(self):
        with pytest.raises(SpecificationError):
            PluginResult(status="skipped", p_values=(0.5,))

    def test_unknown_status_rejected(self):
        with pytest.raises(SpecificationError):
            PluginResult(status="failed", p_values=(0.5,))

    def test_pvalues_clipped(self):
        r = PluginResult(status="ok", p_values=(-0.5, 1.5, 0.25))
        assert r.p_values == (0.0, 1.0, 0.25)
        assert r.p_value == 0.0  # the conservative scalar is the minimum

    def test_skip_has_no_scalar(self):
        r = PluginResult.skipped("why")
        assert not r.ok and r.reason == "why"
        with pytest.raises(SpecificationError):
            _ = r.p_value


class TestQAPluginRun:
    def test_coerces_test_result(self):
        plugin = QAPlugin("t", lambda bits: TestResult("t", [0.5], {"x": 1}))
        r = plugin.run(np.zeros(8, np.uint8))
        assert r.ok and r.p_values == (0.5,) and r.statistics == {"x": 1}

    def test_coerces_scalar_and_iterable(self):
        assert QAPlugin("s", lambda b: 0.7).run(np.zeros(8, np.uint8)).p_values == (0.7,)
        assert QAPlugin("i", lambda b: [0.1, 0.2]).run(
            np.zeros(8, np.uint8)
        ).p_values == (0.1, 0.2)

    def test_coerces_plugin_result_passthrough(self):
        res = PluginResult(status="ok", p_values=(0.3,))
        assert QAPlugin("p", lambda b: res).run(np.zeros(8, np.uint8)) is res

    def test_bad_return_type_raises(self):
        with pytest.raises(SpecificationError, match="expected"):
            QAPlugin("b", lambda b: object()).run(np.zeros(8, np.uint8))

    def test_insufficient_data_becomes_skip_with_fn_reason(self):
        def fn(bits):
            raise InsufficientDataError("needs more")

        r = QAPlugin("t", fn, min_bits=4).run(np.zeros(8, np.uint8))
        assert r.status == "skipped" and r.reason == "needs more"

    def test_crash_below_declared_floor_becomes_skip(self):
        def fn(bits):
            raise IndexError("boom")

        r = QAPlugin("t", fn, min_bits=100).run(np.zeros(8, np.uint8))
        assert r.status == "skipped" and "requires at least 100 bits" in r.reason

    def test_crash_above_declared_floor_propagates(self):
        def fn(bits):
            raise IndexError("boom")

        with pytest.raises(IndexError):
            QAPlugin("t", fn, min_bits=4).run(np.zeros(8, np.uint8))

    def test_params_forwarded_and_with_params(self):
        plugin = QAPlugin("t", lambda b, k=1: float(k) / 10, params={"k": 3})
        assert plugin.run(np.zeros(8, np.uint8)).p_values == (0.3,)
        assert plugin.with_params(k=5).run(np.zeros(8, np.uint8)).p_values == (0.5,)
        assert plugin.params == {"k": 3}  # original untouched (frozen)

    def test_validation(self):
        with pytest.raises(SpecificationError):
            QAPlugin("", lambda b: 0.5)
        with pytest.raises(SpecificationError):
            QAPlugin("t", lambda b: 0.5, min_bits=0)
        with pytest.raises(SpecificationError):
            QAPlugin("t", lambda b: 0.5, alpha=0.0)
        with pytest.raises(SpecificationError):
            QAPlugin("t", "not-callable")

    def test_as_battery_plugin(self):
        plugin = as_battery_plugin("Custom", lambda bits: TestResult("c", [0.9]))
        assert plugin.battery and plugin.min_bits == 1 and plugin.source == "caller"


class TestRegistry:
    def test_duplicate_names_raise(self):
        reg = PluginRegistry()
        reg.register(QAPlugin("a", lambda b: 0.5))
        with pytest.raises(SpecificationError, match="already registered"):
            reg.register(QAPlugin("a", lambda b: 0.5))

    def test_replace_keeps_position(self):
        reg = PluginRegistry()
        reg.register_all([QAPlugin("a", lambda b: 0.5), QAPlugin("b", lambda b: 0.5)])
        reg.register(QAPlugin("a", lambda b: 0.1, family="patched"), replace=True)
        assert reg.names() == ["a", "b"]
        assert reg.get("a").family == "patched"

    def test_unknown_name_raises_with_known_set(self):
        reg = PluginRegistry()
        reg.register(QAPlugin("a", lambda b: 0.5))
        with pytest.raises(SpecificationError, match="registered: \\['a'\\]"):
            reg.get("zzz")

    def test_select_filters(self):
        reg = PluginRegistry()
        reg.register_all(
            [
                QAPlugin("a", lambda b: 0.5, battery=True, streaming=False, cost=10),
                QAPlugin("b", lambda b: 0.5, battery=False, streaming=True, family="x"),
            ]
        )
        assert [p.name for p in reg.select(battery=True)] == ["a"]
        assert [p.name for p in reg.select(streaming=True)] == ["b"]
        assert [p.name for p in reg.select(family="x")] == ["b"]
        assert [p.name for p in reg.select(max_cost=5)] == ["b"]
        assert reg.battery_names() == ["a"]


class TestDefaultRegistryAndBuiltins:
    def test_sp80022_prefix_in_table3_order(self):
        names = default_registry().names()
        assert names[: len(ALL_TESTS)] == list(ALL_TESTS)

    def test_all_builtin_families_present(self):
        reg = default_registry()
        for name in (
            "Autocorrelation",
            "PeriodicBias",
            "ShannonEntropy",
            "MinEntropy",
            "BirthdaySpacings",
            "OverlappingPermutations",
            "EcbStructure",
            "RepeatingXor",
        ):
            assert name in reg

    def test_new_families_are_streaming_not_battery(self):
        reg = default_registry()
        for name in ("BirthdaySpacings", "OverlappingPermutations", "EcbStructure", "RepeatingXor"):
            plugin = reg.get(name)
            assert plugin.streaming and not plugin.battery

    def test_nist_adapter_metadata(self):
        plugin = nist_adapter("LinearComplexity", ALL_TESTS["LinearComplexity"])
        assert plugin.cost == 480
        assert not plugin.streaming  # too heavy for per-window evaluation
        assert plugin.min_bits == NIST_MIN_BITS["LinearComplexity"]
        assert nist_adapter("Frequency", ALL_TESTS["Frequency"]).streaming

    def test_battery_order_is_all_tests_by_default(self):
        assert battery_order() == list(ALL_TESTS)

    def test_resolve_battery_plugin_tracks_live_all_tests(self, monkeypatch):
        monkeypatch.setitem(ALL_TESTS, "Frequency", lambda bits: TestResult("f", [0.123]))
        plugin = resolve_battery_plugin("Frequency")
        assert plugin.run(np.zeros(256, np.uint8)).p_values == (0.123,)

    def test_resolve_rejects_non_battery_plugins(self):
        with pytest.raises(SpecificationError, match="not battery-capable"):
            resolve_battery_plugin("EcbStructure")

    def test_describe_rows_are_jsonable(self):
        import json

        json.dumps(default_registry().describe())


class TestDiscovery:
    def _write_module(self, tmp_path, name, body):
        (tmp_path / f"{name}.py").write_text(textwrap.dedent(body))

    def test_env_module_with_register_hook(self, tmp_path, monkeypatch):
        self._write_module(
            tmp_path,
            "qa_ext_reg",
            """
            from repro.qa import QAPlugin

            def register(registry):
                registry.register(QAPlugin("ExtA", lambda bits: 0.5, source="ext"))
            """,
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv(PLUGINS_ENV, "qa_ext_reg")
        reset_default_registry()
        try:
            reg = default_registry()
            assert "ExtA" in reg and reg.get("ExtA").source == "ext"
            # discovery order: builtins first, env extras after
            assert reg.names().index("ExtA") >= len(ALL_TESTS)
        finally:
            reset_default_registry()

    def test_env_module_with_qa_plugins_iterable(self, tmp_path, monkeypatch):
        self._write_module(
            tmp_path,
            "qa_ext_iter",
            """
            from repro.qa import QAPlugin

            QA_PLUGINS = [QAPlugin("ExtB", lambda bits: 0.5)]
            """,
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        reg = PluginRegistry()
        assert load_module_plugins(reg, "qa_ext_iter") == 1
        # builtin-default source is stamped with the providing module
        assert reg.get("ExtB").source == "module:qa_ext_iter"

    def test_missing_module_raises(self):
        with pytest.raises(SpecificationError, match="cannot import"):
            load_module_plugins(PluginRegistry(), "no_such_module_xyz")

    def test_module_without_hooks_raises(self, tmp_path, monkeypatch):
        self._write_module(tmp_path, "qa_ext_empty", "X = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        with pytest.raises(SpecificationError, match="neither register"):
            load_module_plugins(PluginRegistry(), "qa_ext_empty")

    def test_example_plugin_module_loads(self, monkeypatch):
        # the shipped third-party example must stay loadable as documented
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[1] / "examples"
        monkeypatch.syspath_prepend(str(examples))
        sys.modules.pop("qa_plugin", None)
        reg = PluginRegistry()
        assert load_module_plugins(reg, "qa_plugin") >= 1


class TestNewFamilies:
    def test_birthday_spacings_on_reference(self, reference_bits):
        r = birthday_spacings_test(reference_bits)
        assert 0.0 <= r.p_values[0] <= 1.0
        assert r.statistics["expected"] == 32.0

    def test_birthday_spacings_needs_data(self):
        with pytest.raises(InsufficientDataError):
            birthday_spacings_test(np.zeros(100, np.uint8))

    def test_permutations_on_reference(self, reference_bits):
        r = permutations_test(reference_bits)
        assert 0.0 <= r.p_values[0] <= 1.0
        assert r.statistics["categories"] == 120

    def test_permutations_non_overlap_window_count(self, reference_bits):
        r = permutations_test(reference_bits, overlap=False)
        assert r.statistics["windows"] == (reference_bits.size // 32) // 5
        assert r.statistics["deflation"] == 1.0

    def test_permutations_validates_params(self, reference_bits):
        with pytest.raises(SpecificationError):
            permutations_test(reference_bits, order=1)

    def test_ecb_structure_clean_on_reference(self, reference_bits):
        r = ecb_structure_test(reference_bits)
        assert r.p_values[0] == 1.0 and r.statistics["duplicates"] == 0

    def test_ecb_structure_flags_duplicate_blocks(self, reference_bits):
        data = np.packbits(reference_bits[: 256 * 8], bitorder="little").tobytes()
        doubled = b"".join(data[i : i + 16] * 2 for i in range(0, len(data), 16))
        bits = np.unpackbits(np.frombuffer(doubled, np.uint8), bitorder="little")
        r = ecb_structure_test(bits)
        assert r.statistics["duplicates"] >= 16
        assert r.p_values[0] < 1e-30

    def test_repeating_xor_clean_on_reference(self, reference_bits):
        assert repeating_xor_test(reference_bits).p_values[0] > 1e-6

    def test_repeating_xor_flags_keystream_reuse(self):
        plaintext = (b"attack at dawn, then regroup at the river crossing. " * 40)[:2048]
        key = bytes(range(1, 12))
        cipher = bytes(
            c ^ key[i % len(key)] for i, c in enumerate(plaintext)
        )
        bits = np.unpackbits(np.frombuffer(cipher, np.uint8), bitorder="little")
        r = repeating_xor_test(bits)
        assert r.p_values[0] < 1e-12
        assert r.statistics["best_z"] < 0  # bit deficit, not surplus
        assert 1 <= r.statistics["best_key_len"] <= 64
