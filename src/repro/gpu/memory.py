"""Shared-memory staging and coalescing efficiency models (paper §4.5).

The paper stages each thread's per-clock 32-bit output word in shared
memory and flushes the full buffer to global memory in one coalesced
burst, tuning the buffer size "experimentally by simple try and error".
These two small models capture the mechanics so the ablation benchmark
(E9) can sweep them, and so the roofline knows what fraction of peak DRAM
bandwidth the write path sustains.
"""

from __future__ import annotations

import math

from repro.errors import ModelError

__all__ = ["staging_efficiency", "coalescing_efficiency", "effective_write_bw"]

#: DRAM burst granularity (bytes) — one coalesced transaction segment.
_SEGMENT_BYTES = 128
#: Fixed cost of one global-memory transaction, expressed in equivalent
#: bytes of transfer time (latency ≈ 400 cycles ≈ this many bytes at peak).
_TRANSACTION_OVERHEAD_BYTES = 96.0


def staging_efficiency(stage_bytes: int, flush_overhead_bytes: float = 512.0) -> float:
    """Fraction of peak bandwidth achieved with a staging buffer.

    Each flush pays a fixed synchronisation/launch cost; larger buffers
    amortise it: ``eff = stage / (stage + overhead)``.  The curve has the
    experimentally-observed shape — steep gains up to a few KiB, then a
    plateau (the paper's "suitable size to occupy shared memory").
    """
    if stage_bytes <= 0:
        raise ModelError("stage_bytes must be positive")
    return stage_bytes / (stage_bytes + flush_overhead_bytes)


def coalescing_efficiency(access_stride_words: int = 1, word_bytes: int = 4) -> float:
    """Fraction of transferred bytes that are useful for a given stride.

    Stride 1 (fully coalesced) moves only useful bytes; stride ``s``
    touches ``s×`` the segments for the same useful data, up to the point
    where every word lives in its own 128-byte segment.
    """
    if access_stride_words <= 0:
        raise ModelError("stride must be positive")
    useful_per_segment = max(1, _SEGMENT_BYTES // (access_stride_words * word_bytes))
    return min(1.0, useful_per_segment * word_bytes / _SEGMENT_BYTES)


def effective_write_bw(
    peak_gbs: float,
    stage_bytes: int = 8192,
    stride_words: int = 1,
    word_bytes: int = 4,
) -> float:
    """Modelled sustainable write bandwidth (GB/s) for the output path."""
    if peak_gbs <= 0:
        raise ModelError("peak bandwidth must be positive")
    stage = staging_efficiency(stage_bytes)
    coal = coalescing_efficiency(stride_words, word_bytes)
    # per-transaction overhead on top of the staging amortisation
    seg_eff = _SEGMENT_BYTES / (_SEGMENT_BYTES + _TRANSACTION_OVERHEAD_BYTES / math.sqrt(stage_bytes / 1024.0 + 1.0))
    return peak_gbs * stage * coal * seg_eff
