"""Shared scaffolding for row-major baseline generator banks."""

from __future__ import annotations

import numpy as np

from repro.core.seeding import expand_seed_words
from repro.errors import SpecificationError

__all__ = ["StreamBank"]


class StreamBank:
    """Base class: ``n_streams`` generators advanced in lockstep.

    Subclasses implement ``_step() -> ndarray`` returning one output word
    per stream; ``next_words`` tiles steps into a flat word vector
    (stream-major within each step, steps concatenated).
    """

    #: dtype of the words ``_step`` yields
    word_dtype = np.uint32
    #: approximate arithmetic/logic instructions per emitted word per
    #: stream, for the GPU roofline model (None = unknown)
    ops_per_word: float | None = None

    def __init__(self, seed: int = 0, n_streams: int = 256) -> None:
        if n_streams <= 0:
            raise SpecificationError("n_streams must be positive")
        self.seed = int(seed)
        self.n_streams = int(n_streams)
        self._init_state(expand_seed_words(seed, n_streams, stream=7))

    def _init_state(self, stream_seeds: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def _step(self) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def next_words(self, n: int) -> np.ndarray:
        """At least *n* output words (rounded up to whole bank steps)."""
        if n <= 0:
            raise SpecificationError("n must be positive")
        steps = -(-n // self.n_streams)
        out = np.empty((steps, self.n_streams), dtype=self.word_dtype)
        for i in range(steps):
            out[i] = self._step()
        return out.ravel()

    def ops_per_output_bit(self) -> float:
        """Instructions per output bit (for throughput modelling)."""
        if self.ops_per_word is None:
            return float("nan")
        return self.ops_per_word / (np.dtype(self.word_dtype).itemsize * 8)
