"""Crash/eviction flight recorder: a bounded in-memory black box.

Every participating process keeps a small ring buffer of recent
activity — structured events (health verdicts, CRC strikes, evictions,
job lifecycle), completed spans, whatever the instrumentation feeds it —
and on a *trigger* (health-test failure, CRC strike, eviction, worker
crash, SIGTERM) dumps the buffer plus a metrics snapshot to a JSON file
under ``REPRO_FLIGHT_DIR``.  The chaos drills in
``tools/fleet_chaos.py`` then have a post-mortem record of the seconds
*before* the fault fired, which is exactly the part ``/metrics`` cannot
show after the process is gone.

Like the rest of :mod:`repro.obs`, the disabled path is a true no-op:
:func:`record` and :func:`dump` cost one module-flag check when no
recorder is installed.  Enablement is either explicit
(:func:`enable`) or by environment — the first call through the
module-level helpers checks ``REPRO_FLIGHT_DIR`` once and installs a
recorder pointed there, which is how spawn'd fleet workers with no
inherited state pick it up.

Dump files are named ``flight-<pid>-<seq>-<reason>.json`` so repeated
triggers in one process never clobber each other and a directory of
dumps reads chronologically per process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = [
    "FlightRecorder",
    "FLIGHT_DIR_ENV",
    "enable",
    "disable",
    "enabled",
    "set_role",
    "record",
    "dump",
    "recorder",
]

#: Environment variable naming the dump directory (enables recording).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Dump file schema version.
FLIGHT_SCHEMA_VERSION = 1

#: Default ring capacity (events + spans share the budget).
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of recent events/spans with triggered JSON dumps."""

    def __init__(
        self, directory: str, capacity: int = DEFAULT_CAPACITY, role: str = ""
    ) -> None:
        self.directory = directory
        self.role = role
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=max(capacity, 1))
        self._seq = 0

    def record(self, kind: str, **fields) -> None:
        """Append one structured event to the ring."""
        entry = {"t": time.time(), "kind": kind}
        entry.update(fields)
        with self._lock:
            self._ring.append(entry)

    def note_span(self, span_record) -> None:
        """Append one completed span (wired in by the tracer)."""
        entry = {
            "t": time.time(),
            "kind": "span",
            "name": span_record.name,
            "dur_us": round(span_record.dur_us, 1),
            "trace_id": span_record.trace_id,
            "span_id": span_record.span_id,
            "parent_id": span_record.parent_id,
        }
        if span_record.args:
            entry["args"] = dict(span_record.args)
        with self._lock:
            self._ring.append(entry)

    def dump(self, reason: str) -> str | None:
        """Write the ring to ``flight-<pid>-<seq>-<reason>.json``.

        Returns the path, or ``None`` if the directory is unwritable —
        a flight recorder must never take down the process it is
        documenting.
        """
        from repro import obs

        with self._lock:
            entries = list(self._ring)
            self._seq += 1
            seq = self._seq
        safe_reason = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
        payload = {
            "schema": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "pid": os.getpid(),
            "role": self.role,
            "time": time.time(),
            "entries": entries,
            "metrics": obs.registry().snapshot() if obs.metrics_enabled() else None,
        }
        path = os.path.join(
            self.directory, f"flight-{os.getpid()}-{seq:03d}-{safe_reason}.json"
        )
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=1)
                fh.write("\n")
        except OSError:
            return None
        obs.inc("repro_flight_dumps_total", reason=safe_reason)
        return path


_recorder: FlightRecorder | None = None
_env_checked = False


def _wire_tracer(rec: FlightRecorder | None) -> None:
    from repro.obs import tracing

    tracing._span_sink = None if rec is None else rec.note_span


def enable(
    directory: str, capacity: int = DEFAULT_CAPACITY, role: str = ""
) -> FlightRecorder:
    """Install (and return) a process-wide flight recorder."""
    global _recorder, _env_checked
    _env_checked = True
    _recorder = FlightRecorder(directory, capacity=capacity, role=role)
    _wire_tracer(_recorder)
    return _recorder


def disable() -> None:
    """Remove the recorder; subsequent record/dump calls are no-ops.

    Also stops the once-per-process environment check from re-enabling,
    so tests can turn the recorder off deterministically.
    """
    global _recorder, _env_checked
    _recorder = None
    _env_checked = True
    _wire_tracer(None)


def _from_env() -> None:
    global _env_checked
    _env_checked = True
    directory = os.environ.get(FLIGHT_DIR_ENV)
    if directory:
        enable(directory)


def enabled() -> bool:
    """Whether a recorder is installed (checking the env on first call)."""
    if not _env_checked:
        _from_env()
    return _recorder is not None


def recorder() -> FlightRecorder | None:
    """The installed recorder, if any (checking the env on first call)."""
    if not _env_checked:
        _from_env()
    return _recorder


def set_role(role: str) -> None:
    """Tag this process's dumps (``daemon``, ``fleet-worker-3``, ...)."""
    rec = recorder()
    if rec is not None:
        rec.role = role


def record(kind: str, **fields) -> None:
    """Append one event to the process recorder (no-op while disabled)."""
    if not _env_checked:
        _from_env()
    if _recorder is not None:
        _recorder.record(kind, **fields)


def dump(reason: str) -> str | None:
    """Trigger a dump (no-op while disabled); returns the path or None."""
    if not _env_checked:
        _from_env()
    if _recorder is None:
        return None
    return _recorder.dump(reason)
