"""Rule-30 cellular-automaton PRNG (Wolfram 1986) — the CA-PRNG family
of the paper's Table 1 (Pang et al. 2008, row [33]).

Each stream is a 64-cell circular automaton; the classic construction
emits the centre cell each generation, so one output word costs 32/64
generations — which is why Table 1 shows CA-PRNG as the slowest family.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank
from repro.core.seeding import splitmix64

__all__ = ["CellularAutomatonBank"]


def _rule30(state: np.ndarray) -> np.ndarray:
    """One rule-30 generation on packed 64-cell rings (vectorized)."""
    left = (state << np.uint64(1)) | (state >> np.uint64(63))
    right = (state >> np.uint64(1)) | (state << np.uint64(63))
    return left ^ (state | right)


class CellularAutomatonBank(StreamBank):
    """``n_streams`` rule-30 rings emitting their centre cell."""

    word_dtype = np.uint32
    # 32 generations × 6 ops to produce one 32-bit word.
    ops_per_word = 192.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        self._cells = splitmix64(stream_seeds)
        self._cells[self._cells == 0] = np.uint64(1)

    def _step(self) -> np.ndarray:
        out = np.zeros(self.n_streams, dtype=np.uint32)
        centre = np.uint64(32)
        for i in range(32):
            self._cells = _rule30(self._cells)
            bit = ((self._cells >> centre) & np.uint64(1)).astype(np.uint32)
            out |= bit << np.uint32(i)
        return out
