#!/usr/bin/env python
"""Reproduce the paper's Table 3 workflow: NIST SP 800-22 on bitsliced
MICKEY 2.0 output.

The paper runs 1,000 x 1 Mbit (about an hour here); the default below is
a few minutes' worth.  Adjust N_SEQUENCES / N_BITS freely — the battery
skips tests whose minimum data requirements aren't met, exactly like the
reference sts.

Run:  python examples/nist_validation.py [n_sequences] [n_bits]
"""

import sys
import time

from repro import BSRNG
from repro.nist import ALL_TESTS, run_suite


def main() -> None:
    n_sequences = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    n_bits = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000

    rng = BSRNG("mickey2", seed=0xB5B5, lanes=4096)
    print(
        f"running {len(ALL_TESTS)} NIST SP 800-22 tests on "
        f"{n_sequences} x {n_bits:,} bits of bitsliced MICKEY 2.0 keystream ..."
    )
    t0 = time.perf_counter()
    report = run_suite(lambda i: rng.random_bits(n_bits), n_sequences)
    dt = time.perf_counter() - t0

    print()
    print(report.to_table())
    print()
    print(f"battery time: {dt:.1f}s   all passed: {report.all_passed}")
    if report.skipped:
        print(f"(skipped tests need longer sequences — try n_bits >= 1,000,000)")


if __name__ == "__main__":
    main()
