"""AES-128 reference implementation (FIPS-197) and CTR-mode keystream.

The S-box is *derived*, not transcribed: multiplicative inverse in
GF(2^8) mod the Rijndael polynomial ``x^8+x^4+x^3+x+1`` followed by the
affine map with constant ``0x63``.  That construction is shared with the
bitsliced S-box circuit synthesis (:mod:`repro.ciphers.aes_bitsliced`),
so both paths provably start from the same function, and the whole cipher
is pinned by the FIPS-197 / SP 800-38A known-answer tests.

For PRNG use the paper runs AES in CTR mode (§2.3.2, Fig. 3): encrypt
``nonce || counter`` under a fixed key; every block is 128 fresh
pseudo-random bits and blocks are independent, hence embarrassingly
parallel.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KeyScheduleError

__all__ = ["SBOX", "INV_SBOX", "AES128", "aes128_ctr_keystream", "gf_mul"]

_POLY = 0x11B


def gf_mul(a: int, b: int) -> int:
    """Carry-less multiply in GF(2^8) mod the Rijndael polynomial."""
    out = 0
    while b:
        if b & 1:
            out ^= a
        a <<= 1
        if a & 0x100:
            a ^= _POLY
        b >>= 1
    return out


def _build_sbox() -> tuple[np.ndarray, np.ndarray]:
    # Multiplicative inverses by exhaustion (256 bytes; done once at import).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inv[x] = y
                break
    sbox = np.zeros(256, dtype=np.uint8)
    for x in range(256):
        b = inv[x]
        v = 0
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            v |= bit << i
        sbox[x] = v
    inv_sbox = np.zeros(256, dtype=np.uint8)
    inv_sbox[sbox] = np.arange(256, dtype=np.uint8)
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

_RCON = np.array([0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36], dtype=np.uint8)

# xtime (multiply-by-2) table for MixColumns.
_XTIME = np.array([gf_mul(x, 2) for x in range(256)], dtype=np.uint8)


def _coerce_key(key) -> np.ndarray:
    if isinstance(key, str):
        key = bytes.fromhex(key.replace(" ", ""))
    key = np.frombuffer(bytes(key), dtype=np.uint8) if isinstance(key, (bytes, bytearray)) else np.asarray(key, dtype=np.uint8)
    if key.size != 16:
        raise KeyScheduleError(f"AES-128 key must be 16 bytes, got {key.size}")
    return key.copy()


class AES128:
    """AES-128 block cipher (encrypt direction only — CTR never decrypts).

    Parameters
    ----------
    key:
        16 bytes (hex string, bytes, or uint8 array).
    """

    n_rounds = 10

    def __init__(self, key) -> None:
        self.key = _coerce_key(key)
        self.round_keys = self._expand_key(self.key)

    @staticmethod
    def _expand_key(key: np.ndarray) -> np.ndarray:
        """FIPS-197 key schedule → ``(11, 16)`` round-key bytes."""
        words = [key[4 * i : 4 * i + 4].copy() for i in range(4)]
        for i in range(4, 44):
            temp = words[i - 1].copy()
            if i % 4 == 0:
                temp = np.roll(temp, -1)
                temp = SBOX[temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append(words[i - 4] ^ temp)
        return np.concatenate(words).reshape(11, 16)

    # -- round building blocks (operate on flat 16-byte states, column-major:
    # state byte index = row + 4*col, as in FIPS-197) --------------------------
    @staticmethod
    def _sub_bytes(state: np.ndarray) -> np.ndarray:
        return SBOX[state]

    @staticmethod
    def _shift_rows(state: np.ndarray) -> np.ndarray:
        s = state.reshape(-1, 4, 4)  # (..., col, row) after this view? keep explicit:
        # state[..., 4*c + r]; build (..., r, c) matrix then roll rows left by r.
        m = state.reshape(-1, 4, 4).transpose(0, 2, 1)  # (..., row, col)
        out = np.empty_like(m)
        for r in range(4):
            out[:, r] = np.roll(m[:, r], -r, axis=-1)
        return out.transpose(0, 2, 1).reshape(state.shape)

    @staticmethod
    def _mix_columns(state: np.ndarray) -> np.ndarray:
        cols = state.reshape(-1, 4, 4)  # (..., col, row-in-col)
        a = cols
        t = a[..., 0] ^ a[..., 1] ^ a[..., 2] ^ a[..., 3]
        out = np.empty_like(cols)
        for r in range(4):
            out[..., r] = a[..., r] ^ t ^ _XTIME[a[..., r] ^ a[..., (r + 1) % 4]]
        return out.reshape(state.shape)

    def encrypt_block(self, block) -> np.ndarray:
        """Encrypt one or many 16-byte blocks (``(..., 16)`` uint8)."""
        state = np.atleast_2d(np.asarray(block, dtype=np.uint8)).copy()
        if state.shape[-1] != 16:
            raise KeyScheduleError("AES blocks are 16 bytes")
        state ^= self.round_keys[0]
        for rnd in range(1, self.n_rounds):
            state = self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state ^= self.round_keys[rnd]
        state = self._sub_bytes(state)
        state = self._shift_rows(state)
        state ^= self.round_keys[self.n_rounds]
        return state if np.asarray(block).ndim > 1 else state[0]

    def encrypt_hex(self, plaintext_hex: str) -> str:
        """Encrypt a 32-hex-character block; returns hex ciphertext."""
        pt = np.frombuffer(bytes.fromhex(plaintext_hex), dtype=np.uint8)
        return self.encrypt_block(pt).tobytes().hex()


def _counter_blocks(nonce: np.ndarray, start: int, n_blocks: int) -> np.ndarray:
    """SP 800-38A style counter blocks: big-endian 128-bit increment."""
    base = int.from_bytes(nonce.tobytes(), "big")
    vals = (base + start + np.arange(n_blocks, dtype=object)) % (1 << 128)
    out = np.empty((n_blocks, 16), dtype=np.uint8)
    for i, v in enumerate(vals):
        out[i] = np.frombuffer(int(v).to_bytes(16, "big"), dtype=np.uint8)
    return out


def aes128_ctr_keystream(key, nonce, n_blocks: int, start_block: int = 0) -> np.ndarray:
    """CTR keystream: encryptions of successive counter blocks.

    Parameters
    ----------
    key:
        16-byte AES key.
    nonce:
        16-byte initial counter block (nonce-and-counter concatenated, as
        in the paper's Fig. 3).
    n_blocks / start_block:
        How many 16-byte keystream blocks, and the counter offset — the
        offset is what multi-device partitioning uses (§5.4).

    Returns ``(n_blocks, 16)`` uint8 keystream bytes.
    """
    if isinstance(nonce, str):
        nonce = bytes.fromhex(nonce.replace(" ", ""))
    nonce = np.frombuffer(bytes(nonce), dtype=np.uint8) if isinstance(nonce, (bytes, bytearray)) else np.asarray(nonce, dtype=np.uint8)
    if nonce.size != 16:
        raise KeyScheduleError("CTR nonce/counter block must be 16 bytes")
    cipher = AES128(key)
    blocks = _counter_blocks(nonce, start_block, n_blocks)
    return cipher.encrypt_block(blocks)
