"""Seed-expansion tests: SplitMix64 known-answer vectors, stream
separation and lane key/IV derivation (paper §4.4 initialisation)."""

import numpy as np
import pytest

from repro.core.seeding import (
    derive_lane_material,
    expand_seed_bits,
    expand_seed_words,
    splitmix64,
)
from repro.errors import SpecificationError


class TestSplitMix64:
    def test_known_answer_vectors(self):
        # Reference sequence from the canonical splitmix64.c (Vigna):
        # state 1234567 advanced by the golden ratio then finalised.
        # First three outputs of the standard next() loop.
        state = np.uint64(1234567)
        outs = []
        for _ in range(3):
            with np.errstate(over="ignore"):
                state = state + np.uint64(0x9E3779B97F4A7C15)
            z = state
            with np.errstate(over="ignore"):
                z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
                z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            outs.append(int(z ^ (z >> np.uint64(31))))
        expected = [6457827717110365317, 3203168211198807973, 9817491932198370423]
        assert outs == expected

    def test_finaliser_matches_inline(self):
        # splitmix64(x) must equal finalise(x + GOLDEN) per the module's
        # convention; spot-check against the hand-rolled steps.
        x = np.uint64(42)
        with np.errstate(over="ignore"):
            z = x + np.uint64(0x9E3779B97F4A7C15)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            z = z ^ (z >> np.uint64(31))
        assert int(splitmix64(42)) == int(z)

    def test_vectorized_matches_scalar(self):
        xs = np.arange(100, dtype=np.uint64)
        vec = splitmix64(xs)
        for i in (0, 17, 99):
            assert int(vec[i]) == int(splitmix64(int(xs[i])))

    def test_output_looks_uniform(self):
        words = splitmix64(np.arange(10_000, dtype=np.uint64))
        bits = np.unpackbits(words.view(np.uint8))
        assert abs(bits.mean() - 0.5) < 0.01


class TestExpandSeedWords:
    def test_deterministic(self):
        a = expand_seed_words(99, 64)
        b = expand_seed_words(99, 64)
        assert np.array_equal(a, b)

    def test_seed_sensitivity(self):
        assert not np.array_equal(expand_seed_words(1, 32), expand_seed_words(2, 32))

    def test_stream_separation(self):
        a = expand_seed_words(7, 256, stream=0)
        b = expand_seed_words(7, 256, stream=1)
        # No collisions between streams for the same seed.
        assert not np.intersect1d(a, b).size

    def test_no_duplicates_within_stream(self):
        w = expand_seed_words(0, 100_000)
        assert np.unique(w).size == w.size

    def test_zero_words(self):
        assert expand_seed_words(0, 0).size == 0

    def test_negative_raises(self):
        with pytest.raises(SpecificationError):
            expand_seed_words(0, -1)

    def test_large_seed_wraps(self):
        # Seeds beyond 64 bits are reduced mod 2^64, not rejected.
        assert np.array_equal(expand_seed_words(1 << 64, 4), expand_seed_words(0, 4))


class TestExpandSeedBits:
    def test_shape(self):
        assert expand_seed_bits(3, (5, 80)).shape == (5, 80)

    def test_binary(self):
        bits = expand_seed_bits(3, (1000,))
        assert set(np.unique(bits)) <= {0, 1}

    def test_balanced(self):
        bits = expand_seed_bits(11, (100_000,))
        assert abs(bits.mean() - 0.5) < 0.01

    def test_prefix_consistency(self):
        # Same seed/stream: a larger request extends the smaller one.
        small = expand_seed_bits(5, (64,))
        large = expand_seed_bits(5, (128,))
        assert np.array_equal(large[:64], small)


class TestDeriveLaneMaterial:
    def test_shapes(self):
        keys, ivs = derive_lane_material(1, 33, key_bits=80, iv_bits=40)
        assert keys.shape == (33, 80)
        assert ivs.shape == (33, 40)

    def test_shared_key_mode(self):
        keys, ivs = derive_lane_material(1, 16, key_bits=80, iv_bits=80, shared_key=True)
        assert np.all(keys == keys[0])
        # IVs must still differ per lane (MICKEY's one-key/many-IV usage).
        assert not np.all(ivs == ivs[0])

    def test_independent_keys_mode(self):
        keys, _ = derive_lane_material(1, 16, key_bits=80, iv_bits=40, shared_key=False)
        assert not np.all(keys == keys[0])

    def test_lane_ivs_pairwise_distinct(self):
        _, ivs = derive_lane_material(0, 64, key_bits=80, iv_bits=80)
        packed = np.packbits(ivs, axis=1)
        assert np.unique(packed, axis=0).shape[0] == 64

    def test_key_and_iv_streams_disjoint(self):
        keys, ivs = derive_lane_material(9, 4, key_bits=64, iv_bits=64)
        kw = np.packbits(keys, axis=1).view(np.uint64).ravel()
        iw = np.packbits(ivs, axis=1).view(np.uint64).ravel()
        assert not np.intersect1d(kw, iw).size

    def test_zero_lanes_raises(self):
        with pytest.raises(SpecificationError):
            derive_lane_material(1, 0, key_bits=80, iv_bits=40)
