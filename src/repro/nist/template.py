"""SP 800-22 tests 7 & 8: Non-overlapping and Overlapping Template Matching."""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import SpecificationError
from repro.nist._utils import check_bits, igamc
from repro.nist.result import TestResult

__all__ = ["aperiodic_templates", "non_overlapping_template_test", "overlapping_template_test"]


@lru_cache(maxsize=None)
def aperiodic_templates(m: int) -> tuple[tuple[int, ...], ...]:
    """All aperiodic (non-self-overlapping) m-bit templates.

    A template B is aperiodic iff no proper prefix of B equals the
    matching suffix — the condition under which non-overlapping matches
    are independent.  For m = 9 this yields the 148 templates the sts
    suite ships.
    """
    if not 2 <= m <= 16:
        raise SpecificationError("template length must be in [2, 16]")
    out = []
    for v in range(1 << m):
        bits = tuple((v >> (m - 1 - i)) & 1 for i in range(m))
        ok = True
        for k in range(1, m):
            if bits[:k] == bits[m - k :]:
                ok = False
                break
        if ok:
            out.append(bits)
    return tuple(out)


def _match_positions(arr: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Boolean vector: does the template match starting at each position?"""
    m = template.size
    n = arr.size
    if n < m:
        return np.zeros(0, dtype=bool)
    hits = np.ones(n - m + 1, dtype=bool)
    for j in range(m):
        hits &= arr[j : n - m + 1 + j] == template[j]
    return hits


def _count_nonoverlapping(hits: np.ndarray, m: int) -> int:
    """Greedy left-to-right count of non-overlapping matches."""
    count = 0
    i = 0
    idx = np.flatnonzero(hits)
    for pos in idx:
        if pos >= i:
            count += 1
            i = pos + m
    return count


def non_overlapping_template_test(bits, template=(0, 0, 0, 0, 0, 0, 0, 0, 1), n_blocks: int = 8) -> TestResult:
    """Occurrences of an aperiodic template in disjoint blocks vs. χ².

    Default template is the sts report's canonical ``000000001``.
    """
    tmpl = as_bit_array(template)
    m = tmpl.size
    arr = check_bits(bits, n_blocks * 8 * m, "non_overlapping_template")
    n = arr.size
    block_len = n // n_blocks
    mu = (block_len - m + 1) / 2.0**m
    sigma2 = block_len * (1.0 / 2.0**m - (2 * m - 1) / 2.0 ** (2 * m))
    if sigma2 <= 0:
        raise SpecificationError("block too short for this template length")
    w = np.empty(n_blocks, dtype=np.int64)
    for j in range(n_blocks):
        block = arr[j * block_len : (j + 1) * block_len]
        w[j] = _count_nonoverlapping(_match_positions(block, tmpl), m)
    chi2 = float(np.sum((w - mu) ** 2 / sigma2))
    p = igamc(n_blocks / 2.0, chi2 / 2.0)
    return TestResult(
        "NonOverlappingTemplate",
        [p],
        {"chi2": chi2, "W": w.tolist(), "mu": mu, "sigma2": sigma2, "template": tmpl.tolist()},
    )


# Overlapping-template reference probabilities for m=9, M=1032, K=5
# (SP 800-22 §3.8, as used by sts-2.1.2).
_OVERLAP_PI = (0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865)


def overlapping_template_test(bits, m: int = 9, block_size: int = 1032) -> TestResult:
    """Occurrences of the all-ones template, overlaps allowed.

    Categories {0, 1, 2, 3, 4, ≥5} per block against the compound-Poisson
    reference distribution.
    """
    if (m, block_size) != (9, 1032):
        raise SpecificationError(
            "reference probabilities are tabulated for m=9, M=1032 (the sts defaults)"
        )
    arr = check_bits(bits, block_size, "overlapping_template")
    n = arr.size
    n_blocks = n // block_size
    tmpl = np.ones(m, dtype=np.uint8)
    counts = np.zeros(6, dtype=np.int64)
    blocks = arr[: n_blocks * block_size].reshape(n_blocks, block_size)
    # vectorized across blocks: a window matches iff its min is 1
    hits = np.ones((n_blocks, block_size - m + 1), dtype=bool)
    for j in range(m):
        hits &= blocks[:, j : block_size - m + 1 + j] == tmpl[j]
    per_block = hits.sum(axis=1)
    cats = np.clip(per_block, 0, 5)
    counts = np.bincount(cats, minlength=6)
    expected = n_blocks * np.asarray(_OVERLAP_PI)
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    p = igamc(5 / 2.0, chi2 / 2.0)
    lam = (block_size - m + 1) / 2.0**m
    return TestResult(
        "OverlappingTemplate",
        [p],
        {"chi2": chi2, "counts": counts.tolist(), "lambda": lam, "n_blocks": n_blocks},
    )
