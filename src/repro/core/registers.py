"""Shift-by-renaming register file (paper §4.3).

A row-major LFSR spends most of its cycle on shift-and-mask work.  In the
bitsliced representation the whole shift collapses to *renaming*: the
register file keeps its plane rows in a circular buffer and a shift merely
moves the head index.  No data moves; reads are re-pointed.

Two access paths are provided:

* ``file[i]`` — logical random access (a view of one plane row),
* :meth:`RotatingRegisterFile.gather` — materialise several logical
  positions at once for vectorized kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitsliceLayoutError

__all__ = ["RotatingRegisterFile"]


class RotatingRegisterFile:
    """A circular file of bitsliced plane rows with O(1) shift.

    Logical index 0 is the *oldest* stage (the LFSR's output end); logical
    index ``size - 1`` is the newest.  :meth:`shift_in` retires logical 0
    and makes *plane* the new highest stage — by bumping the head pointer
    and writing a single row.
    """

    def __init__(self, size: int, n_words: int, dtype=np.uint64) -> None:
        if size <= 0 or n_words <= 0:
            raise BitsliceLayoutError("size and n_words must be positive")
        self._buf = np.zeros((size, n_words), dtype=dtype)
        self._head = 0  # physical row of logical index 0
        self.size = size
        self.n_words = n_words
        self.dtype = np.dtype(dtype)
        #: number of logical shifts performed (for period bookkeeping)
        self.shifts = 0

    def _phys(self, i: int) -> int:
        if not -self.size <= i < self.size:
            raise BitsliceLayoutError(f"register index {i} out of range [0, {self.size})")
        if i < 0:
            i += self.size
        return (self._head + i) % self.size

    def __getitem__(self, i: int) -> np.ndarray:
        return self._buf[self._phys(i)]

    def __setitem__(self, i: int, value) -> None:
        self._buf[self._phys(i)] = value

    def __len__(self) -> int:
        return self.size

    def shift_in(self, plane) -> np.ndarray:
        """Retire logical 0, append *plane* as the newest stage.

        Returns the retired plane (a copy — the storage row is reused).
        """
        out = self._buf[self._head].copy()
        self._buf[self._head] = plane
        self._head = (self._head + 1) % self.size
        self.shifts += 1
        return out

    def gather(self, indices) -> np.ndarray:
        """Materialise logical *indices* as a ``(len(indices), n_words)`` array."""
        phys = [(self._head + (i if i >= 0 else i + self.size)) % self.size for i in indices]
        return self._buf[phys]

    def load(self, planes: np.ndarray) -> None:
        """Replace the whole file contents; logical order == row order."""
        planes = np.asarray(planes, dtype=self.dtype)
        if planes.shape != (self.size, self.n_words):
            raise BitsliceLayoutError(
                f"expected shape {(self.size, self.n_words)}, got {planes.shape}"
            )
        self._buf[:] = planes
        self._head = 0

    def snapshot(self) -> np.ndarray:
        """Copy of the file in logical order (row i == logical i)."""
        return np.roll(self._buf, -self._head, axis=0).copy()
