"""End-to-end tests for the serve daemon over real HTTP.

Each fixture boots a full daemon (asyncio server + lease manager +
supervised worker pool) on an ephemeral port in a background thread and
tears it down through the graceful-drain path, so every test run also
exercises startup and shutdown.  The acceptance-critical checks live
here:

* bytes served to concurrent clients are bit-identical to an offline
  :class:`BSRNG` positioned at the announced lease offsets, and the
  granted ranges never overlap;
* ``/metrics`` passes the Prometheus exposition linter in-process;
* an injected *stuck* fault degrades service (the chunk retries and the
  request completes) while ``/healthz`` latches unhealthy;
* an injected worker *crash* is absorbed by supervision — the client
  sees a clean 200, never an error.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro import obs
from repro.obs.promlint import lint
from repro.robust.faults import FAULT_PLAN_ENV, Fault, FaultPlan
from repro.robust.supervisor import SupervisorConfig
from repro.serve import DaemonConfig, ServeDaemon, ServeEngine, StreamConfig
from repro.serve.loadgen import fetch_bytes, percentile, run_load

STREAM = StreamConfig(algorithm="trivium", seed=2024, lanes=256)


@contextmanager
def running_daemon(
    workers: int = 1,
    chunk_bytes: int = 2048,
    queue_depth: int = 2,
    screen: bool = True,
    supervision: SupervisorConfig | None = None,
    journal_path: str | None = None,
):
    engine = ServeEngine(
        STREAM,
        workers=workers,
        supervision=supervision
        or SupervisorConfig(timeout=60.0, max_retries=2, verify_crc=True),
        screen=screen,
    )
    daemon = ServeDaemon(
        engine,
        DaemonConfig(
            port=0,
            chunk_bytes=chunk_bytes,
            queue_depth=queue_depth,
            drain_grace=10.0,
            journal_path=journal_path,
        ),
    )
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()), daemon=True)
    thread.start()
    assert daemon.started.wait(30), "daemon failed to start"
    try:
        yield daemon, f"http://127.0.0.1:{daemon.bound_port}"
    finally:
        daemon.shutdown_threadsafe()
        thread.join(20)
        assert not thread.is_alive(), "daemon failed to drain"
        obs.disable_metrics()
        obs.registry().clear()


@pytest.fixture(scope="module")
def daemon():
    """One shared healthy daemon for the read-only endpoint tests."""
    with running_daemon() as pair:
        yield pair


def get(url: str):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read()


def offline_bytes(offset: int, n: int) -> bytes:
    rng = STREAM.make_rng()
    rng.skip_bytes(offset)
    return rng.read(n)


class TestBytesEndpoint:
    def test_two_concurrent_clients_conform_and_do_not_overlap(self, daemon):
        _, base = daemon
        results: list[tuple[int, bytes]] = []
        errors: list[Exception] = []
        barrier = threading.Barrier(2)

        def client() -> None:
            try:
                barrier.wait()
                for _ in range(3):
                    _, headers, body = get(f"{base}/v1/bytes?n=5000")
                    results.append((int(headers["X-Repro-Lease-Offset"]), body))
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 6

        spans = sorted((off, off + len(body)) for off, body in results)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b, "concurrent leases overlap"

        for offset, body in results:
            assert body == offline_bytes(offset, len(body)), (
                f"served bytes at offset {offset} differ from the offline stream"
            )

    def test_hex_format(self, daemon):
        _, base = daemon
        _, headers, body = get(f"{base}/v1/bytes?n=100&format=hex")
        offset = int(headers["X-Repro-Lease-Offset"])
        assert body == offline_bytes(offset, 100).hex().encode() + b"\n"

    def test_lease_is_released_after_response(self, daemon):
        _, base = daemon
        get(f"{base}/v1/bytes?n=64")
        status = json.loads(get(f"{base}/v1/status")[2])
        assert status["leases"]["active"] == 0

    def test_bad_requests(self, daemon):
        _, base = daemon
        for url, expected in [
            (f"{base}/v1/bytes?n=nope", 400),
            (f"{base}/v1/bytes?n=64&format=dec", 400),
            (f"{base}/nope", 404),
        ]:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(url)
            assert err.value.code == expected


class TestStreamEndpoint:
    def test_bounded_stream_conforms(self, daemon):
        _, base = daemon
        _, headers, body = get(f"{base}/v1/stream?n=9000&chunk=1000")
        offset = int(headers["X-Repro-Lease-Offset"])
        assert len(body) == 9000
        assert body == offline_bytes(offset, 9000)

    def test_slow_reader_hits_backpressure_not_buffers(self, daemon):
        d, base = daemon
        total = 16 << 20  # far beyond transport high-water + kernel buffers
        before = d.status()["server"]["bytes_served"]
        with socket.create_connection(("127.0.0.1", d.bound_port), timeout=30) as sock:
            sock.sendall(
                b"GET /v1/stream?n=%d&chunk=4096 HTTP/1.1\r\n"
                b"Host: x\r\nConnection: close\r\n\r\n" % total
            )
            sock.settimeout(60)
            # do not read: the producer must stall (stop making progress)
            # once queue_depth chunks + transport high-water + kernel socket
            # buffers are full — it must NOT run through to total
            stalled, deadline = -1, time.monotonic() + 60
            while time.monotonic() < deadline:
                time.sleep(0.5)
                now = d.status()["server"]["bytes_served"] - before
                if now == stalled:
                    break  # two consecutive samples: producer has stalled
                stalled = now
            assert stalled < total, (
                f"producer served all {stalled} bytes to a reader that never read"
            )
            chunks = []
            while True:
                piece = sock.recv(1 << 16)
                if not piece:
                    break
                chunks.append(piece)
        payload = b"".join(chunks)
        assert b"0\r\n\r\n" in payload[-10:], "chunked stream must terminate cleanly"


class TestOperationalEndpoints:
    def test_healthz_healthy(self, daemon):
        _, base = daemon
        status, _, body = get(f"{base}/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["healthy"] is True and doc["draining"] is False

    def test_metrics_lint_clean(self, daemon):
        _, base = daemon
        get(f"{base}/v1/bytes?n=256")  # ensure serve metrics exist
        _, headers, body = get(f"{base}/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "repro_serve_requests_total" in text
        assert lint(text) == [], f"/metrics failed the exposition linter: {lint(text)}"

    def test_status_document(self, daemon):
        _, base = daemon
        doc = json.loads(get(f"{base}/v1/status")[2])
        assert doc["engine"]["stream"]["algorithm"] == STREAM.algorithm
        assert doc["server"]["requests_total"] > 0
        assert doc["leases"]["high_water_bytes"] >= 0
        assert doc["engine"]["health"]["healthy"] is True


class TestLoadgenClient:
    def test_run_load_round_trip(self, daemon):
        _, base = daemon
        d, _ = daemon
        result = asyncio.run(
            run_load(
                "127.0.0.1",
                d.bound_port,
                concurrency=2,
                requests_per_client=3,
                n_bytes=2048,
            )
        )
        assert result.errors == 0
        assert result.requests == 6
        assert result.bytes_received == 6 * 2048
        assert result.p50_ms > 0 and result.p99_ms >= result.p50_ms
        spans = sorted(result.leases)
        for (off_a, len_a), (off_b, _) in zip(spans, spans[1:]):
            assert off_a + len_a <= off_b

    def test_percentile_interpolates(self):
        assert percentile([], 50) == 0.0
        assert percentile([5.0], 99) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)


class TestFaultDrills:
    def test_stuck_fault_degrades_and_latches_healthz(self, monkeypatch):
        # chunk 0, attempt 0 returns all-zero bytes: the RCT screen must
        # reject it (failed attempt), the retry serves clean bytes, and
        # the health verdict stays latched for the operator.  CRC receipts
        # are off so the screen — not the transfer check — is the defense
        # (stuck faults mutate after the worker computes its CRC).
        plan = FaultPlan(faults=(Fault(kind="stuck", partition=0, attempt=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        with running_daemon(
            workers=1,
            supervision=SupervisorConfig(timeout=60.0, max_retries=2, verify_crc=False),
        ) as (daemon, base):
            status, headers, body = get(f"{base}/v1/bytes?n=4096")
            assert status == 200
            offset = int(headers["X-Repro-Lease-Offset"])
            assert body == offline_bytes(offset, 4096), "retry must serve true bytes"
            with pytest.raises(urllib.error.HTTPError) as err:
                get(f"{base}/healthz")
            assert err.value.code == 503
            doc = json.loads(err.value.read())
            assert doc["healthy"] is False
            assert doc["events"] and doc["events"][0]["test"] == "rct"
            chunks = daemon.engine.status()["chunks"]
            assert chunks["screen_rejects"] >= 1
            assert chunks["retries"] >= 1

    def test_corrupt_payload_is_caught_by_crc_receipt(self, monkeypatch):
        # corruption happens after the worker's CRC receipt, so the
        # dispatcher sees a transfer-damage mismatch and retries — the
        # health verdict is untouched (the stream itself was fine)
        plan = FaultPlan(faults=(Fault(kind="corrupt", partition=0, attempt=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        with running_daemon(workers=1) as (daemon, base):
            status, headers, body = get(f"{base}/v1/bytes?n=4096")
            assert status == 200
            offset = int(headers["X-Repro-Lease-Offset"])
            assert body == offline_bytes(offset, 4096)
            chunks = daemon.engine.status()["chunks"]
            assert chunks["crc_rejects"] >= 1
            assert get(f"{base}/healthz")[0] == 200

    def test_worker_crash_is_absorbed_by_supervision(self, monkeypatch):
        plan = FaultPlan(faults=(Fault(kind="crash", partition=0, attempt=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        with running_daemon(workers=1) as (daemon, base):
            status, headers, body = get(f"{base}/v1/bytes?n=4096")
            assert status == 200, "a crashed worker must never surface to the client"
            offset = int(headers["X-Repro-Lease-Offset"])
            assert body == offline_bytes(offset, 4096)
            chunks = daemon.engine.status()["chunks"]
            assert chunks["worker_errors"] >= 1
            assert chunks["retries"] >= 1
            # a crash is a worker fault, not evidence against the stream
            assert get(f"{base}/healthz")[0] == 200


class TestGracefulDrain:
    def test_drain_finishes_open_stream_and_exits(self):
        with running_daemon(chunk_bytes=1024) as (daemon, base):
            sock = socket.create_connection(("127.0.0.1", daemon.bound_port), timeout=30)
            sock.sendall(
                b"GET /v1/stream HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            )
            sock.settimeout(30)
            first = sock.recv(4096)  # stream is live
            assert first.startswith(b"HTTP/1.1 200")
            daemon.shutdown_threadsafe()
            tail = b""
            while True:
                piece = sock.recv(65536)
                if not piece:
                    break
                tail = (tail + piece)[-10:]
            sock.close()
            assert tail.endswith(b"0\r\n\r\n"), (
                "drain must end the open stream with a clean chunked terminator"
            )

    def test_draining_daemon_reports_unhealthy_then_exits(self):
        # covered structurally: after shutdown the socket closes; the
        # /healthz draining flip is asserted through the status document
        # while the daemon is still up
        with running_daemon() as (daemon, base):
            doc = json.loads(get(f"{base}/healthz")[2])
            assert doc["draining"] is False

    def test_fetch_bytes_one_shot(self):
        with running_daemon() as (daemon, base):
            payload, offset = asyncio.run(
                fetch_bytes("127.0.0.1", daemon.bound_port, 1500)
            )
            assert payload == offline_bytes(offset, 1500)


class TestTraceHeaders:
    def test_every_response_carries_trace_identity(self, daemon):
        _, base = daemon
        _, headers, _ = get(f"{base}/v1/bytes?n=256")
        trace_id = headers.get("X-Repro-Trace-Id")
        span_id = headers.get("X-Repro-Span-Id")
        assert trace_id and len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert span_id and len(span_id) == 16 and int(span_id, 16) >= 0
        # a second request is a different trace
        _, headers2, _ = get(f"{base}/v1/bytes?n=256")
        assert headers2["X-Repro-Trace-Id"] != trace_id

    def test_incoming_trace_context_is_adopted_and_echoed(self, daemon):
        from repro.obs.context import TraceContext

        _, base = daemon
        ctx = TraceContext.mint()
        req = urllib.request.Request(
            f"{base}/v1/bytes?n=256", headers=ctx.to_headers()
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            headers = dict(resp.headers)
            resp.read()
        assert headers["X-Repro-Trace-Id"] == ctx.trace_id  # joined, not minted
        assert headers["X-Repro-Span-Id"] != ctx.span_id  # its own span

    def test_traced_request_stitches_daemon_and_worker_spans(self):
        from repro.obs.context import TraceContext

        tracer = obs.enable_tracing()
        try:
            with running_daemon(workers=1) as (daemon, base):
                ctx = TraceContext.mint()
                req = urllib.request.Request(
                    f"{base}/v1/bytes?n=4096", headers=ctx.to_headers()
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    resp.read()
                # the serve.request span closes just after the response is
                # flushed; give the event loop a beat to record it
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    records = [
                        r for r in tracer.records if r.trace_id == ctx.trace_id
                    ]
                    if any(r.name == "serve.request" for r in records):
                        break
                    time.sleep(0.01)
        finally:
            obs.disable_tracing()
        names = {r.name for r in records}
        assert "serve.request" in names  # daemon-side span
        assert "serve.worker_chunk" in names  # pool-worker span, merged home
        import os

        worker = next(r for r in records if r.name == "serve.worker_chunk")
        assert worker.pid != os.getpid()
        # parent links resolve within the collected trace
        span_ids = {r.span_id for r in records}
        for rec in records:
            assert rec.parent_id == ctx.span_id or rec.parent_id in span_ids


class TestDashboard:
    def test_render_from_live_daemon(self):
        from repro.obs import dashboard

        # own daemon: the module-shared one may have had its metrics
        # registry cleared by another test's teardown
        with running_daemon() as (_, base):
            get(f"{base}/v1/bytes?n=2048")  # ensure some traffic exists
            status = json.loads(get(f"{base}/v1/status")[2])
            samples = dashboard.parse_prometheus(get(f"{base}/metrics")[2].decode())
        frame = dashboard.render(status, samples)
        assert "repro top" in frame and "trivium" in frame
        assert "requests" in frame and "leases" in frame
        assert "request latency" in frame  # histogram was populated

    def test_run_top_finite_iterations(self, daemon):
        import io

        from repro.obs.dashboard import run_top

        daemon_obj, base = daemon
        out = io.StringIO()
        rc = run_top(
            host="127.0.0.1",
            port=daemon_obj.bound_port,
            interval=0.05,
            iterations=2,
            clear=False,
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert text.count("repro top") == 2  # two frames, no ANSI clears
        assert "\x1b[2J" not in text

    def test_run_top_unreachable_daemon_exits_nonzero(self):
        import io

        from repro.obs.dashboard import run_top

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        out = io.StringIO()
        assert run_top(port=port, iterations=1, out=out) == 1
        assert "cannot reach" in out.getvalue()
