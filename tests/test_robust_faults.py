"""Fault-injection harness: plan validation, determinism, serialisation,
env-var activation, and each fault kind's observable effect."""

import time

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.gpu.multigpu import MultiDeviceGenerator
from repro.robust.faults import FAULT_PLAN_ENV, Fault, FaultPlan, InjectedCrash, StuckBSRNG


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            Fault("explode", 0)

    def test_negative_keys_rejected(self):
        with pytest.raises(SpecificationError):
            Fault("crash", -1)
        with pytest.raises(SpecificationError):
            Fault("crash", 0, attempt=-1)

    def test_delay_needs_positive_duration(self):
        with pytest.raises(SpecificationError):
            Fault("delay", 0, delay=0.0)

    def test_corrupt_needs_positive_count(self):
        with pytest.raises(SpecificationError):
            Fault("corrupt", 0, corrupt_bytes=0)

    def test_stuck_byte_range(self):
        with pytest.raises(SpecificationError):
            Fault("stuck", 0, stuck_byte=256)


class TestFaultPlan:
    def test_matching_is_exact(self):
        plan = FaultPlan((Fault("crash", 1, 0), Fault("crash", 1, 2)))
        assert len(plan.matching(1, 0)) == 1
        assert plan.matching(1, 1) == []
        assert plan.matching(0, 0) == []

    def test_crash_raises_injected(self):
        plan = FaultPlan((Fault("crash", 3, 1),))
        plan.pre_generate(3, 0)  # wrong attempt: no-op
        with pytest.raises(InjectedCrash):
            plan.pre_generate(3, 1)

    def test_delay_sleeps(self):
        plan = FaultPlan((Fault("delay", 0, 0, delay=0.05),))
        t0 = time.perf_counter()
        plan.pre_generate(0, 0)
        assert time.perf_counter() - t0 >= 0.05

    def test_corrupt_is_deterministic_and_real(self):
        plan = FaultPlan((Fault("corrupt", 0, 0, corrupt_bytes=4),), seed=9)
        payload = bytes(range(64))
        a = plan.post_generate(0, 0, payload)
        b = plan.post_generate(0, 0, payload)
        assert a == b != payload
        assert sum(x != y for x, y in zip(a, payload)) == 4

    def test_stuck_replaces_payload(self):
        plan = FaultPlan((Fault("stuck", 0, 0, stuck_byte=0x42),))
        out = plan.post_generate(0, 0, bytes(range(16)))
        assert out == b"\x42" * 16

    def test_json_roundtrip(self):
        plan = FaultPlan(
            (Fault("crash", 1, 0), Fault("delay", 2, 1, delay=0.5), Fault("corrupt", 0, 0)),
            seed=77,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_env_absent(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None

    def test_env_var_activates_injection(self, monkeypatch):
        # no constructor plan: the worker picks the plan up from the env,
        # which is how spawn-context workers receive it too
        plan = FaultPlan((Fault("crash", 0, 0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        gen = MultiDeviceGenerator("xorwow", seed=2, lanes=64, n_devices=2, block_bytes=256)
        out = gen.generate(4, parallel=True)
        assert out == gen.sequential_reference(4)
        assert any(e.kind == "error" and e.partition == 0 for e in gen.last_report.events)


class TestStuckBSRNG:
    def test_honest_prefix_then_constant(self):
        from repro.core.generator import BSRNG

        stuck = StuckBSRNG("xorwow", seed=6, lanes=64, stuck_byte=0x11, stuck_after=10)
        honest = BSRNG("xorwow", seed=6, lanes=64).random_bytes(10)
        data = stuck.random_bytes(40)
        assert data[:10] == honest
        assert data[10:] == b"\x11" * 30

    def test_reseed_clears_wedge(self):
        stuck = StuckBSRNG("xorwow", seed=6, lanes=64, stuck_byte=0x11)
        assert stuck.random_bytes(8) == b"\x11" * 8
        stuck.reseed()
        assert stuck.random_bytes(8) != b"\x11" * 8

    def test_unrecoverable_when_flagged(self):
        stuck = StuckBSRNG(
            "xorwow", seed=6, lanes=64, stuck_byte=0x11, recover_on_reseed=False
        )
        stuck.reseed()
        assert stuck.random_bytes(8) == b"\x11" * 8
