"""``repro top`` renderer math, especially degenerate-histogram honesty.

The dashboard's latency line estimates p50/p99 from cumulative
Prometheus buckets.  A histogram whose observations all fell in the
``+Inf`` bucket — or whose samples carry NaN — used to interpolate to a
confident ``0.00 ms``; these tests pin the fixed behaviour: drop NaN,
clamp into the bucket, omit unresolvable quantiles, and render ``n/a``.
"""

import pytest

from repro.obs import dashboard


def bucket(le: str, value: float, name: str = "repro_serve_request_seconds_bucket"):
    return (name, {"le": le}, value)


class TestHistogramQuantiles:
    def test_interpolates_within_bucket(self):
        samples = [bucket("0.1", 0.0), bucket("0.2", 10.0), bucket("+Inf", 10.0)]
        q = dashboard.histogram_quantiles(samples, "repro_serve_request_seconds")
        assert q[0.5] == pytest.approx(0.15)
        assert q[0.99] == pytest.approx(0.199)

    def test_aggregates_across_label_sets(self):
        samples = [
            ("repro_serve_request_seconds_bucket", {"le": "1", "path": "a"}, 4.0),
            ("repro_serve_request_seconds_bucket", {"le": "+Inf", "path": "a"}, 4.0),
            ("repro_serve_request_seconds_bucket", {"le": "1", "path": "b"}, 4.0),
            ("repro_serve_request_seconds_bucket", {"le": "+Inf", "path": "b"}, 4.0),
        ]
        q = dashboard.histogram_quantiles(samples, "repro_serve_request_seconds")
        assert 0 < q[0.5] <= 1.0

    def test_empty_histogram_yields_no_quantiles(self):
        assert dashboard.histogram_quantiles([], "repro_serve_request_seconds") == {}

    def test_zero_count_histogram_yields_no_quantiles(self):
        samples = [bucket("0.1", 0.0), bucket("+Inf", 0.0)]
        assert dashboard.histogram_quantiles(samples, "repro_serve_request_seconds") == {}

    def test_all_mass_in_inf_with_no_finite_bucket_is_unresolvable(self):
        # the degenerate case that used to read as a confident 0.0
        samples = [bucket("+Inf", 7.0)]
        assert dashboard.histogram_quantiles(samples, "repro_serve_request_seconds") == {}

    def test_rank_in_inf_bucket_clamps_to_last_finite_edge(self):
        samples = [bucket("0.25", 1.0), bucket("+Inf", 100.0)]
        q = dashboard.histogram_quantiles(samples, "repro_serve_request_seconds")
        assert q[0.5] == pytest.approx(0.25)
        assert q[0.99] == pytest.approx(0.25)

    def test_nan_samples_are_dropped(self):
        nan = float("nan")
        samples = [bucket("0.1", nan), bucket("0.2", 10.0), bucket("+Inf", 10.0)]
        q = dashboard.histogram_quantiles(samples, "repro_serve_request_seconds")
        assert 0.0 < q[0.5] <= 0.2
        # a histogram of only NaN mass resolves to nothing, not to NaN
        only_nan = [bucket("0.1", nan), bucket("+Inf", nan)]
        assert dashboard.histogram_quantiles(only_nan, "repro_serve_request_seconds") == {}

    def test_unparsable_le_is_dropped(self):
        samples = [bucket("oops", 5.0), bucket("NaN", 5.0), bucket("+Inf", 5.0)]
        assert dashboard.histogram_quantiles(samples, "repro_serve_request_seconds") == {}

    def test_interpolation_clamped_on_nonmonotone_counts(self):
        # merge artifacts can make the cumulative series dip; the
        # estimate must stay inside the bucket, never extrapolate
        samples = [bucket("0.1", 8.0), bucket("0.2", 6.0), bucket("+Inf", 6.0)]
        q = dashboard.histogram_quantiles(samples, "repro_serve_request_seconds")
        assert 0.0 <= q[0.5] <= 0.2
        assert 0.0 <= q[0.99] <= 0.2


class TestRenderLatencyLine:
    def _frame(self, samples) -> str:
        return dashboard.render({}, samples)

    def test_resolvable_quantiles_render_in_ms(self):
        frame = self._frame(
            [bucket("0.1", 0.0), bucket("0.2", 10.0), bucket("+Inf", 10.0)]
        )
        assert "request latency" in frame
        assert "p50 150.00 ms" in frame
        assert "n/a" not in frame

    def test_degenerate_histogram_renders_na_not_zero(self):
        frame = self._frame([bucket("+Inf", 7.0)])
        assert "request latency  p50 n/a   p99 n/a" in frame
        assert "0.00 ms" not in frame

    def test_no_histogram_renders_no_latency_line(self):
        assert "request latency" not in self._frame([])
