"""Multi-device scale-out tests (paper §5.4): partitioning, the
sequential-reconstruction equivalence and the scaling model."""

import numpy as np
import pytest

from repro.errors import ModelError, SpecificationError
from repro.gpu.multigpu import (
    DevicePartition,
    MultiDeviceGenerator,
    partition_counter_space,
    scaling_model,
)


class TestPartitioning:
    def test_even_split(self):
        parts = partition_counter_space(8, 2)
        assert parts == [DevicePartition(0, 0, 4), DevicePartition(1, 4, 4)]

    def test_remainder_spread_first(self):
        parts = partition_counter_space(10, 3)
        assert [p.n_blocks for p in parts] == [4, 3, 3]
        assert [p.start_block for p in parts] == [0, 4, 7]

    def test_covers_range_exactly(self):
        for total, n in [(0, 3), (1, 4), (17, 5), (100, 7)]:
            parts = partition_counter_space(total, n)
            assert sum(p.n_blocks for p in parts) == total
            cursor = 0
            for p in parts:
                assert p.start_block == cursor
                cursor += p.n_blocks

    def test_more_devices_than_blocks(self):
        parts = partition_counter_space(2, 4)
        assert [p.n_blocks for p in parts] == [1, 1, 0, 0]

    def test_invalid_inputs(self):
        with pytest.raises(SpecificationError):
            partition_counter_space(4, 0)
        with pytest.raises(SpecificationError):
            partition_counter_space(-1, 2)


class TestScalingModel:
    def test_single_device_is_unity(self):
        assert scaling_model(1) == pytest.approx(1.0)

    def test_calibrated_to_paper_two_gpu_point(self):
        # §5.4: "the performance achieves a near-linear throughput (1.92x)".
        assert scaling_model(2) == pytest.approx(1.92, abs=0.005)

    def test_degrades_below_linear(self):
        # "by increasing the number of GPUs to 4 or 8, the overall
        # performance descends" (relative to linear).
        for n in (2, 4, 8):
            assert scaling_model(n) < n
        eff = [scaling_model(n) / n for n in (1, 2, 4, 8)]
        assert eff == sorted(eff, reverse=True)

    def test_monotone_in_devices(self):
        speeds = [scaling_model(n) for n in range(1, 9)]
        assert speeds == sorted(speeds)

    def test_invalid(self):
        with pytest.raises(ModelError):
            scaling_model(0)


class TestMultiDeviceGenerator:
    @pytest.mark.parametrize("algorithm", ["mickey2", "xorwow"])
    def test_equivalence_serial_path(self, algorithm):
        # §5.4: "the same output sequence of random bits could be generated
        # identically in a single GPU sequentially."
        gen = MultiDeviceGenerator(algorithm, seed=11, lanes=128, n_devices=3, block_bytes=1024)
        multi = gen.generate(7, parallel=False)
        single = gen.sequential_reference(7)
        assert multi == single

    def test_equivalence_process_backed(self):
        # The real multiprocessing path (the paper's OpenMP host threads).
        gen = MultiDeviceGenerator("xorwow", seed=5, lanes=64, n_devices=2, block_bytes=512)
        assert gen.generate(4, parallel=True) == gen.sequential_reference(4)

    def test_device_count_one(self):
        gen = MultiDeviceGenerator("xorwow", seed=3, lanes=64, n_devices=1, block_bytes=256)
        assert gen.generate(3, parallel=False) == gen.sequential_reference(3)

    def test_zero_blocks(self):
        gen = MultiDeviceGenerator("xorwow", seed=3, lanes=64, n_devices=2, block_bytes=256)
        assert gen.generate(0, parallel=False) == b""

    def test_zero_blocks_parallel_fast_path(self):
        # the explicit empty-job fast path: no pool is built, no
        # supervisor report is produced
        gen = MultiDeviceGenerator("xorwow", seed=3, lanes=64, n_devices=4, block_bytes=256)
        assert gen.generate(0, parallel=True) == b""
        assert gen.last_report is None

    def test_output_length(self):
        gen = MultiDeviceGenerator("xorwow", seed=3, lanes=64, n_devices=3, block_bytes=128)
        assert len(gen.generate(5, parallel=False)) == 5 * 128

    def test_different_seeds_differ(self):
        a = MultiDeviceGenerator("xorwow", seed=1, lanes=64, n_devices=2, block_bytes=256)
        b = MultiDeviceGenerator("xorwow", seed=2, lanes=64, n_devices=2, block_bytes=256)
        assert a.generate(2, parallel=False) != b.generate(2, parallel=False)

    def test_invalid_device_count(self):
        with pytest.raises(SpecificationError):
            MultiDeviceGenerator(n_devices=0)

    def test_partition_boundaries_invisible(self):
        # The reconstructed stream must have no seam at block boundaries:
        # compare against a 5-device split of the same job.
        g2 = MultiDeviceGenerator("mickey2", seed=9, lanes=128, n_devices=2, block_bytes=512)
        g5 = MultiDeviceGenerator("mickey2", seed=9, lanes=128, n_devices=5, block_bytes=512)
        assert g2.generate(10, parallel=False) == g5.generate(10, parallel=False)


class TestLanePartitioned:
    """§5.4's input-parameter partitioning: lane windows across devices."""

    @pytest.mark.parametrize("algorithm", ["mickey2", "grain", "trivium"])
    def test_equivalence(self, algorithm):
        from repro.gpu.multigpu import LanePartitionedGenerator

        gen = LanePartitionedGenerator(algorithm, seed=4, total_lanes=24, n_devices=3)
        multi = gen.generate_lanes(128, parallel=False)
        assert multi.shape == (24, 128)
        assert np.array_equal(multi, gen.sequential_reference(128))

    def test_process_backed(self):
        from repro.gpu.multigpu import LanePartitionedGenerator

        gen = LanePartitionedGenerator("trivium", seed=1, total_lanes=32, n_devices=2)
        assert np.array_equal(
            gen.generate_lanes(64, parallel=True), gen.sequential_reference(64)
        )

    def test_partitions_cover_lanes(self):
        from repro.gpu.multigpu import LanePartitionedGenerator

        gen = LanePartitionedGenerator("grain", seed=0, total_lanes=40, n_devices=4)
        parts = gen.device_partitions()
        assert [p.n_blocks for p in parts] == [10] * 4
        assert [p.start_block for p in parts] == [0, 10, 20, 30]

    def test_no_duplicate_lanes_across_devices(self):
        from repro.gpu.multigpu import LanePartitionedGenerator

        gen = LanePartitionedGenerator("trivium", seed=2, total_lanes=16, n_devices=2)
        lanes = gen.generate_lanes(512, parallel=False)
        packed = np.packbits(lanes, axis=1)
        assert np.unique(packed, axis=0).shape[0] == 16

    def test_counter_kernels_rejected(self):
        from repro.gpu.multigpu import LanePartitionedGenerator

        with pytest.raises(SpecificationError):
            LanePartitionedGenerator("aes128ctr")

    def test_uneven_split_rejected(self):
        from repro.gpu.multigpu import LanePartitionedGenerator

        with pytest.raises(SpecificationError):
            LanePartitionedGenerator("trivium", total_lanes=10, n_devices=3)


class TestSpawnContext:
    """The spawn fallback path (platforms without fork) must reconstruct
    identically — workers receive everything through the job payload, so
    a fresh interpreter per device changes nothing."""

    def test_multi_device_spawn(self):
        gen = MultiDeviceGenerator(
            "xorwow", seed=5, lanes=64, n_devices=2, block_bytes=256, mp_context="spawn"
        )
        assert gen.mp_context == "spawn"
        assert gen.generate(4, parallel=True) == gen.sequential_reference(4)

    def test_lane_partitioned_spawn(self):
        from repro.gpu.multigpu import LanePartitionedGenerator

        gen = LanePartitionedGenerator(
            "trivium", seed=1, total_lanes=16, n_devices=2, mp_context="spawn"
        )
        assert np.array_equal(
            gen.generate_lanes(64, parallel=True), gen.sequential_reference(64)
        )

    def test_spawn_crash_recovery(self):
        # retry rounds build fresh spawn pools; the fault plan travels in
        # the pickled job payload, not shared memory
        from repro.robust.faults import Fault, FaultPlan

        plan = FaultPlan((Fault("crash", 1, 0),))
        gen = MultiDeviceGenerator(
            "xorwow",
            seed=5,
            lanes=64,
            n_devices=2,
            block_bytes=256,
            mp_context="spawn",
            fault_plan=plan,
        )
        assert gen.generate(4, parallel=True) == gen.sequential_reference(4)
        assert gen.last_report.attempts[1] == 2


class TestLaneOffsetSeeding:
    """The window property behind lane partitioning, at the seeding layer."""

    def test_expand_words_window(self):
        from repro.core.seeding import expand_seed_words

        full = expand_seed_words(9, 64)
        assert np.array_equal(expand_seed_words(9, 16, word_offset=13), full[13:29])

    def test_expand_bits_window(self):
        from repro.core.seeding import expand_seed_bits

        full = expand_seed_bits(9, (1000,))
        window = expand_seed_bits(9, (80,), bit_offset=137)
        assert np.array_equal(window, full[137:217])

    def test_lane_material_window(self):
        from repro.core.seeding import derive_lane_material

        keys_full, ivs_full = derive_lane_material(5, 20, key_bits=80, iv_bits=64)
        keys_sub, ivs_sub = derive_lane_material(
            5, 4, key_bits=80, iv_bits=64, lane_offset=7
        )
        assert np.array_equal(keys_sub, keys_full[7:11])
        assert np.array_equal(ivs_sub, ivs_full[7:11])

    def test_negative_offset_rejected(self):
        from repro.core.seeding import derive_lane_material

        with pytest.raises(SpecificationError):
            derive_lane_material(0, 4, key_bits=80, iv_bits=64, lane_offset=-1)
