"""SP 800-22 tests 3 & 4: Runs and Longest Run of Ones in a Block."""

from __future__ import annotations

import math

import numpy as np

from repro.nist._utils import check_bits, erfc, igamc
from repro.nist.result import TestResult

__all__ = ["runs_test", "longest_run_test"]

# Longest-run reference distributions (SP 800-22 §2.4.4 / sts tables):
# n-threshold → (M, category lower edges, category probabilities).
_LONGEST_RUN_PARAMS = (
    (128, 8, (1, 2, 3, 4), (0.2148, 0.3672, 0.2305, 0.1875)),
    (6272, 128, (4, 5, 6, 7, 8, 9), (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124)),
    (
        750000,
        10000,
        (10, 11, 12, 13, 14, 15, 16),
        (0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727),
    ),
)


def runs_test(bits) -> TestResult:
    """Total number of runs vs. its expectation under randomness."""
    arr = check_bits(bits, 100, "runs")
    n = arr.size
    pi = float(arr.mean())
    tau = 2.0 / math.sqrt(n)
    if abs(pi - 0.5) >= tau:
        # Monobit precondition failed; NIST assigns p = 0.
        return TestResult("Runs", [0.0], {"pi": pi, "precondition": "failed"})
    v_obs = 1 + int(np.count_nonzero(arr[1:] != arr[:-1]))
    num = abs(v_obs - 2.0 * n * pi * (1 - pi))
    den = 2.0 * math.sqrt(2.0 * n) * pi * (1 - pi)
    p = float(erfc(num / den))
    return TestResult("Runs", [p], {"V_obs": v_obs, "pi": pi})


def _longest_run_per_block(blocks: np.ndarray) -> np.ndarray:
    """Longest run of ones in each row, vectorized.

    Uses the cumulative-sum-with-reset trick: positions of zeros reset a
    running count; the row maximum of the running count is the longest run.
    """
    ones = blocks.astype(np.int64)
    csum = np.cumsum(ones, axis=1)
    # at each zero, record csum; running max of that gives 'sum consumed by resets'
    reset = np.where(ones == 0, csum, 0)
    reset_max = np.maximum.accumulate(reset, axis=1)
    return (csum - reset_max).max(axis=1)


def longest_run_test(bits) -> TestResult:
    """Longest run of ones within fixed-size blocks vs. reference χ²."""
    arr = check_bits(bits, 128, "longest_run")
    n = arr.size
    m_block, edges, probs = None, None, None
    for threshold, m, e, p in _LONGEST_RUN_PARAMS:
        if n >= threshold:
            m_block, edges, probs = m, e, p
    n_blocks = n // m_block
    blocks = arr[: n_blocks * m_block].reshape(n_blocks, m_block)
    longest = _longest_run_per_block(blocks)
    # category index: clip to [edges[0], edges[-1]]
    cats = np.clip(longest, edges[0], edges[-1]) - edges[0]
    counts = np.bincount(cats, minlength=len(edges))
    k = len(edges) - 1
    expected = n_blocks * np.asarray(probs)
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    p = igamc(k / 2.0, chi2 / 2.0)
    return TestResult(
        "LongestRun",
        [p],
        {"chi2": chi2, "M": m_block, "counts": counts.tolist(), "n_blocks": n_blocks},
    )
