"""ASCII bar charts and series tables.

Pure string construction, no terminal magic: output is stable across
environments so the benchmark result files are diffable.
"""

from __future__ import annotations

from repro.errors import SpecificationError

__all__ = ["bar_chart", "grouped_bar_chart", "series_table"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """A left-aligned bar of ``value/vmax`` scaled to *width* cells."""
    if vmax <= 0:
        return ""
    cells = value / vmax * width
    whole = int(cells)
    frac = cells - whole
    bar = _FULL * whole
    part_idx = int(frac * (len(_PART) - 1))
    if part_idx and whole < width:
        bar += _PART[part_idx]
    return bar


def bar_chart(
    items: list[tuple[str, float]],
    width: int = 40,
    unit: str = "",
    fmt: str = "{:.1f}",
) -> str:
    """One bar per (label, value) pair, scaled to the maximum value.

    >>> print(bar_chart([("a", 2.0), ("b", 1.0)], width=4))  # doctest: +SKIP
    a  ████ 2.0
    b  ██   1.0
    """
    if not items:
        raise SpecificationError("nothing to chart")
    if width <= 0:
        raise SpecificationError("width must be positive")
    vmax = max(v for _, v in items)
    label_w = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        if value < 0:
            raise SpecificationError("bar values must be non-negative")
        num = fmt.format(value) + (f" {unit}" if unit else "")
        lines.append(f"{label:<{label_w}}  {_bar(value, vmax, width):<{width}} {num}")
    return "\n".join(lines)


def grouped_bar_chart(
    series: dict[str, dict[str, float]],
    width: int = 40,
    unit: str = "",
    fmt: str = "{:.0f}",
) -> str:
    """The paper's Figure-10 shape: groups (GPUs) of bars (kernels).

    *series* maps series name → {group → value}; groups are taken from
    the first series and must agree across all of them.
    """
    if not series:
        raise SpecificationError("nothing to chart")
    groups = list(next(iter(series.values())))
    for name, row in series.items():
        if list(row) != groups:
            raise SpecificationError(f"series {name!r} has mismatched groups")
    vmax = max(v for row in series.values() for v in row.values())
    name_w = max(len(n) for n in series)
    lines = []
    for g in groups:
        lines.append(f"{g}:")
        for name, row in series.items():
            num = fmt.format(row[g]) + (f" {unit}" if unit else "")
            lines.append(
                f"  {name:<{name_w}}  {_bar(row[g], vmax, width):<{width}} {num}"
            )
        lines.append("")
    return "\n".join(lines[:-1])


def series_table(
    series: dict[str, dict[str, float]],
    fmt: str = "{:.1f}",
    col_width: int = 14,
) -> str:
    """The same data as a plain table (rows = series, columns = groups)."""
    if not series:
        raise SpecificationError("nothing to tabulate")
    groups = list(next(iter(series.values())))
    name_w = max(max(len(n) for n in series), 6)
    header = f"{'':<{name_w}}" + "".join(f"{g:>{col_width}}" for g in groups)
    lines = [header, "-" * len(header)]
    for name, row in series.items():
        lines.append(
            f"{name:<{name_w}}" + "".join(f"{fmt.format(row[g]):>{col_width}}" for g in groups)
        )
    return "\n".join(lines)
