"""Single-touch output accounting: CRC-32 receipt + SP 800-90B bit census.

Before this module, a generated block was read three times on its way
out: once to pack it into the output buffer, once by the CRC-32 receipt
(:func:`repro.robust.supervisor.payload_crc`), and once by the health
layer's bit counting.  By the second and third pass the block has long
fallen out of cache, so each extra read costs full memory bandwidth —
on the measured box that is the difference between a kernel-bound and a
bandwidth-bound output path.

:class:`StreamTouch` folds the two accounting passes into whatever
moment the bytes are already hot:

* the fused K-clock kernels invoke it as their *epilogue* — each
  just-written plane block is touched while it still sits in L2
  (``fused_generate(..., epilogue=touch.update)``);
* :meth:`BSRNG._take_bytes <repro.core.generator.BSRNG.read_with_receipt>`
  invokes it chunk-by-chunk right after each buffer copy, so a draw
  receipt rides along with the draw itself.

The CRC here is *bit-identical* to ``payload_crc`` /
``table_crc_bytes(CRC32_IEEE, data)``: an MSB-first CRC-32-IEEE equals
the bit-reversal of zlib's reflected register over bit-reversed message
bytes, and ``zlib.crc32``'s running-value form makes that relation
incremental (``crc32(a + b) == crc32(b, crc32(a))``), so chunked
accumulation reproduces the one-shot checksum exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["StreamTouch", "Receipt", "TouchedPayload"]

#: Bit-reversal of each byte value — maps the repo's MSB-first CRC
#: convention onto zlib's reflected (LSB-first) register.  Same table as
#: :mod:`repro.crc.serial`; duplicated here so the core package stays
#: import-light (no circular dependency on the crc package).
_BITREV8 = np.array([int(f"{i:08b}"[::-1], 2) for i in range(256)], dtype=np.uint8)

#: Population count of each byte value, for the 800-90B-style bit census.
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def _as_flat_u8(data) -> np.ndarray:
    """Any bytes-like or ndarray → flat contiguous uint8 view (no copy
    when the input is already C-contiguous)."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(data, dtype=np.uint8)
    arr = np.ascontiguousarray(data)
    return arr.view(np.uint8).reshape(-1)


@dataclass(frozen=True)
class Receipt:
    """Immutable snapshot of a :class:`StreamTouch`'s accounting."""

    crc: int  #: MSB-first CRC-32-IEEE — equals ``payload_crc`` of the bytes
    nbytes: int  #: bytes accounted
    ones: int  #: set bits among them (SP 800-90B monobit census)

    @property
    def ones_fraction(self) -> float:
        """Fraction of set bits; 0.5 for an unbiased source."""
        return self.ones / (8 * self.nbytes) if self.nbytes else float("nan")


@dataclass(frozen=True)
class TouchedPayload:
    """A payload whose receipt was computed while the bytes were hot.

    Worker ``produce`` callables return this instead of raw bytes to
    tell :func:`repro.robust.supervisor.worker_attempt` that the CRC is
    already known — the attempt shell then skips its own (cold) CRC
    pass.  The CRC covers the payload's canonical byte form, same
    convention as ``payload_crc``.
    """

    data: bytes | np.ndarray
    crc: int


class StreamTouch:
    """Incremental single-pass CRC-32 receipt + set-bit census.

    Feed byte chunks in stream order via :meth:`update`; read the
    combined accounting from :attr:`crc` / :attr:`ones` / :attr:`nbytes`
    or as one :meth:`receipt`.  Not thread-safe — each accounting scope
    (a draw, a refill stream, a worker chunk) owns its own instance.
    """

    __slots__ = ("_z", "ones", "nbytes")

    def __init__(self) -> None:
        self._z = 0  # zlib's reflected running register (init folded in)
        self.ones = 0
        self.nbytes = 0

    def update(self, data) -> None:
        """Account one chunk (bytes-like or any-dtype ndarray view)."""
        arr = _as_flat_u8(data)
        if arr.size == 0:
            return
        self._z = zlib.crc32(_BITREV8[arr], self._z)
        self.ones += int(_POP8 @ np.bincount(arr, minlength=256))
        self.nbytes += arr.size

    @property
    def crc(self) -> int:
        """MSB-first CRC-32-IEEE of everything fed so far.

        Bit-identical to ``table_crc_bytes(CRC32_IEEE, data)`` over the
        concatenated chunks (see module docstring for the derivation).
        """
        raw = self._z ^ 0xFFFFFFFF
        return int(f"{raw:032b}"[::-1], 2)

    @property
    def ones_fraction(self) -> float:
        """Fraction of set bits so far; 0.5 for an unbiased source."""
        return self.ones / (8 * self.nbytes) if self.nbytes else float("nan")

    def receipt(self) -> Receipt:
        """Frozen snapshot of the current accounting."""
        return Receipt(crc=self.crc, nbytes=self.nbytes, ones=self.ones)

    def reset(self) -> None:
        """Forget everything; the next chunk starts a fresh receipt."""
        self._z = 0
        self.ones = 0
        self.nbytes = 0
