"""Polynomials over GF(2), encoded as Python integers (bit i = coeff of x^i).

Integers give exact arithmetic at any degree with carry-less operations,
which is all GF(2)[x] needs; everything here is deterministic (Rabin's
irreducibility test and the multiplicative-order primitivity test are
exact, not probabilistic, over GF(2)).
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import SpecificationError

__all__ = [
    "poly_degree",
    "poly_mul",
    "poly_divmod",
    "poly_mod",
    "poly_gcd",
    "poly_powmod",
    "poly_is_irreducible",
    "poly_is_primitive",
    "poly_from_taps",
    "taps_from_poly",
    "factorize",
]


def poly_degree(p: int) -> int:
    """Degree of *p* (−1 for the zero polynomial)."""
    return p.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Carry-less product in GF(2)[x]."""
    out = 0
    while b:
        if b & 1:
            out ^= a
        a <<= 1
        b >>= 1
    return out


def poly_divmod(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of ``a / b`` in GF(2)[x]."""
    if b == 0:
        raise SpecificationError("polynomial division by zero")
    db = poly_degree(b)
    q = 0
    while poly_degree(a) >= db:
        shift = poly_degree(a) - db
        q ^= 1 << shift
        a ^= b << shift
    return q, a


def poly_mod(a: int, b: int) -> int:
    """Remainder of ``a mod b``."""
    return poly_divmod(a, b)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor in GF(2)[x]."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_powmod(base: int, exp: int, mod: int) -> int:
    """``base^exp mod mod`` by square-and-multiply."""
    result = 1
    base = poly_mod(base, mod)
    while exp:
        if exp & 1:
            result = poly_mod(poly_mul(result, base), mod)
        base = poly_mod(poly_mul(base, base), mod)
        exp >>= 1
    return result


def poly_from_taps(n: int, taps) -> int:
    """Characteristic polynomial ``x^n + sum(x^i for i in taps)``."""
    p = 1 << n
    for t in taps:
        if not 0 <= t < n:
            raise SpecificationError(f"tap {t} out of range for degree {n}")
        p |= 1 << t
    return p


def taps_from_poly(p: int) -> tuple[int, tuple[int, ...]]:
    """Inverse of :func:`poly_from_taps`: returns ``(n, taps)``."""
    n = poly_degree(p)
    if n < 1:
        raise SpecificationError("polynomial must have positive degree")
    taps = tuple(i for i in range(n) if (p >> i) & 1)
    return n, taps


def _prime_factors(n: int) -> list[int]:
    """Distinct prime factors by trial division + Pollard rho."""
    factors: set[int] = set()

    def pollard(m: int) -> int:
        import math

        if m % 2 == 0:
            return 2
        x, c = 2, 1
        while True:
            y, d = x, 1
            while d == 1:
                x = (x * x + c) % m
                y = (y * y + c) % m
                y = (y * y + c) % m
                d = math.gcd(abs(x - y), m)
            if d != m:
                return d
            c += 1
            x = c + 1

    def is_prime(m: int) -> bool:
        if m < 2:
            return False
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
            if m % p == 0:
                return m == p
        d, s = m - 1, 0
        while d % 2 == 0:
            d //= 2
            s += 1
        for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
            x = pow(a, d, m)
            if x in (1, m - 1):
                continue
            for _ in range(s - 1):
                x = x * x % m
                if x == m - 1:
                    break
            else:
                return False
        return True

    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors.add(m)
            continue
        for p in (2, 3, 5, 7, 11, 13):
            if m % p == 0:
                factors.add(p)
                while m % p == 0:
                    m //= p
                if m > 1:
                    stack.append(m)
                break
        else:
            d = pollard(m)
            stack.extend([d, m // d])
    return sorted(factors)


@lru_cache(maxsize=None)
def factorize(n: int) -> tuple[int, ...]:
    """Distinct prime factors of *n* (cached; exact)."""
    return tuple(_prime_factors(n))


def poly_is_irreducible(p: int) -> bool:
    """Rabin's test: *p* (degree n) is irreducible iff
    ``x^(2^n) ≡ x (mod p)`` and ``gcd(x^(2^(n/q)) - x, p) = 1`` for every
    prime ``q | n``."""
    n = poly_degree(p)
    if n < 1:
        return False
    if not p & 1:  # divisible by x
        return n == 1
    # x^(2^k) mod p by repeated squaring of x
    def x_pow_2k(k: int) -> int:
        r = 2  # the polynomial x
        for _ in range(k):
            r = poly_mod(poly_mul(r, r), p)
        return r

    if x_pow_2k(n) != 2:
        return False
    for q in factorize(n):
        h = x_pow_2k(n // q) ^ 2
        if poly_gcd(h, p) != 1:
            return False
    return True


def poly_is_primitive(p: int) -> bool:
    """Primitivity: irreducible and the root's multiplicative order is
    exactly ``2^n - 1`` (checked against every maximal proper divisor)."""
    n = poly_degree(p)
    if n < 1 or not poly_is_irreducible(p):
        return False
    order = (1 << n) - 1
    for q in factorize(order):
        if poly_powmod(2, order // q, p) == 1:
            return False
    return poly_powmod(2, order, p) == 1
