"""Multi-device scale-out (paper §5.4), supervised.

The paper splits the input parameters — seed, nonce, counter — across
GPUs, runs the same kernel on each, and concatenates the outputs; with
two GTX 1080 Tis it measures 1.92× and notes that 4–8 devices degrade
"due to the cost of data scheduling latency [and] data concatenation".

Here a *device* is a worker process: the partitioning, per-device
generation and reconstruction logic is identical, and the key §5.4
property — the multi-device output equals the single-device sequential
output — is testable exactly.

Partitions are submitted through a
:class:`~repro.robust.supervisor.PartitionSupervisor`, which adds the
failure handling the paper's demo fan-out lacks: per-partition timeouts,
retry with exponential backoff, optional CRC verification of each
received payload, and graceful degradation to in-process generation when
the worker pool is exhausted.  Because each partition is a pure function
of ``(seed, start_block, n_blocks)``, a retried partition regenerates
byte-identical data — recovery never perturbs the output stream.  A
deterministic :class:`~repro.robust.faults.FaultPlan` can be threaded
into the workers (constructor argument or ``REPRO_FAULT_PLAN`` env var)
to exercise every recovery path.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.ring import SharedMemoryRing, attach_ring
from repro.core.touch import TouchedPayload
from repro.errors import ModelError, SpecificationError
from repro.obs import context as trace_context
from repro.obs.tracing import span
from repro.robust.faults import FaultPlan
from repro.robust.supervisor import (
    PartitionSupervisor,
    SupervisorConfig,
    SupervisorReport,
    worker_attempt,
)

__all__ = [
    "partition_counter_space",
    "scaling_model",
    "MultiDeviceGenerator",
    "LanePartitionedGenerator",
    "DevicePartition",
    "PartitionOutcome",
    "GenerationReport",
]

#: Bitsliced banks that support the seed/IV-space lane partitioning
#: (algorithm name → class path).  AES-CTR partitions the counter space
#: via MultiDeviceGenerator instead; the row-major baselines have no lane
#: notion.
_LANE_BANKS = {
    "mickey2": "repro.ciphers.mickey_bitsliced.BitslicedMickey2",
    "grain": "repro.ciphers.grain_bitsliced.BitslicedGrain",
    "trivium": "repro.ciphers.trivium_bitsliced.BitslicedTrivium",
}


@dataclass(frozen=True)
class DevicePartition:
    """One device's slice of the global counter space."""

    device_id: int
    start_block: int
    n_blocks: int


def partition_counter_space(total_blocks: int, n_devices: int) -> list[DevicePartition]:
    """Split ``total_blocks`` counter blocks across equal-power devices.

    Equal-size contiguous ranges (the paper: "the input data is equally
    broken down into the same sized partitions"), with the remainder
    spread over the first devices.  ``total_blocks=0`` is legal and
    yields one empty partition per device; callers with nothing to do
    should prefer their own empty fast path (``generate(0) == b""``).
    """
    if n_devices <= 0 or total_blocks < 0:
        raise SpecificationError("need n_devices > 0 and total_blocks >= 0")
    base, rem = divmod(total_blocks, n_devices)
    parts = []
    start = 0
    for d in range(n_devices):
        size = base + (1 if d < rem else 0)
        parts.append(DevicePartition(d, start, size))
        start += size
    return parts


def scaling_model(n_devices: int, overhead_per_device: float = 0.0417) -> float:
    """Speedup over one device: ``n / (1 + c·(n−1))``.

    ``c`` is calibrated to the paper's measured 1.92× at two devices
    (``2/(1+c) = 1.92 → c ≈ 0.0417``); the same constant then predicts
    the degradation the paper describes at 4 and 8 devices.
    """
    if n_devices <= 0:
        raise ModelError("n_devices must be positive")
    return n_devices / (1.0 + overhead_per_device * (n_devices - 1))


@dataclass(frozen=True)
class PartitionOutcome:
    """How one partition's generation concluded."""

    device_id: int
    attempts: int
    outcome: str  # "ok" | "retried" | "degraded" | "failed"
    #: Job start → final outcome: the accepted result, or — for failed
    #: or evicted partitions — the last observed failure.  ``None`` only
    #: when the partition saw neither (never dispatched).
    wall_s: float | None


@dataclass
class GenerationReport:
    """Structured result of one multi-device generation job.

    Replaces the bare ``SupervisorReport`` that ``last_report`` used to
    hold: per-partition attempt counts, wall times and outcomes are
    first-class fields backed by the metrics the supervisor and the
    instrumented workers recorded, and per-partition worker metric
    snapshots are carried for the parent-side registry merge.  The old
    ``SupervisorReport`` surface (``events`` / ``attempts`` /
    ``retried_partitions`` / ``degraded``) is preserved as pass-through
    properties, so existing callers keep working.
    """

    algorithm: str
    n_devices: int
    job_size: int
    job_unit: str  # "blocks" (counter partitioning) | "bits" (lane partitioning)
    wall_s: float
    partitions: list[PartitionOutcome] = field(default_factory=list)
    supervisor: SupervisorReport = field(default_factory=SupervisorReport)

    @classmethod
    def build(
        cls,
        algorithm: str,
        n_devices: int,
        job_size: int,
        job_unit: str,
        wall_s: float,
        supervisor: SupervisorReport,
        completed: set[int],
        degraded_pids: set[int],
    ) -> "GenerationReport":
        """Assemble per-partition outcomes from a supervisor report."""
        partitions = []
        for pid in sorted(supervisor.attempts):
            attempts = supervisor.attempts[pid]
            if pid not in completed:
                outcome = "failed"
            elif pid in degraded_pids:
                outcome = "degraded"
            elif attempts > 1:
                outcome = "retried"
            else:
                outcome = "ok"
            partitions.append(
                PartitionOutcome(pid, attempts, outcome, supervisor.partition_wall.get(pid))
            )
        return cls(algorithm, n_devices, job_size, job_unit, wall_s, partitions, supervisor)

    # -- legacy SupervisorReport surface -----------------------------------------
    @property
    def events(self):
        """Supervisor events (failures and recovery actions)."""
        return self.supervisor.events

    @property
    def attempts(self) -> dict[int, int]:
        """Per-partition attempt counts."""
        return self.supervisor.attempts

    @property
    def retried_partitions(self) -> set[int]:
        """Partitions that needed more than one attempt."""
        return self.supervisor.retried_partitions

    @property
    def degraded(self) -> bool:
        """Whether any partition fell back to in-process generation."""
        return self.supervisor.degraded

    @property
    def worker_metrics(self) -> dict[int, dict]:
        """Per-partition metrics snapshots shipped back by the workers."""
        return self.supervisor.worker_metrics

    def to_dict(self) -> dict:
        """JSON-serialisable form (events flattened to strings)."""
        return {
            "algorithm": self.algorithm,
            "n_devices": self.n_devices,
            "job_size": self.job_size,
            "job_unit": self.job_unit,
            "wall_s": self.wall_s,
            "degraded": self.degraded,
            "partitions": [
                {
                    "device_id": p.device_id,
                    "attempts": p.attempts,
                    "outcome": p.outcome,
                    "wall_s": p.wall_s,
                }
                for p in self.partitions
            ],
            "events": [
                f"partition {e.partition} attempt {e.attempt}: {e.kind} {e.detail}".strip()
                for e in self.events
            ],
        }


def _merge_worker_metrics(report: SupervisorReport) -> None:
    """Fold worker metric snapshots into the parent registry.

    Each partition's series gain a ``partition=<id>`` label, so merged
    metrics stay attributable after reconstruction.  No-op while the
    parent has metrics disabled.
    """
    if not obs.metrics_enabled():
        return
    for pid, snap in sorted(report.worker_metrics.items()):
        obs.registry().merge(snap, extra_labels={"partition": pid})


def _device_worker(job, attempt: int = 0) -> tuple[bytes, int | None, dict, dict | None]:
    """Generate one partition (runs in a worker process = one 'GPU').

    The ``(payload, crc, metrics, spans)`` tuple shell — fault-plan
    hooks, the scoped worker registry, CRC-before-corruption, span
    collection under the caller's trace context — is the shared
    :func:`~repro.robust.supervisor.worker_attempt`; this function only
    contributes the counter-space generation body.
    """
    (
        device_id,
        algorithm,
        seed,
        lanes,
        start_block,
        n_blocks,
        block_bytes,
        verify_crc,
        plan_json,
        fused,
        clocks_per_call,
    ) = job[:11]
    trace = job[11] if len(job) > 11 else None
    ring_spec = job[12] if len(job) > 12 else None
    from repro.core.generator import BSRNG

    def produce():
        t0 = time.perf_counter()
        rng = BSRNG(
            algorithm, seed=seed, lanes=lanes, fused=fused, clocks_per_call=clocks_per_call
        )
        # Seek to this device's offset.  Counter-based kernels (AES-CTR, the
        # paper's §5.4 example) jump in O(1); LFSR-based kernels clock through
        # and discard, which caps their multi-device speedup — exactly why the
        # paper partitions *counter space* rather than a serial stream.
        rng.skip_bytes(start_block * block_bytes)
        n = n_blocks * block_bytes
        if verify_crc:
            # single-touch: the receipt CRC folds into the draw copy
            # instead of worker_attempt re-reading the payload cold
            data, receipt = rng.read_with_receipt(n)
            out = TouchedPayload(data, receipt.crc)
        else:
            out = data = rng.random_bytes(n)
        rng.publish_metrics()
        obs.set_gauge("repro_device_wall_seconds", time.perf_counter() - t0, device=device_id)
        obs.inc("repro_device_attempts_total", 1, device=device_id)
        return out

    payload, crc, metrics, spans = worker_attempt(
        device_id,
        attempt,
        plan_json,
        verify_crc,
        produce,
        trace=trace,
        span_name="device.partition",
        process_name=f"device-worker-{device_id}",
    )
    if ring_spec is not None:
        # park the payload (post-fault-injection, so drilled corruption
        # reaches the verifying side exactly like a damaged transfer) in
        # this partition's shared-memory slot and ship only the ref —
        # zero payload bytes through the pickle machinery
        ring_name, slot_bytes, slots, slot = ring_spec
        if len(payload) <= slot_bytes:
            payload = attach_ring(ring_name, slot_bytes, slots).write(slot, payload)
    return payload, crc, metrics, spans


class MultiDeviceGenerator:
    """Partition a generation job across supervised process-backed devices.

    Parameters
    ----------
    algorithm / seed / lanes:
        Passed through to :class:`~repro.core.generator.BSRNG` on each
        device.
    n_devices:
        Worker count (the paper's GPU count).
    block_bytes:
        Partitioning granularity of the output stream.
    timeout / max_retries / verify_crc / degrade_sequential:
        Supervision policy — see
        :class:`~repro.robust.supervisor.SupervisorConfig`.
    fault_plan:
        Deterministic fault injection for tests and drills (also
        activatable via the ``REPRO_FAULT_PLAN`` env var).
    fused / clocks_per_call:
        Fused-kernel configuration each device worker passes to its
        :class:`~repro.core.generator.BSRNG` (``None`` = the BSRNG
        default: fused for bitsliced algorithms).  Workers also inherit
        BSRNG's double-buffered refill pipeline.
    use_ring:
        Return partition payloads through a per-job
        :class:`~repro.core.ring.SharedMemoryRing` (one slot per
        partition) instead of pickling them through the pool pipe.
        Falls back to pickled payloads automatically where shared
        memory is unavailable.
    """

    def __init__(
        self,
        algorithm: str = "mickey2",
        seed: int = 0,
        lanes: int = 1024,
        n_devices: int = 2,
        block_bytes: int = 1 << 16,
        mp_context: str | None = None,
        timeout: float | None = None,
        max_retries: int = 2,
        verify_crc: bool = False,
        degrade_sequential: bool = True,
        fault_plan: FaultPlan | None = None,
        fused: bool | None = None,
        clocks_per_call: int = 32,
        use_ring: bool = True,
    ) -> None:
        if n_devices <= 0:
            raise SpecificationError("n_devices must be positive")
        self.algorithm = algorithm
        self.seed = seed
        self.lanes = lanes
        self.n_devices = n_devices
        self.block_bytes = block_bytes
        self.fused = fused
        self.clocks_per_call = int(clocks_per_call)
        self.use_ring = bool(use_ring)
        # fork avoids re-importing the stack in every worker (a fixed
        # ~second per device that would swamp small jobs); platforms
        # without fork fall back to spawn.
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self.config = SupervisorConfig(
            timeout=timeout,
            max_retries=max_retries,
            verify_crc=verify_crc,
            degrade_sequential=degrade_sequential,
        )
        self.fault_plan = fault_plan
        self.last_report = None

    def _jobs(self, total_blocks: int, ring: SharedMemoryRing | None = None) -> dict[int, tuple]:
        plan_json = self.fault_plan.to_json() if self.fault_plan is not None else None
        parts = partition_counter_space(total_blocks, self.n_devices)
        # contextvars do not cross the pool boundary: the trace context
        # rides the job tuple explicitly (None while tracing is off)
        wire = trace_context.current_wire() if obs.active_tracer() else None
        return {
            p.device_id: (
                p.device_id,
                self.algorithm,
                self.seed,
                self.lanes,
                p.start_block,
                p.n_blocks,
                self.block_bytes,
                self.config.verify_crc,
                plan_json,
                self.fused,
                self.clocks_per_call,
                wire,
            )
            + (((*ring.spec, p.device_id),) if ring is not None else ())
            for p in parts
            if p.n_blocks > 0
        }

    def generate(self, total_blocks: int, parallel: bool = True) -> bytes:
        """Generate ``total_blocks × block_bytes`` output bytes.

        With ``parallel=True`` partitions run in separate supervised
        processes and are concatenated in device order (the paper's
        reconstruction).  ``last_report`` afterwards holds a
        :class:`GenerationReport` — per-partition attempts, wall times
        and outcomes, the underlying supervisor events, and the workers'
        metric snapshots (merged into the parent registry when metrics
        are enabled).
        """
        if total_blocks < 0:
            raise SpecificationError("total_blocks must be non-negative")
        if total_blocks == 0:
            # explicit empty-job fast path: no pool, no workers, no report
            return b""
        supervisor = PartitionSupervisor(_device_worker, self.mp_context, self.config)
        ring = None
        if self.use_ring and parallel:
            # one slot per partition, sized for the largest one; a slot is
            # owned by its partition for the whole job, so retries simply
            # overwrite and torn writes are caught by the CRC receipt
            parts = [p for p in partition_counter_space(total_blocks, self.n_devices)
                     if p.n_blocks > 0]
            slot_bytes = max(p.n_blocks for p in parts) * self.block_bytes
            ring = SharedMemoryRing.try_create(slot_bytes, len(parts))
            if ring is not None:
                supervisor.resolve = ring.resolve
        t0 = time.perf_counter()
        try:
            with span("multidevice.generate", algo=self.algorithm, devices=self.n_devices,
                      blocks=total_blocks):
                results = supervisor.run(self._jobs(total_blocks, ring=ring), parallel=parallel)
        finally:
            if ring is not None:
                ring.close()
        wall = time.perf_counter() - t0
        _merge_worker_metrics(supervisor.report)
        self.last_report = GenerationReport.build(
            self.algorithm,
            self.n_devices,
            total_blocks,
            "blocks",
            wall,
            supervisor.report,
            completed=set(results),
            degraded_pids={e.partition for e in supervisor.report.events if e.kind == "degraded"},
        )
        return b"".join(results[pid] for pid in sorted(results))

    def sequential_reference(self, total_blocks: int) -> bytes:
        """The single-device output the multi-device result must equal."""
        from repro.core.generator import BSRNG

        rng = BSRNG(
            self.algorithm,
            seed=self.seed,
            lanes=self.lanes,
            fused=self.fused,
            clocks_per_call=self.clocks_per_call,
        )
        return rng.random_bytes(total_blocks * self.block_bytes)


def _lane_worker(job, attempt: int = 0) -> tuple[np.ndarray, int | None, dict, dict | None]:
    """Run one device's lane window (a worker process = one 'GPU').

    Same shared :func:`~repro.robust.supervisor.worker_attempt` shell as
    :func:`_device_worker` (ndarray payloads keep dtype and shape through
    fault mutation); the body here is the lane-window bank run.
    """
    (
        device_id,
        cls_path,
        seed,
        lane_offset,
        n_lanes,
        n_bits,
        verify_crc,
        plan_json,
        fused,
        clocks_per_call,
    ) = job[:10]
    trace = job[10] if len(job) > 10 else None
    from repro.core.engine import BitslicedEngine

    module_name, cls_name = cls_path.rsplit(".", 1)
    cls = getattr(__import__(module_name, fromlist=[cls_name]), cls_name)

    def produce() -> np.ndarray:
        t0 = time.perf_counter()
        engine = BitslicedEngine(n_lanes=n_lanes, fused=fused, clocks_per_call=clocks_per_call)
        bank = cls(engine).seed(seed, lane_offset=lane_offset)
        out = bank.keystream_bits(n_bits)
        engine.publish_gate_metrics(algorithm=cls_name)
        obs.inc("repro_device_lane_bits_total", int(out.size), device=device_id)
        obs.set_gauge("repro_device_wall_seconds", time.perf_counter() - t0, device=device_id)
        obs.inc("repro_device_attempts_total", 1, device=device_id)
        return out

    return worker_attempt(
        device_id,
        attempt,
        plan_json,
        verify_crc,
        produce,
        trace=trace,
        span_name="device.lanes",
        process_name=f"lane-worker-{device_id}",
    )


class LanePartitionedGenerator:
    """§5.4's *input-parameter* partitioning, literally.

    The paper shares and partitions "the input parameters (e.g., the
    seed, nonce, and counter)" across GPUs: each device derives its own
    window of the per-lane key/IV material, runs an independent bank, and
    the outputs are stacked.  Unlike stream-splitting
    (:class:`MultiDeviceGenerator`), no device recomputes another's work
    — LFSR-based ciphers scale too, and the union of device outputs
    equals one big single-device bank lane-for-lane.

    Device jobs go through the same
    :class:`~repro.robust.supervisor.PartitionSupervisor` policy as the
    counter-space path (timeouts, retries, CRC verification, degrade).
    """

    def __init__(
        self,
        algorithm: str = "mickey2",
        seed: int = 0,
        total_lanes: int = 2048,
        n_devices: int = 2,
        mp_context: str | None = None,
        timeout: float | None = None,
        max_retries: int = 2,
        verify_crc: bool = False,
        degrade_sequential: bool = True,
        fault_plan: FaultPlan | None = None,
        fused: bool = True,
        clocks_per_call: int = 32,
    ) -> None:
        if algorithm not in _LANE_BANKS:
            raise SpecificationError(
                f"lane partitioning supports {sorted(_LANE_BANKS)}; "
                f"use MultiDeviceGenerator for counter-based kernels"
            )
        if n_devices <= 0 or total_lanes <= 0:
            raise SpecificationError("need n_devices > 0 and total_lanes > 0")
        if total_lanes % n_devices:
            raise SpecificationError("total_lanes must divide evenly across devices")
        self.algorithm = algorithm
        self.seed = seed
        self.total_lanes = total_lanes
        self.n_devices = n_devices
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self.config = SupervisorConfig(
            timeout=timeout,
            max_retries=max_retries,
            verify_crc=verify_crc,
            degrade_sequential=degrade_sequential,
        )
        self.fault_plan = fault_plan
        self.fused = bool(fused)
        self.clocks_per_call = int(clocks_per_call)
        self.last_report = None

    def device_partitions(self) -> list[DevicePartition]:
        """Lane windows per device (start/size in lanes)."""
        per = self.total_lanes // self.n_devices
        return [DevicePartition(d, d * per, per) for d in range(self.n_devices)]

    def generate_lanes(self, n_bits: int, parallel: bool = True) -> np.ndarray:
        """Per-lane keystreams, ``(total_lanes, n_bits)`` uint8."""
        plan_json = self.fault_plan.to_json() if self.fault_plan is not None else None
        wire = trace_context.current_wire() if obs.active_tracer() else None
        jobs = {
            p.device_id: (
                p.device_id,
                _LANE_BANKS[self.algorithm],
                self.seed,
                p.start_block,
                p.n_blocks,
                n_bits,
                self.config.verify_crc,
                plan_json,
                self.fused,
                self.clocks_per_call,
                wire,
            )
            for p in self.device_partitions()
        }
        supervisor = PartitionSupervisor(_lane_worker, self.mp_context, self.config)
        t0 = time.perf_counter()
        with span("lanepartitioned.generate", algo=self.algorithm, devices=self.n_devices,
                  bits=n_bits):
            results = supervisor.run(jobs, parallel=parallel)
        wall = time.perf_counter() - t0
        _merge_worker_metrics(supervisor.report)
        self.last_report = GenerationReport.build(
            self.algorithm,
            self.n_devices,
            n_bits,
            "bits",
            wall,
            supervisor.report,
            completed=set(results),
            degraded_pids={e.partition for e in supervisor.report.events if e.kind == "degraded"},
        )
        return np.vstack([results[pid] for pid in sorted(results)])

    def sequential_reference(self, n_bits: int) -> np.ndarray:
        """One big bank on a single device — the equivalence target."""
        out, _, _, _ = _lane_worker(
            (
                0,
                _LANE_BANKS[self.algorithm],
                self.seed,
                0,
                self.total_lanes,
                n_bits,
                False,
                None,
                self.fused,
                self.clocks_per_call,
            )
        )
        return out
