"""SP 800-22 test 5: Binary Matrix Rank.

Reference probabilities are computed exactly by
:func:`repro.gf2.rank_distribution` (0.2888 / 0.5776 / 0.1336 for 32×32)
and the reduction runs through the batched bit-packed eliminator.
"""

from __future__ import annotations

import numpy as np

from repro.gf2 import rank_distribution
from repro.gf2.linalg import gf2_matrix_rank_batch
from repro.nist._utils import check_bits, igamc
from repro.nist.result import TestResult

__all__ = ["binary_matrix_rank_test"]


def binary_matrix_rank_test(bits, rows: int = 32, cols: int = 32) -> TestResult:
    """Rank distribution of disjoint ``rows × cols`` matrices."""
    arr = check_bits(bits, 38 * rows * cols, "binary_matrix_rank")
    per_matrix = rows * cols
    n_mats = arr.size // per_matrix
    mats = arr[: n_mats * per_matrix].reshape(n_mats, rows, cols)
    ranks = gf2_matrix_rank_batch(mats)
    full = min(rows, cols)
    probs = rank_distribution(rows, cols, max_deficiency=2)
    counts = np.array(
        [
            int(np.count_nonzero(ranks == full)),
            int(np.count_nonzero(ranks == full - 1)),
            int(np.count_nonzero(ranks <= full - 2)),
        ]
    )
    expected = n_mats * probs
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    p = igamc(1.0, chi2 / 2.0)
    return TestResult(
        "Rank",
        [p],
        {"chi2": chi2, "counts": counts.tolist(), "n_matrices": n_mats},
    )
