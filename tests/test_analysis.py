"""Analysis tests: correlation, avalanche and entropy measurements
(the paper's "bit-wise correlation criteria" and lane-initialisation
warnings in §4.3)."""

import numpy as np
import pytest

from repro.analysis import (
    autocorrelation,
    avalanche_profile,
    bias,
    key_avalanche,
    lane_correlation_matrix,
    max_abs_offdiag,
    min_entropy_estimate,
    shannon_entropy_estimate,
)
from repro.errors import SpecificationError


@pytest.fixture(scope="module")
def good_bits():
    return np.random.default_rng(77).integers(0, 2, 200_000, dtype=np.uint8)


class TestBias:
    def test_balanced(self):
        assert bias(np.tile([0, 1], 500)) == pytest.approx(0.0)

    def test_all_ones(self):
        assert bias(np.ones(100, np.uint8)) == pytest.approx(0.5)

    def test_good_source_small(self, good_bits):
        assert abs(bias(good_bits)) < 0.005

    def test_empty_raises(self):
        with pytest.raises(SpecificationError):
            bias(np.array([], dtype=np.uint8))


class TestLaneCorrelation:
    def test_identity_diagonal(self):
        lanes = np.random.default_rng(0).integers(0, 2, (6, 4000), dtype=np.uint8)
        m = lane_correlation_matrix(lanes)
        assert np.allclose(np.diag(m), 1.0)
        assert m.shape == (6, 6)

    def test_independent_lanes_small_offdiag(self):
        lanes = np.random.default_rng(1).integers(0, 2, (8, 20_000), dtype=np.uint8)
        assert max_abs_offdiag(lane_correlation_matrix(lanes)) < 0.05

    def test_detects_duplicated_lane(self):
        # The §4.3 failure mode: identically-seeded parallel LFSRs.
        rng = np.random.default_rng(2)
        lanes = rng.integers(0, 2, (4, 5000), dtype=np.uint8)
        lanes[3] = lanes[0]
        m = lane_correlation_matrix(lanes)
        assert m[0, 3] == pytest.approx(1.0)

    def test_detects_negated_lane(self):
        rng = np.random.default_rng(3)
        lanes = rng.integers(0, 2, (3, 5000), dtype=np.uint8)
        lanes[2] = 1 - lanes[0]
        assert lane_correlation_matrix(lanes)[0, 2] == pytest.approx(-1.0)

    def test_constant_lane_correlates_with_nothing(self):
        lanes = np.zeros((3, 1000), np.uint8)
        lanes[1] = np.random.default_rng(4).integers(0, 2, 1000, dtype=np.uint8)
        m = lane_correlation_matrix(lanes)
        assert max_abs_offdiag(m) == pytest.approx(0.0)

    def test_needs_two_lanes(self):
        with pytest.raises(SpecificationError):
            lane_correlation_matrix(np.zeros((1, 100), np.uint8))

    def test_max_abs_offdiag_validation(self):
        with pytest.raises(SpecificationError):
            max_abs_offdiag(np.zeros((2, 3)))

    def test_bsrng_lanes_uncorrelated(self):
        # The paper's actual claim: bitsliced MICKEY lanes are independent.
        from repro.ciphers.mickey_bitsliced import BitslicedMickey2
        from repro.core.bitslice import unbitslice
        from repro.core.engine import BitslicedEngine

        bank = BitslicedMickey2(BitslicedEngine(n_lanes=16, dtype=np.uint16)).seed(42)
        planes = bank.next_planes(4096)
        lanes = unbitslice(planes, 16)  # (n_lanes, n_bits)
        assert max_abs_offdiag(lane_correlation_matrix(lanes)) < 0.08


class TestAutocorrelation:
    def test_good_source_flat(self, good_bits):
        ac = autocorrelation(good_bits[:50_000], max_lag=32)
        assert ac.shape == (32,)
        assert np.all(np.abs(ac) < 5 / np.sqrt(50_000))

    def test_period_two_sequence(self):
        ac = autocorrelation(np.tile([0, 1], 2000), max_lag=4)
        assert ac[0] == pytest.approx(-1.0, abs=1e-2)  # lag 1 anti-correlated
        assert ac[1] == pytest.approx(1.0, abs=1e-2)  # lag 2 correlated

    def test_too_short_raises(self):
        with pytest.raises(SpecificationError):
            autocorrelation(np.ones(10, np.uint8), max_lag=10)

    def test_constant_raises(self):
        with pytest.raises(SpecificationError):
            autocorrelation(np.ones(100, np.uint8), max_lag=4)


class TestAvalanche:
    def _mickey_keystream(self, key_bits):
        from repro.ciphers.mickey import Mickey2

        return Mickey2(key_bits, iv=np.zeros(40, np.uint8)).keystream(512)

    def test_mickey_avalanche(self):
        fr = key_avalanche(self._mickey_keystream, key_bits=80, n_flips=8)
        prof = avalanche_profile(fr)
        assert prof["passed"], prof

    def test_grain_avalanche(self):
        from repro.ciphers.grain import GrainV1

        def ks(key_bits):
            return GrainV1(key_bits, iv=np.zeros(64, np.uint8)).keystream(512)

        assert avalanche_profile(key_avalanche(ks, key_bits=80, n_flips=8))["passed"]

    def test_broken_cipher_fails(self):
        # A "cipher" that ignores its key has zero avalanche.
        def ks(key_bits):
            return np.tile([0, 1], 256).astype(np.uint8)

        prof = avalanche_profile(key_avalanche(ks, key_bits=80, n_flips=4))
        assert not prof["passed"]
        assert prof["mean"] == pytest.approx(0.0)

    def test_weak_diffusion_fails(self):
        # XORing the key into the stream flips exactly one bit per probe.
        def ks(key_bits):
            out = np.zeros(512, np.uint8)
            out[: key_bits.size] = key_bits
            return out

        assert not avalanche_profile(key_avalanche(ks, key_bits=80, n_flips=4))["passed"]

    def test_validation(self):
        with pytest.raises(SpecificationError):
            key_avalanche(lambda k: k, key_bits=0)
        with pytest.raises(SpecificationError):
            avalanche_profile(np.array([]))


class TestEntropy:
    def test_uniform_bits_near_one(self, good_bits):
        assert shannon_entropy_estimate(good_bits) > 0.995
        assert min_entropy_estimate(good_bits) > 0.9

    def test_constant_bits_zero(self):
        assert shannon_entropy_estimate(np.zeros(10_000, np.uint8)) == pytest.approx(0.0)
        assert min_entropy_estimate(np.zeros(10_000, np.uint8)) == pytest.approx(0.0)

    def test_min_entropy_below_shannon(self, good_bits):
        assert min_entropy_estimate(good_bits) <= shannon_entropy_estimate(good_bits) + 1e-12

    def test_biased_bits_reduced(self):
        biased = (np.random.default_rng(5).random(100_000) < 0.75).astype(np.uint8)
        h = shannon_entropy_estimate(biased)
        assert 0.7 < h < 0.9  # theoretical H(0.75) ≈ 0.811

    def test_block_size_validation(self):
        with pytest.raises(SpecificationError):
            shannon_entropy_estimate(np.ones(100, np.uint8), block_size=0)
        with pytest.raises(SpecificationError):
            min_entropy_estimate(np.ones(100, np.uint8), block_size=21)

    def test_too_short_raises(self):
        with pytest.raises(SpecificationError):
            shannon_entropy_estimate(np.ones(4, np.uint8), block_size=8)


class TestPeriodicBias:
    def test_clean_stream_not_suspicious(self):
        from repro.analysis import periodic_bias

        bits = np.random.default_rng(9).integers(0, 2, 64 * 4000, dtype=np.uint8)
        out = periodic_bias(bits, period=64)
        assert not out["suspicious"]
        assert out["phases"].shape == (64,)

    def test_detects_planted_lane_defect(self):
        from repro.analysis import periodic_bias

        bits = np.random.default_rng(10).integers(0, 2, 64 * 4000, dtype=np.uint8)
        view = bits.reshape(-1, 64)
        view[:, 17] = (np.random.default_rng(11).random(4000) < 0.70).astype(np.uint8)
        out = periodic_bias(bits, period=64)
        assert out["suspicious"]
        assert out["worst_phase"] == 17
        # the aggregate frequency test barely notices (defect is 1/64 of
        # the stream): deviation is ~0.2/64 ≈ 0.3% of ones overall
        from repro.analysis import bias

        assert abs(bias(bits)) < 0.01

    def test_validation(self):
        from repro.analysis import periodic_bias

        with pytest.raises(SpecificationError):
            periodic_bias(np.ones(100, np.uint8), period=1)
        with pytest.raises(SpecificationError):
            periodic_bias(np.ones(3, np.uint8), period=8)
