"""Parallel NIST battery: shard planning, sequential conformance,
supervision (retry / timeout / CRC / degrade) and telemetry."""

import numpy as np
import pytest

from repro import obs
from repro.errors import InsufficientDataError, SpecificationError
from repro.nist import ALL_TESTS, run_suite_parallel, run_suite_sequential
from repro.nist.parallel import plan_shards
from repro.nist.result import TestResult as NistResult
from repro.robust.faults import Fault, FaultPlan

FAST = ("Frequency", "BlockFrequency", "Runs", "CumulativeSums", "Serial")
CIPHERS = ("mickey2", "grain", "trivium", "aes128ctr")


def _assert_same_aggregates(par, seq):
    """Bit-identical SuiteReport contents (supervision excluded)."""
    assert par.per_test == seq.per_test
    assert par.skipped == seq.skipped
    assert par.errors == seq.errors
    assert (par.n_sequences, par.n_bits) == (seq.n_sequences, seq.n_bits)


class TestPlanShards:
    def test_covers_every_sequence_and_test_exactly_once(self):
        shards = plan_shards(13, FAST, workers=4)
        for name in FAST:
            covered = sorted(
                i
                for s in shards
                if name in s.tests
                for i in range(s.seq_start, s.seq_start + s.n_seqs)
            )
            assert covered == list(range(13)), name

    def test_deterministic(self):
        assert plan_shards(20, FAST, 4) == plan_shards(20, FAST, 4)

    def test_few_sequences_split_tests_instead(self):
        # 2 sequences cannot fill 4 workers with sequence chunks alone;
        # the planner must fan out across test groups
        shards = plan_shards(2, FAST, workers=4)
        assert len(shards) >= 4
        assert any(len(s.tests) < len(FAST) for s in shards)

    def test_many_sequences_keep_tests_together(self):
        # plenty of chunks: one test group (battery order), no redundant
        # regeneration
        shards = plan_shards(64, FAST, workers=4)
        assert all(set(s.tests) == set(FAST) for s in shards)
        assert len(shards) == 8  # 2 shards per worker

    def test_groups_are_cost_balanced(self):
        shards = plan_shards(1, tuple(ALL_TESTS), workers=2, test_groups=2)
        groups = {s.tests for s in shards}
        assert len(groups) == 2
        # LinearComplexity dwarfs the battery; it must sit alone-ish, not
        # packed with the other heavy tests
        heavy = next(g for g in groups if "LinearComplexity" in g)
        assert "Serial" not in heavy and "CumulativeSums" not in heavy

    def test_validation(self):
        with pytest.raises(SpecificationError):
            plan_shards(0, FAST, 4)
        with pytest.raises(SpecificationError):
            plan_shards(4, FAST, 0)
        with pytest.raises(SpecificationError):
            plan_shards(4, ("NoSuchTest",), 4)
        with pytest.raises(SpecificationError):
            plan_shards(4, (), 4)


@pytest.fixture(scope="module")
def sequential_reports():
    """Reference batteries, one per cipher (shared across worker counts)."""
    return {
        algo: run_suite_sequential(
            algo, seed=7, lanes=256, n_sequences=4, n_bits=2000, tests=FAST
        )
        for algo in CIPHERS
    }


class TestConformance:
    """run_suite_parallel must reproduce run_suite bit for bit."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("algorithm", CIPHERS)
    def test_matches_sequential(self, algorithm, workers, sequential_reports):
        par = run_suite_parallel(
            algorithm,
            seed=7,
            lanes=256,
            n_sequences=4,
            n_bits=2000,
            tests=FAST,
            workers=workers,
        )
        _assert_same_aggregates(par, sequential_reports[algorithm])

    def test_matches_plain_run_suite_stream(self):
        # the conformance target is the existing sequential entry point,
        # not just the convenience wrapper
        from repro.core.generator import BSRNG
        from repro.nist import run_suite

        rng = BSRNG("mickey2", seed=11, lanes=256)
        seq = run_suite(
            lambda i: rng.random_bits(3000), 6, tests={k: ALL_TESTS[k] for k in FAST}
        )
        par = run_suite_parallel(
            "mickey2", seed=11, lanes=256, n_sequences=6, n_bits=3000,
            tests=FAST, workers=2,
        )
        _assert_same_aggregates(par, seq)

    def test_spawn_context(self):
        # shard payloads carry test *names*; a spawn worker re-imports
        # the battery, so nothing unpicklable may ride along
        seq = run_suite_sequential(
            "mickey2", seed=3, lanes=128, n_sequences=2, n_bits=1000,
            tests=("Frequency",),
        )
        par = run_suite_parallel(
            "mickey2", seed=3, lanes=128, n_sequences=2, n_bits=1000,
            tests=("Frequency",), workers=2, mp_context="spawn",
        )
        _assert_same_aggregates(par, seq)

    def test_skipped_tests_match(self):
        # FFT needs 1000 bits: skipped identically on both paths
        tests = ("Frequency", "FFT")
        seq = run_suite_sequential(
            "mickey2", seed=5, lanes=128, n_sequences=3, n_bits=600, tests=tests
        )
        par = run_suite_parallel(
            "mickey2", seed=5, lanes=128, n_sequences=3, n_bits=600,
            tests=tests, workers=2,
        )
        assert "FFT" in par.skipped
        _assert_same_aggregates(par, seq)

    def test_validation(self):
        with pytest.raises(SpecificationError):
            run_suite_parallel("mickey2", n_sequences=2, n_bits=0, workers=2)
        with pytest.raises(SpecificationError):
            run_suite_parallel("mickey2", n_sequences=2, n_bits=100, workers=0)
        with pytest.raises(SpecificationError):
            run_suite_parallel(
                "mickey2", n_sequences=2, n_bits=100, tests=("Nope",), workers=2
            )


def _drop_when_first_bit_set(bits):
    """A deterministic partially-failing test: drops ~half the sequences
    based on sequence *content*, so every process agrees on which."""
    if bits[0] == 1:
        raise InsufficientDataError("first bit set")
    return NistResult("flaky", [0.3, 0.7])


class TestPartialDrops:
    def test_partial_drop_counts_match_sequential(self, monkeypatch):
        # fork workers inherit the patched registry; the payload itself
        # only ever carries the test's *name*
        monkeypatch.setitem(ALL_TESTS, "Flaky", _drop_when_first_bit_set)
        tests = ("Frequency", "Flaky")
        seq = run_suite_sequential(
            "mickey2", seed=21, lanes=128, n_sequences=8, n_bits=1000, tests=tests
        )
        par = run_suite_parallel(
            "mickey2", seed=21, lanes=128, n_sequences=8, n_bits=1000,
            tests=tests, workers=2, mp_context="fork",
        )
        assert 0 < seq.errors.get("Flaky", 0) < 8  # genuinely partial
        _assert_same_aggregates(par, seq)
        assert f"[dropped {seq.errors['Flaky']}/8 seqs]" in par.to_table()


class TestSupervision:
    def _run(self, fault_plan=None, **kw):
        return run_suite_parallel(
            "mickey2",
            seed=7,
            lanes=256,
            n_sequences=4,
            n_bits=2000,
            tests=FAST,
            workers=2,
            fault_plan=fault_plan,
            **kw,
        )

    def test_crashed_shard_is_retried_and_identical(self, sequential_reports):
        plan = FaultPlan(faults=(Fault("crash", partition=0, attempt=0),))
        par = self._run(fault_plan=plan)
        _assert_same_aggregates(par, sequential_reports["mickey2"])
        sup = par.supervision
        assert sup.attempts[0] >= 2 and not sup.degraded
        assert any(e.kind == "error" for e in sup.events)

    def test_corrupt_payload_is_caught_by_crc(self, sequential_reports):
        plan = FaultPlan(faults=(Fault("corrupt", partition=1, attempt=0, corrupt_bytes=4),))
        par = self._run(fault_plan=plan, verify_crc=True)
        _assert_same_aggregates(par, sequential_reports["mickey2"])
        assert any(e.kind == "corrupt" for e in par.supervision.events)

    def test_pool_exhaustion_degrades_to_inline(self, sequential_reports):
        plan = FaultPlan(
            faults=tuple(Fault("crash", partition=0, attempt=a) for a in range(3))
        )
        par = self._run(fault_plan=plan, max_retries=2)
        _assert_same_aggregates(par, sequential_reports["mickey2"])
        assert par.supervision.degraded

    def test_hung_shard_times_out_not_hangs(self, sequential_reports):
        plan = FaultPlan(faults=(Fault("delay", partition=0, attempt=0, delay=30.0),))
        par = self._run(fault_plan=plan, timeout=1.0)
        _assert_same_aggregates(par, sequential_reports["mickey2"])
        assert any(e.kind == "timeout" for e in par.supervision.events)


class TestTelemetry:
    def test_shard_metrics_merge_into_parent(self):
        with obs.scoped() as reg:
            run_suite_parallel(
                "mickey2", seed=7, lanes=128, n_sequences=4, n_bits=1000,
                tests=("Frequency", "Runs"), workers=2,
            )
            snap = reg.snapshot()
        entries = snap["metrics"]
        names = {e["name"] for e in entries}
        assert "repro_nist_shards_total" in names
        timed = [e for e in entries if e["name"] == "repro_nist_test_seconds"]
        assert timed, names
        assert all("shard" in e["labels"] and "test" in e["labels"] for e in timed)
