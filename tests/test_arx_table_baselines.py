"""ChaCha20 and RC4 baselines (extensions): published known-answer
vectors and bank behaviour."""

import numpy as np
import pytest

from repro.baselines.chacha import ChaCha20Bank, chacha20_block
from repro.baselines.rc4 import RC4Bank, rc4_keystream
from repro.errors import KeyScheduleError, SpecificationError


class TestChaCha20KAT:
    def test_rfc8439_block(self):
        # RFC 8439 §2.3.2: key 00..1f, counter 1, nonce 000000090000004a00000000.
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        out = chacha20_block(key, 1, nonce)
        assert out[:16].hex() == "10f1e7e4d13b5915500fdd1fa32071c4"
        assert len(out) == 64

    def test_counter_changes_block(self):
        key = bytes(range(32))
        nonce = bytes(12)
        assert chacha20_block(key, 0, nonce) != chacha20_block(key, 1, nonce)

    def test_key_length_enforced(self):
        with pytest.raises(KeyScheduleError):
            chacha20_block(bytes(31), 0, bytes(12))
        with pytest.raises(KeyScheduleError):
            chacha20_block(bytes(32), 0, bytes(8))

    def test_counter_range_enforced(self):
        with pytest.raises(SpecificationError):
            chacha20_block(bytes(32), 1 << 32, bytes(12))


class TestChaCha20Bank:
    def test_deterministic(self):
        a = ChaCha20Bank(seed=5, n_streams=4).next_words(128)
        b = ChaCha20Bank(seed=5, n_streams=4).next_words(128)
        assert np.array_equal(a, b)

    def test_bank_matches_block_function(self):
        # Stream i of step t must equal chacha20_block with that stream's
        # key/nonce at counter t.
        bank = ChaCha20Bank(seed=7, n_streams=3)
        base = bank._base.copy()
        words = bank.next_words(3 * 16 * 2).reshape(2, 3, 16)
        for t in range(2):
            for i in range(3):
                key = base[i, 4:12].astype("<u4").tobytes()
                nonce = base[i, 13:16].astype("<u4").tobytes()
                expect = np.frombuffer(chacha20_block(key, t, nonce), dtype="<u4")
                assert np.array_equal(words[t, i], expect), (t, i)

    def test_streams_differ(self):
        bank = ChaCha20Bank(seed=1, n_streams=4)
        block = bank.next_words(64).reshape(4, 16)
        assert np.unique(block[:, 0]).size == 4

    def test_balanced_bits(self):
        words = ChaCha20Bank(seed=2, n_streams=8).next_words(1 << 14)
        bits = np.unpackbits(np.ascontiguousarray(words).view(np.uint8))
        assert abs(bits.mean() - 0.5) < 0.01


class TestRC4KAT:
    # The canonical keystream vectors (RC4 without drop).
    @pytest.mark.parametrize(
        "key,expect",
        [
            (b"Key", "EB9F7781B734CA72A719"),
            (b"Wiki", "6044DB6D41B7"),
            (b"Secret", "04D46B053CA87B59"),
        ],
    )
    def test_known_keystreams(self, key, expect):
        assert rc4_keystream(key, len(expect) // 2).hex().upper() == expect

    def test_drop_skips_prefix(self):
        full = rc4_keystream(b"Key", 20)
        assert rc4_keystream(b"Key", 10, drop=10) == full[10:]

    def test_key_length_enforced(self):
        with pytest.raises(KeyScheduleError):
            rc4_keystream(b"", 4)
        with pytest.raises(KeyScheduleError):
            rc4_keystream(bytes(257), 4)


class TestRC4Bank:
    def test_deterministic(self):
        a = RC4Bank(seed=4, n_streams=4).next_words(64)
        b = RC4Bank(seed=4, n_streams=4).next_words(64)
        assert np.array_equal(a, b)

    def test_bank_matches_scalar_oracle(self):
        bank = RC4Bank(seed=9, n_streams=2)
        # reconstruct each stream's 16-byte key the same way the bank does
        from repro.core.seeding import expand_seed_words, splitmix64

        seeds = expand_seed_words(9, 2, stream=7)
        words = bank.next_words(2 * 8).reshape(8, 2).T  # (stream, words)
        for i in range(2):
            key = bytearray(seeds[i : i + 1].view(np.uint8).tobytes())
            key += splitmix64(seeds[i : i + 1]).view(np.uint8).tobytes()
            expect = rc4_keystream(bytes(key), 32, drop=RC4Bank.drop)
            got = words[i].astype("<u4").tobytes()
            assert got == expect, i

    def test_state_is_permutation(self):
        bank = RC4Bank(seed=1, n_streams=4)
        bank.next_words(128)
        for row in bank._s:
            assert np.array_equal(np.sort(row), np.arange(256))

    def test_balanced_bits(self):
        words = RC4Bank(seed=2, n_streams=8).next_words(1 << 13)
        bits = np.unpackbits(np.ascontiguousarray(words).view(np.uint8))
        assert abs(bits.mean() - 0.5) < 0.02


class TestGeneratorRegistration:
    @pytest.mark.parametrize("alg", ["chacha20", "rc4"])
    def test_stream_prefix(self, alg):
        from repro import BSRNG

        a = BSRNG(alg, seed=5, lanes=32)
        chunked = a.random_bytes(13) + a.random_bytes(51)
        assert chunked == BSRNG(alg, seed=5, lanes=32).random_bytes(64)

    def test_chacha_nist_spot(self):
        from repro import BSRNG
        from repro.nist import frequency_test, runs_test, serial_test

        bits = BSRNG("chacha20", seed=11, lanes=64).random_bits(100_000)
        assert frequency_test(bits).passed
        assert runs_test(bits).passed
        assert serial_test(bits).passed
