"""Cyclic redundancy checks, bit-serial and bitsliced (paper §4.2).

The paper's second demonstration of the column-major representation: a
CRC shift register processed for many independent data streams at once,
with the per-cycle shift/mask work replaced by register renaming.
"""

from repro.crc.bitsliced import BitslicedCRC
from repro.crc.serial import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_IEEE,
    SerialCRC,
    crc_table_lookup,
    table_crc_bytes,
)

__all__ = [
    "SerialCRC",
    "BitslicedCRC",
    "CRC8_ATM",
    "CRC16_CCITT",
    "CRC32_IEEE",
    "crc_table_lookup",
    "table_crc_bytes",
]
