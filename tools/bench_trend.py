#!/usr/bin/env python
"""Append fresh ``BENCH_*.json`` records to a trend history and diff them.

Where :mod:`tools.check_bench_regression` gates a single record against
its committed baseline, this tool builds the *time series*: every run of
the CI perf jobs appends one line per benchmark to
``benchmarks/results/history.jsonl`` — a JSONL ledger keyed by benchmark
name and git SHA — and prints the delta of every numeric metric against
the previous entry of the same benchmark.  Because the history carries
the SHA, a throughput cliff can be bisected to the PR that introduced it
without re-running old commits.

Each history line::

    {"name": "fleet_elastic", "sha": "1d1fa97...", "date": "...",
     "timestamp": 1786171904.3, "gbps": 0.096, "wall_s": null,
     "metrics": {"geomean_speedup": 0.55, "speedup": {...}, ...},
     "params": {...}}

Usage::

    python tools/bench_trend.py [--results-dir benchmarks/results]
        [--history PATH] [--threshold 0.25] [--dry-run]

``--threshold R`` turns the tool into a soft gate: exit 1 when any
``speedup``/``geomean_speedup`` ratio dropped by more than R relative to
the previous entry (absolute Gbit/s deltas are reported but never gate —
they are hardware-dependent, same stance as check_bench_regression).
Exit status 0 = appended (or nothing to do), 1 = threshold breach,
2 = bad input.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys


def git_sha(repo_dir: str) -> str:
    """Current commit SHA, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def load_record(path: str) -> dict:
    with open(path) as fh:
        record = json.load(fh)
    if record.get("schema") != 1:
        raise ValueError(f"{path}: unsupported bench schema {record.get('schema')!r}")
    if not record.get("name"):
        raise ValueError(f"{path}: bench record has no name")
    return record


def history_entry(record: dict, sha: str) -> dict:
    return {
        "name": record["name"],
        "sha": sha,
        "date": record.get("date"),
        "timestamp": record.get("timestamp"),
        "gbps": record.get("gbps"),
        "wall_s": record.get("wall_s"),
        "metrics": record.get("metrics", {}),
        "params": record.get("params", {}),
    }


def read_history(path: str) -> list[dict]:
    entries: list[dict] = []
    if not os.path.exists(path):
        return entries
    with open(path) as fh:
        for i, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"warning: {path}:{i}: unparseable line skipped", file=sys.stderr)
    return entries


def _flatten(prefix: str, value, out: dict) -> None:
    if isinstance(value, dict):
        for k, v in sorted(value.items()):
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix] = float(value)


def numeric_metrics(entry: dict) -> dict:
    """Flattened ``{dotted.key: float}`` view of an entry's numbers."""
    out: dict = {}
    _flatten("gbps", entry.get("gbps"), out)
    _flatten("wall_s", entry.get("wall_s"), out)
    _flatten("", entry.get("metrics", {}), out)
    return out


def diff_entries(prev: dict, curr: dict) -> list[tuple[str, float | None, float, float | None]]:
    """``(key, prev, curr, rel_change)`` rows for every current number."""
    prev_nums = numeric_metrics(prev)
    rows = []
    for key, value in sorted(numeric_metrics(curr).items()):
        before = prev_nums.get(key)
        rel = None
        if before is not None and before != 0:
            rel = (value - before) / abs(before)
        rows.append((key, before, value, rel))
    return rows


def _is_ratio(key: str) -> bool:
    return key.startswith("speedup.") or key.endswith("geomean_speedup")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory scanned for BENCH_*.json (default benchmarks/results)",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="history ledger path (default <results-dir>/history.jsonl)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="R",
        help="exit 1 if any speedup ratio fell by more than R vs the "
        "previous entry (e.g. 0.25 = 25%%); absolute numbers never gate",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print deltas without appending to the history",
    )
    args = parser.parse_args(argv)
    history_path = args.history or os.path.join(args.results_dir, "history.jsonl")

    paths = sorted(glob.glob(os.path.join(args.results_dir, "BENCH_*.json")))
    if not paths:
        print(f"no BENCH_*.json under {args.results_dir}; nothing to do")
        return 0
    try:
        records = [load_record(p) for p in paths]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    sha = git_sha(args.results_dir)
    history = read_history(history_path)
    previous = {}
    for entry in history:  # last entry per name wins
        previous[entry.get("name")] = entry

    breaches = []
    new_entries = []
    for record in records:
        entry = history_entry(record, sha)
        new_entries.append(entry)
        prev = previous.get(entry["name"])
        print(f"== {entry['name']} @ {sha[:12]}")
        if prev is None:
            print("   first entry — no previous run to diff against")
            continue
        print(f"   vs {str(prev.get('sha', 'unknown'))[:12]} ({prev.get('date')})")
        for key, before, value, rel in diff_entries(prev, entry):
            if before is None:
                print(f"   {key:<28} {value:>12.6g}  (new)")
                # an ungated ratio is a silent hole in the gate: fail by
                # name until the history has an entry to diff against
                if args.threshold is not None and _is_ratio(key):
                    breaches.append(
                        f"{entry['name']}: {key} is new ({value:.6g}) — "
                        f"no previous entry to gate against"
                    )
                continue
            arrow = "" if rel is None else f"  {rel:+.1%}"
            print(f"   {key:<28} {before:>12.6g} -> {value:<12.6g}{arrow}")
            if (
                args.threshold is not None
                and _is_ratio(key)
                and rel is not None
                and rel < -args.threshold
            ):
                breaches.append(f"{entry['name']}: {key} fell {rel:.1%}")
        prev_nums = numeric_metrics(prev)
        curr_keys = set(numeric_metrics(entry))
        for key in sorted(set(prev_nums) - curr_keys):
            print(f"   {key:<28} {prev_nums[key]:>12.6g} -> (gone)")
            if args.threshold is not None and _is_ratio(key):
                breaches.append(
                    f"{entry['name']}: {key} missing from current run "
                    f"(was {prev_nums[key]:.6g})"
                )

    if not args.dry_run:
        os.makedirs(os.path.dirname(history_path) or ".", exist_ok=True)
        with open(history_path, "a") as fh:
            for entry in new_entries:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"appended {len(new_entries)} entries to {history_path}")

    if breaches:
        print("THRESHOLD BREACH:", file=sys.stderr)
        for b in breaches:
            print(f"  {b}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
