"""RC4 (Rivest 1987) — the historical software stream-cipher CSPRNG.

Included as the classic table-based keystream generator: its
byte-granular, data-dependent state walk is the *opposite* of
bitslice-friendly (every step is a gather/swap, not a gate), which makes
it a useful contrast baseline for the paper's argument.  The bank
vectorizes across streams — each of the 256 KSA steps and each PRGA byte
is one set of fancy-indexed NumPy ops over all streams at once.

Validated against the canonical "Key"/"Wiki"/"Secret" keystream vectors.
RC4 is cryptographically broken (biased early bytes, related-key
weaknesses) and is shipped here as a baseline, not a recommendation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank
from repro.errors import KeyScheduleError

__all__ = ["rc4_keystream", "RC4Bank"]


def rc4_keystream(key: bytes, n_bytes: int, drop: int = 0) -> bytes:
    """Single-instance RC4 keystream (the specification oracle).

    ``drop`` discards the first N bytes (RC4-drop[N], the standard
    mitigation for the biased early output).
    """
    if not 1 <= len(key) <= 256:
        raise KeyScheduleError("RC4 key must be 1..256 bytes")
    s = list(range(256))
    j = 0
    for i in range(256):
        j = (j + s[i] + key[i % len(key)]) % 256
        s[i], s[j] = s[j], s[i]
    out = bytearray()
    i = j = 0
    for _ in range(drop + n_bytes):
        i = (i + 1) % 256
        j = (j + s[i]) % 256
        s[i], s[j] = s[j], s[i]
        out.append(s[(s[i] + s[j]) % 256])
    return bytes(out[drop:])


class RC4Bank(StreamBank):
    """``n_streams`` RC4-drop[768] generators in lockstep.

    Per-stream 16-byte keys come from the seed expansion; the first 768
    keystream bytes are dropped per stream (the usual bias mitigation).
    """

    word_dtype = np.uint32
    # per output byte: 2 index updates, 3 gathers, 2 scatters, 1 add
    # ≈ 8 table ops x 4 bytes/word = 32 — table traffic, not logic gates.
    ops_per_word = 32.0
    drop = 768

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        k = stream_seeds.size
        keys = np.empty((k, 16), dtype=np.uint8)
        keys[:, :8] = stream_seeds.astype(np.uint64).view(np.uint8).reshape(k, 8)
        from repro.core.seeding import splitmix64

        keys[:, 8:] = splitmix64(stream_seeds).view(np.uint8).reshape(k, 8)
        # vectorized KSA across all streams
        s = np.tile(np.arange(256, dtype=np.int64), (k, 1))
        j = np.zeros(k, dtype=np.int64)
        rows = np.arange(k)
        for i in range(256):
            j = (j + s[:, i] + keys[:, i % 16]) & 0xFF
            si = s[rows, i].copy()
            s[rows, i] = s[rows, j]
            s[rows, j] = si
        self._s = s
        self._i = np.zeros(k, dtype=np.int64)
        self._j = np.zeros(k, dtype=np.int64)
        for _ in range(self.drop):
            self._next_byte()

    def _next_byte(self) -> np.ndarray:
        s, rows = self._s, np.arange(self._s.shape[0])
        self._i = (self._i + 1) & 0xFF
        self._j = (self._j + s[rows, self._i]) & 0xFF
        si = s[rows, self._i].copy()
        s[rows, self._i] = s[rows, self._j]
        s[rows, self._j] = si
        return s[rows, (s[rows, self._i] + s[rows, self._j]) & 0xFF]

    def _step(self) -> np.ndarray:
        word = self._next_byte().astype(np.uint32)
        for shift in (8, 16, 24):
            word |= self._next_byte().astype(np.uint32) << np.uint32(shift)
        return word
