"""SP 800-22 test 12: Approximate Entropy."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SpecificationError
from repro.nist._utils import check_bits, igamc, overlapping_pattern_counts
from repro.nist.result import TestResult

__all__ = ["approximate_entropy_test"]


def _phi(bits: np.ndarray, m: int) -> float:
    counts = overlapping_pattern_counts(bits, m, wrap=True)
    n = bits.size
    nz = counts[counts > 0].astype(np.float64)
    freqs = nz / n
    return float(np.sum(freqs * np.log(freqs)))


def approximate_entropy_test(bits, m: int | None = None) -> TestResult:
    """Compares frequencies of m- and (m+1)-bit patterns.

    ``χ² = 2n(ln 2 − ApEn(m))``, ``p = igamc(2^{m−1}, χ²/2)``; the
    default ``m`` follows NIST's ``m < ⌊log₂ n⌋ − 5`` guidance (capped at
    10, the sts default for megabit streams).
    """
    arr = check_bits(bits, 128, "approximate_entropy")
    n = arr.size
    if m is None:
        m = min(10, max(2, int(math.floor(math.log2(n))) - 6))
    if m < 1:
        raise SpecificationError("approximate_entropy needs m >= 1")
    ap_en = _phi(arr, m) - _phi(arr, m + 1)
    chi2 = 2.0 * n * (math.log(2.0) - ap_en)
    p = igamc(2.0 ** (m - 1), chi2 / 2.0)
    return TestResult(
        "ApproximateEntropy",
        [p],
        {"m": m, "ApEn": ap_en, "chi2": chi2},
    )
