"""Differential conformance for the fused-kernel execution path.

Three-way agreement, cipher by cipher: the compiled fused kernels must be
bit-identical to (a) the per-clock bitsliced interpreter and (b) the
scalar row-major reference implementations — across odd lane counts, odd
read offsets, several clocks-per-call settings and both production word
widths.  These tests are the contract that lets the fused path be the
default in :class:`repro.core.generator.BSRNG`.
"""

import numpy as np
import pytest

from repro.ciphers.aes import aes128_ctr_keystream
from repro.ciphers.aes_bitsliced import BitslicedAESCTR
from repro.ciphers.grain import GrainV1
from repro.ciphers.grain_bitsliced import BitslicedGrain
from repro.ciphers.mickey import Mickey2
from repro.ciphers.mickey_bitsliced import BitslicedMickey2
from repro.ciphers.trivium import Trivium
from repro.ciphers.trivium_bitsliced import BitslicedTrivium
from repro.core.bitslice import unbitslice_bytes
from repro.core.engine import BitslicedEngine
from repro.core.generator import BSRNG

# (bank class, scalar reference class, iv bits)
STREAM_CIPHERS = {
    "trivium": (BitslicedTrivium, Trivium, 80),
    "grain": (BitslicedGrain, GrainV1, 64),
    "mickey2": (BitslicedMickey2, Mickey2, 80),
}

LANES = 13  # odd on purpose: never a whole number of words


@pytest.fixture(params=[np.uint32, np.uint64], ids=["u32", "u64"])
def word_dtype(request):
    return request.param


@pytest.fixture(params=[1, 7, 32], ids=lambda k: f"K{k}")
def clocks(request):
    return request.param


def _engines(word_dtype, clocks, n_lanes=LANES):
    fused = BitslicedEngine(n_lanes=n_lanes, dtype=word_dtype, fused=True,
                            clocks_per_call=clocks)
    plain = BitslicedEngine(n_lanes=n_lanes, dtype=word_dtype)
    return fused, plain


class TestStreamCiphersVsReference:
    @pytest.mark.parametrize("name", sorted(STREAM_CIPHERS))
    def test_fused_matches_scalar_reference(self, name, word_dtype, clocks, rng):
        bank_cls, ref_cls, iv_bits = STREAM_CIPHERS[name]
        keys = rng.integers(0, 2, (LANES, 80), dtype=np.uint8)
        ivs = rng.integers(0, 2, (LANES, iv_bits), dtype=np.uint8)
        eng, _ = _engines(word_dtype, clocks)
        bank = bank_cls(eng)
        bank.load(keys, ivs)
        n_bits = 3 * clocks + 5  # spans full fused calls plus a ragged tail
        got = bank.keystream_bits(n_bits)
        for j in range(LANES):
            ref = ref_cls(keys[j], ivs[j]).keystream(n_bits)
            assert np.array_equal(got[j], ref), f"{name} lane {j}"


class TestStreamCiphersVsInterpreter:
    @pytest.mark.parametrize("name", sorted(STREAM_CIPHERS))
    def test_partial_reads_identical(self, name, word_dtype, clocks):
        """Ragged next_planes() calls never desynchronise the two paths."""
        bank_cls = STREAM_CIPHERS[name][0]
        ef, ep = _engines(word_dtype, clocks, n_lanes=131)
        fused = bank_cls(ef).seed(9)
        plain = bank_cls(ep).seed(9)
        for n_rows in (1, 3, clocks, 2 * clocks + 1):
            a = fused.next_planes(n_rows)
            b = plain.next_planes(n_rows)
            assert a.dtype == word_dtype
            assert np.array_equal(a, b), (name, n_rows)

    @pytest.mark.parametrize("name", sorted(STREAM_CIPHERS))
    def test_gate_accounting_parity(self, name, word_dtype):
        """Fused draws charge exactly the interpreter's gate tallies."""
        bank_cls = STREAM_CIPHERS[name][0]
        ef, ep = _engines(word_dtype, 8, n_lanes=33)
        fused = bank_cls(ef).seed(4)
        plain = bank_cls(ep).seed(4)
        ef.reset_gate_counts()
        ep.reset_gate_counts()
        fused.next_planes(37)
        plain.next_planes(37)
        assert ef.counter.snapshot() == ep.counter.snapshot()


class TestAESConformance:
    def test_fused_matches_scalar_reference(self, word_dtype, clocks, rng):
        key = rng.integers(0, 256, 16, dtype=np.uint8)
        eng, _ = _engines(word_dtype, clocks)
        bank = BitslicedAESCTR(eng)
        bank.load(key, nonce=0xDEADBEEF, counter_start=5)
        batches = clocks + 1
        planes = bank.next_planes(batches * 128)
        nonce_block = np.frombuffer(
            (0xDEADBEEF).to_bytes(8, "big") + bytes(8), dtype=np.uint8
        )
        for t in range(batches):
            got = unbitslice_bytes(planes[128 * t : 128 * (t + 1)], LANES)
            for j in range(LANES):
                ref = aes128_ctr_keystream(key, nonce_block, 1,
                                           start_block=5 + t * LANES + j)
                assert np.array_equal(got[j], ref[0]), (t, j)

    def test_truncated_tail_matches_interpreter(self, word_dtype, clocks, rng):
        key = rng.integers(0, 256, 16, dtype=np.uint8)
        ef, ep = _engines(word_dtype, clocks, n_lanes=37)
        fused, plain = BitslicedAESCTR(ef), BitslicedAESCTR(ep)
        for bank in (fused, plain):
            bank.load(key, nonce=7, counter_start=1)
        for n_rows in (1, 127, 128, 257, 3 * 128 - 37):
            assert np.array_equal(fused.next_planes(n_rows), plain.next_planes(n_rows)), n_rows

    def test_gate_accounting_parity(self, word_dtype, rng):
        key = rng.integers(0, 256, 16, dtype=np.uint8)
        ef, ep = _engines(word_dtype, 4, n_lanes=9)
        fused, plain = BitslicedAESCTR(ef), BitslicedAESCTR(ep)
        for bank in (fused, plain):
            bank.load(key)
        ef.reset_gate_counts()
        ep.reset_gate_counts()
        fused.next_planes(2 * 128)
        plain.next_planes(2 * 128)
        assert ef.counter.snapshot() == ep.counter.snapshot()


class TestGeneratorByteStreams:
    """Odd byte offsets through the full BSRNG draw path."""

    @pytest.mark.parametrize("algorithm", ["trivium", "grain", "mickey2", "aes128ctr"])
    def test_odd_reads_and_offsets(self, algorithm, word_dtype, clocks):
        fused = BSRNG(algorithm, seed=21, lanes=64, dtype=word_dtype,
                      fused=True, clocks_per_call=clocks, prefetch=False)
        plain = BSRNG(algorithm, seed=21, lanes=64, dtype=word_dtype,
                      fused=False, prefetch=False)
        for n in (1, 7, 513, 4095):
            assert fused.random_bytes(n) == plain.random_bytes(n), (algorithm, n)
        fused.skip_bytes(101)
        plain.skip_bytes(101)
        assert fused.random_bytes(257) == plain.random_bytes(257), algorithm
