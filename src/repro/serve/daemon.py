"""``repro serve`` — the asyncio RNG-as-a-service daemon.

A deliberately small HTTP/1.1 server over raw asyncio streams (no web
framework: the container bakes in the scientific stack only), fronting
one :class:`~repro.serve.engine.ServeEngine` and one
:class:`~repro.serve.leases.LeaseManager`:

``GET /v1/bytes?n=N[&format=hex]``
    Lease the next N stream bytes and return them (raw octets, or hex
    with a trailing newline).  The granted range is announced in
    ``X-Repro-Lease-Id`` / ``X-Repro-Lease-Offset`` /
    ``X-Repro-Lease-Length`` response headers, so the client can verify
    the payload against an offline :class:`~repro.core.generator.BSRNG`.
``GET /v1/stream?n=N&chunk=C``
    Chunked-transfer stream.  With ``n`` the whole window is one lease
    (contiguous bytes); without it the stream is open-ended and leases
    chunk by chunk until the client disconnects or the daemon drains.
``GET /healthz``
    200 while the SP 800-90B screen is clean and the daemon accepts
    work; 503 once the RCT/APT verdict latched unhealthy or a drain
    began (load balancers shift traffic before shutdown completes).
``GET /metrics``
    Prometheus text exposition of the live registry
    (:mod:`repro.obs.export`; linted by :mod:`repro.obs.promlint`).
``GET /v1/status``
    JSON snapshot: stream config, lease ledger, chunk dispatch counters,
    health events, uptime — the service twin of
    :class:`~repro.gpu.multigpu.GenerationReport`.

**Backpressure.**  Each stream response runs a producer task that fills
a bounded ``asyncio.Queue`` (``queue_depth`` chunks) while the writer
coroutine drains it through ``writer.drain()`` (socket watermarks).  A
slow reader therefore throttles its own producer at ``queue_depth ×
chunk`` buffered bytes; it never grows daemon memory and never slows
other clients, whose producers run independently.

**Drain.**  SIGTERM/SIGINT stop the listener, flip ``/healthz`` to 503,
let in-flight requests finish (open-ended streams end at the next chunk
boundary with a clean chunked terminator), and only cancel stragglers
after ``drain_grace`` seconds.  Exit is 0 and the worker pool is torn
down with ``terminate()`` — no orphans.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import signal
import threading
import time
from dataclasses import dataclass
from urllib.parse import parse_qsl, urlsplit

from repro import obs
from repro.errors import DeviceFailureError, SpecificationError
from repro.obs import context as trace_context
from repro.obs import flight
from repro.obs.context import TraceContext
from repro.obs.export import render_prometheus
from repro.obs.tracing import span
from repro.serve.engine import ServeEngine, StreamConfig
from repro.serve.leases import LeaseManager

logger = logging.getLogger(__name__)

__all__ = ["DaemonConfig", "ServeDaemon"]

_SERVER_NAME = "repro-serve"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class DaemonConfig:
    """Service-level knobs (the stream itself lives in StreamConfig)."""

    host: str = "127.0.0.1"
    port: int = 8797
    chunk_bytes: int = 1 << 16  # generation + streaming granularity
    queue_depth: int = 4  # per-stream buffered chunks (backpressure bound)
    drain_grace: float = 10.0  # seconds in-flight requests get after SIGTERM
    idle_timeout: float = 30.0  # keep-alive connections idle longer are closed
    max_lease_bytes: int = 1 << 30
    journal_path: str | None = None

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0 or self.queue_depth <= 0:
            raise SpecificationError("chunk_bytes and queue_depth must be positive")
        if self.drain_grace < 0 or self.idle_timeout <= 0:
            raise SpecificationError("need drain_grace >= 0 and idle_timeout > 0")


class _Request:
    """One parsed HTTP request (method, path, query, headers, trace)."""

    __slots__ = ("method", "path", "query", "headers", "trace")

    def __init__(self, method: str, target: str, headers: dict[str, str]) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = dict(parse_qsl(parts.query))
        self.headers = headers
        # the TraceContext this request runs under (set by _dispatch:
        # adopted from X-Repro-Trace-* headers or minted fresh)
        self.trace: TraceContext | None = None


class ServeDaemon:
    """The long-lived service: listener, router, lease ledger, drain logic."""

    def __init__(
        self,
        engine: ServeEngine | None = None,
        config: DaemonConfig | None = None,
    ) -> None:
        self.engine = engine or ServeEngine()
        self.config = config or DaemonConfig()
        self.leases = LeaseManager(
            journal_path=self.config.journal_path,
            max_lease_bytes=self.config.max_lease_bytes,
        )
        self.bound_port: int | None = None
        self.started = threading.Event()  # set once the socket is listening
        self._t0 = time.monotonic()
        self._chunk_seq = itertools.count()  # FaultPlan partition key space
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._requests_total = 0
        self._bytes_served = 0
        self._active_streams = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Begin a graceful drain (signal handlers land here)."""
        if self._stop_event is not None and not self._stop_event.is_set():
            logger.info("shutdown requested; draining")
            flight.record(
                "shutdown",
                requests_total=self._requests_total,
                bytes_served=self._bytes_served,
                active_streams=self._active_streams,
            )
            flight.dump("sigterm")
            self._stop_event.set()

    def shutdown_threadsafe(self) -> None:
        """Drain from another thread (benchmarks, embedding tests)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    async def run(
        self,
        install_signal_handlers: bool = False,
        on_started=None,
    ) -> None:
        """Serve until a shutdown is requested, then drain and exit.

        ``on_started`` is called once the socket is listening (after
        ``bound_port`` is known) — the CLI uses it to print a parseable
        readiness line for supervisors and smoke tests.
        """
        self.engine.start()  # pool forks before any request thread exists
        obs.enable_metrics()
        flight.set_role("daemon")
        tracer = obs.active_tracer()
        if tracer is not None:
            tracer.set_process_name("repro-serve daemon")
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self.request_shutdown)
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        logger.info(
            "%s listening on %s:%d (algorithm=%s, workers=%d)",
            _SERVER_NAME,
            self.config.host,
            self.bound_port,
            self.engine.config.algorithm,
            self.engine.workers,
        )
        self.started.set()
        if on_started is not None:
            on_started()
        try:
            await self._stop_event.wait()
            self._draining = True
            server.close()
            await server.wait_closed()
            if self._conn_tasks:
                done, pending = await asyncio.wait(
                    self._conn_tasks, timeout=self.config.drain_grace
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
                logger.info(
                    "drained %d in-flight connections (%d cancelled)",
                    len(done),
                    len(pending),
                )
        finally:
            self.engine.close()
            self.leases.close()
            self.started.clear()

    # -- connection handling -----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while not self._draining:
                request = await self._read_request(reader)
                if request is None:
                    break
                self._requests_total += 1
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-response
        except asyncio.CancelledError:
            raise  # drain-grace expiry: let the task die
        except Exception:
            logger.exception("connection handler failed")
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        """Parse one request head; ``None`` on EOF or idle timeout."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.idle_timeout
            )
        except asyncio.TimeoutError:
            return None
        if not line or not line.strip():
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if not hline or hline in (b"\r\n", b"\n"):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return _Request(method.upper(), target, headers)

    # -- response plumbing -------------------------------------------------------
    @staticmethod
    def _head(
        status: int,
        content_type: str,
        extra: dict[str, str] | None = None,
        content_length: int | None = None,
        chunked: bool = False,
        keep_alive: bool = True,
    ) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Server: {_SERVER_NAME}",
            f"Content-Type: {content_type}",
        ]
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        elif content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _send_simple(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra: dict[str, str] | None = None,
        keep_alive: bool = True,
    ) -> bool:
        writer.write(
            self._head(
                status,
                content_type,
                extra,
                content_length=len(body),
                keep_alive=keep_alive,
            )
            + body
        )
        await writer.drain()
        obs.inc("repro_serve_requests_total", 1, status=status)
        return keep_alive

    @staticmethod
    def _json(payload: dict) -> bytes:
        return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()

    # -- routing -----------------------------------------------------------------
    async def _dispatch(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        t0 = time.perf_counter()
        endpoint = request.path
        try:
            ctx_in = TraceContext.from_headers(request.headers)
            if obs.active_tracer() is None:
                # no recording, but still mint/adopt an identity so the
                # response headers let clients correlate across services
                request.trace = ctx_in.child() if ctx_in is not None else TraceContext.mint()
                return await self._route(request, writer)
            with trace_context.activate(ctx_in):
                with span(
                    "serve.request", endpoint=endpoint, method=request.method
                ) as request_span:
                    request.trace = request_span.context
                    return await self._route(request, writer)
        except SpecificationError as exc:
            return await self._send_simple(writer, 400, self._json({"error": str(exc)}))
        except DeviceFailureError as exc:
            return await self._send_simple(writer, 503, self._json({"error": str(exc)}))
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:
            logger.exception("request %s failed", request.path)
            return await self._send_simple(
                writer, 500, self._json({"error": f"{type(exc).__name__}: {exc}"}),
                keep_alive=False,
            )
        finally:
            obs.observe(
                "repro_serve_request_seconds",
                time.perf_counter() - t0,
                endpoint=endpoint,
            )

    async def _route(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        if request.method != "GET":
            return await self._send_simple(
                writer, 405, self._json({"error": "GET only"})
            )
        if request.path == "/v1/bytes":
            return await self._serve_bytes(request, writer)
        if request.path == "/v1/stream":
            return await self._serve_stream(request, writer)
        if request.path == "/healthz":
            return await self._serve_healthz(writer)
        if request.path == "/metrics":
            return await self._serve_metrics(writer)
        if request.path == "/v1/status":
            return await self._send_simple(writer, 200, self._json(self.status()))
        return await self._send_simple(
            writer, 404, self._json({"error": f"no route {request.path}"})
        )

    @staticmethod
    def _trace_headers(request: _Request) -> dict[str, str]:
        """Response headers echoing the request's trace identity."""
        if request.trace is None:
            return {}
        return {
            trace_context.TRACE_ID_HEADER: request.trace.trace_id,
            "X-Repro-Span-Id": request.trace.span_id,
        }

    # -- data endpoints ----------------------------------------------------------
    def _generate_async(self, offset: int, n: int):
        """Run one supervised chunk generation off the event loop.

        The trace context is captured *here*, on the loop, and passed as
        an explicit argument: contextvars do not propagate into
        ``run_in_executor`` threads.
        """
        wire = trace_context.current_wire()
        return self._loop.run_in_executor(
            None, self.engine.generate_range, offset, n, next(self._chunk_seq), wire
        )

    async def _serve_bytes(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        try:
            n = int(request.query.get("n", ""))
        except ValueError:
            raise SpecificationError("query parameter n must be an integer") from None
        fmt = request.query.get("format", "raw")
        if fmt not in ("raw", "hex"):
            raise SpecificationError("format must be 'raw' or 'hex'")
        peer = writer.get_extra_info("peername")
        lease = self.leases.acquire(n, client=str(peer))
        extra = {
            "X-Repro-Lease-Id": str(lease.lease_id),
            "X-Repro-Lease-Offset": str(lease.offset),
            "X-Repro-Lease-Length": str(lease.length),
            "X-Repro-Algorithm": self.engine.config.algorithm,
            **self._trace_headers(request),
        }
        content_length = 2 * n + 1 if fmt == "hex" else n
        content_type = "text/plain" if fmt == "hex" else "application/octet-stream"
        writer.write(self._head(200, content_type, extra, content_length=content_length))
        # stream the body in engine-sized chunks with socket backpressure;
        # hex chunks concatenate to the hex of the whole payload
        offset, remaining = lease.offset, n
        while remaining:
            take = min(self.config.chunk_bytes, remaining)
            data = await self._generate_async(offset, take)
            writer.write(data.hex().encode() if fmt == "hex" else data)
            await writer.drain()
            offset += take
            remaining -= take
            self._bytes_served += take
            obs.inc("repro_serve_bytes_total", take)
        if fmt == "hex":
            writer.write(b"\n")
            await writer.drain()
        self.leases.release(lease.lease_id)
        obs.inc("repro_serve_requests_total", 1, status=200)
        return True

    async def _serve_stream(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        try:
            chunk = int(request.query.get("chunk", self.config.chunk_bytes))
            total = int(request.query["n"]) if "n" in request.query else None
        except ValueError:
            raise SpecificationError("chunk and n must be integers") from None
        if chunk <= 0:
            raise SpecificationError("chunk must be positive")
        peer = str(writer.get_extra_info("peername"))
        extra = {
            "X-Repro-Algorithm": self.engine.config.algorithm,
            **self._trace_headers(request),
        }
        bounded = total is not None
        if bounded:
            lease = self.leases.acquire(total, client=peer)
            extra["X-Repro-Lease-Id"] = str(lease.lease_id)
            extra["X-Repro-Lease-Offset"] = str(lease.offset)
            extra["X-Repro-Lease-Length"] = str(lease.length)
        writer.write(self._head(200, "application/octet-stream", extra, chunked=True))

        queue: asyncio.Queue[bytes | None] = asyncio.Queue(self.config.queue_depth)
        self._active_streams += 1
        obs.set_gauge("repro_serve_active_streams", self._active_streams)

        async def produce() -> None:
            try:
                if bounded:
                    offset, remaining = lease.offset, total
                    while remaining:
                        take = min(chunk, remaining)
                        data = await self._generate_async(offset, take)
                        if queue.full():
                            obs.inc("repro_serve_backpressure_waits_total")
                        await queue.put(data)
                        offset += take
                        remaining -= take
                else:
                    # open-ended: lease chunk by chunk until drain/disconnect
                    while not self._draining:
                        piece = self.leases.acquire(chunk, client=peer)
                        data = await self._generate_async(piece.offset, chunk)
                        self.leases.release(piece.lease_id)
                        if queue.full():
                            obs.inc("repro_serve_backpressure_waits_total")
                        await queue.put(data)
            finally:
                await queue.put(None)  # end-of-stream sentinel

        producer = asyncio.create_task(produce())
        try:
            while True:
                data = await queue.get()
                if data is None:
                    break
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
                await writer.drain()
                self._bytes_served += len(data)
                obs.inc("repro_serve_bytes_total", len(data))
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            producer.cancel()
            await asyncio.gather(producer, return_exceptions=True)
            if bounded:
                self.leases.release(lease.lease_id)
            self._active_streams -= 1
            obs.set_gauge("repro_serve_active_streams", self._active_streams)
        obs.inc("repro_serve_requests_total", 1, status=200)
        return False  # one stream per connection

    # -- operational endpoints ---------------------------------------------------
    async def _serve_healthz(self, writer: asyncio.StreamWriter) -> bool:
        health = self.engine.health.to_dict()
        health["draining"] = self._draining
        ok = health["healthy"] and not self._draining
        return await self._send_simple(writer, 200 if ok else 503, self._json(health))

    async def _serve_metrics(self, writer: asyncio.StreamWriter) -> bool:
        obs.set_gauge("repro_serve_uptime_seconds", round(time.monotonic() - self._t0, 3))
        text = render_prometheus(obs.registry().snapshot())
        return await self._send_simple(
            writer,
            200,
            text.encode(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def status(self) -> dict:
        """The ``/v1/status`` document (also usable in-process)."""
        return {
            "server": {
                "uptime_s": round(time.monotonic() - self._t0, 3),
                "draining": self._draining,
                "requests_total": self._requests_total,
                "bytes_served": self._bytes_served,
                "active_streams": self._active_streams,
                "chunk_bytes": self.config.chunk_bytes,
                "queue_depth": self.config.queue_depth,
            },
            "engine": self.engine.status(),
            "leases": self.leases.stats(),
        }


def build_daemon(
    *,
    stream: StreamConfig | None = None,
    daemon_config: DaemonConfig | None = None,
    workers: int = 2,
    timeout: float | None = 30.0,
    max_retries: int = 2,
    verify_crc: bool = True,
    screen: bool = True,
    fleet_workers: int = 0,
    heartbeat_interval: float = 1.0,
    heartbeat_timeout: float = 5.0,
) -> ServeDaemon:
    """Assemble a daemon from flat knobs (the CLI's constructor).

    ``fleet_workers > 0`` mounts a heartbeat-supervised fleet
    (:mod:`repro.fleet`) instead of the anonymous pool; ``workers`` is
    then ignored.
    """
    from repro.robust.supervisor import SupervisorConfig

    fleet_config = None
    if fleet_workers > 0:
        from repro.fleet.controller import FleetConfig

        fleet_config = FleetConfig(
            workers=fleet_workers,
            max_workers=max(fleet_workers * 2, fleet_workers + 2),
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            verify_crc=verify_crc,
            screen=screen,
        )
    engine = ServeEngine(
        config=stream or StreamConfig(),
        workers=workers,
        supervision=SupervisorConfig(
            timeout=timeout, max_retries=max_retries, verify_crc=verify_crc
        ),
        screen=screen,
        fleet=fleet_config,
    )
    return ServeDaemon(engine, daemon_config or DaemonConfig())
