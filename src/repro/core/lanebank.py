"""Thread-parallel lane banks: one cipher bank, ``threads`` workers.

The fused kernels spend their time in full-width NumPy ufuncs, and NumPy
releases the GIL for those — so inside a single process, plane *columns*
can advance in parallel on a thread pool.  :class:`ThreadedLaneBank`
splits the engine's ``n_words`` word columns into contiguous ranges, runs
one independent sub-bank per range, and has every refill write straight
into column slices of one shared output buffer (no per-thread staging
copies, no result concatenation).

Bit-identity is by construction, not by luck: lane material is a pure
function of the *global* lane index (``seed(..., lane_offset=...)`` for
the LFSR banks, the counter window + stride for AES-CTR), and bitsliced
packing puts lane ``l`` into bit ``l % width`` of word ``l // width`` —
so as long as every split boundary falls on a word boundary, sub-bank
``k``'s entire plane block *is* columns ``[w0, w1)`` of the equivalent
single bank.  ``tests/test_lanebank.py`` asserts the equality against
both the interpreter and the single-threaded fused path.

Scaling expectations: this is the same §5.4 input-parameter partitioning
as :class:`~repro.gpu.multigpu.LanePartitionedGenerator`, but with
threads instead of processes — no pickling, no fork, shared output
memory.  On a single hardware core the pool adds only scheduling noise;
the configuration is still exercised (and CI-gated) so multi-core
runners inherit the speedup without a code change.

Per-thread scratch falls out of the existing kernel plumbing for free:
compiled kernels are shared through the process-global
:class:`~repro.codegen.fused.KernelCache`, while every sub-bank carries
its own ``_fused_ctx`` scratch bundle — two threads never touch the same
temporary plane.
"""

from __future__ import annotations

import inspect
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Type

import numpy as np

from repro import obs
from repro.core.engine import BitslicedEngine, GateCounter
from repro.errors import SpecificationError

__all__ = ["ThreadedLaneBank", "split_word_columns"]


def split_word_columns(n_words: int, threads: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[w0, w1)`` word ranges, one per thread.

    Ranges differ in size by at most one word; every range is non-empty
    (``threads`` is clamped to ``n_words`` by the caller).
    """
    if n_words <= 0 or threads <= 0:
        raise SpecificationError("need n_words > 0 and threads > 0")
    if threads > n_words:
        raise SpecificationError(f"cannot split {n_words} words across {threads} threads")
    bounds = [round(i * n_words / threads) for i in range(threads + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(threads)]


class ThreadedLaneBank:
    """A bank of ``lanes`` cipher instances advanced by a thread pool.

    Drop-in for the single cipher banks wherever only the plane stream
    is consumed (:class:`~repro.core.generator.BSRNG` routes through it
    when ``threads > 1``): exposes ``engine`` (full-bank geometry),
    ``next_planes``, ``gates_per_output_bit`` and — when the cipher
    seeks (AES-CTR) — ``skip_rows``.

    Parameters
    ----------
    cls:
        The bitsliced bank class (``BitslicedMickey2``, ...).
    seed / lanes / dtype / fused / clocks_per_call:
        As for a single bank of the same total geometry.
    threads:
        Worker count = number of column ranges.  Clamped to ``n_words``.
    """

    def __init__(
        self,
        cls: Type,
        seed: int,
        *,
        lanes: int,
        dtype=np.uint64,
        threads: int = 2,
        fused: bool = True,
        clocks_per_call: int = 32,
    ) -> None:
        if threads <= 0:
            raise SpecificationError("threads must be positive")
        self.engine = BitslicedEngine(
            n_lanes=lanes, dtype=dtype, fused=fused, clocks_per_call=clocks_per_call
        )
        self.cipher = getattr(cls, "name", cls.__name__)
        self.threads = min(int(threads), self.engine.n_words)
        self.ranges = split_word_columns(self.engine.n_words, self.threads)
        width = self.engine.width
        takes_stride = "counter_stride" in inspect.signature(cls.seed).parameters
        self.banks = []
        for w0, w1 in self.ranges:
            # the last word may be partially populated; the sub-bank must
            # carry the same real-lane count so its zero-padded tail lanes
            # match the full bank's bit for bit
            sub_lanes = min(lanes, w1 * width) - w0 * width
            sub_engine = BitslicedEngine(
                n_lanes=sub_lanes, dtype=dtype, fused=fused, clocks_per_call=clocks_per_call
            )
            bank = cls(sub_engine)
            if takes_stride:
                bank.seed(seed, lane_offset=w0 * width, counter_stride=lanes)
            else:
                bank.seed(seed, lane_offset=w0 * width)
            self.banks.append(bank)
        self.rows_granularity = max(getattr(b, "rows_granularity", 1) for b in self.banks)
        if all(hasattr(b, "skip_rows") for b in self.banks):
            self.skip_rows = self._skip_rows
        self._pool: tuple[int, ThreadPoolExecutor] | None = None

    def _executor(self) -> ThreadPoolExecutor:
        # per-PID like the refill executor: a fork-inherited pool's
        # worker threads do not survive the fork, so the child rebuilds
        pid = os.getpid()
        if self._pool is None or self._pool[0] != pid:
            self._pool = (
                pid,
                ThreadPoolExecutor(max_workers=self.threads, thread_name_prefix="lanebank"),
            )
        return self._pool[1]

    def next_planes(
        self, n_rows: int, *, out: np.ndarray | None = None, epilogue=None
    ) -> np.ndarray:
        """Emit ``(n_rows, n_words)`` keystream planes, columns in parallel.

        The single-touch *epilogue* runs once over the completed refill
        rather than per sub-bank: the byte stream interleaves all column
        ranges row by row, so per-column accounting would observe the
        bytes out of stream order.  The refill is still cache-resident
        when the hook runs — the barrier above it is the last writer.
        """
        if n_rows < 0:
            raise SpecificationError("n_rows must be non-negative")
        gran = self.rows_granularity
        alloc = -(-n_rows // gran) * gran
        if out is None:
            out = np.empty((alloc, self.engine.n_words), dtype=self.engine.dtype)
        futures = [
            self._executor().submit(bank.next_planes, n_rows, out=out[:, w0:w1])
            for bank, (w0, w1) in zip(self.banks, self.ranges)
        ]
        for f in futures:
            f.result()  # propagate worker exceptions; all columns written
        if epilogue is not None:
            epilogue(out[:n_rows])
        if obs.metrics_enabled():
            obs.inc("repro_lanebank_refills_total", 1, cipher=self.cipher)
            obs.inc("repro_lanebank_rows_total", n_rows, cipher=self.cipher)
        return out[:n_rows]

    def _skip_rows(self, n_rows: int) -> None:
        """Seek every column range forward (counter-based ciphers only)."""
        for bank in self.banks:
            bank.skip_rows(n_rows)

    def keystream_bits(self, n_bits: int) -> np.ndarray:
        """Per-lane keystream: ``(n_lanes, n_bits)`` bit matrix."""
        from repro.core.bitslice import unbitslice

        return unbitslice(self.next_planes(n_bits), self.engine.n_lanes)

    def gate_report(self) -> dict:
        """Merged gate totals across every sub-bank's engine."""
        merged = GateCounter()
        for bank in self.banks:
            merged.merge(bank.engine.counter)
        snap = merged.snapshot()
        snap["n_lanes"] = self.engine.n_lanes
        snap["word_width"] = self.engine.width
        return snap

    def gates_per_output_bit(self) -> float:
        """Logic cost per emitted bit (identical across sub-banks)."""
        return self.banks[0].gates_per_output_bit()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ThreadedLaneBank(cipher={self.cipher!r}, lanes={self.engine.n_lanes}, "
            f"threads={self.threads}, ranges={self.ranges})"
        )
