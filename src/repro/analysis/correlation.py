"""Bit-wise correlation measurements (lane-to-lane and serial)."""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import SpecificationError

__all__ = ["lane_correlation_matrix", "max_abs_offdiag", "autocorrelation", "bias", "periodic_bias"]


def bias(bits) -> float:
    """Deviation of the ones-fraction from 1/2 (0 = perfectly balanced)."""
    arr = as_bit_array(bits)
    if arr.size == 0:
        raise SpecificationError("empty sequence")
    return float(arr.mean() - 0.5)


def lane_correlation_matrix(lane_bits) -> np.ndarray:
    """Pearson correlation between lanes of an ``(n_lanes, n_bits)`` matrix.

    For independent, unbiased lanes the off-diagonal entries are
    ``O(1/√n_bits)``; correlated lane initialisation (the failure mode the
    paper warns about in §4.3) shows up as large off-diagonals.
    """
    arr = as_bit_array(lane_bits).astype(np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2:
        raise SpecificationError("need at least 2 lanes")
    centered = arr - arr.mean(axis=1, keepdims=True)
    std = centered.std(axis=1)
    std[std == 0] = np.inf  # constant lanes correlate with nothing
    corr = (centered @ centered.T) / arr.shape[1]
    return corr / np.outer(std, std)


def max_abs_offdiag(matrix: np.ndarray) -> float:
    """Largest |off-diagonal| entry — the scalar the correlation gate uses."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise SpecificationError("expected a square matrix")
    off = m - np.diag(np.diag(m))
    return float(np.abs(off).max())


def autocorrelation(bits, max_lag: int = 64) -> np.ndarray:
    """Normalized serial autocorrelation at lags 1..max_lag.

    Computed on the ±1 mapping; for a random sequence each entry is
    approximately N(0, 1/n).
    """
    arr = as_bit_array(bits).astype(np.float64)
    n = arr.size
    if n <= max_lag:
        raise SpecificationError("sequence shorter than max_lag")
    x = 2.0 * arr - 1.0
    x -= x.mean()
    denom = float(np.dot(x, x))
    if denom == 0:
        raise SpecificationError("constant sequence")
    out = np.empty(max_lag, dtype=np.float64)
    for lag in range(1, max_lag + 1):
        out[lag - 1] = float(np.dot(x[:-lag], x[lag:])) / denom
    return out


def periodic_bias(bits, period: int) -> dict:
    """Per-phase ones-fraction for a conjectured *period* in the stream.

    The BSRNG output interleaves lanes plane-major, so a single defective
    lane shows up as bias at one phase of the lane-count period — a
    failure invisible to the aggregate frequency test at small defect
    sizes.  Returns the per-phase fractions, the worst absolute deviation
    from 1/2 and a z-score for it.
    """
    arr = as_bit_array(bits).ravel()
    if period <= 1:
        raise SpecificationError("period must be at least 2")
    n = arr.size - arr.size % period
    if n == 0:
        raise SpecificationError("sequence shorter than one period")
    phases = arr[:n].reshape(-1, period).mean(axis=0)
    per_phase_n = n // period
    dev = np.abs(phases - 0.5)
    worst = int(np.argmax(dev))
    z = float(dev[worst] / (0.5 / np.sqrt(per_phase_n)))
    return {
        "phases": phases,
        "worst_phase": worst,
        "max_deviation": float(dev[worst]),
        "z_score": z,
        "suspicious": z > 4.0,
    }
