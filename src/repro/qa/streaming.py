"""Streaming QA: run window-eligible plugins over an unbounded stream.

The :class:`StreamingEvaluator` turns the offline battery into an
*online* monitor: bytes are fed in arbitrary chunks, assembled into
non-overlapping fixed-size windows, and every eligible plugin runs on
each (sampled) window.  Three properties define the design:

* **bounded memory** — at most one window of bytes is buffered plus
  O(plugins) of per-plugin state, regardless of stream length;
* **chunk-split invariance** — the window sequence is a pure function
  of the byte stream, so feeding the same bytes one byte at a time or
  in one giant chunk yields identical state
  (``tests/test_qa_streaming.py`` proves this with Hypothesis);
* **latched verdicts** — a plugin whose per-window p-value ever falls
  below its failure threshold latches permanently (the SP 800-90B
  health-test convention: an RNG that failed once is suspect until an
  operator intervenes), with the triggering window recorded.

Eligibility is declared data requirement vs window size: a plugin whose
``min_bits`` exceeds the window never runs and accrues skips instead —
skips are first-class observable state, never silent.  Per-window
failure thresholds default to each plugin's ``alpha``; ``fail_alpha``
overrides globally (the serving sidecar uses a far smaller value than
offline batteries because it evaluates millions of windows).

Metrics (when :func:`repro.obs.metrics_enabled`):
``repro_qa_windows_total{plugin=}``, ``repro_qa_failures_total{plugin=}``,
``repro_qa_skips_total{plugin=}``, ``repro_qa_latched{plugin=}`` and the
per-run ``repro_qa_plugin_seconds{plugin=}`` histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.errors import SpecificationError
from repro.qa.plugin_api import QAPlugin

__all__ = ["PluginState", "StreamingEvaluator"]


@dataclass
class PluginState:
    """Mutable per-plugin monitor state (one per registered plugin)."""

    windows: int = 0
    failures: int = 0
    skips: int = 0
    latched: bool = False
    min_p: float | None = None
    last_p: float | None = None
    skip_reason: str = ""
    first_failure: dict | None = None

    def to_dict(self) -> dict:
        return {
            "windows": self.windows,
            "failures": self.failures,
            "skips": self.skips,
            "latched": self.latched,
            "min_p": self.min_p,
            "last_p": self.last_p,
            "skip_reason": self.skip_reason,
            "first_failure": self.first_failure,
        }


@dataclass(frozen=True)
class _Lane:
    plugin: QAPlugin
    threshold: float
    eligible: bool
    state: PluginState = field(default_factory=PluginState)


class StreamingEvaluator:
    """Online randomness QA over non-overlapping fixed-size windows."""

    def __init__(
        self,
        plugins: Sequence[QAPlugin] | None = None,
        *,
        window_bytes: int = 1 << 14,
        registry=None,
        fail_alpha: float | None = None,
        sample: int = 1,
    ) -> None:
        """
        Parameters
        ----------
        plugins:
            Plugins to run.  Default: every streaming-capable plugin of
            *registry* (default: the process-global registry).
        window_bytes:
            Window size; each full window is evaluated independently.
        fail_alpha:
            Global per-window failure threshold; ``None`` means each
            plugin's own ``alpha``.
        sample:
            Evaluate every *sample*-th window (1 = all).  Skipped
            windows still advance the window index deterministically.
        """
        if window_bytes < 1:
            raise SpecificationError("window_bytes must be positive")
        if sample < 1:
            raise SpecificationError("sample must be >= 1")
        if fail_alpha is not None and not 0.0 < fail_alpha < 1.0:
            raise SpecificationError("fail_alpha must be in (0, 1)")
        if plugins is None:
            if registry is None:
                from repro.qa.registry import default_registry

                registry = default_registry()
            plugins = registry.select(streaming=True)
        plugins = list(plugins)
        names = [p.name for p in plugins]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate plugin names: {names}")
        self.window_bytes = int(window_bytes)
        self.window_bits = self.window_bytes * 8
        self.sample = int(sample)
        self.fail_alpha = fail_alpha
        self._lanes = [
            _Lane(
                plugin=p,
                threshold=fail_alpha if fail_alpha is not None else p.alpha,
                eligible=p.min_bits <= self.window_bits,
            )
            for p in plugins
        ]
        for lane in self._lanes:
            if not lane.eligible:
                lane.state.skip_reason = (
                    f"{lane.plugin.name} needs {lane.plugin.min_bits} bits; "
                    f"window has {self.window_bits}"
                )
        self._buffer = bytearray()
        self._window_index = 0
        self._bytes_seen = 0
        self._latch_listeners: list[Callable[[str, dict], None]] = []

    # ------------------------------------------------------------------
    # feeding

    def feed(self, data: bytes | bytearray | memoryview) -> None:
        """Append *data* to the stream; evaluates any completed windows."""
        self._bytes_seen += len(data)
        self._buffer.extend(data)
        w = self.window_bytes
        while len(self._buffer) >= w:
            window = bytes(self._buffer[:w])
            del self._buffer[:w]
            index = self._window_index
            self._window_index += 1
            if index % self.sample == 0:
                self._evaluate(window, index)

    def _evaluate(self, window: bytes, index: int) -> None:
        bits = np.unpackbits(
            np.frombuffer(window, dtype=np.uint8), bitorder="little"
        )
        for lane in self._lanes:
            st = lane.state
            if not lane.eligible:
                st.skips += 1
                obs.inc("repro_qa_skips_total", plugin=lane.plugin.name)
                continue
            result = lane.plugin.timed_run(bits)
            if not result.ok:
                st.skips += 1
                st.skip_reason = result.reason
                obs.inc("repro_qa_skips_total", plugin=lane.plugin.name)
                continue
            st.windows += 1
            obs.inc("repro_qa_windows_total", plugin=lane.plugin.name)
            p = result.p_value
            st.last_p = p
            st.min_p = p if st.min_p is None else min(st.min_p, p)
            if p < lane.threshold:
                st.failures += 1
                obs.inc("repro_qa_failures_total", plugin=lane.plugin.name)
                if not st.latched:
                    st.latched = True
                    st.first_failure = {
                        "window": index,
                        "p_value": p,
                        "threshold": lane.threshold,
                        "statistics": dict(result.statistics),
                    }
                    obs.set_gauge(
                        "repro_qa_latched", 1, plugin=lane.plugin.name
                    )
                    self._notify_latch(lane.plugin.name, st.first_failure)

    # ------------------------------------------------------------------
    # verdicts / introspection

    def add_latch_listener(self, fn: Callable[[str, dict], None]) -> None:
        """Call ``fn(plugin_name, first_failure)`` on each new latch."""
        self._latch_listeners.append(fn)

    def _notify_latch(self, name: str, info: dict) -> None:
        for fn in self._latch_listeners:
            fn(name, info)

    @property
    def latched(self) -> list[str]:
        """Names of plugins that have latched a failure, plugin order."""
        return [l.plugin.name for l in self._lanes if l.state.latched]

    @property
    def healthy(self) -> bool:
        """True while no plugin has latched."""
        return not any(l.state.latched for l in self._lanes)

    @property
    def windows_seen(self) -> int:
        """Completed windows so far (evaluated or sampled past)."""
        return self._window_index

    @property
    def bytes_seen(self) -> int:
        return self._bytes_seen

    def plugin_names(self) -> list[str]:
        return [l.plugin.name for l in self._lanes]

    def status(self) -> dict:
        """JSON-able snapshot of the whole monitor."""
        return {
            "window_bytes": self.window_bytes,
            "sample": self.sample,
            "fail_alpha": self.fail_alpha,
            "bytes_seen": self._bytes_seen,
            "windows_seen": self._window_index,
            "buffered_bytes": len(self._buffer),
            "healthy": self.healthy,
            "latched": self.latched,
            "plugins": {
                l.plugin.name: {
                    "eligible": l.eligible,
                    "threshold": l.threshold,
                    **l.state.to_dict(),
                }
                for l in self._lanes
            },
        }
