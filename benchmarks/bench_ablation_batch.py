"""E7 — §5.2: kernel "loop size" batching sweep.

The paper fixes blocks=64, threads=256 and varies the kernel loop size
between 4,400 and 13,000 clocks per launch, "yielding a different
performance throughput".  The software analogue is the number of
keystream planes generated per engine call: small batches pay fixed
per-call overhead every few rows, large batches amortise it.  Also
sweeps the virtual datapath word width (design-choice ablation #1).
"""

import numpy as np
import pytest
from _emit import emit_bench
from conftest import FULL_SCALE, emit_table, measure_gbps

from repro.ciphers.grain_bitsliced import BitslicedGrain
from repro.core.engine import BitslicedEngine

LANES = 1 << 15 if FULL_SCALE else 1 << 13
BATCHES = (8, 32, 128, 512) if not FULL_SCALE else (8, 32, 128, 512, 2048)


def throughput_at(batch_rows: int, dtype=np.uint64) -> float:
    bank = BitslicedGrain(BitslicedEngine(n_lanes=LANES, dtype=dtype)).seed(1)
    return measure_gbps(lambda: bank.next_planes(batch_rows), batch_rows * LANES, repeat=2)


def test_batch_size_sweep(benchmark):
    rows = {b: throughput_at(b) for b in BATCHES}
    lines = [f"{'batch rows':>12}{'Gbit/s':>10}", "-" * 22]
    for b, gbps in rows.items():
        lines.append(f"{b:>12}{gbps:>10.4f}")
    emit_table("ablation_batch", lines)
    emit_bench(
        "ablation_batch",
        params={"lanes": LANES, "batches": list(BATCHES), "full_scale": FULL_SCALE},
        gbps=max(rows.values()),
        metrics={"gbps_by_batch": {str(k): v for k, v in rows.items()}},
    )
    benchmark.extra_info["gbps"] = {str(k): round(v, 4) for k, v in rows.items()}
    benchmark.pedantic(lambda: throughput_at(BATCHES[1]), rounds=1, iterations=1)

    # Reproduction finding (EXPERIMENTS.md E7): in the NumPy engine the
    # curve is flat — per-plane gate work dominates, so there is no
    # kernel-launch cost to amortise.  The paper's rising-then-plateau
    # shape is a launch-overhead effect, which lives in the staging model
    # (E9) here.  Assert flatness with headroom for single-core timing
    # noise: no batch size wins or loses 3x.
    vals = list(rows.values())
    assert max(vals) < 3 * min(vals)


def test_word_width_sweep(benchmark):
    widths = {}
    for dtype in (np.uint8, np.uint32, np.uint64):
        widths[np.dtype(dtype).name] = throughput_at(64, dtype)
    lines = [f"{'datapath dtype':>15}{'Gbit/s':>10}", "-" * 25]
    for name, gbps in widths.items():
        lines.append(f"{name:>15}{gbps:>10.4f}")
    emit_table("ablation_word_width", lines)
    emit_bench(
        "ablation_word_width",
        params={"lanes": LANES, "batch_rows": 64},
        gbps=max(widths.values()),
        metrics={"gbps_by_dtype": widths},
    )
    benchmark.extra_info["gbps"] = {k: round(v, 4) for k, v in widths.items()}
    benchmark.pedantic(lambda: throughput_at(64, np.uint64), rounds=1, iterations=1)

    # Reproduction finding (EXPERIMENTS.md E7): NumPy's datapath is the
    # plane's *byte* length, which is dtype-invariant at fixed lanes, so
    # the word-width effect the paper gets from 32-bit GPU registers is
    # absent here (the GPU model charges it via bits_per_instruction
    # instead).  Assert dtype near-parity — a large gap would indicate a
    # layout bug.
    vals = list(widths.values())
    assert max(vals) < 1.8 * min(vals)
