#!/usr/bin/env python
"""CI drill for the continuous-QA serving path (``repro serve --qa``).

The scenario is the one the QA sidecar exists for: a **defective
generator** — every served byte AND-masked with ``0xFE`` via an injected
``bias`` fault — whose output CRC-verifies clean and reproduces
identically on retry, so no transfer-level defense can fire.  The drill
asserts the QA layer is the one that catches it, end to end through the
real CLI entry point:

1. boot ``repro serve --qa`` in a subprocess with a ``REPRO_FAULT_PLAN``
   bias plan and the SP 800-90B screen disabled (QA must not be rescued
   by the coarser screen);
2. wait for the parseable readiness line, fetch enough bytes to fill QA
   windows, and confirm the served payload really is biased (low bit of
   every byte zero) — the defect reached the client;
3. poll ``/healthz`` until it flips 503 with a ``qa:<plugin>`` event
   naming the detecting plugin and triggering window;
4. lint the live ``/metrics`` exposition and require the ``repro_qa_*``
   series to be present and promlint-clean;
5. SIGTERM and require a graceful drain with exit status 0.

Exit status: 0 = all green, 1 = any check failed.

Usage::

    PYTHONPATH=src python tools/qa_drill.py [--algorithm trivium]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.promlint import lint  # noqa: E402
from repro.robust.faults import FAULT_PLAN_ENV, Fault, FaultPlan  # noqa: E402

READY_RE = re.compile(r"^repro-serve listening on ([\d.]+):(\d+)\s*$")


def fail(msg: str) -> "NoReturn":  # noqa: F821 - documentation type only
    print(f"qa_drill: FAIL — {msg}", file=sys.stderr)
    raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="trivium")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--lanes", type=int, default=1024)
    parser.add_argument("--window-bytes", type=int, default=4096)
    parser.add_argument("--fetch-bytes", type=int, default=8192)
    parser.add_argument("--fetches", type=int, default=4)
    args = parser.parse_args(argv)

    env = dict(os.environ)
    root = pathlib.Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH")) if p
    )
    plan = FaultPlan(faults=(Fault(kind="bias", partition=0, bias_mask=0xFE),))
    env[FAULT_PLAN_ENV] = plan.to_json()

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "-a", args.algorithm, "-s", str(args.seed), "-l", str(args.lanes),
            "--workers", "1",
            "--no-screen",
            "--qa",
            "--qa-window-bytes", str(args.window_bytes),
            "--qa-plugins", "Frequency,Runs,RepeatingXor",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        host = port = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line and proc.poll() is not None:
                fail(f"daemon exited early with {proc.returncode}")
            m = READY_RE.match(line.strip())
            if m:
                host, port = m.group(1), int(m.group(2))
                break
        if port is None:
            fail("no readiness line within 60s")
        print(f"qa_drill: daemon ready on {host}:{port} (bias fault armed)")

        base = f"http://{host}:{port}"
        for _ in range(args.fetches):
            with urllib.request.urlopen(
                f"{base}/v1/bytes?n={args.fetch_bytes}", timeout=30
            ) as resp:
                body = resp.read()
            if len(body) != args.fetch_bytes:
                fail(f"short read: {len(body)}/{args.fetch_bytes}")
            if any(b & 0x01 for b in body):
                fail("served bytes are not biased — fault plan did not inject")
        print(
            f"qa_drill: {args.fetches} fetches of {args.fetch_bytes} B served, "
            "all biased (CRC-clean defect reached the client)"
        )

        doc = None
        deadline = time.time() + 60
        while time.time() < deadline:
            try:
                with urllib.request.urlopen(f"{base}/healthz", timeout=30) as resp:
                    time.sleep(0.2)  # still 200: sidecar hasn't latched yet
            except urllib.error.HTTPError as err:
                if err.code != 503:
                    fail(f"/healthz returned {err.code}, expected 503")
                doc = json.loads(err.read())
                break
        if doc is None:
            fail("/healthz never flipped 503 — QA sidecar missed the bias")
        if doc.get("healthy") is not False:
            fail(f"503 body claims healthy: {doc}")
        qa_events = [e for e in doc.get("events", []) if e["test"].startswith("qa:")]
        if not qa_events:
            fail(f"no qa:* event in /healthz: {doc.get('events')}")
        event = qa_events[0]
        detail = event.get("detail") or {}
        print(
            f"qa_drill: /healthz 503 with {event['test']} "
            f"(window {detail.get('window')}, p={detail.get('p_value')})"
        )

        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as resp:
            exposition = resp.read().decode()
        problems = lint(exposition)
        if problems:
            fail(f"/metrics lint problems: {problems}")
        for series in (
            "repro_qa_windows_total",
            "repro_qa_failures_total",
            "repro_qa_latched",
            "repro_qa_plugin_seconds",
        ):
            if series not in exposition:
                fail(f"/metrics is missing {series}")
        print("qa_drill: /metrics lint clean, repro_qa_* series present")

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        if rc != 0:
            fail(f"daemon exited {rc} after SIGTERM (expected graceful 0)")
        print("qa_drill: graceful drain, exit 0")
        print("qa_drill: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
