"""Calibration: every detector is quiet on randomness, loud on defects.

Two halves, both on fixed seeds (no flakiness budget):

* **False-positive rate** — each streaming plugin runs over many windows
  of reference AES-CTR output; the number of sub-alpha p-values must be
  consistent with (or below — the detectors are deliberately
  conservative) the binomial expectation at a generous test alpha.
* **Planted defects** — each detector family gets a stream with exactly
  the defect it exists for (doubled ECB blocks, repeating-key XOR,
  constant output, tiled values, sorted words, single-phase bias) and
  must latch it decisively, not marginally.
"""

import numpy as np
import pytest

from repro.core.generator import BSRNG
from repro.qa import StreamingEvaluator, default_registry

WINDOW_BYTES = 1 << 13  # 8 KiB = 65,536 bits: every builtin detector eligible
N_WINDOWS = 200
FPR_ALPHA = 0.01
# Binomial(200, 0.01) has mean 2; P(X > 9) < 6e-5.  Conservative
# detectors (Bonferroni / discrete tails) land well under the mean.
FPR_UPPER = 9

DETECTORS = [
    "Autocorrelation",
    "PeriodicBias",
    "ShannonEntropy",
    "MinEntropy",
    "BirthdaySpacings",
    "OverlappingPermutations",
    "EcbStructure",
    "RepeatingXor",
]


@pytest.fixture(scope="module")
def reference_stream():
    """One fixed reference stream, shared by every FPR check."""
    rng = BSRNG("aes128ctr", seed=0xA11CE, lanes=256)
    return rng.random_bytes(WINDOW_BYTES * N_WINDOWS)


def _evaluate(plugin_names, data, *, fail_alpha=FPR_ALPHA, window_bytes=WINDOW_BYTES):
    reg = default_registry()
    ev = StreamingEvaluator(
        [reg.get(n) for n in plugin_names],
        window_bytes=window_bytes,
        fail_alpha=fail_alpha,
    )
    ev.feed(data)
    return ev


@pytest.mark.slow
@pytest.mark.parametrize("name", DETECTORS)
def test_false_positive_rate_on_reference_randomness(name, reference_stream):
    ev = _evaluate([name], reference_stream)
    state = ev.status()["plugins"][name]
    assert state["windows"] == N_WINDOWS, state["skip_reason"]
    assert state["failures"] <= FPR_UPPER, (
        f"{name}: {state['failures']}/{N_WINDOWS} windows below "
        f"alpha={FPR_ALPHA} (min_p={state['min_p']:.3g})"
    )


@pytest.mark.slow
def test_nist_streaming_plugins_quiet_on_reference(reference_stream):
    """The SP 800-22 lanes at the serving threshold: zero latches."""
    ev = StreamingEvaluator(
        default_registry().select(family="nist", streaming=True),
        window_bytes=WINDOW_BYTES,
        fail_alpha=1e-9,  # the `repro serve --qa` default
    )
    ev.feed(reference_stream)
    assert ev.healthy, ev.latched


class TestPlantedDefects:
    """Each defect stream must latch its detector at the *serving*
    threshold (1e-9) — decisive detections, not borderline ones."""

    def _assert_latches(self, name, data, window_bytes=WINDOW_BYTES):
        ev = _evaluate([name], data, fail_alpha=1e-9, window_bytes=window_bytes)
        state = ev.status()["plugins"][name]
        assert not ev.healthy, (
            f"{name} missed its planted defect "
            f"(min_p={state['min_p']}, windows={state['windows']})"
        )
        return state

    def test_ecb_doubled_blocks(self, reference_stream):
        # every 16-byte block emitted twice: the classic ECB tell
        blocks = np.frombuffer(
            reference_stream[:WINDOW_BYTES], np.uint8
        ).reshape(-1, 16)
        doubled = np.repeat(blocks, 2, axis=0).tobytes()
        state = self._assert_latches("EcbStructure", doubled)
        assert state["first_failure"]["statistics"]["duplicates"] >= 100

    def test_repeating_xor_keystream(self):
        # low-entropy "plaintext" under a short repeating key — the
        # failure mode RepeatingXor exists for (key reuse / ECB-of-CTR)
        plaintext = bytes(WINDOW_BYTES)  # worst case: all zeros
        key = bytes([0x3A, 0x91, 0x5C, 0x22, 0xE7, 0x10, 0x84])
        data = bytes(c ^ key[i % len(key)] for i, c in enumerate(plaintext))
        state = self._assert_latches("RepeatingXor", data)
        assert state["first_failure"]["p_value"] == 0.0

    def test_constant_output(self):
        # a wedged generator: constant bytes trip several families at once
        data = b"\x42" * WINDOW_BYTES
        for name in ("RepeatingXor", "Autocorrelation", "ShannonEntropy", "MinEntropy"):
            self._assert_latches(name, data)

    def test_birthday_spacings_tiled_values(self):
        # a tiny tiled alphabet: spacings collide constantly (the
        # lattice defect LCGs show, in cartoon form)
        tile = bytes(range(37)) * (WINDOW_BYTES // 37 + 1)
        state = self._assert_latches("BirthdaySpacings", tile[:WINDOW_BYTES])
        stats = state["first_failure"]["statistics"]
        assert stats["duplicates"] > 10 * stats["expected"]

    def test_permutations_sorted_words(self):
        # monotone counter read back as words: one ordering pattern
        # dominates all 120
        words = np.arange(WINDOW_BYTES // 4, dtype="<u4")
        self._assert_latches("OverlappingPermutations", words.tobytes())

    def test_periodic_bias_single_phase(self):
        # one lane of a 64-bit interleave stuck high: exactly the defect
        # PeriodicBias scans for (period=64 phases)
        rng = BSRNG("trivium", seed=3, lanes=256)
        bits = np.unpackbits(
            np.frombuffer(rng.random_bytes(WINDOW_BYTES), np.uint8),
            bitorder="little",
        ).copy()
        bits[::64] = 1
        data = np.packbits(bits, bitorder="little").tobytes()
        state = self._assert_latches("PeriodicBias", data)
        assert state["first_failure"]["statistics"]["worst_phase"] == 0

    def test_biased_low_bit_trips_frequency(self):
        # the serve-drill fault: AND 0xFE forces every byte's low bit to
        # zero — Frequency must see the 1/8 deficit instantly
        rng = BSRNG("mickey2", seed=5, lanes=256)
        data = (np.frombuffer(rng.random_bytes(WINDOW_BYTES), np.uint8) & 0xFE).tobytes()
        ev = StreamingEvaluator(
            [default_registry().get("Frequency")],
            window_bytes=WINDOW_BYTES,
            fail_alpha=1e-9,
        )
        ev.feed(data)
        assert not ev.healthy
