"""SP 800-90B-style health tests, streaming and vectorised.

Hardware RNG deployments (the FPGA/optical TRNGs of paper §3) never ship
raw generator output: a *startup self-test* gates the first block and two
*continuous health tests* screen every subsequent sample.  This module
implements that gate for any :class:`~repro.core.generator.BSRNG`:

* :class:`RepetitionCountTest` — SP 800-90B §4.4.1.  Fails when any byte
  value repeats ``cutoff`` or more times in a row.  Catches stuck-at
  faults within a handful of samples.
* :class:`AdaptiveProportionTest` — SP 800-90B §4.4.2.  Fails when the
  first byte of a 512-sample window recurs too often inside that window.
  Catches heavily biased (but not constant) output.
* startup self-test — the existing FIPS 140-2 battery
  (:func:`repro.nist.fips140.fips140_battery`) on the first 20,000 bits.

Both continuous tests are *streaming*: state (current run, current
window) carries across buffers, and each buffer is screened with
vectorised numpy passes rather than a per-byte Python loop.

Cutoffs are derived, not hard-coded: for a false-positive rate ``alpha``
and an entropy estimate of ``h`` bits per byte sample, the RCT cutoff is
``1 + ceil(-log2(alpha) / h)`` and the APT cutoff is the smallest count
whose binomial tail probability over a 512-sample window is below
``alpha`` (both per SP 800-90B).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.generator import BSRNG
from repro.core.touch import StreamTouch
from repro.errors import HealthTestError, SpecificationError
from repro.nist.fips140 import BLOCK_BITS, Fips140Report, fips140_battery
from repro.obs import flight
from repro.obs.tracing import span

logger = logging.getLogger(__name__)

__all__ = [
    "rct_cutoff",
    "apt_cutoff",
    "RepetitionCountTest",
    "AdaptiveProportionTest",
    "HealthEvent",
    "HealthLog",
    "startup_self_test",
    "HealthMonitoredBSRNG",
    "APT_WINDOW",
]

#: SP 800-90B §4.4.2 window size for non-binary (here: byte) samples.
APT_WINDOW = 512

#: Default per-test false-positive rate (the 800-90B recommended value).
DEFAULT_ALPHA = 2.0**-30


def rct_cutoff(alpha: float = DEFAULT_ALPHA, entropy_per_sample: float = 8.0) -> int:
    """Repetition Count Test cutoff ``C = 1 + ceil(-log2(alpha) / H)``.

    A run of ``C`` identical samples has probability at most
    ``2^(-H·(C-1)) <= alpha`` under the claimed ``H`` bits of entropy per
    sample, so a healthy source trips this at rate ``<= alpha``.
    """
    if not 0.0 < alpha < 1.0:
        raise SpecificationError("alpha must be in (0, 1)")
    if entropy_per_sample <= 0.0:
        raise SpecificationError("entropy_per_sample must be positive")
    return 1 + math.ceil(-math.log2(alpha) / entropy_per_sample)


def apt_cutoff(
    alpha: float = DEFAULT_ALPHA,
    entropy_per_sample: float = 8.0,
    window: int = APT_WINDOW,
) -> int:
    """Adaptive Proportion Test cutoff (smallest failing count).

    Under ``H`` bits of entropy per sample the most probable value has
    probability ``p = 2^-H``; the count of its recurrences among the
    ``window - 1`` samples after the reference draw is ``Binomial(window
    - 1, p)``.  The cutoff is ``1 +`` the smallest ``k`` whose upper tail
    ``P(X >= k)`` drops to ``alpha`` or below (the ``1 +`` counts the
    reference sample itself).
    """
    if not 0.0 < alpha < 1.0:
        raise SpecificationError("alpha must be in (0, 1)")
    if entropy_per_sample <= 0.0:
        raise SpecificationError("entropy_per_sample must be positive")
    if window < 2:
        raise SpecificationError("window must be at least 2")
    p = 2.0**-entropy_per_sample
    n = window - 1
    log_p, log_q = math.log(p), math.log1p(-p)
    # upper tail P(X >= k), walked downward from 1.0 by subtracting pmfs
    tail = 1.0
    for k in range(n + 1):
        if tail <= alpha:
            return 1 + k
        log_pmf = (
            math.lgamma(n + 1)
            - math.lgamma(k + 1)
            - math.lgamma(n - k + 1)
            + k * log_p
            + (n - k) * log_q
        )
        tail -= math.exp(log_pmf)
    return 1 + window  # alpha so small the test can never fire


@dataclass
class HealthEvent:
    """One health-test failure (or recovery action)."""

    test: str  # "rct" | "apt" | "startup"
    position: int  # byte offset into the screened stream
    detail: str
    action: str = "raise"  # "raise" | "reseed"


@dataclass
class HealthLog:
    """Accumulated health events plus total screened volume."""

    events: list[HealthEvent] = field(default_factory=list)
    bytes_screened: int = 0
    reseeds: int = 0

    def record(self, event: HealthEvent) -> None:
        """Append one event."""
        self.events.append(event)


class RepetitionCountTest:
    """Streaming Repetition Count Test over byte samples (800-90B §4.4.1)."""

    def __init__(self, alpha: float = DEFAULT_ALPHA, entropy_per_sample: float = 8.0) -> None:
        self.cutoff = rct_cutoff(alpha, entropy_per_sample)
        self.reset()

    def reset(self) -> None:
        """Forget the carried run (after a reseed)."""
        self._last: int | None = None
        self._run = 0

    def update(self, data: np.ndarray) -> int | None:
        """Screen one buffer of byte samples.

        Returns the offset (within *data*) at which a run reached the
        cutoff, or ``None`` when the buffer is healthy.  State carries to
        the next call either way.
        """
        if data.size == 0:
            return None
        # runs within the buffer
        change = np.flatnonzero(np.diff(data)) + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [data.size]])
        lengths = ends - starts
        # the first run may extend the carried run from the previous buffer
        carry = self._run if self._last is not None and int(data[0]) == self._last else 0
        total_first = lengths[0] + carry
        fail_at: int | None = None
        if total_first >= self.cutoff:
            fail_at = int(starts[0] + max(self.cutoff - carry, 1) - 1)
        else:
            over = np.flatnonzero(lengths >= self.cutoff)
            if over.size:
                fail_at = int(starts[over[0]] + self.cutoff - 1)
        # carry the trailing run forward
        self._last = int(data[-1])
        self._run = int(lengths[-1]) + (carry if lengths.size == 1 else 0)
        return fail_at


class AdaptiveProportionTest:
    """Streaming Adaptive Proportion Test over byte samples (§4.4.2)."""

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        entropy_per_sample: float = 8.0,
        window: int = APT_WINDOW,
    ) -> None:
        self.window = window
        self.cutoff = apt_cutoff(alpha, entropy_per_sample, window)
        self.reset()

    def reset(self) -> None:
        """Forget the open window (after a reseed)."""
        self._ref: int | None = None
        self._seen = 0  # samples consumed of the current window
        self._count = 0  # matches of the reference so far (incl. itself)

    def _open_window(self, sample: int) -> None:
        self._ref = sample
        self._seen = 1
        self._count = 1

    def update(self, data: np.ndarray) -> int | None:
        """Screen one buffer; returns the failing offset or ``None``."""
        pos = 0
        n = data.size
        while pos < n:
            if self._ref is None:
                self._open_window(int(data[pos]))
                pos += 1
                continue
            take = min(self.window - self._seen, n - pos)
            chunk = data[pos : pos + take]
            # vectorised count of the reference value inside the window
            self._count += int(np.count_nonzero(chunk == self._ref))
            self._seen += take
            if self._count >= self.cutoff:
                return pos + take - 1
            pos += take
            if self._seen == self.window:
                self._ref = None  # next sample opens a new window
        return None


def startup_self_test(rng: BSRNG) -> Fips140Report:
    """FIPS 140-2 battery on the generator's next 20,000 bits.

    The classic hardware power-up gate (paper §3's TRNGs are certified
    with exactly this battery).  Consumes ``BLOCK_BITS`` bits from *rng*;
    raises :class:`HealthTestError` on rejection.
    """
    with span("health.startup", algo=rng.algorithm):
        report = fips140_battery(rng.random_bits(BLOCK_BITS))
    obs.inc(
        "repro_health_startup_total",
        1,
        algorithm=rng.algorithm,
        verdict="pass" if report.passed else "fail",
    )
    if not report.passed:
        logger.warning(
            "startup self-test failed (FIPS 140-2) on %s: %s",
            rng.algorithm,
            report.statistics,
        )
        raise HealthTestError(
            f"startup self-test failed (FIPS 140-2): {report.statistics}"
        )
    return report


class HealthMonitoredBSRNG:
    """Front a :class:`BSRNG` with startup and continuous health tests.

    Every emitted buffer is screened by the Repetition Count and Adaptive
    Proportion tests before the caller sees it.  On a failure:

    * ``on_failure="raise"`` (default) — raise :class:`HealthTestError`
      (the FIPS error state: no further output).
    * ``on_failure="degrade"`` — reseed the failing bank through
      :meth:`BSRNG.reseed`, record a :class:`HealthEvent` in
      :attr:`log`, and regenerate the buffer from the fresh state.  After
      ``max_reseeds`` consecutive reseeds still fail, raise anyway (a
      genuinely broken source must not spin forever).

    Parameters
    ----------
    rng:
        The generator to monitor, or an algorithm name (then ``seed`` /
        ``lanes`` construct one).
    alpha:
        Per-test false-positive rate for the cutoff derivation.
    entropy_per_sample:
        Claimed min-entropy per byte (8.0 for a full-entropy PRNG).
    startup_test:
        Run the FIPS 140-2 battery on the first 20,000 bits.  Those bits
        are consumed by the gate and **not** emitted — exactly the
        hardware power-up semantics.
    """

    def __init__(
        self,
        rng: BSRNG | str = "mickey2",
        *,
        seed: int = 0,
        lanes: int = 4096,
        alpha: float = DEFAULT_ALPHA,
        entropy_per_sample: float = 8.0,
        on_failure: str = "raise",
        max_reseeds: int = 3,
        startup_test: bool = True,
    ) -> None:
        if on_failure not in ("raise", "degrade"):
            raise SpecificationError("on_failure must be 'raise' or 'degrade'")
        self.inner = rng if isinstance(rng, BSRNG) else BSRNG(rng, seed=seed, lanes=lanes)
        self.on_failure = on_failure
        self.max_reseeds = max_reseeds
        self.rct = RepetitionCountTest(alpha, entropy_per_sample)
        self.apt = AdaptiveProportionTest(alpha, entropy_per_sample)
        self.log = HealthLog()
        #: Continuous SP 800-90B-style bit census of the *raw source
        #: output*, folded into the generation path's single-touch
        #: epilogue — the kernels account each block while it is still
        #: cache-hot, so this monitor adds no extra pass over the data.
        #: Covers every generated byte (including ones later skipped),
        #: which is the correct population for a noise-source monitor.
        self.source_touch = StreamTouch()
        self.inner.attach_generation_tap(self.source_touch.update)
        self.startup_report: Fips140Report | None = None
        if startup_test:
            self.startup_report = startup_self_test(self.inner)

    # -- screening core ----------------------------------------------------------
    def _screen(self, data: np.ndarray) -> HealthEvent | None:
        """Run both continuous tests over one buffer."""
        at = self.rct.update(data)
        if at is not None:
            return HealthEvent(
                "rct",
                self.log.bytes_screened + at,
                f"byte 0x{int(data[at]):02x} repeated {self.rct.cutoff} times",
            )
        at = self.apt.update(data)
        if at is not None:
            return HealthEvent(
                "apt",
                self.log.bytes_screened + at,
                f"window proportion reached cutoff {self.apt.cutoff}",
            )
        return None

    def _draw(self, n: int) -> np.ndarray:
        """Screened byte draw (uint8 array)."""
        if n < 0:
            raise SpecificationError("n must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.uint8)
        for attempt in range(self.max_reseeds + 1):
            data = self.inner.random_uint8(n)  # no bytes round-trip copy
            with span("health.screen", algo=self.algorithm, n=n):
                event = self._screen(data)
            if event is None:
                self.log.bytes_screened += n
                obs.inc("repro_health_screened_bytes_total", n, algorithm=self.algorithm)
                return data
            obs.inc(
                "repro_health_failures_total",
                1,
                algorithm=self.algorithm,
                test=event.test,
            )
            if self.on_failure == "raise" or attempt == self.max_reseeds:
                event.action = "raise"
                self.log.record(event)
                logger.warning(
                    "health test %s failed at byte %d on %s: %s (raising)",
                    event.test,
                    event.position,
                    self.algorithm,
                    event.detail,
                )
                flight.record(
                    "health-failure",
                    algorithm=self.algorithm,
                    test=event.test,
                    position=event.position,
                    detail=event.detail,
                )
                flight.dump("health")
                raise HealthTestError(
                    f"{event.test} failed at byte {event.position}: {event.detail}"
                    + (
                        f" (after {self.log.reseeds} reseeds)"
                        if self.on_failure == "degrade"
                        else ""
                    )
                )
            event.action = "reseed"
            self.log.record(event)
            logger.warning(
                "health test %s failed at byte %d on %s: %s (degrading: reseed %d/%d)",
                event.test,
                event.position,
                self.algorithm,
                event.detail,
                self.log.reseeds + 1,
                self.max_reseeds,
            )
            self.inner.reseed()
            self.log.reseeds += 1
            obs.inc("repro_health_reseeds_total", 1, algorithm=self.algorithm)
            self.rct.reset()
            self.apt.reset()
        raise AssertionError("unreachable")  # pragma: no cover

    # -- public draws (mirror BSRNG) ---------------------------------------------
    def random_bytes(self, n: int) -> bytes:
        """*n* screened uniform bytes."""
        return self._draw(n).tobytes()

    def random_bits(self, n: int) -> np.ndarray:
        """*n* screened bits (uint8 0/1, little bit order)."""
        raw = self._draw(-(-n // 8))
        return np.unpackbits(raw, bitorder="little")[:n]

    def random_uint64(self, n: int) -> np.ndarray:
        """*n* screened uniform 64-bit words."""
        return self._draw(8 * n).view(np.uint64)

    def random_uint32(self, n: int) -> np.ndarray:
        """*n* screened uniform 32-bit words."""
        return self._draw(8 * -(-n // 2)).view(np.uint32)[:n].copy()

    def random(self, size: int | tuple = 1) -> np.ndarray:
        """Screened uniform float64 in [0, 1)."""
        shape = (size,) if isinstance(size, int) else tuple(size)
        n = int(np.prod(shape)) if shape else 1
        words = self.random_uint64(n)
        return ((words >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))).reshape(shape)

    @property
    def algorithm(self) -> str:
        """The wrapped generator's algorithm name."""
        return self.inner.algorithm

    @property
    def source_ones_fraction(self) -> float:
        """Running set-bit fraction of raw source output (0.5 when
        unbiased; NaN before the first refill) — the free by-product of
        the single-touch generation tap."""
        return self.source_touch.ones_fraction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HealthMonitoredBSRNG({self.inner!r}, on_failure={self.on_failure!r}, "
            f"rct_cutoff={self.rct.cutoff}, apt_cutoff={self.apt.cutoff})"
        )
