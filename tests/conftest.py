"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.core.engine import BitslicedEngine


@pytest.fixture
def rng():
    """Deterministic NumPy RNG for test inputs (not under test itself)."""
    return np.random.default_rng(0xBEEF)


@pytest.fixture(params=[np.uint8, np.uint32, np.uint64], ids=["u8", "u32", "u64"])
def dtype(request):
    """Virtual datapath widths exercised by layout-sensitive tests."""
    return request.param


@pytest.fixture
def small_engine(dtype):
    """A tiny engine (one word of lanes) for cross-validation tests."""
    width = np.dtype(dtype).itemsize * 8
    return BitslicedEngine(n_lanes=width, dtype=dtype)
