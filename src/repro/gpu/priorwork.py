"""Prior GPU PRNG results — the paper's Table 1, as data.

Each row records the claimed peak throughput and the GPU it ran on; the
normalized Gbps/GFLOPS column is recomputed (not transcribed), which is
how the benchmark regenerating Table 1 verifies the paper's arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PriorWork", "PRIOR_WORK"]


@dataclass(frozen=True)
class PriorWork:
    """One Table-1 row: a prior work's claimed result and its device."""
    reference: str
    year: int
    gpu_name: str
    gpu_gflops: float
    method: str
    gbps: float

    @property
    def normalized(self) -> float:
        """Gbps per GFLOPS — the paper's fairness normalisation."""
        return self.gbps / self.gpu_gflops


#: Table 1 rows, verbatim from the paper.
PRIOR_WORK: tuple[PriorWork, ...] = (
    PriorWork("[20] Langdon", 2008, "8800 GTX", 345.6, "RapidMind", 26.0),
    PriorWork("[33] Pang et al.", 2008, "7800 GTX", 20.6, "CA-PRNG", 0.41),
    PriorWork("[21] Langdon", 2009, "T10P", 622.1, "ParkMiller", 35.0),
    PriorWork("[12] Gong et al.", 2010, "S1070", 2488.3, "N/A", 4.98),
    PriorWork("[31] Nandapalan et al.", 2011, "GTX 480", 1344.96, "xorgensGP", 527.5),
    PriorWork("[10] Gao & Peterson", 2013, "GTX 480", 1344.96, "GASPRNG", 37.4),
)
