"""Bit-level packing, unpacking and stream-formatting utilities.

Everything in :mod:`repro` speaks three representations:

* **bit arrays** — ``numpy`` arrays of dtype ``uint8`` holding one bit
  (0 or 1) per element; the universal exchange format,
* **packed words** — little-bit-order packed ``uint8``/``uint32``/``uint64``
  vectors used for dense output streams, and
* **bitsliced planes** — the column-major layout of :mod:`repro.core.bitslice`.

This module owns the first two and the conversions between them.
"""

from repro.bitio.bits import (
    bits_from_bytes,
    bits_from_hex,
    bits_from_int,
    bits_to_bytes,
    bits_to_hex,
    bits_to_int,
    bits_to_uint32,
    bits_to_uint64,
    parity,
    uint32_to_bits,
    uint64_to_bits,
)
from repro.bitio.streams import BitWriter, write_nist_ascii, write_nist_binary

__all__ = [
    "bits_from_bytes",
    "bits_to_bytes",
    "bits_from_hex",
    "bits_to_hex",
    "bits_from_int",
    "bits_to_int",
    "bits_to_uint32",
    "bits_to_uint64",
    "uint32_to_bits",
    "uint64_to_bits",
    "parity",
    "BitWriter",
    "write_nist_ascii",
    "write_nist_binary",
]
