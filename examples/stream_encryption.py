#!/usr/bin/env python
"""Two-way communication with a reproducible keystream (paper §5.4).

The paper notes that the multi-device output "could be generated
identically in a single GPU sequentially ... handy in two-way
communication where the sequence should be reconstructed at the
receiver."  This example encrypts a message with the bitsliced MICKEY
keystream on the "sender", reconstructs the identical keystream on the
"receiver" from the shared seed, and decrypts — then shows that a wrong
seed recovers nothing.

Run:  python examples/stream_encryption.py
"""

import numpy as np

from repro import BSRNG

MESSAGE = (
    b"BSRNG reproduction: bitsliced MICKEY 2.0 keystream, "
    b"reconstructed at the receiver from the shared seed."
)
SHARED_SEED = 0x5EC2E7


def xor_bytes(data: bytes, keystream: bytes) -> bytes:
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(keystream, dtype=np.uint8)
    return (a ^ b).tobytes()


def main() -> None:
    # sender
    sender = BSRNG("mickey2", seed=SHARED_SEED, lanes=1024)
    ciphertext = xor_bytes(MESSAGE, sender.random_bytes(len(MESSAGE)))
    print(f"plaintext : {MESSAGE.decode()}")
    print(f"ciphertext: {ciphertext[:32].hex()}... ({len(ciphertext)} bytes)")

    # receiver: same algorithm + seed -> same keystream
    receiver = BSRNG("mickey2", seed=SHARED_SEED, lanes=1024)
    recovered = xor_bytes(ciphertext, receiver.random_bytes(len(ciphertext)))
    assert recovered == MESSAGE
    print(f"recovered : {recovered.decode()}")
    print()

    # an eavesdropper with the wrong seed gets noise
    wrong = BSRNG("mickey2", seed=SHARED_SEED + 1, lanes=1024)
    garbage = xor_bytes(ciphertext, wrong.random_bytes(len(ciphertext)))
    overlap = sum(a == b for a, b in zip(garbage, MESSAGE)) / len(MESSAGE)
    print(f"wrong-seed decryption matches plaintext bytes: {overlap:.1%} "
          f"(chance level ~0.4%)")
    assert garbage != MESSAGE

    # mid-stream access: the receiver can decrypt just a slice using the
    # byte-exact seek (O(1) for counter-mode kernels, clock-through here)
    slice_rng = BSRNG("mickey2", seed=SHARED_SEED, lanes=1024)
    slice_rng.skip_bytes(10)
    fragment = xor_bytes(ciphertext[10:26], slice_rng.random_bytes(16))
    assert fragment == MESSAGE[10:26]
    print(f"slice [10:26] decrypted independently: {fragment.decode()!r}")


if __name__ == "__main__":
    main()
