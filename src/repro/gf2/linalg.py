"""Bit-packed linear algebra over GF(2).

Rows are packed into uint64 words so Gaussian elimination eliminates 64
columns' worth of bits per XOR — the same bitslicing idea as the rest of
the package, applied to matrix rank.  NIST SP 800-22 test #5 (Binary
Matrix Rank) reduces thousands of 32×32 matrices; the batched eliminator
here processes them in one NumPy pass per pivot.
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import SpecificationError

__all__ = [
    "pack_rows",
    "gf2_matrix_rank",
    "gf2_matrix_rank_batch",
    "rank_distribution",
    "gf2_matmul",
    "gf2_matpow",
]


def pack_rows(bits) -> np.ndarray:
    """Pack an ``(rows, cols)`` bit matrix into ``(rows, ceil(cols/64))``
    uint64 row words (little bit order)."""
    arr = as_bit_array(bits)
    if arr.ndim != 2:
        raise SpecificationError("expected a 2-D bit matrix")
    packed = np.packbits(arr, axis=1, bitorder="little")
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return packed.view(np.dtype("<u8")).astype(np.uint64, copy=False)


def gf2_matrix_rank(bits) -> int:
    """Rank of one bit matrix over GF(2)."""
    arr = as_bit_array(bits)
    if arr.ndim != 2:
        raise SpecificationError("expected a 2-D bit matrix")
    rows = pack_rows(arr)
    n_rows, n_cols = arr.shape
    rank = 0
    for col in range(n_cols):
        word, bit = divmod(col, 64)
        mask = np.uint64(1) << np.uint64(bit)
        pivot = None
        for r in range(rank, n_rows):
            if rows[r, word] & mask:
                pivot = r
                break
        if pivot is None:
            continue
        rows[[rank, pivot]] = rows[[pivot, rank]]
        hit = ((rows[:, word] & mask) != 0)
        hit[rank] = False
        rows[hit] ^= rows[rank]
        rank += 1
        if rank == n_rows:
            break
    return rank


def gf2_matrix_rank_batch(matrices: np.ndarray) -> np.ndarray:
    """Ranks of a batch of equally-sized bit matrices, vectorized.

    *matrices* is ``(n_mats, rows, cols)`` with ``cols <= 64``; each
    matrix's rows are packed into single uint64 words and all matrices are
    eliminated simultaneously (one pass per column).  This is what makes
    the NIST rank test tractable on long sequences.
    """
    matrices = as_bit_array(matrices)
    if matrices.ndim != 3:
        raise SpecificationError("expected (n_mats, rows, cols)")
    n_mats, n_rows, n_cols = matrices.shape
    if n_cols > 64:
        raise SpecificationError("batched rank supports up to 64 columns")
    weights = (np.uint64(1) << np.arange(n_cols, dtype=np.uint64))
    rows = (matrices.astype(np.uint64) * weights).sum(axis=2, dtype=np.uint64)  # (n_mats, n_rows)
    rank = np.zeros(n_mats, dtype=np.int64)
    row_idx = np.arange(n_rows)
    for col in range(n_cols):
        mask = np.uint64(1) << np.uint64(col)
        has_bit = (rows & mask) != 0  # (n_mats, n_rows)
        # candidate pivots: first row >= rank[m] with the bit set
        eligible = has_bit & (row_idx[None, :] >= rank[:, None])
        any_pivot = eligible.any(axis=1)
        pivot = np.where(any_pivot, eligible.argmax(axis=1), 0)
        m_sel = np.flatnonzero(any_pivot)
        if m_sel.size == 0:
            continue
        # swap pivot row into position rank[m]
        r_to = rank[m_sel]
        r_from = pivot[m_sel]
        tmp = rows[m_sel, r_from].copy()
        rows[m_sel, r_from] = rows[m_sel, r_to]
        rows[m_sel, r_to] = tmp
        # eliminate the bit from every other row of selected matrices
        piv_rows = rows[m_sel, r_to]  # (k,)
        hit = (rows[m_sel] & mask) != 0  # (k, n_rows)
        hit[np.arange(m_sel.size), r_to] = False
        rows[m_sel] ^= np.where(hit, piv_rows[:, None], np.uint64(0))
        rank[m_sel] += 1
    return rank


def gf2_matmul(a, b) -> np.ndarray:
    """Product of two GF(2) bit matrices (``uint8`` 0/1 arrays)."""
    a = as_bit_array(a)
    b = as_bit_array(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise SpecificationError(f"incompatible shapes {a.shape} x {b.shape}")
    return ((a.astype(np.int64) @ b.astype(np.int64)) & 1).astype(np.uint8)


def gf2_matpow(m, k: int) -> np.ndarray:
    """``m^k`` over GF(2) by binary exponentiation (``m`` square, k >= 0).

    This is the engine behind LFSR jump-ahead: the k-step transition of
    any linear register is the k-th power of its one-step matrix, so a
    jump costs ``O(n^3 log k)`` instead of ``O(n k)`` clocks.
    """
    m = as_bit_array(m)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise SpecificationError("matrix power needs a square matrix")
    if k < 0:
        raise SpecificationError("negative powers are not supported")
    result = np.eye(m.shape[0], dtype=np.uint8)
    base = m.copy()
    while k:
        if k & 1:
            result = gf2_matmul(result, base)
        k >>= 1
        if k:
            base = gf2_matmul(base, base)
    return result


def rank_distribution(rows: int, cols: int, max_deficiency: int = 2) -> np.ndarray:
    """P(rank = full), P(full-1), …, P(<= full-max_deficiency) for a
    uniformly random ``rows × cols`` GF(2) matrix (the NIST #5 reference
    probabilities, computed exactly rather than hard-coded).

    Returns an array of length ``max_deficiency + 1``; the last entry
    aggregates all remaining mass.
    """
    m = min(rows, cols)
    probs = []
    for r in (m - d for d in range(max_deficiency)):
        # standard formula: 2^{r(rows+cols-r) - rows*cols} * prod ...
        p = 2.0 ** (r * (rows + cols - r) - rows * cols)
        for i in range(r):
            p *= (1 - 2.0 ** (i - rows)) * (1 - 2.0 ** (i - cols)) / (1 - 2.0 ** (i - r))
        probs.append(p)
    probs.append(max(0.0, 1.0 - sum(probs)))
    return np.array(probs)
