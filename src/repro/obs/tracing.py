"""Span tracing with a Chrome-trace-event exporter.

A *span* is one timed region of the generation pipeline — a refill, a
partition round, a health screen.  Spans nest (a ``gen`` span contains
many ``refill`` spans), carry arbitrary key/value attributes, and record
both wall time and CPU time, so a span that waited on a worker pool is
distinguishable from one that burned the local core.

The exporter writes the Chrome trace-event JSON format (``ph: "X"``
complete events, microsecond timestamps), which loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` — drop the
``--trace-out`` file onto the UI and read the pipeline's time structure
off the flame chart.

Tracing is off by default.  The disabled path allocates nothing: a
single shared no-op context manager is returned, so instrumenting a hot
loop with ``with span("refill"):`` costs one attribute check when
tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Tracer", "span"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    ts_us: float  # start, microseconds since the tracer's epoch
    dur_us: float  # wall duration, microseconds
    cpu_us: float  # CPU (process) time consumed, microseconds
    pid: int
    tid: int
    depth: int  # nesting depth within its thread (0 = outermost)
    args: dict = field(default_factory=dict)


class _ThreadState(threading.local):
    depth = 0


class Tracer:
    """Collects :class:`SpanRecord` s and exports Chrome trace JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._epoch = time.perf_counter()
        self._tls = _ThreadState()

    # -- recording ---------------------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since this tracer's epoch."""
        return (time.perf_counter() - self._epoch) * 1e6

    def add(self, record: SpanRecord) -> None:
        """Append one completed span."""
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list[SpanRecord]:
        """Copy of the recorded spans (chronological by completion)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop all records and restart the epoch."""
        with self._lock:
            self._records.clear()
            self._epoch = time.perf_counter()

    # -- export ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (Perfetto-loadable).

        Each span becomes one complete event (``ph: "X"``); CPU time and
        nesting depth ride along in ``args`` where the trace viewer shows
        them in the selection panel.
        """
        events = []
        for r in self.records:
            args = dict(r.args)
            args["cpu_us"] = round(r.cpu_us, 1)
            args["depth"] = r.depth
            events.append(
                {
                    "name": r.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(r.ts_us, 1),
                    "dur": round(r.dur_us, 1),
                    "pid": r.pid,
                    "tid": r.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` as JSON to *path*."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
            fh.write("\n")


class _Span:
    """Live span context manager (only constructed when tracing is on)."""

    __slots__ = ("_tracer", "_name", "_args", "_t0", "_c0", "_ts", "_depth")

    def __init__(self, tracer: Tracer, name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        tls = self._tracer._tls
        self._depth = tls.depth
        tls.depth += 1
        self._ts = self._tracer.now_us()
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        dur = (time.perf_counter() - self._t0) * 1e6
        cpu = (time.process_time() - self._c0) * 1e6
        self._tracer._tls.depth -= 1
        self._tracer.add(
            SpanRecord(
                name=self._name,
                ts_us=self._ts,
                dur_us=dur,
                cpu_us=cpu,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                args=self._args,
            )
        )


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **args):
    """Time one region: ``with span("refill", algo="mickey2"): ...``.

    Returns the shared no-op context manager when tracing is disabled —
    the instrumentation never allocates on the disabled path.
    """
    from repro import obs

    tracer = obs.active_tracer()
    if tracer is None:
        return _NOOP
    return _Span(tracer, name, args)
