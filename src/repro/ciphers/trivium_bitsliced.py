"""Bitsliced Trivium over the virtual SIMD engine.

State is 288 planes; one bank clock is eleven full-width XORs and three
ANDs — by far the cheapest gates-per-bit of the implemented ciphers,
which is why Trivium tops the measured software throughput chart.  The
three register shifts are vectorized row moves (the rotating-file variant
is exercised by the LFSR ablation; contiguous moves win in NumPy).

Cross-validated lane-by-lane against :class:`repro.ciphers.trivium.Trivium`.
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.ciphers.trivium import (
    INIT_CLOCKS,
    IV_BITS,
    KEY_BITS,
    STATE_BITS,
    _B_HEAD,
    _C_HEAD,
    _T1_AND,
    _T1_FWD,
    _T1_TAPS,
    _T2_AND,
    _T2_FWD,
    _T2_TAPS,
    _T3_AND,
    _T3_FWD,
    _T3_TAPS,
)
from repro.core.bitslice import bitslice, unbitslice
from repro.core.engine import BitslicedEngine
from repro.core.seeding import derive_lane_material
from repro.errors import KeyScheduleError

__all__ = ["BitslicedTrivium"]

#: Gate counts of one bank clock, per lane: t1/t2/t3 (3 XOR), z (2 XOR),
#: feedback (3 x 2 XOR + 3 AND).
_GATES_PER_CLOCK = {"xor": 11, "and_": 3, "or_": 0, "not_": 0}


class BitslicedTrivium:
    """A bank of ``engine.n_lanes`` independent Trivium generators."""

    name = "trivium"
    key_bits = KEY_BITS
    iv_bits = IV_BITS
    state_bits = STATE_BITS

    def __init__(self, engine: BitslicedEngine | None = None) -> None:
        self.engine = engine if engine is not None else BitslicedEngine()
        self.s = np.zeros((STATE_BITS, self.engine.n_words), dtype=self.engine.dtype)
        self._loaded = False

    # -- loading -------------------------------------------------------------
    def load(self, keys, ivs) -> None:
        """Load ``(n_lanes, 80)`` keys and ``(n_lanes, 80)`` IVs, then init."""
        keys = as_bit_array(keys)
        ivs = as_bit_array(ivs)
        n_lanes = self.engine.n_lanes
        if keys.shape != (n_lanes, KEY_BITS):
            raise KeyScheduleError(f"keys must be ({n_lanes}, {KEY_BITS}), got {keys.shape}")
        if ivs.shape != (n_lanes, IV_BITS):
            raise KeyScheduleError(f"ivs must be ({n_lanes}, {IV_BITS}), got {ivs.shape}")
        dt = self.engine.dtype
        self.s[:] = 0
        self.s[:KEY_BITS] = bitslice(keys, dtype=dt)
        self.s[_B_HEAD : _B_HEAD + IV_BITS] = bitslice(ivs, dtype=dt)
        self.s[285:288] = np.iinfo(dt).max
        for _ in range(INIT_CLOCKS):
            self._clock_plane()
        self._loaded = True

    def seed(self, seed: int, *, shared_key: bool = True, lane_offset: int = 0) -> "BitslicedTrivium":
        """Derive per-lane key/IV material from one integer seed."""
        keys, ivs = derive_lane_material(
            seed,
            self.engine.n_lanes,
            key_bits=KEY_BITS,
            iv_bits=IV_BITS,
            shared_key=shared_key,
            lane_offset=lane_offset,
        )
        self.load(keys, ivs)
        return self

    # -- one bank clock ---------------------------------------------------------
    def _clock_plane(self) -> np.ndarray:
        s = self.s
        t1 = s[_T1_TAPS[0]] ^ s[_T1_TAPS[1]]
        t2 = s[_T2_TAPS[0]] ^ s[_T2_TAPS[1]]
        t3 = s[_T3_TAPS[0]] ^ s[_T3_TAPS[1]]
        z = t1 ^ t2 ^ t3
        t1 ^= (s[_T1_AND[0]] & s[_T1_AND[1]]) ^ s[_T1_FWD]
        t2 ^= (s[_T2_AND[0]] & s[_T2_AND[1]]) ^ s[_T2_FWD]
        t3 ^= (s[_T3_AND[0]] & s[_T3_AND[1]]) ^ s[_T3_FWD]
        s[1:_B_HEAD] = s[: _B_HEAD - 1]
        s[_B_HEAD + 1 : _C_HEAD] = s[_B_HEAD : _C_HEAD - 1]
        s[_C_HEAD + 1 :] = s[_C_HEAD:-1]
        s[0] = t3
        s[_B_HEAD] = t1
        s[_C_HEAD] = t2
        for kind, n in _GATES_PER_CLOCK.items():
            if n:
                self.engine.counter.add(kind, n)
        return z

    # -- keystream --------------------------------------------------------------
    def _require_loaded(self) -> None:
        if not self._loaded:
            raise KeyScheduleError("cipher bank must be loaded/seeded before generating")

    def next_planes(
        self, n_rows: int, *, out: np.ndarray | None = None, epilogue=None
    ) -> np.ndarray:
        """Emit ``(n_rows, n_words)`` keystream planes via the staging buffer.

        With ``engine.fused`` the rows come from the compiled K-clock
        kernel (bit-identical stream, same gate accounting).  An explicit
        *out* array/view is filled in place and returned.  *epilogue*
        (the single-touch hook) sees every emitted row exactly once, in
        stream order — per K-clock block on the fused path, one call on
        the interpreter path.
        """
        self._require_loaded()
        if out is None:
            out = np.empty((n_rows, self.engine.n_words), dtype=self.engine.dtype)
        if getattr(self.engine, "fused", False):
            from repro.codegen.fused import fused_generate

            fused_generate(self, "trivium", n_rows, out, epilogue=epilogue)
            for kind, n in _GATES_PER_CLOCK.items():
                if n:
                    self.engine.counter.add(kind, n * n_rows)
            return out
        stage = self.engine.make_stage()
        row = 0
        for _ in range(n_rows):
            row = stage.push(self._clock_plane(), out, row)
        stage.drain(out, row)
        if epilogue is not None:
            epilogue(out[:n_rows])
        return out

    def keystream_bits(self, n_bits: int) -> np.ndarray:
        """Per-lane keystream: ``(n_lanes, n_bits)`` bit matrix."""
        return unbitslice(self.next_planes(n_bits), self.engine.n_lanes)

    def gates_per_output_bit(self) -> float:
        """Logic gates per keystream bit per lane (feeds the GPU model)."""
        g = _GATES_PER_CLOCK
        return float(g["xor"] + g["and_"] + g["or_"] + g["not_"])
