"""LFSR jump-ahead tests (extension): GF(2) matrix powers and the
O(log k) seek on reference, Galois and bitsliced registers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import BitslicedEngine
from repro.core.lfsr import (
    BitslicedLFSR,
    GaloisLFSR,
    ReferenceLFSR,
    fibonacci_transition_matrix,
)
from repro.errors import SpecificationError
from repro.gf2.linalg import gf2_matmul, gf2_matpow


class TestGF2MatrixAlgebra:
    def test_matmul_known(self):
        a = np.array([[1, 1], [0, 1]], np.uint8)
        b = np.array([[1, 0], [1, 1]], np.uint8)
        assert np.array_equal(gf2_matmul(a, b), np.array([[0, 1], [1, 1]], np.uint8))

    def test_matmul_shape_validation(self):
        with pytest.raises(SpecificationError):
            gf2_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))

    def test_matpow_zero_is_identity(self):
        m = np.array([[0, 1], [1, 1]], np.uint8)
        assert np.array_equal(gf2_matpow(m, 0), np.eye(2, dtype=np.uint8))

    def test_matpow_one_is_self(self):
        m = np.array([[0, 1], [1, 1]], np.uint8)
        assert np.array_equal(gf2_matpow(m, 1), m)

    def test_matpow_negative_rejected(self):
        with pytest.raises(SpecificationError):
            gf2_matpow(np.eye(2, dtype=np.uint8), -1)

    def test_matpow_nonsquare_rejected(self):
        with pytest.raises(SpecificationError):
            gf2_matpow(np.zeros((2, 3), np.uint8), 2)

    @settings(max_examples=30, deadline=None)
    @given(k1=st.integers(0, 50), k2=st.integers(0, 50), seed=st.integers(0, 100))
    def test_exponent_addition(self, k1, k2, seed):
        m = np.random.default_rng(seed).integers(0, 2, (5, 5), dtype=np.uint8)
        lhs = gf2_matmul(gf2_matpow(m, k1), gf2_matpow(m, k2))
        assert np.array_equal(lhs, gf2_matpow(m, k1 + k2))


class TestTransitionMatrix:
    def test_single_step_matches(self):
        lfsr = ReferenceLFSR(8)
        lfsr.seed(0xA5)
        m = fibonacci_transition_matrix(8, lfsr.taps)
        bits = np.array([(0xA5 >> i) & 1 for i in range(8)], np.uint8)
        lfsr.step()
        got = (m.astype(int) @ bits) & 1
        expect = np.array([(lfsr.state >> i) & 1 for i in range(8)], np.uint8)
        assert np.array_equal(got, expect)

    def test_invertible(self):
        # Nonzero constant term => the state map is a bijection: M has
        # full rank, so M^(2^n - 1) == I for a primitive polynomial.
        from repro.gf2.linalg import gf2_matrix_rank

        m = fibonacci_transition_matrix(8, ReferenceLFSR(8).taps)
        assert gf2_matrix_rank(m) == 8

    def test_order_is_period(self):
        # Primitive polynomial: the matrix order equals 2^n - 1.
        n = 10
        m = fibonacci_transition_matrix(n, ReferenceLFSR(n).taps)
        assert np.array_equal(gf2_matpow(m, (1 << n) - 1), np.eye(n, dtype=np.uint8))
        assert not np.array_equal(gf2_matpow(m, (1 << n) - 2), np.eye(n, dtype=np.uint8))


class TestReferenceJump:
    @settings(max_examples=25, deadline=None)
    @given(k=st.integers(0, 3000), state=st.integers(1, (1 << 16) - 1))
    def test_jump_equals_run(self, k, state):
        a, b = ReferenceLFSR(16), ReferenceLFSR(16)
        a.seed(state)
        b.seed(state)
        a.run(k)
        b.jump(k)
        assert a.state == b.state

    def test_huge_jump_is_fast(self):
        lfsr = ReferenceLFSR(32)
        lfsr.seed(1)
        lfsr.jump(10**18)  # would take forever step-by-step
        assert lfsr.state != 0

    def test_full_period_returns_home(self):
        lfsr = ReferenceLFSR(11)
        lfsr.seed(321)
        start = lfsr.state
        lfsr.jump((1 << 11) - 1)
        assert lfsr.state == start

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            ReferenceLFSR(8).jump(-1)


class TestGaloisJump:
    @settings(max_examples=25, deadline=None)
    @given(k=st.integers(0, 2000), state=st.integers(1, (1 << 12) - 1))
    def test_jump_equals_run(self, k, state):
        a, b = GaloisLFSR(12), GaloisLFSR(12)
        a.seed(state)
        b.seed(state)
        a.run(k)
        b.jump(k)
        assert a.state == b.state


class TestBitslicedJump:
    def test_jump_equals_run_all_lanes(self, dtype):
        lanes = 33
        a = BitslicedLFSR(16, engine=BitslicedEngine(n_lanes=lanes, dtype=dtype))
        b = BitslicedLFSR(16, engine=BitslicedEngine(n_lanes=lanes, dtype=dtype))
        states = np.arange(1, lanes + 1)
        a.seed_from_ints(states)
        b.seed_from_ints(states)
        a.run(517)
        b.jump(517)
        assert np.array_equal(a.state_bits(), b.state_bits())

    def test_jump_then_run_continues_stream(self):
        lanes = 8
        full = BitslicedLFSR(16, engine=BitslicedEngine(n_lanes=lanes, dtype=np.uint8))
        seek = BitslicedLFSR(16, engine=BitslicedEngine(n_lanes=lanes, dtype=np.uint8))
        states = np.arange(2, lanes + 2)
        full.seed_from_ints(states)
        seek.seed_from_ints(states)
        planes = full.run(300)
        seek.jump(200)
        assert np.array_equal(seek.run(100), planes[200:])

    def test_cost_is_lane_independent(self):
        # The jump issues the same number of plane XORs no matter how many
        # lanes ride along — the bitslicing property, again.
        costs = []
        for lanes in (64, 4096):
            lf = BitslicedLFSR(16, engine=BitslicedEngine(n_lanes=lanes))
            lf.seed_from_ints(np.arange(1, lanes + 1))
            lf.engine.reset_gate_counts()
            lf.jump(12345)
            costs.append(lf.engine.counter.snapshot()["xor"])
        assert costs[0] == costs[1]

    def test_requires_seed(self):
        lf = BitslicedLFSR(16, engine=BitslicedEngine(n_lanes=8, dtype=np.uint8))
        with pytest.raises(SpecificationError):
            lf.jump(5)
