"""Randomness analysis beyond SP 800-22.

The paper claims its streams satisfy "bit-wise correlation criteria" and
stresses that parallel LFSR lanes "should be carefully initialized to
eliminate any statistical correlation"; this package provides the
measurements backing those claims: inter-lane correlation, serial
autocorrelation, key/IV avalanche, and entropy estimation.
"""

from repro.analysis.avalanche import avalanche_profile, key_avalanche
from repro.analysis.correlation import (
    autocorrelation,
    bias,
    lane_correlation_matrix,
    max_abs_offdiag,
    periodic_bias,
)
from repro.analysis.entropy import min_entropy_estimate, shannon_entropy_estimate
from repro.analysis.period import (
    effective_period_log2,
    safe_stream_length,
    stream_overlap_probability,
)

__all__ = [
    "lane_correlation_matrix",
    "max_abs_offdiag",
    "autocorrelation",
    "bias",
    "periodic_bias",
    "key_avalanche",
    "avalanche_profile",
    "shannon_entropy_estimate",
    "stream_overlap_probability",
    "effective_period_log2",
    "safe_stream_length",
    "min_entropy_estimate",
]
