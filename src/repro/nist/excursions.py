"""SP 800-22 tests 14 & 15: Random Excursions and the Variant."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InsufficientDataError
from repro.nist._utils import check_bits, erfc, igamc, plus_minus_one
from repro.nist.result import TestResult

__all__ = ["random_excursions_test", "random_excursions_variant_test"]

_STATES = (-4, -3, -2, -1, 1, 2, 3, 4)
_VARIANT_STATES = tuple(x for x in range(-9, 10) if x != 0)


def _walk_and_cycles(bits: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """The padded random walk S', the cycle id of each step, and J."""
    x = plus_minus_one(bits)
    s = np.concatenate([[0.0], np.cumsum(x), [0.0]]).astype(np.int64)
    zero_pos = np.flatnonzero(s == 0)
    j = zero_pos.size - 1  # number of cycles
    # cycle id for every position: number of zeros strictly before it
    cycle_id = np.cumsum(s == 0) - 1
    return s, cycle_id, j


def _state_pi(x: int, k: int) -> float:
    """π_k(x): probability of exactly k visits to state x in one cycle."""
    ax = abs(x)
    if k == 0:
        return 1.0 - 1.0 / (2.0 * ax)
    if k == 5:
        return (1.0 / (2.0 * ax)) * (1.0 - 1.0 / (2.0 * ax)) ** 4
    return (1.0 / (4.0 * ax * ax)) * (1.0 - 1.0 / (2.0 * ax)) ** (k - 1)


def random_excursions_test(bits, min_cycles: int = 500) -> TestResult:
    """Visits to states ±1..±4 per zero-crossing cycle (8 p-values).

    NIST requires ``J ≥ max(0.005 √n, 500)``; sequences with too few
    cycles raise :class:`~repro.errors.InsufficientDataError` (the sts
    suite likewise reports the test as not applicable).
    """
    arr = check_bits(bits, 1000, "random_excursions")
    s, cycle_id, j = _walk_and_cycles(arr)
    required = max(min_cycles, int(0.005 * math.sqrt(arr.size)))
    if j < required:
        raise InsufficientDataError(
            f"random_excursions needs >= {required} cycles, observed {j}"
        )
    p_values = []
    stats = {"J": j}
    for x in _STATES:
        mask = s == x
        visits_per_cycle = np.bincount(cycle_id[mask], minlength=j)[:j]
        cats = np.clip(visits_per_cycle, 0, 5)
        counts = np.bincount(cats, minlength=6)
        pis = np.array([_state_pi(x, k) for k in range(6)])
        expected = j * pis
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        p = igamc(5 / 2.0, chi2 / 2.0)
        p_values.append(p)
        stats[f"chi2[{x}]"] = chi2
    return TestResult("RandomExcursions", p_values, stats)


def random_excursions_variant_test(bits, min_cycles: int = 500) -> TestResult:
    """Total visits to states ±1..±9 over the whole walk (18 p-values)."""
    arr = check_bits(bits, 1000, "random_excursions_variant")
    s, _, j = _walk_and_cycles(arr)
    required = max(min_cycles, int(0.005 * math.sqrt(arr.size)))
    if j < required:
        raise InsufficientDataError(
            f"random_excursions_variant needs >= {required} cycles, observed {j}"
        )
    p_values = []
    stats = {"J": j}
    for x in _VARIANT_STATES:
        xi = int(np.count_nonzero(s == x))
        p = float(erfc(abs(xi - j) / math.sqrt(2.0 * j * (4.0 * abs(x) - 2.0))))
        p_values.append(p)
        stats[f"xi[{x}]"] = xi
    return TestResult("RandomExcursionsVariant", p_values, stats)
